"""E1 — iteration count scaling of the decision solver (Theorem 3.1).

Claim: ``decisionPSDP`` solves the ε-decision problem in
``O(eps^-3 log^2 n)`` iterations, independent of the width.  This benchmark
sweeps the accuracy parameter and the number of constraints on random
packing SDPs and reports measured iterations next to the theoretical cap
``R``, plus the strict-mode (paper constants, no early exit) iteration
count for the epsilon sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decision import DecisionParameters, decision_psdp
from repro.instrumentation import ExperimentReport
from repro.problems import random_packing_sdp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


EPSILONS = [0.5, 0.35, 0.25, 0.15]
CONSTRAINT_COUNTS = [4, 8, 16, 32]


def _solve(problem, eps, strict=False):
    return decision_psdp(problem, epsilon=eps, strict=strict)


@pytest.mark.parametrize("eps", EPSILONS)
def test_e1_iterations_vs_epsilon(benchmark, eps, results_dir):
    """Iterations grow as eps shrinks but stay far below the worst-case cap R."""
    problem = random_packing_sdp(8, 8, rng=1)
    result = benchmark.pedantic(_solve, args=(problem, eps), rounds=1, iterations=1)
    params = DecisionParameters.from_instance(8, eps)
    report = ExperimentReport("E1-epsilon", f"decision iterations at eps={eps}")
    report.add_row(
        eps=eps,
        n=8,
        m=8,
        iterations=result.iterations,
        cap_R=params.R,
        outcome=result.outcome.value,
        dual_value=result.dual_value,
    )
    emit(report, results_dir)
    assert result.iterations <= params.R


def test_e1_iterations_vs_n(benchmark, results_dir):
    """Iterations grow (poly)logarithmically with the number of constraints n."""
    _register(benchmark)
    report = ExperimentReport("E1-n", "decision iterations vs number of constraints (eps=0.3)")
    iterations = []
    for n in CONSTRAINT_COUNTS:
        problem = random_packing_sdp(n, 6, rng=2)
        result = decision_psdp(problem, epsilon=0.3)
        params = DecisionParameters.from_instance(n, 0.3)
        iterations.append(result.iterations)
        report.add_row(
            n=n,
            iterations=result.iterations,
            cap_R=params.R,
            K=params.K,
            outcome=result.outcome.value,
        )
    emit(report, results_dir)
    # Shape check: growth from n=4 to n=32 should be well below linear in n
    # (the bound is log^2 n; an 8x increase in n must not cost 8x iterations).
    assert iterations[-1] <= iterations[0] * 6


def test_e1_strict_mode_within_cap(benchmark, results_dir):
    """The strict (paper-constant) solver always terminates within R iterations."""
    _register(benchmark)
    report = ExperimentReport("E1-strict", "strict-mode iterations vs the Theorem 3.1 cap")
    for eps in (0.5, 0.3):
        problem = random_packing_sdp(6, 6, rng=3)
        result = decision_psdp(problem, epsilon=eps, strict=True)
        params = DecisionParameters.from_instance(6, eps)
        report.add_row(eps=eps, iterations=result.iterations, cap_R=params.R,
                       fraction_of_cap=result.iterations / params.R)
        assert result.iterations <= params.R
    emit(report, results_dir)
