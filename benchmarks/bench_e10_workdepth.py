"""E10 — work–depth accounting and simulated parallel scaling (Theorem 1.1 / Cor 1.2).

Claim: the algorithm is an NC algorithm — polylogarithmic depth and
near-linear work per iteration.  On a single-core container the honest
measurements are the model quantities themselves: this benchmark records
the work and depth charged by the solver across a size sweep, checks that
the work/depth ratio (available parallelism) grows with the instance size,
and converts the traces into Brent-bound speedup curves.  It also compares
execution backends to confirm the accounting is backend-invariant.
"""

from __future__ import annotations

import pytest

from repro.core.decision import decision_psdp
from repro.instrumentation import ExperimentReport
from repro.parallel.backends import SerialBackend, ThreadBackend
from repro.parallel.scheduler import speedup_curve
from repro.parallel.workdepth import WorkDepthTracker
from repro.problems import random_packing_sdp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

SIZES = [(4, 4), (8, 8), (16, 12)]


def test_e10_parallelism_grows_with_size(benchmark, results_dir):
    """E10: available parallelism (work/depth) must grow with instance size."""
    _register(benchmark)
    report = ExperimentReport("E10-parallelism", "work, depth and available parallelism vs instance size")
    parallelism = []
    for n, m in SIZES:
        problem = random_packing_sdp(n, m, rng=81)
        result = decision_psdp(problem, epsilon=0.3, max_iterations=40, certificate_check_every=0)
        wd = result.work_depth
        parallelism.append(wd.parallelism)
        report.add_row(
            n=n,
            m=m,
            work=wd.work,
            depth=wd.depth,
            parallelism=wd.parallelism,
            work_per_iteration=wd.work / max(result.iterations, 1),
        )
    emit(report, results_dir)
    # Bigger instances expose more parallelism (more independent per-constraint work).
    assert parallelism[-1] > parallelism[0]


def test_e10_brent_speedup_curve(benchmark, results_dir):
    """E10: Brent-bound speedup curve of one solve across processor counts."""
    _register(benchmark)
    problem = random_packing_sdp(8, 8, rng=82)
    result = decision_psdp(problem, epsilon=0.3, max_iterations=40, certificate_check_every=0)
    report = ExperimentReport("E10-speedup", "Brent-bound simulated speedups from the measured trace")
    for schedule in speedup_curve(result.work_depth, [1, 2, 4, 8, 16, 64, 256]):
        report.add_row(
            processors=schedule.processors,
            time_upper=schedule.time_upper,
            speedup_guaranteed=schedule.speedup_lower,
            efficiency=schedule.efficiency,
        )
    emit(report, results_dir)
    curve = speedup_curve(result.work_depth, [1, 256])
    assert curve[-1].speedup_lower > curve[0].speedup_lower


@pytest.mark.parametrize("backend_name", ["serial", "thread"])
def test_e10_backend_invariance(benchmark, backend_name, results_dir):
    """The measured work/depth must not depend on the execution backend."""
    problem = random_packing_sdp(6, 6, rng=83)

    def run(backend):
        return decision_psdp(
            problem, epsilon=0.3, backend=backend, max_iterations=25, certificate_check_every=0
        )

    tracker = WorkDepthTracker()
    backend = SerialBackend(tracker) if backend_name == "serial" else ThreadBackend(2, tracker)
    try:
        result = benchmark.pedantic(run, args=(backend,), rounds=1, iterations=1)
    finally:
        backend.close()

    reference = decision_psdp(
        problem, epsilon=0.3, max_iterations=25, certificate_check_every=0
    )
    report = ExperimentReport("E10-backends", f"work/depth invariance: {backend_name} backend")
    report.add_row(
        backend=backend_name,
        work=result.work_depth.work,
        depth=result.work_depth.depth,
        reference_work=reference.work_depth.work,
        reference_depth=reference.work_depth.depth,
    )
    emit(report, results_dir)
    assert result.work_depth.work == pytest.approx(reference.work_depth.work, rel=1e-9)
    assert result.work_depth.depth == pytest.approx(reference.work_depth.depth, rel=1e-9)
