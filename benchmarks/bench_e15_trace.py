"""E15 — structured trace estimation vs the per-call full-identity Taylor apply.

After PR 4's matrix-free core, the last dense object on the fast-oracle hot
path was the trace normalisation in the degenerate-sketch regime (JL
dimension at ``m`` — the default configuration at these sizes): every
oracle call pushed the full ``(m, m)`` identity through the Lemma 4.2
Taylor polynomial to read the estimates and ``Tr[exp(Psi)]`` off it.  The
structured estimator (``repro.linalg.trace_estimation``) reads the
estimates from the polynomial applied to the ``(m, R)`` factor stack and
the trace from the exact Gram-spectrum / deflated block-Krylov paths; this
benchmark measures both levels against the ``trace_mode="identity"``
reference:

* **oracle**: steady-state ``FastDotExpOracle`` call latency (engine warm,
  weights mildly perturbed per call the way the solver does);
* **decision**: end-to-end ``decision_psdp`` wall clock with history and
  certificate checks enabled, checking certified decisions are identical
  on fixed seeds and that the structured runs report **zero**
  full-identity Taylor applies.

Results are printed as a table and emitted machine-readably to
``BENCH_trace.json`` at the repository root (override with ``--output``).
Run directly::

    PYTHONPATH=src python benchmarks/bench_e15_trace.py [--quick]

The non-quick run enforces the PR acceptance gates: >= 2x steady-state
oracle speedup on every ``m >= 1024`` low-rank row, zero identity applies
and identical certified decisions on every structured row.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    time_call,
    DEFAULT_RANK,
    DEFAULT_SPARSE_DENSITY,
)
from repro.core.decision import decision_psdp  # noqa: E402
from repro.core.dotexp import FastDotExpOracle  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_trace.json"
)

# (n, m, generator kind, reported family) grids.  Low-rank rows keep
# R = 2n far below m (the Gram-spectrum trace); the "wide" rows are
# mid-rank adversaries — R past the Gram gate but below m, the deflated
# block-Krylov path, whose speedup ceiling is the inherent column ratio
# ~m/R; sparse rows exercise the sparse-stack kernels under a structured
# trace.
ORACLE_GRID = [
    (16, 512, "lowrank", "lowrank"),
    (16, 1024, "lowrank", "lowrank"),
    (24, 2048, "lowrank", "lowrank"),
    (160, 512, "lowrank", "wide"),
    (320, 1024, "lowrank", "wide"),
    (200, 1024, "sparse", "sparse"),
]
DECISION_GRID = [
    (16, 1024, "lowrank", "lowrank"),
    (24, 2048, "lowrank", "lowrank"),
    (160, 512, "lowrank", "wide"),
    (200, 1024, "sparse", "sparse"),
]
QUICK_ORACLE_GRID = [
    (8, 96, "lowrank", "lowrank"),
    (36, 96, "lowrank", "wide"),
]
QUICK_DECISION_GRID = [
    (8, 96, "lowrank", "lowrank"),
]

ORACLE_EPS = 0.1
ORACLE_REPEATS = 5
DECISION_CAP = 30
CHECK_EVERY = 5


def _steady_state_oracle(ops, n, seed, trace_mode):
    """Warm the engine caches, then time one oracle call (best of repeats)."""
    coll = fresh_collection(ops)
    oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed, trace_mode=trace_mode)
    rng = np.random.default_rng(seed + 1)
    x = 1.0 / (n * coll.traces())
    oracle(None, x)  # first call pays the one-time engine/estimator builds
    # The solver perturbs a subset of weights per iteration; mimic that so
    # the engine's incremental update is on the measured path.
    def one_call():
        mask = rng.random(n) < 0.5
        x[mask] *= 1.01
        oracle(None, x)

    seconds = time_call(one_call, ORACLE_REPEATS)
    return {
        "seconds": seconds,
        "identity_applies": oracle.counters.extra.get("identity_taylor_applies", 0),
        "trace_mode": (
            oracle.trace_estimator.mode if oracle.trace_estimator is not None
            else "identity"
        ),
        "fallbacks": (
            oracle.trace_estimator.identity_fallbacks
            if oracle.trace_estimator is not None
            else 0
        ),
    }


def _run_decision(ops, n, seed, cap, trace_mode):
    """One timed end-to-end solve on a fresh collection; returns row facts."""
    coll = fresh_collection(ops)
    oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed, trace_mode=trace_mode)
    start = time.perf_counter()
    result = decision_psdp(
        coll,
        epsilon=0.2,
        oracle=oracle,
        rng=seed,
        max_iterations=cap,
        collect_history=True,
        certificate_check_every=CHECK_EVERY,
    )
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "outcome": result.outcome.name,
        "iterations": result.iterations,
        "identity_applies": oracle.counters.extra.get("identity_taylor_applies", 0),
        "trace_stats": result.metadata.get("trace_estimator"),
    }


def main(argv=None) -> int:
    """Run the E15 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    oracle_grid = QUICK_ORACLE_GRID if args.quick else ORACLE_GRID
    decision_grid = QUICK_DECISION_GRID if args.quick else DECISION_GRID
    cap = 10 if args.quick else DECISION_CAP

    oracle_rows = []
    for n, m, kind, family in oracle_grid:
        ops = make_operators(n, m, kind, args.seed)
        old = _steady_state_oracle(ops, n, args.seed, "identity")
        new = _steady_state_oracle(ops, n, args.seed, "auto")
        row = {
            "n": n,
            "m": m,
            "factor_kind": family,
            "rank": DEFAULT_RANK,
            "total_rank": DEFAULT_RANK * n,
            "trace_mode": new["trace_mode"],
            "old_seconds": old["seconds"],
            "new_seconds": new["seconds"],
            "speedup": old["seconds"] / max(new["seconds"], 1e-12),
            "identity_applies_old": old["identity_applies"],
            "identity_applies_new": new["identity_applies"],
            "fallbacks_new": new["fallbacks"],
        }
        oracle_rows.append(row)
        print(
            f"[oracle  ] n={n:4d} m={m:5d} {family:8s} "
            f"trace={row['trace_mode']:9s} "
            f"old={row['old_seconds'] * 1e3:9.2f}ms new={row['new_seconds'] * 1e3:8.2f}ms "
            f"speedup={row['speedup']:6.1f}x identity={row['identity_applies_new']:.0f}"
        )

    decision_rows = []
    for n, m, kind, family in decision_grid:
        ops = make_operators(n, m, kind, args.seed)
        old = _run_decision(ops, n, args.seed, cap, "identity")
        new = _run_decision(ops, n, args.seed, cap, "auto")
        row = {
            "n": n,
            "m": m,
            "factor_kind": family,
            "rank": DEFAULT_RANK,
            "trace_mode": (new["trace_stats"] or {}).get("mode"),
            "old_seconds": old["seconds"],
            "new_seconds": new["seconds"],
            "speedup": old["seconds"] / max(new["seconds"], 1e-12),
            "outcome_old": old["outcome"],
            "outcome_new": new["outcome"],
            "iterations_old": old["iterations"],
            "iterations_new": new["iterations"],
            "identity_applies_old": old["identity_applies"],
            "identity_applies_new": new["identity_applies"],
            "fallbacks_new": (new["trace_stats"] or {}).get("identity_fallbacks", 0),
        }
        decision_rows.append(row)
        print(
            f"[decision] n={n:4d} m={m:5d} {family:8s} "
            f"trace={str(row['trace_mode']):9s} "
            f"old={row['old_seconds']:8.3f}s new={row['new_seconds']:7.3f}s "
            f"speedup={row['speedup']:6.1f}x "
            f"outcomes={row['outcome_old']}/{row['outcome_new']} "
            f"identity={row['identity_applies_new']:.0f}"
        )

    payload = {
        "experiment": "E15-trace",
        "description": "structured trace estimation vs the full-identity Taylor apply",
        "quick": args.quick,
        "config": {
            "rank": DEFAULT_RANK,
            "sparse_density": DEFAULT_SPARSE_DENSITY,
            "oracle_eps": ORACLE_EPS,
            "oracle_repeats": ORACLE_REPEATS,
            "decision_iteration_cap": cap,
            "certificate_check_every": CHECK_EVERY,
            "collect_history": True,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "oracle": oracle_rows,
        "decision": decision_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in oracle_rows + decision_rows:
        if row["identity_applies_new"] != 0:
            failures.append(
                f"structured run pushed the identity "
                f"{row['identity_applies_new']:.0f}x at n={row['n']}, m={row['m']}"
            )
        if row["fallbacks_new"] != 0:
            failures.append(
                f"structured run fell back to the identity push at "
                f"n={row['n']}, m={row['m']}"
            )
        if row["identity_applies_old"] == 0:
            failures.append(
                f"reference run reports no identity applies at "
                f"n={row['n']}, m={row['m']} — the comparison is vacuous"
            )
    for row in decision_rows:
        if row["outcome_old"] != row["outcome_new"]:
            failures.append(
                f"decision outcome diverged ({row['outcome_old']} vs "
                f"{row['outcome_new']}) at n={row['n']}, m={row['m']}"
            )
        if row["iterations_old"] != row["iterations_new"]:
            failures.append(
                f"decision iteration count diverged at n={row['n']}, m={row['m']}"
            )
    if not args.quick:
        for row in oracle_rows:
            if row["factor_kind"] == "lowrank" and row["m"] >= 1024:
                if row["speedup"] < 2.0:
                    failures.append(
                        f"m={row['m']} low-rank oracle speedup "
                        f"{row['speedup']:.1f}x < 2x"
                    )
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
