"""E12 — blocked/fused Taylor kernel vs the per-term matvec recurrence.

The Theorem 4.1 oracle's dominant cost at moderate dimensions is the
Lemma 4.2 Taylor apply: for ``m ≲ 1000`` at tight eps the JL sketch
degenerates to the identity, so the whole ``(m, m)`` block passes through
the polynomial every call.  This benchmark measures, across an
``(n, m, factor sparsity)`` grid:

* the latency of that Taylor block apply on the old path
  (``taylor_expm_apply`` driving the packed ``Psi``-matvec closure, the
  PR-1 state) against the fused block kernel the packed view now selects
  (``PackedGramFactors.taylor_kernel`` — Gram-space, densified, sparse, or
  factor recurrence, whichever the measured-cost policy picks), plus their
  agreement (same polynomial — must match to ~1e-12);
* the end-to-end wall clock of ``decision_psdp`` with
  ``FastDotExpOracle(blocked=...)`` on both paths, checking the certified
  decisions are identical on fixed seeds.

Results are printed as a table and emitted machine-readably to
``BENCH_taylor.json`` at the repository root (override with ``--output``).
Run directly::

    PYTHONPATH=src python benchmarks/bench_e12_taylor.py [--quick]

The ``--quick`` mode is the CI smoke invocation: a reduced grid and fewer
repetitions, still exercising every code path.  The non-quick run enforces
the PR acceptance gate: >= 3x on the Taylor block apply for the dense rows
with m >= 128.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    time_call,
    DEFAULT_RANK,
    DEFAULT_SPARSE_DENSITY,
)
from repro.core.decision import decision_psdp  # noqa: E402
from repro.core.dotexp import FastDotExpOracle  # noqa: E402
from repro.linalg.taylor import taylor_degree, taylor_expm_apply  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_taylor.json"
)

# (n, m, factor_kind) grid; "sparse" factors carry ~5% nonzeros.
FULL_GRID = [
    (50, 64, "dense"),
    (200, 128, "dense"),
    (400, 128, "dense"),
    (200, 256, "dense"),
    (400, 256, "dense"),
    (400, 128, "sparse"),
]
QUICK_GRID = [
    (40, 32, "dense"),
    (60, 48, "sparse"),
]

ORACLE_EPS = 0.1
#: mid-run spectral-norm bound used for the microbenchmark degree — the
#: decision solver's Psi reaches well past this before terminating.
TAYLOR_KAPPA = 8.0
DECISION_CAP = 40


def bench_taylor_block(ops, n: int, m: int, repeats: int, seed: int) -> dict:
    """Old-vs-new latency of the degenerate-sketch Taylor block apply."""
    x = np.abs(np.random.default_rng(seed).random(n)) / n
    coll = fresh_collection(ops)
    packed = coll.packed()
    degree = taylor_degree(TAYLOR_KAPPA / 2.0, ORACLE_EPS / 2.0)
    block = np.eye(m)

    matvec = packed.matvec_fn(x)

    def old_apply():
        return taylor_expm_apply(lambda b: 0.5 * matvec(b), block, degree)

    def new_apply():
        # Kernel construction is part of the measured cost: without the
        # incremental engine the oracle rebuilds it every call from the
        # current weights.
        return packed.taylor_kernel(x).apply(block, degree, scale=0.5)

    old_result = old_apply()  # warm up + reference values
    new_result = new_apply()
    max_abs_err = float(np.max(np.abs(old_result - new_result)))
    t_old = time_call(old_apply, repeats)
    t_new = time_call(new_apply, repeats)
    kernel = packed.taylor_kernel(x)

    return {
        "degree": degree,
        "kernel_mode": packed.auto_taylor_mode(),
        "kernel_type": type(kernel).__name__,
        "old_seconds": t_old,
        "new_seconds": t_new,
        "speedup": t_old / max(t_new, 1e-12),
        "max_abs_err": max_abs_err,
    }


def bench_decision(ops, n: int, m: int, seed: int, cap: int) -> dict:
    """End-to-end decision latency with the blocked kernel on/off."""
    results = {}
    for label, blocked in (("old", False), ("new", True)):
        coll = fresh_collection(ops)
        oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed, blocked=blocked)
        start = time.perf_counter()
        result = decision_psdp(
            coll, epsilon=0.2, oracle=oracle, max_iterations=cap, rng=seed
        )
        results[label] = {
            "seconds": time.perf_counter() - start,
            "outcome": result.outcome.name,
            "iterations": result.iterations,
        }
    return {
        "old_seconds": results["old"]["seconds"],
        "new_seconds": results["new"]["seconds"],
        "speedup": results["old"]["seconds"] / max(results["new"]["seconds"], 1e-12),
        "outcome_old": results["old"]["outcome"],
        "outcome_new": results["new"]["outcome"],
        "iterations_old": results["old"]["iterations"],
        "iterations_new": results["new"]["iterations"],
    }


def main(argv=None) -> int:
    """Run the E12 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    repeats = 2 if args.quick else 5
    cap = 10 if args.quick else DECISION_CAP

    taylor_rows = []
    decision_rows = []
    for n, m, kind in grid:
        ops = make_operators(n, m, kind, args.seed)
        q = sum(op.nnz for op in ops)
        base = {"n": n, "m": m, "factor_kind": kind, "rank": DEFAULT_RANK, "total_nnz": q}

        row = {**base, **bench_taylor_block(ops, n, m, repeats, args.seed)}
        taylor_rows.append(row)
        print(
            f"[taylor]   n={n:4d} m={m:4d} {kind:6s} k={row['degree']:3d} "
            f"{row['kernel_mode']:9s} old={row['old_seconds']*1e3:9.2f}ms "
            f"new={row['new_seconds']*1e3:8.2f}ms speedup={row['speedup']:6.1f}x "
            f"err={row['max_abs_err']:.2e}"
        )

        row = {**base, **bench_decision(ops, n, m, args.seed, cap)}
        decision_rows.append(row)
        print(
            f"[decision] n={n:4d} m={m:4d} {kind:6s} "
            f"old={row['old_seconds']:8.3f}s  new={row['new_seconds']:7.3f}s  "
            f"speedup={row['speedup']:6.1f}x outcomes={row['outcome_old']}/{row['outcome_new']}"
        )

    payload = {
        "experiment": "E12-taylor",
        "description": "blocked/fused Taylor kernel vs per-term matvec recurrence",
        "quick": args.quick,
        "config": {
            "rank": DEFAULT_RANK,
            "sparse_density": DEFAULT_SPARSE_DENSITY,
            "oracle_eps": ORACLE_EPS,
            "taylor_kappa": TAYLOR_KAPPA,
            "decision_iteration_cap": cap,
            "repeats": repeats,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "taylor_block": taylor_rows,
        "decision": decision_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in taylor_rows:
        if row["max_abs_err"] > 1e-8:
            failures.append(f"taylor-apply mismatch {row['max_abs_err']:.2e} at {row}")
        if (
            not args.quick
            and row["factor_kind"] == "dense"
            and row["m"] >= 128
            and row["speedup"] < 3.0
        ):
            failures.append(
                f"taylor speedup {row['speedup']:.1f}x < 3x at n={row['n']}, m={row['m']}"
            )
    for row in decision_rows:
        if row["outcome_old"] != row["outcome_new"]:
            failures.append(
                f"decision outcome diverged ({row['outcome_old']} vs "
                f"{row['outcome_new']}) at n={row['n']}, m={row['m']}"
            )
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
