"""E19 — concurrent executor: throughput vs worker count, crash recovery.

PR 9 moves the :class:`repro.service.SolveService` loop onto a
:class:`repro.service.WorkerPool`.  Concurrency is only worth shipping if
it (a) scales when cores exist, (b) costs almost nothing when they do
not, and (c) keeps fault recovery cheap.  This benchmark measures all
three on the E17 batched family (m=24, n=8, rank=2):

* **throughput** — a fleet of independent requests drained through
  thread-mode services at 1/2/4/8 workers (``batch_size=1`` so every
  request is its own pool job).  ``speedup`` is relative to the 1-worker
  service.  The payload records ``cpu_count``: on a multi-core machine
  (>= 4 cores) the 8-worker speedup must reach **2x**; on the single-core
  CI container the gate degrades to a bounded-overhead check (8 workers
  no slower than **0.55x** the 1-worker throughput — the pool must not
  tax the GIL-serialized case);
* **recovery** — the same fleet with one injected mid-solve
  ``WorkerCrash``: the crashed job is requeued from its latest shipped
  heartbeat checkpoint, so the faulted drain must stay within **6x** of
  the clean drain (the redone work is one checkpoint interval, not a
  whole solve) and the rescued result must be bit-identical.

Results are printed as a table and emitted machine-readably to
``BENCH_executor.json`` at the repository root (override with
``--output``).  Run directly::

    PYTHONPATH=src python benchmarks/bench_e19_executor.py [--quick]

The non-quick run enforces the acceptance gates; the committed payload is
re-checked by ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np  # noqa: E402

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    make_argparser,
    report_failures,
)
from repro.core.decision import DecisionOptions  # noqa: E402
from repro.operators import ConstraintCollection, FactorizedPSDOperator  # noqa: E402
from repro.robustness import WorkerCrash, clear_faults, inject  # noqa: E402
from repro.service import SolveService, VirtualClock  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_executor.json"
)

#: The E17 batched-benchmark instance family.
M, N_CONSTRAINTS, RANK = 24, 8, 2
EPSILON = 0.25
HEARTBEAT_EVERY = 3
WORKER_GRID = [1, 2, 4, 8]
QUICK_WORKER_GRID = [1, 2]
FLEET = 12
QUICK_FLEET = 3
REPEATS = 3

#: Multi-core gate: 8 workers must reach this speedup over 1 worker.
SPEEDUP_FLOOR_MULTICORE = 2.0
#: Single-core gate: the pool may not tax the GIL-serialized case below
#: this fraction of 1-worker throughput.
SPEEDUP_FLOOR_SINGLECORE = 0.55
#: Cores needed before the multicore gate applies.
MULTICORE_AT = 4
#: One crash-and-requeue must keep the drain within this factor of clean.
RECOVERY_CEILING = 6.0


def fleet_collections(size: int, seed: int) -> list[ConstraintCollection]:
    """``size`` fresh instances of the E17 family (one per request)."""
    collections = []
    for i in range(size):
        rng = np.random.default_rng(seed + 101 * i)
        collections.append(
            ConstraintCollection(
                [
                    FactorizedPSDOperator(0.35 * rng.standard_normal((M, RANK)))
                    for _ in range(N_CONSTRAINTS)
                ],
                validate=False,
            )
        )
    return collections


def make_service(workers: int, seed: int, **overrides) -> SolveService:
    """A thread-mode service on a virtual clock with ``batch_size=1``."""
    kwargs = dict(
        options=DecisionOptions(epsilon=EPSILON, oracle="fast"),
        seed=seed,
        clock=VirtualClock(),
        mode="thread",
        workers=workers,
        batch_size=1,
        heartbeat_every=HEARTBEAT_EVERY,
    )
    kwargs.update(overrides)
    return SolveService(**kwargs)


def drain_fleet(service: SolveService, size: int, seed: int):
    """Submit the fleet, drain it, and return (seconds, responses)."""
    collections = fleet_collections(size, seed)
    start = time.perf_counter()
    rids = [service.submit(coll) for coll in collections]
    responses = service.drain()
    elapsed = time.perf_counter() - start
    service.shutdown()
    return elapsed, [responses[rid] for rid in rids]


def bench_throughput(worker_grid, fleet: int, seed: int, repeats: int) -> list[dict]:
    """One row per worker count: fleet drain latency and relative speedup."""
    rows = []
    reference = None
    base_seconds = None
    for workers in worker_grid:
        best = float("inf")
        responses = None
        for _ in range(repeats):
            service = make_service(workers, seed)
            elapsed, responses = drain_fleet(service, fleet, seed)
            best = min(best, elapsed)
        identical = True
        if reference is None:
            reference = responses
            base_seconds = best
        else:
            for ref, got in zip(reference, responses):
                if (
                    got.result.dual_value != ref.result.dual_value
                    or not np.array_equal(got.result.dual_x, ref.result.dual_x)
                ):
                    identical = False
        rows.append(
            {
                "workers": workers,
                "fleet": fleet,
                "seconds": best,
                "throughput_per_s": fleet / max(best, 1e-12),
                "speedup": base_seconds / max(best, 1e-12),
                "identical": identical,
            }
        )
    return rows


def bench_recovery(fleet: int, seed: int, repeats: int) -> dict:
    """Clean fleet drain vs the same drain with one injected worker crash."""
    clean_best = faulted_best = float("inf")
    clean_responses = faulted_responses = None
    for _ in range(repeats):
        service = make_service(2, seed)
        elapsed, clean_responses = drain_fleet(service, fleet, seed)
        clean_best = min(clean_best, elapsed)

        service = make_service(2, seed, backoff_base=0.01)
        with inject("worker.heartbeat", WorkerCrash, at_call=2, seed=seed):
            elapsed, faulted_responses = drain_fleet(service, fleet, seed)
        clear_faults()
        faulted_best = min(faulted_best, elapsed)
    identical = all(
        got.result.dual_value == ref.result.dual_value
        and np.array_equal(got.result.dual_x, ref.result.dual_x)
        for ref, got in zip(clean_responses, faulted_responses)
    )
    recovered = sum(r.resumes > 0 or r.attempts > 0 for r in faulted_responses)
    return {
        "fleet": fleet,
        "clean_seconds": clean_best,
        "faulted_seconds": faulted_best,
        "recovery_ratio": faulted_best / max(clean_best, 1e-12),
        "recovered_requests": int(recovered),
        "identical": identical,
    }


def main(argv=None) -> int:
    """Run the E19 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    worker_grid = QUICK_WORKER_GRID if args.quick else WORKER_GRID
    fleet = QUICK_FLEET if args.quick else FLEET
    repeats = 1 if args.quick else REPEATS
    cpu_count = os.cpu_count() or 1

    throughput_rows = bench_throughput(worker_grid, fleet, args.seed, repeats)
    for row in throughput_rows:
        print(
            f"[throughput] workers={row['workers']} fleet={row['fleet']} "
            f"drain={row['seconds'] * 1e3:8.2f}ms "
            f"rate={row['throughput_per_s']:6.1f}/s "
            f"speedup={row['speedup']:5.2f}x identical={row['identical']}"
        )

    recovery = bench_recovery(fleet, args.seed, repeats)
    print(
        f"[recovery]   fleet={recovery['fleet']} "
        f"clean={recovery['clean_seconds'] * 1e3:8.2f}ms "
        f"faulted={recovery['faulted_seconds'] * 1e3:8.2f}ms "
        f"ratio={recovery['recovery_ratio']:5.2f}x "
        f"recovered={recovery['recovered_requests']} "
        f"identical={recovery['identical']}"
    )

    payload = {
        "experiment": "E19-executor",
        "description": (
            "worker-pool throughput scaling and crash-recovery latency "
            "of the concurrent solve service"
        ),
        "quick": args.quick,
        "config": {
            "m": M,
            "n": N_CONSTRAINTS,
            "rank": RANK,
            "epsilon": EPSILON,
            "heartbeat_every": HEARTBEAT_EVERY,
            "fleet": fleet,
            "repeats": repeats,
            "seed": args.seed,
            "cpu_count": cpu_count,
        },
        "environment": environment_info(),
        "throughput": throughput_rows,
        "recovery": recovery,
    }
    emit_payload(payload, args.output)

    failures: list[str] = []
    if not args.quick:
        top = throughput_rows[-1]
        floor = (
            SPEEDUP_FLOOR_MULTICORE
            if cpu_count >= MULTICORE_AT
            else SPEEDUP_FLOOR_SINGLECORE
        )
        if top["speedup"] < floor:
            failures.append(
                f"{top['workers']}-worker speedup {top['speedup']:.2f}x below the "
                f"{floor}x floor (cpu_count={cpu_count})"
            )
        for row in throughput_rows:
            if not row["identical"]:
                failures.append(
                    f"{row['workers']}-worker results differ from 1-worker bits"
                )
        if recovery["recovery_ratio"] > RECOVERY_CEILING:
            failures.append(
                f"crash recovery ratio {recovery['recovery_ratio']:.2f}x above the "
                f"{RECOVERY_CEILING}x ceiling"
            )
        if not recovery["identical"]:
            failures.append("crash-recovered results differ from clean bits")
        if recovery["recovered_requests"] < 1:
            failures.append("the injected crash never fired — recovery unmeasured")
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
