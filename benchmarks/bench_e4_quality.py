"""E4 — end-to-end (1+ε)-approximation quality (Theorem 1.1).

Claim: ``approxPSDP`` returns a (1+ε)-approximation of the positive SDP
optimum.  This benchmark solves random packing SDPs and application
instances with the full optimizer across an epsilon sweep and compares the
certified bounds against an exact reference solver.  The reproduction
target: the exact optimum always lies inside the certified bracket and the
bracket width respects ε.
"""

from __future__ import annotations

import pytest

from repro.baselines import exact_packing_value
from repro.core.solver import approx_psdp
from repro.instrumentation import ExperimentReport
from repro.problems import beamforming_sdp, random_packing_sdp, sparse_pca_sdp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

EPSILONS = [0.4, 0.25, 0.15]


@pytest.mark.parametrize("eps", EPSILONS)
def test_e4_quality_vs_epsilon(benchmark, eps, results_dir):
    """E4: certified objective quality versus the accuracy parameter eps."""
    problem = random_packing_sdp(5, 6, rng=17)
    exact = exact_packing_value(problem).value
    result = benchmark.pedantic(approx_psdp, args=(problem,), kwargs={"epsilon": eps}, rounds=1, iterations=1)
    report = ExperimentReport("E4-epsilon", f"approximation quality at eps={eps}")
    report.add_row(
        eps=eps,
        exact_opt=exact,
        lower=result.optimum_lower,
        upper=result.optimum_upper,
        certified_gap=result.relative_gap,
        achieved_ratio=exact / result.optimum_lower,
        decision_calls=result.decision_calls,
        iterations=result.total_iterations,
    )
    emit(report, results_dir)
    assert result.optimum_lower <= exact * (1 + 1e-6)
    assert result.optimum_upper >= exact * (1 - 1e-6)
    assert result.relative_gap <= eps + 1e-9
    assert exact / result.optimum_lower <= 1 + eps + 1e-9


def test_e4_quality_on_applications(benchmark, results_dir):
    """The guarantee holds on the application workloads too (rank-one heavy)."""
    _register(benchmark)
    report = ExperimentReport("E4-apps", "approximation quality on application instances (eps=0.3)")
    instances = {
        "sparse-pca": sparse_pca_sdp(8, 6, rng=2),
        "beamforming(normalized)": None,  # built below via normalization
    }
    eps = 0.3
    problem = instances["sparse-pca"]
    exact = exact_packing_value(problem).value
    result = approx_psdp(problem, epsilon=eps)
    report.add_row(
        instance="sparse-pca",
        exact_opt=exact,
        lower=result.optimum_lower,
        upper=result.optimum_upper,
        achieved_ratio=exact / result.optimum_lower,
    )
    assert exact / result.optimum_lower <= 1 + eps + 1e-9

    bf = beamforming_sdp(3, 5, rng=4)
    from repro.core.normalize import normalize_sdp

    normalized, _ = normalize_sdp(bf)
    exact_bf = exact_packing_value(normalized).value
    result_bf = approx_psdp(bf, epsilon=eps)
    report.add_row(
        instance="beamforming",
        exact_opt=exact_bf,
        lower=result_bf.optimum_lower,
        upper=result_bf.optimum_upper,
        achieved_ratio=exact_bf / result_bf.optimum_lower,
    )
    assert exact_bf / result_bf.optimum_lower <= 1 + eps + 1e-9
    emit(report, results_dir)
