"""Shared harness for the E11-E13 fast-path benchmarks.

The three packed-kernel benchmarks (``bench_e11_packed.py``,
``bench_e12_taylor.py``, ``bench_e13_gram.py``) share the same skeleton:
an ``(n, m, factor kind)`` grid with a reduced ``--quick`` variant for the
CI smoke job, a best-of-``repeats`` timing loop, the random factorized
instance family, a JSON payload written next to the repository root, and a
failure list that drives the exit code.  This module holds those pieces so
each benchmark contains only its measurements.

Nothing here imports the ``repro`` package at module level — callers are
expected to have put ``src`` on ``sys.path`` (the benchmarks do it
themselves so they run straight from a checkout).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time

import numpy as np
import scipy.sparse as sp

#: Default rank of the random factorized constraints (matches E11/E12).
DEFAULT_RANK = 2
#: Default density of the "sparse" factor family.
DEFAULT_SPARSE_DENSITY = 0.05


def make_argparser(description: str, default_output: str) -> argparse.ArgumentParser:
    """The shared CLI: ``--quick`` smoke flag, ``--output`` path, ``--seed``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--quick", action="store_true", help="CI smoke grid")
    parser.add_argument("--output", default=default_output, help="JSON output path")
    parser.add_argument("--seed", type=int, default=7, help="instance seed")
    return parser


def time_call(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall-clock latency of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_operators(
    n: int,
    m: int,
    kind: str,
    seed: int,
    rank: int = DEFAULT_RANK,
    sparse_density: float = DEFAULT_SPARSE_DENSITY,
    support: int | None = None,
):
    """Random factorized constraints, scaled so the threshold-1 decision
    problem is non-trivial but bounded.

    Kinds:

    * ``"dense"`` — Gaussian ``(m, rank)`` factors (the E11/E12 family);
    * ``"sparse"`` — ~``sparse_density`` CSR factors, rescaled to keep the
      same expected trace;
    * ``"concentrated"`` — sparse factors whose nonzeros all land inside a
      shared ``support``-row subset (defaults to ``m // 8``), the
      overlapping-support family where the exact ``Psi`` pattern stays far
      smaller than its per-column bound.
    """
    from repro.operators import FactorizedPSDOperator

    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(m)
    ops = []
    for _ in range(n):
        if kind == "sparse":
            factor = sp.random(
                m, rank, density=sparse_density, random_state=rng, format="csr"
            )
            factor = factor * (scale * np.sqrt(1.0 / sparse_density))
            if factor.nnz == 0:  # keep every constraint's trace positive
                factor = sp.csr_matrix(
                    (np.full(rank, scale), (rng.integers(0, m, rank), np.arange(rank))),
                    shape=(m, rank),
                )
            ops.append(FactorizedPSDOperator(factor))
        elif kind == "concentrated":
            rows_avail = support if support is not None else max(m // 8, 4)
            col_nnz = min(8, rows_avail)
            dense = np.zeros((m, rank))
            for c in range(rank):
                rows = rng.choice(rows_avail, size=col_nnz, replace=False)
                dense[rows, c] = (
                    scale * np.sqrt(m / (col_nnz * rank)) * rng.standard_normal(col_nnz)
                )
            ops.append(FactorizedPSDOperator(sp.csr_matrix(dense)))
        elif kind in ("dense", "lowrank"):
            ops.append(FactorizedPSDOperator(scale * rng.standard_normal((m, rank))))
        else:
            raise ValueError(f"unknown factor kind {kind!r}")
    return ops


def fresh_collection(ops):
    """A new collection over the same factors — no packed/engine cache leaks
    between the reference-path and fast-path measurements."""
    from repro.operators import ConstraintCollection, FactorizedPSDOperator

    return ConstraintCollection(
        [FactorizedPSDOperator(op.gram_factor_raw()) for op in ops], validate=False
    )


def environment_info() -> dict:
    """The interpreter/numpy/machine fingerprint recorded in every payload."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
    }


def emit_payload(payload: dict, output: str) -> str:
    """Write the JSON payload (trailing newline, 2-space indent) and report it."""
    output = os.path.abspath(output)
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[json] {output}")
    return output


def report_failures(failures: list[str]) -> int:
    """Print ``[FAIL]`` lines and return the process exit code."""
    for line in failures:
        print(f"[FAIL] {line}")
    return 1 if failures else 0
