"""E8 — Johnson–Lindenstrauss sketch dimension vs estimation error (Theorem 4.1).

Claim: a Gaussian sketch with ``O(eps^-2 log m)`` rows suffices to estimate
all the Frobenius norms ``||exp(Phi/2) Q_i||_F`` to relative error ``eps``.
This benchmark fixes an instance and sweeps the sketch-dimension constant,
reporting the worst-case and median relative errors over the constraints —
the "error vs sketch rows" curve that justifies the dimension rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.instrumentation import ExperimentReport
from repro.linalg.expm import expm_eigh
from repro.linalg.psd import random_psd
from repro.linalg.sketching import gaussian_sketch, jl_dimension
from repro.linalg.taylor import TaylorExpmOperator

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _setup(m=40, n=12, kappa=2.0, seed=55):
    rng = np.random.default_rng(seed)
    phi = random_psd(m, rng=rng, scale=kappa)
    factors = [rng.standard_normal((m, 2)) for _ in range(n)]
    exact = np.array([float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors])
    return phi, factors, exact


def _sketch_errors(phi, factors, exact, rows, seed):
    m = phi.shape[0]
    operator = TaylorExpmOperator(phi, kappa=2.0, eps=0.01)
    sketch = gaussian_sketch(rows, m, rng=seed)
    transformed = operator.apply(sketch.T).T  # rows x m = Pi exp(phi/2)
    estimates = np.array([float(np.sum((transformed @ q) ** 2)) for q in factors])
    return np.abs(estimates - exact) / exact


def test_e8_error_vs_sketch_rows(benchmark, results_dir):
    """E8: oracle estimate error versus the JL sketch row count."""
    _register(benchmark)
    phi, factors, exact = _setup()
    report = ExperimentReport("E8-rows", "JL sketch rows vs relative estimation error")
    medians = []
    for rows in (4, 8, 16, 32, 64):
        errors = np.concatenate([_sketch_errors(phi, factors, exact, rows, seed) for seed in range(5)])
        medians.append(float(np.median(errors)))
        report.add_row(
            sketch_rows=rows,
            median_rel_error=float(np.median(errors)),
            p90_rel_error=float(np.quantile(errors, 0.9)),
            max_rel_error=float(errors.max()),
        )
    emit(report, results_dir)
    # More rows -> smaller error (allow noise, compare endpoints).
    assert medians[-1] < medians[0]


def test_e8_dimension_rule_suffices(benchmark, results_dir):
    """The rule jl_dimension(m, eps) achieves ~eps median error at eps=0.25."""
    _register(benchmark)
    phi, factors, exact = _setup()
    eps = 0.25
    rows = jl_dimension(phi.shape[0], eps)
    errors = np.concatenate([_sketch_errors(phi, factors, exact, rows, seed) for seed in range(5)])
    report = ExperimentReport("E8-rule", "error achieved by the O(eps^-2 log m) dimension rule")
    report.add_row(
        eps=eps,
        rule_rows=rows,
        median_rel_error=float(np.median(errors)),
        p90_rel_error=float(np.quantile(errors, 0.9)),
    )
    emit(report, results_dir)
    assert float(np.median(errors)) <= eps


@pytest.mark.parametrize("rows", [8, 32])
def test_e8_sketch_benchmark(benchmark, rows):
    """Timed kernel: applying the Taylor operator to a sketch of the given size."""
    phi, factors, exact = _setup()
    benchmark.pedantic(_sketch_errors, args=(phi, factors, exact, rows, 0), rounds=1, iterations=1)
