"""E16 — happy-path cost of fault supervision, and recovery latency.

PR 6 threads a :class:`~repro.robustness.supervisor.FastPathSupervisor`
through both decision solvers: every oracle call and ``lambda_max`` runs
inside a recovery loop that can demote a failing kernel one rung down its
ladder.  The supervision contract says the happy path — no faults, no
demotions — must stay within **2%** of the unsupervised solver
(``supervise=False``), because the only added work is a finiteness scan of
the oracle output and a handful of budget checks per iteration.  This
benchmark measures that overhead and proves the contract:

* end-to-end ``decision_psdp`` / ``decision_psdp_phased`` wall clock,
  ``supervise=True`` vs ``supervise=False``, best-of-``repeats`` on the
  instrumented configuration (history + certificate checks), checking the
  certified decisions are identical and no recovery events fired;
* a recovery-latency section: the same solve with a one-shot injected
  Taylor-kernel fault, measuring the cost of one full demotion
  (detect → demote → re-run iteration) relative to the clean solve.

Results are printed as a table and emitted machine-readably to
``BENCH_robustness.json`` at the repository root (override with
``--output``).  Run directly::

    PYTHONPATH=src python benchmarks/bench_e16_robustness.py [--quick]

The non-quick run enforces the acceptance gate: happy-path overhead
(``supervised_seconds / unsupervised_seconds``) <= 1.02x on every row
(``tools/check_bench_regression.py`` re-checks the committed payload).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    DEFAULT_RANK,
)
from repro.core.decision import decision_psdp  # noqa: E402
from repro.core.decision_phased import decision_psdp_phased  # noqa: E402
from repro.core.dotexp import FastDotExpOracle  # noqa: E402
from repro.robustness import NaN, inject  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_robustness.json"
)

# (n, m, factor_kind) happy-path grid: the same families as E14, spanning
# the gram / dense-psi engine regimes and the implicit/dense PsiState split.
FULL_GRID = [
    (16, 512, "lowrank"),
    (16, 1024, "lowrank"),
    (200, 1024, "sparse"),
]
QUICK_GRID = [
    (8, 96, "lowrank"),
]

ORACLE_EPS = 0.1
DECISION_CAP = 30
CHECK_EVERY = 5
#: Best-of repeats for the happy-path timing (overhead gates need low noise:
#: the fast-path solves are tens of milliseconds, so a single scheduler
#: hiccup is several percent — the gate compares best-of-7).
REPEATS = 7


def _solve(solver, ops, seed, cap, supervise):
    """One end-to-end solve on a fresh collection; returns (seconds, result)."""
    coll = fresh_collection(ops)
    oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed)
    start = time.perf_counter()
    result = solver(
        coll,
        epsilon=0.2,
        oracle=oracle,
        rng=seed,
        max_iterations=cap,
        collect_history=True,
        certificate_check_every=CHECK_EVERY,
        supervise=supervise,
    )
    return time.perf_counter() - start, result


def bench_overhead(solver, ops, seed, cap, repeats) -> dict:
    """Supervised vs unsupervised wall clock for one solver on one row."""
    sup_best = unsup_best = float("inf")
    sup_result = unsup_result = None
    # Interleave the repeats so cache/turbo drift hits both arms equally.
    for _ in range(repeats):
        seconds, unsup_result = _solve(solver, ops, seed, cap, supervise=False)
        unsup_best = min(unsup_best, seconds)
        seconds, sup_result = _solve(solver, ops, seed, cap, supervise=True)
        sup_best = min(sup_best, seconds)
    return {
        "unsupervised_seconds": unsup_best,
        "supervised_seconds": sup_best,
        "overhead": sup_best / max(unsup_best, 1e-12),
        "outcome_unsupervised": unsup_result.outcome.name,
        "outcome_supervised": sup_result.outcome.name,
        "iterations": sup_result.iterations,
        "status": sup_result.metadata["solve_status"],
        "recoveries": sup_result.metadata["supervisor"]["recoveries"],
    }


def bench_recovery(ops, seed, cap) -> dict:
    """Latency of one injected-fault demotion relative to the clean solve."""
    clean_seconds, clean = _solve(decision_psdp, ops, seed, cap, supervise=True)
    site = (
        "taylor_gram.apply"
        if clean.metadata.get("taylor_engine", {}).get("mode") == "gram"
        else "taylor_blocked.apply"
    )
    with inject(site, NaN, at_call=2):
        faulty_seconds, faulty = _solve(decision_psdp, ops, seed, cap, supervise=True)
    return {
        "site": site,
        "clean_seconds": clean_seconds,
        "faulty_seconds": faulty_seconds,
        "recovery_ratio": faulty_seconds / max(clean_seconds, 1e-12),
        "status": faulty.metadata["solve_status"],
        "recoveries": faulty.metadata["supervisor"]["recoveries"],
        "outcomes_match": faulty.outcome == clean.outcome,
    }


def main(argv=None) -> int:
    """Run the E16 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    cap = 10 if args.quick else DECISION_CAP

    overhead_rows = []
    for solver, label in ((decision_psdp, "decision"), (decision_psdp_phased, "phased")):
        for n, m, kind in grid:
            ops = make_operators(n, m, kind, args.seed)
            row = {
                "solver": label,
                "n": n,
                "m": m,
                "factor_kind": kind,
                "rank": DEFAULT_RANK,
                **bench_overhead(solver, ops, args.seed, cap, REPEATS),
            }
            overhead_rows.append(row)
            print(
                f"[{label:8s}] n={n:4d} m={m:5d} {kind:8s} "
                f"unsup={row['unsupervised_seconds']:7.3f}s "
                f"sup={row['supervised_seconds']:7.3f}s "
                f"overhead={row['overhead']:6.3f}x "
                f"status={row['status']} recoveries={row['recoveries']}"
            )

    recovery_rows = []
    for n, m, kind in grid[:2]:
        ops = make_operators(n, m, kind, args.seed)
        row = {"n": n, "m": m, "factor_kind": kind, **bench_recovery(ops, args.seed, cap)}
        recovery_rows.append(row)
        print(
            f"[recovery] n={n:4d} m={m:5d} {kind:8s} site={row['site']:20s} "
            f"clean={row['clean_seconds']:7.3f}s faulty={row['faulty_seconds']:7.3f}s "
            f"ratio={row['recovery_ratio']:5.2f}x recoveries={row['recoveries']}"
        )

    payload = {
        "experiment": "E16-robustness",
        "description": "happy-path supervision overhead and injected-fault recovery latency",
        "quick": args.quick,
        "config": {
            "rank": DEFAULT_RANK,
            "oracle_eps": ORACLE_EPS,
            "decision_iteration_cap": cap,
            "certificate_check_every": CHECK_EVERY,
            "collect_history": True,
            "repeats": REPEATS,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "overhead": overhead_rows,
        "recovery": recovery_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in overhead_rows:
        where = f"{row['solver']} n={row['n']}, m={row['m']}, {row['factor_kind']}"
        if row["outcome_unsupervised"] != row["outcome_supervised"]:
            failures.append(f"outcome diverged under supervision at {where}")
        if row["status"] != "certified" or row["recoveries"] != 0:
            failures.append(f"happy path was not a clean certified solve at {where}")
        if not args.quick and row["overhead"] > 1.02:
            failures.append(
                f"happy-path supervision overhead {row['overhead']:.3f}x > 1.02x at {where}"
            )
    for row in recovery_rows:
        if row["status"] != "degraded" or row["recoveries"] < 1 or not row["outcomes_match"]:
            failures.append(
                f"injected fault did not recover cleanly at n={row['n']}, m={row['m']}"
            )
    return report_failures(failures)


if __name__ == "__main__":
    sys.exit(main())
