"""E17 — batched multi-instance solving: ``solve_many`` vs sequential solves.

PR 7 adds :func:`repro.core.batch.solve_many`: shape-homogeneous instances
run the fused lockstep loop, where the oracle estimate pass, the Gram
recurrences, the trace estimation and the certificate eigenvalue calls all
execute as batched GEMMs over a super-stack, with per-instance termination
masks recompacting the batch as instances certify and exit.  The payoff is
on *small* instances, where a sequential solve is dominated by Python
dispatch rather than FLOPs — exactly the regime a parameter sweep or a
cutting-plane outer loop hits when it solves hundreds of related decision
problems.

This benchmark times ``solve_many`` against the equivalent loop of
sequential ``decision_psdp`` calls (each on a fresh collection, with the
instance's own spawned rng stream) on the small-instance family and checks
the batched acceptance contract:

* every batched decision is *identical* to its sequential solve — outcome,
  iteration count, dual value and certificate vector, bit for bit;
* batched wall clock is at least **3x** better than sequential on the
  small-instance family's ``B >= 32`` headline row of the full grid.

Collection construction happens outside the timed region for both arms
(the Taylor engine caches per collection, so each timed solve gets fresh
collections over the same factors).  Results are printed as a table and
emitted machine-readably to ``BENCH_batched.json`` at the repository root
(override with ``--output``).  Run directly::

    PYTHONPATH=src python benchmarks/bench_e17_batched.py [--quick]

The non-quick run enforces the acceptance gate; the committed payload is
re-checked by ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np  # noqa: E402

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    make_argparser,
    report_failures,
)
from repro.core.batch import instance_rng, solve_many  # noqa: E402
from repro.core.decision import decision_psdp  # noqa: E402
from repro.operators import ConstraintCollection, FactorizedPSDOperator  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_batched.json"
)

#: (m, n, rank, scale, batch) grid.  The headline family is the smallest —
#: m=24, six rank-1 constraints — where sequential solves are almost pure
#: Python dispatch; the B sweep shows the speedup growing with batch size
#: and the m=32 rank-2 rows show it persisting (more slowly) as the
#: per-instance FLOP share rises.
FULL_GRID = [
    (24, 6, 1, 0.30, 8),
    (24, 6, 1, 0.30, 32),
    (32, 8, 2, 0.35, 32),
    (32, 8, 2, 0.35, 64),
]
QUICK_GRID = [
    (24, 6, 1, 0.30, 4),
]

EPSILON = 0.25
DECISION_CAP = 40
#: No mid-run certificate checks: the sweep regime runs every instance to
#: its iteration cap, so the per-instance eigenvalue check (the one piece
#: the lockstep cannot batch across exits) happens once, at result build.
CHECK_EVERY = 0
#: Best-of repeats, interleaved so cache/turbo drift hits both arms equally.
REPEATS = 5


def make_factors(
    batch: int, m: int, n: int, rank: int, scale: float, seed: int
) -> list[list[np.ndarray]]:
    """Per-instance factor sets for a batch of related random instances."""
    rng = np.random.default_rng(seed)
    return [
        [scale * rng.standard_normal((m, rank)) for _ in range(n)]
        for _ in range(batch)
    ]


def fresh_collections(factors: list[list[np.ndarray]]) -> list[ConstraintCollection]:
    """New collections over the same factors — no packed/engine cache leaks
    between timed runs."""
    return [
        ConstraintCollection([FactorizedPSDOperator(f) for f in ops], validate=False)
        for ops in factors
    ]


def results_identical(batched, sequential) -> bool:
    """The acceptance contract's per-instance identity check."""
    return (
        batched.outcome == sequential.outcome
        and batched.iterations == sequential.iterations
        and batched.status == sequential.status
        and batched.dual_value == sequential.dual_value
        and np.array_equal(batched.dual_x, sequential.dual_x)
    )


def bench_row(
    m: int, n: int, rank: int, scale: float, batch: int, seed: int, repeats: int
) -> dict:
    """Sequential-loop vs solve_many wall clock on one grid row."""
    factors = make_factors(batch, m, n, rank, scale, seed)
    opts = dict(
        epsilon=EPSILON,
        oracle="fast",
        max_iterations=DECISION_CAP,
        certificate_check_every=CHECK_EVERY,
    )
    seq_best = bat_best = float("inf")
    seq_results = bat_results = None
    for _ in range(repeats):
        colls = fresh_collections(factors)
        start = time.perf_counter()
        seq_results = [
            decision_psdp(coll, rng=instance_rng(seed, i), **opts)
            for i, coll in enumerate(colls)
        ]
        seq_best = min(seq_best, time.perf_counter() - start)

        colls = fresh_collections(factors)
        start = time.perf_counter()
        bat_results = solve_many(colls, rng=seed, **opts)
        bat_best = min(bat_best, time.perf_counter() - start)
    mismatches = sum(
        not results_identical(b, s) for b, s in zip(bat_results, seq_results)
    )
    return {
        "m": m,
        "n": n,
        "rank": rank,
        "scale": scale,
        "batch": batch,
        "sequential_seconds": seq_best,
        "batched_seconds": bat_best,
        "speedup": seq_best / max(bat_best, 1e-12),
        "mismatches": mismatches,
        "outcomes": sorted({r.outcome.name for r in bat_results}),
        "iterations_max": max(r.iterations for r in bat_results),
    }


def main(argv=None) -> int:
    """Run the E17 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    repeats = 2 if args.quick else REPEATS

    rows = []
    for m, n, rank, scale, batch in grid:
        row = bench_row(m, n, rank, scale, batch, args.seed, repeats)
        rows.append(row)
        print(
            f"[batched] m={m:3d} n={n} rank={rank} B={batch:3d} "
            f"seq={row['sequential_seconds']:7.3f}s "
            f"bat={row['batched_seconds']:7.3f}s "
            f"speedup={row['speedup']:5.2f}x mismatches={row['mismatches']}"
        )

    payload = {
        "experiment": "E17-batched",
        "description": "solve_many vs sequential decision_psdp on the small-instance family",
        "quick": args.quick,
        "config": {
            "epsilon": EPSILON,
            "decision_iteration_cap": DECISION_CAP,
            "repeats": repeats,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "batched": rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in rows:
        where = f"m={row['m']}, B={row['batch']}"
        if row["mismatches"]:
            failures.append(
                f"{row['mismatches']} batched results diverged from sequential at {where}"
            )
    if not args.quick:
        # The acceptance headline: the small-instance family's B >= 32 row
        # must be at least 3x faster batched (the larger-m rows are scaling
        # context and may legitimately sit nearer break-even).
        headline = max(row["speedup"] for row in rows if row["batch"] >= 32)
        if headline < 3.0:
            failures.append(f"headline batched speedup {headline:.2f}x < 3.0x at B >= 32")
    return report_failures(failures)


if __name__ == "__main__":
    sys.exit(main())
