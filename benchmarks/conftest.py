"""Shared fixtures and configuration for the benchmark harness.

Each ``bench_e*.py`` module regenerates one experiment from the index in
DESIGN.md.  Benchmarks use ``pytest-benchmark`` for the timed kernels and
additionally print an :class:`~repro.instrumentation.ExperimentReport` table
(the "figure") and write it as CSV under ``benchmarks/results/``.

The instance sizes are deliberately small (m, n in the tens) so the whole
suite finishes in a few minutes on one core; the *shapes* of the series —
who wins, how quantities scale — are the reproduction target, not absolute
wall-clock numbers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir() -> str:
    """Directory where benchmark CSV outputs are written."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def emit(report, results_dir: str) -> None:
    """Print a report table and persist it as CSV (shared helper)."""
    print()
    print(report.render())
    path = report.to_csv(results_dir)
    print(f"[csv] {path}")
