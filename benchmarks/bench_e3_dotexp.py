"""E3 — accuracy and cost of the ``bigDotExp`` oracle (Theorem 4.1 / Lemma 4.2).

Claims: (a) the truncated-Taylor + JL oracle returns ``(1 ± eps)``
approximations of every ``exp(Phi) . A_i``; (b) its degree grows linearly
with the spectral-norm bound ``kappa`` and only logarithmically with
``1/eps``; (c) it avoids the ``O(m^3)`` eigendecomposition of the exact
path.  This benchmark measures the worst-case relative error over the
constraints and the wall-clock of both paths across a ``kappa`` sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dotexp import big_dot_exp
from repro.instrumentation import ExperimentReport
from repro.linalg.expm import expm_eigh
from repro.linalg.psd import random_psd
from repro.linalg.taylor import taylor_degree

from conftest import emit

KAPPAS = [1.0, 2.0, 4.0, 8.0]


def _instance(kappa, m=24, n=8, seed=5):
    rng = np.random.default_rng(seed)
    phi = random_psd(m, rng=rng, scale=kappa)
    factors = [rng.standard_normal((m, 2)) for _ in range(n)]
    exact = np.array([float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors])
    return phi, factors, exact


@pytest.mark.parametrize("kappa", KAPPAS)
def test_e3_accuracy_vs_kappa(benchmark, kappa, results_dir):
    """E3: bigDotExp accuracy versus the spectral-norm bound kappa."""
    phi, factors, exact = _instance(kappa)
    eps = 0.1
    approx = benchmark.pedantic(
        big_dot_exp,
        args=(phi, factors),
        kwargs={"kappa": kappa, "eps": eps, "rng": 9, "use_sketch": False},
        rounds=1,
        iterations=1,
    )
    rel_err = float(np.max(np.abs(approx - exact) / exact))
    report = ExperimentReport("E3-accuracy", f"bigDotExp accuracy at kappa={kappa}")
    report.add_row(
        kappa=kappa,
        eps_requested=eps,
        taylor_degree=taylor_degree(kappa / 2.0, eps / 2.0),
        max_relative_error=rel_err,
    )
    emit(report, results_dir)
    # Lemma 4.2 guarantee: one-sided error at most eps (the sketch is off here).
    assert rel_err <= eps + 1e-9
    assert np.all(approx <= exact + 1e-8)


def test_e3_sketch_error_and_degree_growth(results_dir):
    """With the JL sketch on, errors stay within a small constant factor of eps,
    and the Taylor degree grows linearly in kappa (not in the matrix size)."""
    report = ExperimentReport("E3-sketch", "bigDotExp with JL sketch: error vs kappa")
    degrees = []
    for kappa in KAPPAS:
        phi, factors, exact = _instance(kappa)
        approx = big_dot_exp(phi, factors, kappa=kappa, eps=0.2, rng=13)
        rel_err = float(np.max(np.abs(approx - exact) / exact))
        degree = taylor_degree(kappa / 2.0, 0.1)
        degrees.append(degree)
        report.add_row(kappa=kappa, taylor_degree=degree, max_relative_error=rel_err)
        assert rel_err <= 0.75  # sketched estimates: generous constant-factor band
    emit(report, results_dir)
    # Degree is linear in kappa once kappa dominates the log(1/eps) floor.
    assert degrees[-1] >= 1.5 * degrees[1]


def test_e3_exact_vs_taylor_cost(benchmark, results_dir):
    """Wall-clock of the Taylor path vs the dense eigendecomposition path on a
    larger sparse-structured matrix (the regime Theorem 4.1 targets)."""
    import time

    rng = np.random.default_rng(3)
    m = 120
    phi = random_psd(m, rank=6, rng=rng, scale=2.0)
    factors = [rng.standard_normal((m, 1)) for _ in range(10)]

    start = time.perf_counter()
    exact = np.array([float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors])
    exact_time = time.perf_counter() - start

    start = time.perf_counter()
    approx = big_dot_exp(phi, factors, kappa=2.0, eps=0.2, rng=1)
    fast_time = time.perf_counter() - start

    rel_err = float(np.max(np.abs(approx - exact) / exact))
    report = ExperimentReport("E3-cost", "exact eigendecomposition vs Taylor+JL wall clock (m=120)")
    report.add_row(
        m=m,
        exact_seconds=exact_time,
        fast_seconds=fast_time,
        speedup=exact_time / max(fast_time, 1e-9),
        max_relative_error=rel_err,
    )
    emit(report, results_dir)
    benchmark.pedantic(
        big_dot_exp,
        args=(phi, factors),
        kwargs={"kappa": 2.0, "eps": 0.2, "rng": 1},
        rounds=1,
        iterations=1,
    )
    assert rel_err <= 0.6
