"""E5 — width-independence of the iteration count (the paper's headline claim).

Claim (Sections 1 and 1.1): the algorithm's iteration count does not depend
on the width ``rho = max_i ||A_i||_2``, unlike width-dependent MMW solvers
whose round count grows linearly with ``rho``.  This benchmark sweeps the
width over two orders of magnitude on instances that are otherwise
identical, normalizes each instance so the decision question is equally
hard (the exact optimum is rescaled to ~1), and reports the iterations of

* the paper's decision solver (phase-less Algorithm 3.1), and
* the width-dependent MMW baseline driven to the same target value.

The reproduction target: our iterations stay within a small constant band
across the sweep while the baseline's grow by roughly the width ratio.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import arora_kale_packing, exact_packing_value
from repro.core.decision import decision_psdp
from repro.instrumentation import ExperimentReport
from repro.problems import random_width_controlled_sdp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

WIDTHS = [1.0, 4.0, 16.0, 64.0, 256.0]


def _normalized_instance(width, seed=21):
    problem = random_width_controlled_sdp(5, 5, width=width, rng=seed)
    exact = exact_packing_value(problem).value
    # Scale so the packing optimum is ~1: the decision problem is equally
    # "hard" at every width and only the width itself varies.
    return problem, problem.scaled(exact), exact


@pytest.mark.parametrize("width", WIDTHS)
def test_e5_ours_iterations_flat(benchmark, width, results_dir):
    """E5: iteration counts must stay flat as the instance width grows."""
    problem, scaled, exact = _normalized_instance(width)
    result = benchmark.pedantic(
        decision_psdp, args=(scaled,), kwargs={"epsilon": 0.25}, rounds=1, iterations=1
    )
    report = ExperimentReport("E5-ours", f"width-independent solver at width={width}")
    report.add_row(
        width=width,
        exact_opt=exact,
        iterations=result.iterations,
        outcome=result.outcome.value,
    )
    emit(report, results_dir)


def test_e5_width_independence_series(benchmark, results_dir):
    """The full series: ours stays flat, the width-dependent baseline grows."""
    _register(benchmark)
    report = ExperimentReport(
        "E5-series", "iterations vs width: Algorithm 3.1 vs width-dependent MMW"
    )
    ours_iters = []
    baseline_iters = []
    for width in WIDTHS:
        problem, scaled, exact = _normalized_instance(width)
        ours = decision_psdp(scaled, epsilon=0.25)
        baseline = arora_kale_packing(problem, epsilon=0.25, target_value=0.9 * exact)
        ours_iters.append(ours.iterations)
        baseline_iters.append(baseline.iterations)
        report.add_row(
            width=width,
            ours_iterations=ours.iterations,
            width_dependent_iterations=baseline.iterations,
            baseline_reached_target=baseline.reached_target,
        )
    emit(report, results_dir)
    # Shape assertions: 256x width growth must inflate our iterations by well
    # under 10x, while the width-dependent baseline grows by at least 10x.
    assert max(ours_iters) <= 10 * max(min(ours_iters), 1)
    assert baseline_iters[-1] >= 10 * baseline_iters[0]
