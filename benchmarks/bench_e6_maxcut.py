"""E6 — graph workloads: the MaxCut edge-matrix positive SDP.

Claim context (Sections 1.1 and 5): the MaxCut SDP was the original
motivation for positive SDPs (Klein–Lu); its objective decomposes into
rank-one PSD edge matrices, which generate the packing/covering pair this
library solves.  This benchmark solves that edge-matrix SDP across graph
families and sizes, verifying the certified bracket against the exact value
and recording how the iteration count scales with the number of edges
(= constraints n).
"""

from __future__ import annotations

import pytest

from repro.baselines import exact_packing_value
from repro.core.solver import approx_psdp
from repro.instrumentation import ExperimentReport
from repro.problems import maxcut_sdp, maxcut_value_bound, random_graph

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

FAMILIES = [("cycle", {}), ("complete", {}), ("regular", {"degree": 3}), ("erdos_renyi", {"p": 0.4})]


@pytest.mark.parametrize("kind,kwargs", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_e6_graph_families(benchmark, kind, kwargs, results_dir):
    """E6: MaxCut SDP decisions across random graph families."""
    graph = random_graph(kind, 10, rng=31, **kwargs)
    problem = maxcut_sdp(graph)
    exact = exact_packing_value(problem).value
    result = benchmark.pedantic(
        approx_psdp, args=(problem,), kwargs={"epsilon": 0.3}, rounds=1, iterations=1
    )
    report = ExperimentReport("E6-families", f"MaxCut edge SDP on {kind} graphs")
    report.add_row(
        graph=kind,
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        exact_packing=exact,
        lower=result.optimum_lower,
        upper=result.optimum_upper,
        maxcut_eig_bound=maxcut_value_bound(graph),
        iterations=result.total_iterations,
    )
    emit(report, results_dir)
    assert result.optimum_lower <= exact * (1 + 1e-6)
    assert result.optimum_upper >= exact * (1 - 1e-6)
    assert result.relative_gap <= 0.3 + 1e-9


def test_e6_scaling_with_graph_size(benchmark, results_dir):
    """Iterations grow mildly (polylog) as the edge count grows on cycles."""
    _register(benchmark)
    report = ExperimentReport("E6-scaling", "decision iterations vs graph size (cycles, eps=0.3)")
    per_call = []
    for nodes in (6, 12, 24):
        graph = random_graph("cycle", nodes)
        problem = maxcut_sdp(graph)
        result = approx_psdp(problem, epsilon=0.3)
        per_call.append(result.total_iterations / max(result.decision_calls, 1))
        report.add_row(
            nodes=nodes,
            edges=graph.number_of_edges(),
            lower=result.optimum_lower,
            upper=result.optimum_upper,
            iterations=result.total_iterations,
            decision_calls=result.decision_calls,
            iterations_per_call=result.total_iterations / max(result.decision_calls, 1),
        )
    emit(report, results_dir)
    # Theorem 3.1's per-call bound grows like log^2(n): quadrupling the edge
    # count must not quadruple the per-decision-call iteration count (the
    # total across calls also reflects how many binary-search calls were
    # needed, which is reported separately).
    assert per_call[-1] <= 4 * max(per_call[0], 1.0)
