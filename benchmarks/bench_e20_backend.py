"""E20 — array-backend parity: NumPy vs torch/CuPy on the packed kernels.

For every *installed* array backend (``repro.backend.available_backends``)
this benchmark measures, across the E14-style ``(n, m)`` kernel grid:

* per-call latency of the packed hot kernels — ``weighted_sum``, ``dots``,
  the packed matvec, and the fused blocked Taylor apply — against the
  NumPy reference, reported as ``throughput_vs_numpy`` (NumPy seconds over
  backend seconds: 1.0 = parity, above 1 = faster than NumPy);
* float64 agreement of every kernel output with the NumPy reference
  (``max_abs_err``; the committed gate requires torch-CPU <= 1e-9);
* an iteration-capped end-to-end ``decision_psdp(array_backend=...)``
  with outcome/iteration equality against the NumPy run.

Rows for backends that are not installed are simply absent;
``torch_available``/``cupy_available`` flags in the payload record why, and
``tools/check_bench_regression.py`` only enforces the torch parity floor
(0.8x NumPy) when the rows exist.

Results are printed as a table and emitted machine-readably to
``BENCH_backend.json`` at the repository root (override with ``--output``).
Run directly::

    PYTHONPATH=src python benchmarks/bench_e20_backend.py [--quick]

The ``--quick`` mode is the CI smoke invocation: a reduced grid and fewer
repetitions, still exercising every installed backend.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    time_call,
    DEFAULT_RANK,
)
from repro.backend import available_backends, get_array_backend  # noqa: E402
from repro.core.decision import decision_psdp  # noqa: E402
from repro.linalg.taylor_blocked import BlockedTaylorKernel  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_backend.json"
)

# (n, m) grid — the E14 kernel-row shapes (dense exact-factor stacks).
FULL_GRID = [(50, 64), (200, 128), (400, 256)]
QUICK_GRID = [(40, 32)]

TAYLOR_DEGREE = 8
DECISION_CAP = 30
#: Committed-payload gates (enforced by tools/check_bench_regression.py
#: whenever torch rows are present).
PARITY_FLOOR = 0.8
ERR_CEILING = 1e-9


def bench_kernels(ops, n: int, m: int, backend_name: str, repeats: int, seed: int) -> dict:
    """One backend's packed-kernel latencies and errors vs the NumPy view."""
    coll = fresh_collection(ops)
    ref = coll.packed()
    view = coll.packed(backend=backend_name)
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.1, 1.0, size=n)
    sym = np.eye(m) + 0.1 * np.ones((m, m))
    block = rng.standard_normal((m, min(m, 32)))
    col_w = view.expand_weights(weights)
    q = ref.matrix

    timings: dict[str, float] = {}
    errors: list[float] = []

    def run(label, fn, reference):
        out = fn()  # warm up (device transfer, BLAS/kernel init)
        errors.append(float(np.max(np.abs(np.asarray(out) - reference))))
        timings[label] = time_call(fn, repeats)

    run("weighted_sum", lambda: view.weighted_sum(weights), ref.weighted_sum(weights))
    run("dots", lambda: view.dots(sym), ref.dots(sym))
    run("matvec", lambda: view.matvec_fn(weights)(block), ref.matvec_fn(weights)(block))

    ref_kernel = BlockedTaylorKernel(q, col_w)
    kernel = BlockedTaylorKernel(q, col_w, backend=backend_name)
    run(
        "taylor_apply",
        lambda: kernel.apply(block, TAYLOR_DEGREE, scale=0.5),
        ref_kernel.apply(block, TAYLOR_DEGREE, scale=0.5),
    )

    return {
        "backend": backend_name,
        "n": n,
        "m": m,
        "seconds": timings,
        "total_seconds": float(sum(timings.values())),
        "max_abs_err": float(max(errors)),
    }


def bench_decision(ops, n: int, m: int, backend_name: str, seed: int, cap: int) -> dict:
    """Iteration-capped end-to-end solve on one backend."""
    coll = fresh_collection(ops)
    start = time.perf_counter()
    result = decision_psdp(
        coll,
        epsilon=0.25,
        oracle="fast",
        rng=seed,
        max_iterations=cap,
        array_backend=backend_name,
    )
    return {
        "backend": backend_name,
        "n": n,
        "m": m,
        "seconds": time.perf_counter() - start,
        "outcome": result.outcome.name,
        "iterations": result.iterations,
        "work": result.work_depth.work if result.work_depth else None,
    }


def main(argv=None) -> int:
    """Run the E20 grid over installed backends; return the exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    repeats = 2 if args.quick else 5
    cap = 8 if args.quick else DECISION_CAP

    backends = available_backends()
    kernel_rows = []
    decision_rows = []
    for n, m in grid:
        ops = make_operators(n, m, "dense", args.seed)
        numpy_rows: dict[tuple, dict] = {}
        for name in backends:
            get_array_backend(name)  # fail fast on broken optional installs
            row = bench_kernels(ops, n, m, name, repeats, args.seed)
            if name == "numpy":
                numpy_rows[(n, m)] = row
                row["throughput_vs_numpy"] = 1.0
            else:
                base = numpy_rows[(n, m)]["total_seconds"]
                row["throughput_vs_numpy"] = base / max(row["total_seconds"], 1e-12)
            kernel_rows.append(row)
            print(
                f"[kernels]  n={n:4d} m={m:4d} {name:6s} "
                f"total={row['total_seconds']*1e3:9.3f}ms "
                f"parity={row['throughput_vs_numpy']:6.2f}x "
                f"err={row['max_abs_err']:.2e}"
            )

            drow = bench_decision(ops, n, m, name, args.seed, cap)
            decision_rows.append(drow)
            print(
                f"[decision] n={n:4d} m={m:4d} {name:6s} "
                f"{drow['seconds']:8.3f}s outcome={drow['outcome']} "
                f"iters={drow['iterations']}"
            )

    payload = {
        "experiment": "E20-backend",
        "description": "array-backend parity: NumPy vs torch/CuPy packed kernels",
        "quick": args.quick,
        "backends": list(backends),
        "torch_available": "torch" in backends,
        "cupy_available": "cupy" in backends,
        "config": {
            "rank": DEFAULT_RANK,
            "taylor_degree": TAYLOR_DEGREE,
            "decision_iteration_cap": cap,
            "repeats": repeats,
            "seed": args.seed,
            "parity_floor": PARITY_FLOOR,
            "err_ceiling": ERR_CEILING,
        },
        "environment": environment_info(),
        "kernels": kernel_rows,
        "decision": decision_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in kernel_rows:
        if row["backend"] == "numpy":
            if row["max_abs_err"] != 0.0:
                failures.append(
                    f"NumPy backend is not a bit-identical pass-through: "
                    f"err={row['max_abs_err']:.2e} at n={row['n']}, m={row['m']}"
                )
        elif row["max_abs_err"] > ERR_CEILING:
            failures.append(
                f"{row['backend']} kernel error {row['max_abs_err']:.2e} > "
                f"{ERR_CEILING:.0e} at n={row['n']}, m={row['m']}"
            )
    by_key = {(r["backend"], r["n"], r["m"]): r for r in decision_rows}
    for (name, n, m), row in by_key.items():
        base = by_key.get(("numpy", n, m))
        if base is None or name == "numpy":
            continue
        if row["outcome"] != base["outcome"] or row["iterations"] != base["iterations"]:
            failures.append(
                f"{name} decision diverged from numpy at n={n}, m={m}: "
                f"{row['outcome']}/{row['iterations']} vs "
                f"{base['outcome']}/{base['iterations']}"
            )
        if row["work"] != base["work"]:
            failures.append(
                f"{name} work charge diverged from numpy at n={n}, m={m} "
                f"(charges must be shape-derived)"
            )
        if not args.quick and row["throughput_vs_numpy"] < PARITY_FLOOR:
            failures.append(
                f"{name} parity {row['throughput_vs_numpy']:.2f}x < "
                f"{PARITY_FLOOR}x at n={n}, m={m}"
            )
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
