"""E11 — packed Gram-factor fast path vs the seed per-factor loop.

Measures, across an ``(n, m, factor sparsity)`` grid:

* the latency of one :class:`~repro.core.dotexp.FastDotExpOracle` call on
  the packed single-GEMM path (``packed=True``) against the seed
  per-factor Python loop (``packed=False``);
* the end-to-end wall clock of ``decision_psdp(oracle="fast")`` on both
  paths (iteration-capped so the grid finishes quickly);
* the packed-vs-reference agreement of ``big_dot_exp(use_sketch=False)``
  (the deterministic path, which must match to ~1e-8).

Results are printed as a table and emitted machine-readably to
``BENCH_packed.json`` at the repository root (override with ``--output``).
Run directly::

    PYTHONPATH=src python benchmarks/bench_e11_packed.py [--quick]

The ``--quick`` mode is the CI smoke invocation: a reduced grid and fewer
repetitions, still exercising every code path.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    time_call,
    DEFAULT_RANK,
    DEFAULT_SPARSE_DENSITY,
)
from repro.core.decision import decision_psdp  # noqa: E402
from repro.core.dotexp import FastDotExpOracle, big_dot_exp  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_packed.json"
)

# (n, m, factor_kind) grid; "sparse" factors carry ~5% nonzeros.
FULL_GRID = [
    (50, 64, "dense"),
    (200, 128, "dense"),
    (200, 128, "sparse"),
    (400, 128, "dense"),
    (200, 256, "dense"),
    (400, 256, "sparse"),
]
QUICK_GRID = [
    (40, 32, "dense"),
    (60, 48, "sparse"),
]

ORACLE_EPS = 0.1
DECISION_CAP = 40


def bench_oracle(ops, n: int, m: int, repeats: int, seed: int) -> dict:
    """Per-call oracle latency, packed vs seed loop, plus the deterministic
    no-sketch agreement of the two paths."""
    x = np.abs(np.random.default_rng(seed).random(n)) / n
    psi_placeholder = np.zeros((m, m))  # the fast oracle reads x, not psi

    timings = {}
    for label, packed in (("seed", False), ("packed", True)):
        coll = fresh_collection(ops)
        oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed, packed=packed)
        oracle(psi_placeholder, x)  # warm up (factor packing, BLAS init)
        timings[label] = time_call(lambda: oracle(psi_placeholder, x), repeats)

    # Deterministic-path equivalence: packed vs per-factor loop, no sketch.
    coll = fresh_collection(ops)
    phi = coll.weighted_sum(x)
    reference = big_dot_exp(phi, coll.gram_factors(), kappa=2.0, eps=0.2, use_sketch=False)
    packed_vals = big_dot_exp(phi, coll.packed(), kappa=2.0, eps=0.2, use_sketch=False)
    max_abs_err = float(np.max(np.abs(packed_vals - reference)))

    return {
        "seed_seconds": timings["seed"],
        "packed_seconds": timings["packed"],
        "speedup": timings["seed"] / max(timings["packed"], 1e-12),
        "nosketch_max_abs_err": max_abs_err,
    }


def bench_decision(ops, n: int, m: int, seed: int, cap: int) -> dict:
    """End-to-end decision latency with the packed path on/off."""
    results = {}
    for label, packed in (("seed", False), ("packed", True)):
        coll = fresh_collection(ops)
        oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed, packed=packed)
        start = time.perf_counter()
        result = decision_psdp(
            coll, epsilon=0.2, oracle=oracle, max_iterations=cap, rng=seed
        )
        results[label] = {
            "seconds": time.perf_counter() - start,
            "outcome": result.outcome.name,
            "iterations": result.iterations,
        }
    return {
        "seed_seconds": results["seed"]["seconds"],
        "packed_seconds": results["packed"]["seconds"],
        "speedup": results["seed"]["seconds"] / max(results["packed"]["seconds"], 1e-12),
        "outcome_seed": results["seed"]["outcome"],
        "outcome_packed": results["packed"]["outcome"],
        "iterations_seed": results["seed"]["iterations"],
        "iterations_packed": results["packed"]["iterations"],
    }


def main(argv=None) -> int:
    """Run the E11 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    repeats = 2 if args.quick else 3
    cap = 10 if args.quick else DECISION_CAP

    oracle_rows = []
    decision_rows = []
    for n, m, kind in grid:
        ops = make_operators(n, m, kind, args.seed)
        q = sum(op.nnz for op in ops)
        base = {"n": n, "m": m, "factor_kind": kind, "rank": DEFAULT_RANK, "total_nnz": q}

        row = {**base, **bench_oracle(ops, n, m, repeats, args.seed)}
        oracle_rows.append(row)
        print(
            f"[oracle]   n={n:4d} m={m:4d} {kind:6s} "
            f"seed={row['seed_seconds']*1e3:9.2f}ms packed={row['packed_seconds']*1e3:8.2f}ms "
            f"speedup={row['speedup']:7.1f}x nosketch_err={row['nosketch_max_abs_err']:.2e}"
        )

        row = {**base, **bench_decision(ops, n, m, args.seed, cap)}
        decision_rows.append(row)
        print(
            f"[decision] n={n:4d} m={m:4d} {kind:6s} "
            f"seed={row['seed_seconds']:8.3f}s  packed={row['packed_seconds']:7.3f}s  "
            f"speedup={row['speedup']:7.1f}x outcomes={row['outcome_seed']}/{row['outcome_packed']}"
        )

    payload = {
        "experiment": "E11-packed",
        "description": "packed Gram-factor fast path vs seed per-factor loop",
        "quick": args.quick,
        "config": {
            "rank": DEFAULT_RANK,
            "sparse_density": DEFAULT_SPARSE_DENSITY,
            "oracle_eps": ORACLE_EPS,
            "decision_iteration_cap": cap,
            "repeats": repeats,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "oracle": oracle_rows,
        "decision": decision_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in oracle_rows:
        if row["nosketch_max_abs_err"] > 1e-8:
            failures.append(f"no-sketch mismatch {row['nosketch_max_abs_err']:.2e} at {row}")
        if not args.quick and row["n"] >= 200 and row["m"] >= 128 and row["speedup"] < 5.0:
            failures.append(
                f"speedup {row['speedup']:.1f}x < 5x at n={row['n']}, m={row['m']}"
            )
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
