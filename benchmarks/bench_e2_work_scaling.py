"""E2 — nearly-linear work in the factorization size (Corollary 1.2).

Claim: with prefactored input ``A_i = Q_i Q_i^T`` the solver's total work is
``~O(n + m + q)`` where ``q`` is the number of nonzeros across the factors.
This benchmark holds the instance family fixed while growing ``q`` (via the
dimension and factor density), runs the decision solver with the fast
(Theorem 4.1) oracle, and reports the measured model work per iteration
against ``q``.  The reproduction target is the *shape*: work per iteration
grows roughly linearly in ``q`` (doubling q at most ~doubles it), far below
the ``m^3`` growth of the exact-eigendecomposition oracle.
"""

from __future__ import annotations

import pytest

from repro.core.decision import decision_psdp
from repro.instrumentation import ExperimentReport
from repro.problems import random_factorized_packing_sdp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

SIZES = [(6, 8), (8, 16), (10, 32), (12, 64)]  # (n, m); q grows with m


def _run(problem, oracle):
    return decision_psdp(
        problem, epsilon=0.3, oracle=oracle, max_iterations=60, certificate_check_every=0
    )


@pytest.mark.parametrize("n,m", SIZES)
def test_e2_fast_oracle_work_scaling(benchmark, n, m, results_dir):
    """E2: fast-oracle work must scale nearly linearly in the input nonzeros."""
    problem = random_factorized_packing_sdp(n, m, rank=2, density=0.4, rng=7)
    q = problem.constraints.total_nnz
    result = benchmark.pedantic(_run, args=(problem, "fast"), rounds=1, iterations=1)
    work_per_iter = result.work_depth.work / max(result.iterations, 1)
    report = ExperimentReport("E2-fast", "fast-oracle work per iteration vs factorization nnz")
    report.add_row(
        n=n,
        m=m,
        q_nnz=q,
        iterations=result.iterations,
        work_per_iteration=work_per_iter,
        depth=result.work_depth.depth,
        matvecs=result.counters.matvecs,
    )
    emit(report, results_dir)


def test_e2_fast_vs_exact_work_growth(benchmark, results_dir):
    """The exact oracle's per-iteration work grows like m^3; the fast oracle's
    grows roughly with q (the Corollary 1.2 contrast)."""
    _register(benchmark)
    report = ExperimentReport("E2-contrast", "work per iteration: exact vs fast oracle")
    ratios = []
    for n, m in SIZES[:3]:
        problem = random_factorized_packing_sdp(n, m, rank=2, density=0.4, rng=7)
        fast = _run(problem, "fast")
        exact = _run(problem, "exact")
        fast_work = fast.work_depth.by_label.get("oracle", fast.work_depth.work) / max(fast.counters.calls, 1)
        exact_work = exact.work_depth.by_label.get("oracle", exact.work_depth.work) / max(exact.counters.calls, 1)
        ratios.append(exact_work / max(fast_work, 1.0))
        report.add_row(
            n=n,
            m=m,
            q_nnz=problem.constraints.total_nnz,
            exact_oracle_work_per_call=exact_work,
            fast_oracle_work_per_call=fast_work,
            exact_over_fast=exact_work / max(fast_work, 1.0),
        )
    emit(report, results_dir)
    # The advantage of the fast oracle must widen as m grows.
    assert ratios[-1] >= ratios[0]
