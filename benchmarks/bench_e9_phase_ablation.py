"""E9 — ablations: phase-less vs phase-based variant, strict vs practical mode.

Context (Section 1.1): the analysis in the paper removes the phases that the
SPAA'12 version of the algorithm used ("our modified analysis ... removes
these phases"), and this repository additionally adds certificate-based
early exits (documented in DESIGN.md).  This benchmark quantifies both
choices on the same instances:

* phase-less Algorithm 3.1 vs the phase-based (lazy weight update) variant:
  same certified outcome, different oracle-call counts;
* strict paper constants vs practical certificate-checked early exit: same
  certified outcome, different iteration counts.
"""

from __future__ import annotations

import pytest

from repro.core.decision import decision_psdp
from repro.core.decision_phased import decision_psdp_phased
from repro.instrumentation import ExperimentReport
from repro.problems import random_packing_sdp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e9_phaseless_vs_phased(benchmark, results_dir):
    """E9: phase-less versus phased solver oracle-call/iteration counts."""
    _register(benchmark)
    report = ExperimentReport("E9-phases", "phase-less vs phase-based decision solver (eps=0.25)")
    for seed in (61, 62, 63):
        problem = random_packing_sdp(6, 6, rng=seed)
        plain = decision_psdp(problem, epsilon=0.25)
        phased = decision_psdp_phased(problem, epsilon=0.25)
        report.add_row(
            seed=seed,
            outcome_plain=plain.outcome.value,
            outcome_phased=phased.outcome.value,
            iterations_plain=plain.iterations,
            iterations_phased=phased.iterations,
            oracle_calls_plain=plain.counters.calls,
            oracle_calls_phased=phased.counters.calls,
        )
        assert plain.outcome == phased.outcome
        # The lazy-update variant's whole point: far fewer oracle calls
        # (matrix exponentials) per unit of progress.
        assert phased.counters.calls <= plain.counters.calls
    emit(report, results_dir)


def test_e9_strict_vs_practical(benchmark, results_dir):
    """E9: strict pseudocode versus practical early-exit iteration counts."""
    _register(benchmark)
    report = ExperimentReport("E9-strict", "strict paper constants vs certificate early exit (eps=0.3)")
    for seed in (71, 72):
        problem = random_packing_sdp(5, 5, rng=seed)
        practical = decision_psdp(problem, epsilon=0.3)
        strict = decision_psdp(problem, epsilon=0.3, strict=True)
        report.add_row(
            seed=seed,
            outcome_practical=practical.outcome.value,
            outcome_strict=strict.outcome.value,
            iterations_practical=practical.iterations,
            iterations_strict=strict.iterations,
            speedup=strict.iterations / max(practical.iterations, 1),
        )
        assert practical.iterations <= strict.iterations
        assert practical.dual_value > 0 or practical.primal_min_dot > 0
    emit(report, results_dir)


@pytest.mark.parametrize("variant", ["plain", "phased"])
def test_e9_variant_benchmark(benchmark, variant):
    """Timed kernel for both variants on the same instance."""
    problem = random_packing_sdp(6, 6, rng=65)
    solver = decision_psdp if variant == "plain" else decision_psdp_phased
    result = benchmark.pedantic(solver, args=(problem,), kwargs={"epsilon": 0.3}, rounds=1, iterations=1)
    assert result.iterations > 0
