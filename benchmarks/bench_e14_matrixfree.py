"""E14 — matrix-free iteration core vs the PR-3 dense-``Psi`` solver loop.

PR 3 made the *oracle* fast (rank-adaptive Gram-space engine), but the
solver loop around it still rebuilt a dense ``(m, m)`` ``Psi`` every
iteration (``psi + weighted_sum(delta)``), ran cold dense Lanczos on it
for history records and certificate checks, and materialised the
``O(m^3)`` density matrix (``expm_normalized``) for the primal return
value — which is why E13's 6x Taylor-apply wins shrank to 1.0–3.2x
end-to-end.  This benchmark measures the
:class:`~repro.core.psi_state.ImplicitPsiState` matrix-free core against
that baseline on large-``m`` low-rank and sparse grids where the
dense-``Psi`` tax dominates:

* end-to-end ``decision_psdp`` wall clock with the fast oracle, history
  collection, and certificate checks enabled — the instrumented
  configuration of the acceptance criteria — with ``psi_state="dense"``
  (the PR-3 loop) vs ``psi_state="auto"`` (matrix-free), checking the
  certified decisions are identical on fixed seeds and that the
  matrix-free run reports **zero** dense materialisations;
* end-to-end ``decision_psdp_phased`` wall clock, where the dense path
  additionally pays one ``O(m^3)`` ``expm_normalized`` per phase while the
  matrix-free phase boundary runs entirely through the engine's factored
  matvec.

Results are printed as a table and emitted machine-readably to
``BENCH_matrixfree.json`` at the repository root (override with
``--output``).  Run directly::

    PYTHONPATH=src python benchmarks/bench_e14_matrixfree.py [--quick]

The non-quick run enforces the PR acceptance gates: >= 3x end-to-end on at
least one ``m >= 512`` low-rank ``decision_psdp`` row and >= 1.5x on at
least one ``decision_psdp_phased`` row.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    DEFAULT_RANK,
    DEFAULT_SPARSE_DENSITY,
)
from repro.core.decision import decision_psdp  # noqa: E402
from repro.core.decision_phased import decision_psdp_phased  # noqa: E402
from repro.core.dotexp import FastDotExpOracle  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_matrixfree.json"
)

# (n, m, factor_kind) grids.  Low-rank rows keep R = 2n far below m — the
# regime where the oracle is cheap and the dense loop's m^2/m^3 upkeep
# dominates; sparse rows add the sparse-stack weighted_sum (whose product
# densifies to (m, m) every iteration on the old path).
FULL_GRID = [
    (16, 512, "lowrank"),
    (16, 1024, "lowrank"),
    (24, 2048, "lowrank"),
    (200, 1024, "sparse"),
]
PHASED_GRID = [
    (16, 1024, "lowrank"),
    (200, 1024, "sparse"),
]
QUICK_GRID = [
    (8, 96, "lowrank"),
    (40, 96, "sparse"),
]
QUICK_PHASED_GRID = [
    (8, 96, "lowrank"),
]

ORACLE_EPS = 0.1
DECISION_CAP = 30
#: Certificate-check cadence for the instrumented runs (the package default
#: of 25 would fire only once inside the 30-iteration cap).
CHECK_EVERY = 5


def _run_decision(solver, ops, n, m, seed, cap, psi_state):
    """One timed end-to-end solve on a fresh collection; returns row facts."""
    coll = fresh_collection(ops)
    oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed)
    start = time.perf_counter()
    result = solver(
        coll,
        epsilon=0.2,
        oracle=oracle,
        rng=seed,
        max_iterations=cap,
        collect_history=True,
        certificate_check_every=CHECK_EVERY,
        psi_state=psi_state,
    )
    seconds = time.perf_counter() - start
    return {
        "seconds": seconds,
        "outcome": result.outcome.name,
        "iterations": result.iterations,
        "psi_state": result.metadata["psi_state"],
        "engine_mode": result.metadata.get("taylor_engine", {}).get("mode"),
    }


def bench_pair(solver, ops, n, m, seed, cap) -> dict:
    """Dense-state vs matrix-free wall clock for one solver on one row."""
    old = _run_decision(solver, ops, n, m, seed, cap, "dense")
    new = _run_decision(solver, ops, n, m, seed, cap, "auto")
    return {
        "old_seconds": old["seconds"],
        "new_seconds": new["seconds"],
        "speedup": old["seconds"] / max(new["seconds"], 1e-12),
        "outcome_old": old["outcome"],
        "outcome_new": new["outcome"],
        "iterations_old": old["iterations"],
        "iterations_new": new["iterations"],
        "psi_state_old": old["psi_state"],
        "psi_state_new": new["psi_state"],
        "engine_mode": new["engine_mode"],
    }


def main(argv=None) -> int:
    """Run the E14 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    phased_grid = QUICK_PHASED_GRID if args.quick else PHASED_GRID
    cap = 10 if args.quick else DECISION_CAP

    decision_rows = []
    phased_rows = []
    for rows, solver, label, row_grid in (
        (decision_rows, decision_psdp, "decision", grid),
        (phased_rows, decision_psdp_phased, "phased", phased_grid),
    ):
        for n, m, kind in row_grid:
            ops = make_operators(n, m, kind, args.seed)
            q = sum(op.nnz for op in ops)
            row = {
                "n": n,
                "m": m,
                "factor_kind": kind,
                "rank": DEFAULT_RANK,
                "total_nnz": q,
                **bench_pair(solver, ops, n, m, args.seed, cap),
            }
            rows.append(row)
            print(
                f"[{label:8s}] n={n:4d} m={m:5d} {kind:8s} "
                f"mode={str(row['engine_mode']):10s} "
                f"old={row['old_seconds']:8.3f}s new={row['new_seconds']:7.3f}s "
                f"speedup={row['speedup']:6.1f}x "
                f"outcomes={row['outcome_old']}/{row['outcome_new']} "
                f"densifies={row['psi_state_new']['densifies']}"
            )

    payload = {
        "experiment": "E14-matrixfree",
        "description": "matrix-free PsiState iteration core vs the PR-3 dense-Psi loop",
        "quick": args.quick,
        "config": {
            "rank": DEFAULT_RANK,
            "sparse_density": DEFAULT_SPARSE_DENSITY,
            "oracle_eps": ORACLE_EPS,
            "decision_iteration_cap": cap,
            "certificate_check_every": CHECK_EVERY,
            "collect_history": True,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "decision": decision_rows,
        "phased": phased_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for label, rows in (("decision", decision_rows), ("phased", phased_rows)):
        for row in rows:
            if row["outcome_old"] != row["outcome_new"]:
                failures.append(
                    f"{label} outcome diverged ({row['outcome_old']} vs "
                    f"{row['outcome_new']}) at n={row['n']}, m={row['m']}"
                )
            if row["iterations_old"] != row["iterations_new"]:
                failures.append(
                    f"{label} iteration count diverged at n={row['n']}, m={row['m']}"
                )
            if row["psi_state_new"]["mode"] != "implicit":
                failures.append(
                    f"{label} fast path did not select the implicit state "
                    f"at n={row['n']}, m={row['m']}"
                )
            if row["psi_state_new"]["densifies"] != 0:
                failures.append(
                    f"{label} matrix-free run densified Psi "
                    f"{row['psi_state_new']['densifies']}x at n={row['n']}, m={row['m']}"
                )
    if not args.quick:
        best_lowrank = max(
            (r["speedup"] for r in decision_rows
             if r["factor_kind"] == "lowrank" and r["m"] >= 512),
            default=0.0,
        )
        if best_lowrank < 3.0:
            failures.append(
                f"best m>=512 low-rank decision speedup {best_lowrank:.1f}x < 3x"
            )
        best_phased = max((r["speedup"] for r in phased_rows), default=0.0)
        if best_phased < 1.5:
            failures.append(f"best phased speedup {best_phased:.1f}x < 1.5x")
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
