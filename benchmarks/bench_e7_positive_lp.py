"""E7 — the diagonal special case: positive LPs (Section 1.2).

Claim: positive packing LPs are exactly the diagonal case of positive SDPs,
and the paper's algorithm is the matrix generalization of Young's LP
algorithm.  This benchmark runs, on literally the same instances,

* Young's width-independent packing-LP solver,
* the Luby–Nisan style phase-based LP solver, and
* the SDP solver applied to the equivalent diagonal SDP,

and compares certified values (all should bracket the same optimum) and
iteration counts (the scalar solvers are the cheaper specialisation).
"""

from __future__ import annotations

import pytest

from repro.baselines import exact_packing_value
from repro.core.solver import approx_psdp
from repro.instrumentation import ExperimentReport
from repro.lp import luby_nisan_packing_lp, young_packing_lp
from repro.problems import diagonal_packing_sdp, set_cover_lp
from repro.lp import diagonal_sdp_from_packing_lp

from conftest import emit


def _register(benchmark):
    """Register a trivial timing so report-only tests still execute under
    ``--benchmark-only`` (their value is the printed table / CSV, not the
    wall-clock of a single kernel)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_e7_same_instance_three_solvers(benchmark, results_dir):
    """E7: the SDP solver against Young and Luby-Nisan on one positive LP."""
    _register(benchmark)
    sdp, lp = diagonal_packing_sdp(6, 8, density=0.6, rng=41)
    exact = exact_packing_value(sdp).value
    eps = 0.2

    young = young_packing_lp(lp, epsilon=eps)
    luby = luby_nisan_packing_lp(lp, epsilon=eps)
    sdp_result = approx_psdp(sdp, epsilon=eps)

    report = ExperimentReport("E7-agreement", "diagonal instance: LP solvers vs SDP solver (eps=0.2)")
    report.add_row(solver="exact", value=exact, upper=exact, iterations=0)
    report.add_row(solver="young-lp", value=young.value, upper=young.upper_bound, iterations=young.iterations)
    report.add_row(solver="luby-nisan-lp", value=luby.value, upper=luby.upper_bound, iterations=luby.iterations)
    report.add_row(
        solver="sdp-diagonal",
        value=sdp_result.optimum_lower,
        upper=sdp_result.optimum_upper,
        iterations=sdp_result.total_iterations,
    )
    emit(report, results_dir)

    for lower, upper in [
        (young.value, young.upper_bound),
        (luby.value, luby.upper_bound),
        (sdp_result.optimum_lower, sdp_result.optimum_upper),
    ]:
        assert lower <= exact * (1 + 1e-6)
        assert upper >= exact * (1 - 1e-6)
        assert exact / lower <= 1 + eps + 1e-9


@pytest.mark.parametrize("variables", [6, 12, 24])
def test_e7_young_benchmark(benchmark, variables, results_dir):
    """Wall-clock of the scalar solver as the LP grows (kept for the harness)."""
    lp = set_cover_lp(max(4, variables // 2), variables, coverage=2, rng=43)
    result = benchmark.pedantic(young_packing_lp, args=(lp,), kwargs={"epsilon": 0.2}, rounds=1, iterations=1)
    report = ExperimentReport("E7-young-scaling", f"Young LP solver, {variables} variables")
    report.add_row(
        variables=variables,
        constraints=lp.num_constraints,
        value=result.value,
        certified_gap=result.relative_gap,
        iterations=result.iterations,
    )
    emit(report, results_dir)
    assert result.relative_gap <= 0.2 + 1e-9


def test_e7_sdp_matches_lp_on_setcover(benchmark, results_dir):
    """E7: diagonal-SDP and LP solvers must agree on a set-cover instance."""
    _register(benchmark)
    lp = set_cover_lp(6, 9, coverage=3, rng=44)
    sdp = diagonal_sdp_from_packing_lp(lp)
    exact = exact_packing_value(sdp).value
    sdp_result = approx_psdp(sdp, epsilon=0.25)
    young = young_packing_lp(lp, epsilon=0.25)
    report = ExperimentReport("E7-setcover", "fractional set-packing: SDP vs LP solver (eps=0.25)")
    report.add_row(solver="exact", value=exact)
    report.add_row(solver="sdp", value=sdp_result.optimum_lower, upper=sdp_result.optimum_upper)
    report.add_row(solver="young-lp", value=young.value, upper=young.upper_bound)
    emit(report, results_dir)
    assert exact / sdp_result.optimum_lower <= 1.25 + 1e-9
    assert exact / young.value <= 1.25 + 1e-9
