"""E18 — resilient serving: checkpoint overhead, resume savings, cache hits.

PR 8 adds checkpoint/resume to the decision solvers and the
:class:`repro.service.SolveService` queue on top of them.  Resilience is
only free if its mechanisms stay off the hot path, so this benchmark
measures the three costs the design promises to keep small:

* **checkpoint** — a solve with periodic ``checkpoint_every`` captures vs
  the identical solve without; the ``overhead`` ratio must stay at or
  below **1.05x** (captures export component states and copy the small
  per-iteration vectors — never the constraint stack);
* **resume** — continuing a half-finished solve from its checkpoint vs
  restarting it from scratch; the headline ``speedup`` must stay above
  **1.15x** (the checkpoint skips the already-paid iterations, so the
  ideal is ~2x when interrupted halfway);
* **cache** — answering a repeat instance from the service's
  instance-fingerprint cache vs the original cold solve; the headline
  ``speedup`` must stay above **10x** (a hit is one SHA-256 pass over the
  constraint bytes, no solver iterations at all).

Both arms of every row run interleaved best-of-``repeats`` on fresh
collections (the Taylor engine caches per collection object).  Results are
printed as a table and emitted machine-readably to ``BENCH_service.json``
at the repository root (override with ``--output``).  Run directly::

    PYTHONPATH=src python benchmarks/bench_e18_service.py [--quick]

The non-quick run enforces the acceptance gates; the committed payload is
re-checked by ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

import numpy as np  # noqa: E402

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    make_argparser,
    report_failures,
)
from repro.core.decision import DecisionOptions, decision_psdp  # noqa: E402
from repro.operators import ConstraintCollection, FactorizedPSDOperator  # noqa: E402
from repro.service import SolveService, VirtualClock  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_service.json"
)

EPSILON = 0.25
#: Run every arm to the same fixed iteration count (no mid-run certificate
#: checks), so both sides of each ratio execute identical iteration work.
DECISION_CAP = 40
CHECK_EVERY = 0
REPEATS = 7

#: (m, n, rank, checkpoint_every) — capture cadence rows.  The capture
#: exports component states (~tens of microseconds), so the relative cost
#: shrinks as per-iteration FLOPs grow with m.
CHECKPOINT_GRID = [
    (64, 10, 2, 5),
    (96, 10, 2, 5),
    (128, 12, 3, 5),
]
#: (m, n, rank, interrupt_at) — resume-vs-restart rows, interrupted at
#: half the iteration cap.
RESUME_GRID = [
    (64, 10, 2, 20),
    (96, 10, 2, 20),
    (128, 12, 3, 20),
]
#: (m, n, rank) — cache-hit latency rows.
CACHE_GRID = [
    (32, 8, 2),
    (96, 10, 2),
]

QUICK_CHECKPOINT_GRID = CHECKPOINT_GRID[:1]
QUICK_RESUME_GRID = RESUME_GRID[:1]
QUICK_CACHE_GRID = CACHE_GRID[:1]


def make_factors(m: int, n: int, rank: int, seed: int) -> list[np.ndarray]:
    """One seeded factor set; collections are rebuilt fresh per timed run."""
    rng = np.random.default_rng(seed)
    return [0.35 * rng.standard_normal((m, rank)) for _ in range(n)]


def fresh_collection(factors: list[np.ndarray]) -> ConstraintCollection:
    """A new collection over the same factors — no packed/engine cache
    leaks between the two arms of a ratio."""
    return ConstraintCollection(
        [FactorizedPSDOperator(f) for f in factors], validate=False
    )


def solve_opts(**overrides) -> dict:
    """The fixed-iteration-count solve configuration shared by every arm."""
    base = dict(
        epsilon=EPSILON,
        oracle="fast",
        rng=3,
        max_iterations=DECISION_CAP,
        certificate_check_every=CHECK_EVERY,
    )
    base.update(overrides)
    return base


def bench_checkpoint_row(
    m: int, n: int, rank: int, every: int, seed: int, repeats: int
) -> dict:
    """Periodic-capture solve vs plain solve on one instance."""
    factors = make_factors(m, n, rank, seed)
    plain_best = captured_best = float("inf")
    for _ in range(repeats):
        coll = fresh_collection(factors)
        start = time.perf_counter()
        plain = decision_psdp(coll, **solve_opts())
        plain_best = min(plain_best, time.perf_counter() - start)

        coll = fresh_collection(factors)
        start = time.perf_counter()
        captured = decision_psdp(coll, **solve_opts(checkpoint_every=every))
        captured_best = min(captured_best, time.perf_counter() - start)
    return {
        "m": m,
        "n": n,
        "rank": rank,
        "checkpoint_every": every,
        "iterations": captured.iterations,
        "plain_seconds": plain_best,
        "checkpointed_seconds": captured_best,
        "overhead": captured_best / max(plain_best, 1e-12),
        "identical": bool(
            plain.dual_value == captured.dual_value
            and np.array_equal(plain.dual_x, captured.dual_x)
        ),
    }


def bench_resume_row(
    m: int, n: int, rank: int, interrupt_at: int, seed: int, repeats: int
) -> dict:
    """Resume-from-checkpoint vs restart-from-scratch on one instance."""
    factors = make_factors(m, n, rank, seed)
    partial = decision_psdp(
        fresh_collection(factors), **solve_opts(iteration_budget=interrupt_at)
    )
    checkpoint = partial.metadata["checkpoint"]
    restart_best = resume_best = float("inf")
    for _ in range(repeats):
        coll = fresh_collection(factors)
        start = time.perf_counter()
        restarted = decision_psdp(coll, **solve_opts())
        restart_best = min(restart_best, time.perf_counter() - start)

        coll = fresh_collection(factors)
        start = time.perf_counter()
        resumed = decision_psdp(coll, **solve_opts(), resume_from=checkpoint)
        resume_best = min(resume_best, time.perf_counter() - start)
    return {
        "m": m,
        "n": n,
        "rank": rank,
        "interrupt_at": interrupt_at,
        "iterations": restarted.iterations,
        "restart_seconds": restart_best,
        "resume_seconds": resume_best,
        "speedup": restart_best / max(resume_best, 1e-12),
        "identical": bool(
            restarted.dual_value == resumed.dual_value
            and np.array_equal(restarted.dual_x, resumed.dual_x)
        ),
    }


def bench_cache_row(m: int, n: int, rank: int, seed: int, repeats: int) -> dict:
    """Cold service solve vs instance-fingerprint cache hit."""
    factors = make_factors(m, n, rank, seed)
    options = DecisionOptions(**solve_opts())
    cold_best = hit_best = float("inf")
    for _ in range(repeats):
        service = SolveService(options=options, seed=seed, clock=VirtualClock())
        start = time.perf_counter()
        service.submit(fresh_collection(factors))
        service.drain()
        cold_best = min(cold_best, time.perf_counter() - start)

        start = time.perf_counter()
        rid = service.submit(fresh_collection(factors))
        hit_best = min(hit_best, time.perf_counter() - start)
        assert service.response(rid).from_cache
    return {
        "m": m,
        "n": n,
        "rank": rank,
        "cold_seconds": cold_best,
        "hit_seconds": hit_best,
        "speedup": cold_best / max(hit_best, 1e-12),
    }


def main(argv=None) -> int:
    """Run the E18 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    repeats = 2 if args.quick else REPEATS
    checkpoint_grid = QUICK_CHECKPOINT_GRID if args.quick else CHECKPOINT_GRID
    resume_grid = QUICK_RESUME_GRID if args.quick else RESUME_GRID
    cache_grid = QUICK_CACHE_GRID if args.quick else CACHE_GRID

    checkpoint_rows = []
    for m, n, rank, every in checkpoint_grid:
        row = bench_checkpoint_row(m, n, rank, every, args.seed, repeats)
        checkpoint_rows.append(row)
        print(
            f"[checkpoint] m={m:3d} n={n} every={every} "
            f"plain={row['plain_seconds'] * 1e3:7.2f}ms "
            f"captured={row['checkpointed_seconds'] * 1e3:7.2f}ms "
            f"overhead={row['overhead']:5.3f}x identical={row['identical']}"
        )

    resume_rows = []
    for m, n, rank, interrupt_at in resume_grid:
        row = bench_resume_row(m, n, rank, interrupt_at, args.seed, repeats)
        resume_rows.append(row)
        print(
            f"[resume]     m={m:3d} n={n} at={interrupt_at} "
            f"restart={row['restart_seconds'] * 1e3:7.2f}ms "
            f"resume={row['resume_seconds'] * 1e3:7.2f}ms "
            f"speedup={row['speedup']:5.2f}x identical={row['identical']}"
        )

    cache_rows = []
    for m, n, rank in cache_grid:
        row = bench_cache_row(m, n, rank, args.seed, repeats)
        cache_rows.append(row)
        print(
            f"[cache]      m={m:3d} n={n} "
            f"cold={row['cold_seconds'] * 1e3:7.2f}ms "
            f"hit={row['hit_seconds'] * 1e3:7.2f}ms "
            f"speedup={row['speedup']:6.1f}x"
        )

    payload = {
        "experiment": "E18-service",
        "description": (
            "checkpoint capture overhead, resume-vs-restart savings, and "
            "service cache-hit latency"
        ),
        "quick": args.quick,
        "config": {
            "epsilon": EPSILON,
            "decision_iteration_cap": DECISION_CAP,
            "repeats": repeats,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "checkpoint": checkpoint_rows,
        "resume": resume_rows,
        "cache": cache_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in checkpoint_rows + resume_rows:
        if not row["identical"]:
            failures.append(
                f"m={row['m']}: the two arms produced different decisions"
            )
    if not args.quick:
        worst = max(row["overhead"] for row in checkpoint_rows)
        if worst > 1.05:
            failures.append(
                f"checkpoint overhead {worst:.3f}x exceeded the 1.05x ceiling"
            )
        best_resume = max(row["speedup"] for row in resume_rows)
        if best_resume < 1.15:
            failures.append(
                f"resume headline speedup {best_resume:.2f}x below the 1.15x floor"
            )
        best_cache = max(row["speedup"] for row in cache_rows)
        if best_cache < 10.0:
            failures.append(
                f"cache headline speedup {best_cache:.1f}x below the 10x floor"
            )
    return report_failures(failures)


if __name__ == "__main__":
    sys.exit(main())
