"""E13 — rank-adaptive Gram-space engine vs the PR-2 blocked kernel.

PR 2 evaluated the Lemma 4.2 Taylor apply with a single rule: densify
``Psi`` when ``2R > m``, run the factor recurrence otherwise.  That left
two regimes on the table — low stacked rank (``R << m``), where the series
collapses to ``R x R`` Gram-space GEMMs, and sparse factors, where either
a CSR ``Psi`` with a reusable symbolic pattern or a throughput-aware
densification beats the two-sparse-GEMM recurrence — and rebuilt the
kernel from scratch every oracle call.  This benchmark measures the
rank-adaptive engine against that baseline across an
``(n, m, factor kind)`` grid covering low-rank (``R <= m/4``), sparse
(the ~1.4x rows of E12), concentrated-support (sparse-``Psi``), and
adversarial near-threshold (``2R`` just above/below ``m``) shapes:

* the latency of the degenerate-sketch Taylor block apply over a sequence
  of mildly-changing weight vectors — the solver's actual access pattern:
  the old path rebuilds a PR-2 kernel per step, the new path updates the
  engine's state incrementally;
* the end-to-end wall clock of ``decision_psdp`` with
  ``FastDotExpOracle(engine=...)`` on both paths, checking the certified
  decisions are identical on fixed seeds;
* the engine-vs-reference agreement of the deterministic
  ``big_dot_exp(use_sketch=False)`` pass (must match to ~1e-8).

Results are printed as a table and emitted machine-readably to
``BENCH_gram.json`` at the repository root (override with ``--output``).
Run directly::

    PYTHONPATH=src python benchmarks/bench_e13_gram.py [--quick]

The non-quick run enforces the PR acceptance gates: >= 3x on the Taylor
apply for the 5%-density sparse rows and >= 2x end-to-end on the low-rank
(``R <= m/4``) rows.
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from common import (  # noqa: E402
    emit_payload,
    environment_info,
    fresh_collection,
    make_argparser,
    make_operators,
    report_failures,
    time_call,
    DEFAULT_RANK,
    DEFAULT_SPARSE_DENSITY,
)
from repro.core.decision import decision_psdp  # noqa: E402
from repro.core.dotexp import FastDotExpOracle, big_dot_exp  # noqa: E402
from repro.linalg.taylor import taylor_degree  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_gram.json"
)

# (n, m, factor_kind) grid.  "lowrank" rows keep R = 2n well under m (the
# Gram-space regime, including the 2R == m boundary and a 2R = m + 2
# adversary just past it); "sparse" rows reproduce the ~5%-density family
# E12 left at ~1.4x; "concentrated" rows share an m/8-row support so the
# exact Psi pattern stays tiny.
FULL_GRID = [
    (32, 256, "lowrank"),  # R = m/4
    (64, 512, "lowrank"),  # R = m/4
    (64, 256, "lowrank"),  # 2R == m boundary (gram)
    (33, 128, "lowrank"),  # 2R = m + 4: adversarial just past the boundary
    (400, 128, "sparse"),  # the E12 row PR 2 left at ~1.4x
    (600, 128, "sparse"),  # 2 nnz just under m^2: legacy stays sparse
    (300, 256, "concentrated"),
]
QUICK_GRID = [
    (16, 64, "lowrank"),
    (60, 48, "sparse"),
    (40, 48, "concentrated"),
]

ORACLE_EPS = 0.1
TAYLOR_KAPPA = 8.0
DECISION_CAP = 40
#: weight vectors per timed Taylor-apply pass (the solver's access pattern:
#: each step multiplies a random ~30% of the coordinates).
WEIGHT_STEPS = 6


def weight_sequence(n: int, steps: int, seed: int) -> list[np.ndarray]:
    """Mildly-changing weight iterates mimicking the decision solver."""
    rng = np.random.default_rng(seed)
    x = np.abs(rng.random(n)) / n
    seq = [x]
    for _ in range(steps - 1):
        x = x.copy()
        mask = rng.random(n) < 0.3
        if not mask.any():
            mask[rng.integers(n)] = True
        x[mask] *= 1.05
        seq.append(x)
    return seq


def bench_taylor_sequence(ops, n: int, m: int, repeats: int, seed: int) -> dict:
    """Old-vs-new latency of the Taylor block apply over a weight sequence."""
    coll = fresh_collection(ops)
    packed = coll.packed()
    degree = taylor_degree(TAYLOR_KAPPA / 2.0, ORACLE_EPS / 2.0)
    block = np.eye(m)
    seq = weight_sequence(n, WEIGHT_STEPS, seed)
    engine = packed.taylor_engine()

    def old_pass():
        for x in seq:
            packed.taylor_kernel(x, mode="legacy").apply(block, degree, scale=0.5)

    def new_pass():
        for x in seq:
            engine.kernel_for(x).apply(block, degree, scale=0.5)

    # Warm up (builds the engine state + BLAS init) and pin the agreement.
    old_ref = packed.taylor_kernel(seq[0], mode="legacy").apply(block, degree, scale=0.5)
    new_ref = engine.kernel_for(seq[0]).apply(block, degree, scale=0.5)
    max_abs_err = float(np.max(np.abs(old_ref - new_ref)))
    t_old = time_call(old_pass, repeats)
    t_new = time_call(new_pass, repeats)

    return {
        "degree": degree,
        "kernel_mode": engine.mode,
        "steps": len(seq),
        "old_seconds": t_old,
        "new_seconds": t_new,
        "speedup": t_old / max(t_new, 1e-12),
        "max_abs_err": max_abs_err,
    }


def bench_decision(ops, n: int, m: int, seed: int, cap: int) -> dict:
    """End-to-end decision latency with the incremental engine on/off."""
    results = {}
    stats = None
    for label, engine in (("old", False), ("new", True)):
        coll = fresh_collection(ops)
        oracle = FastDotExpOracle(coll, eps=ORACLE_EPS, rng=seed, engine=engine)
        start = time.perf_counter()
        result = decision_psdp(
            coll, epsilon=0.2, oracle=oracle, max_iterations=cap, rng=seed
        )
        results[label] = {
            "seconds": time.perf_counter() - start,
            "outcome": result.outcome.name,
            "iterations": result.iterations,
        }
        if engine:
            stats = result.metadata.get("taylor_engine")
    return {
        "old_seconds": results["old"]["seconds"],
        "new_seconds": results["new"]["seconds"],
        "speedup": results["old"]["seconds"] / max(results["new"]["seconds"], 1e-12),
        "outcome_old": results["old"]["outcome"],
        "outcome_new": results["new"]["outcome"],
        "iterations_old": results["old"]["iterations"],
        "iterations_new": results["new"]["iterations"],
        "engine_stats": stats,
    }


def bench_agreement(ops, n: int, m: int, seed: int) -> float:
    """Max abs deviation of the engine kernel's deterministic
    ``big_dot_exp(use_sketch=False)`` pass from the per-factor reference."""
    x = np.abs(np.random.default_rng(seed).random(n)) / n
    coll = fresh_collection(ops)
    reference = big_dot_exp(
        coll.weighted_sum(x), coll.gram_factors(), kappa=2.0, eps=0.2, use_sketch=False
    )
    packed = coll.packed()
    kernel = packed.taylor_engine().kernel_for(x)
    new_vals = big_dot_exp(kernel, packed, kappa=2.0, eps=0.2, use_sketch=False)
    return float(np.max(np.abs(new_vals - reference)))


def main(argv=None) -> int:
    """Run the E13 grid and return the process exit code."""
    args = make_argparser(__doc__.splitlines()[0], DEFAULT_OUTPUT).parse_args(argv)

    grid = QUICK_GRID if args.quick else FULL_GRID
    repeats = 2 if args.quick else 3
    cap = 10 if args.quick else DECISION_CAP

    taylor_rows = []
    decision_rows = []
    for n, m, kind in grid:
        ops = make_operators(n, m, kind, args.seed)
        q = sum(op.nnz for op in ops)
        base = {"n": n, "m": m, "factor_kind": kind, "rank": DEFAULT_RANK, "total_nnz": q}

        row = {**base, **bench_taylor_sequence(ops, n, m, repeats, args.seed)}
        row["nosketch_max_abs_err"] = bench_agreement(ops, n, m, args.seed)
        taylor_rows.append(row)
        print(
            f"[taylor]   n={n:4d} m={m:4d} {kind:12s} k={row['degree']:3d} "
            f"{row['kernel_mode']:14s} old={row['old_seconds']*1e3:9.2f}ms "
            f"new={row['new_seconds']*1e3:8.2f}ms speedup={row['speedup']:6.1f}x "
            f"err={row['max_abs_err']:.2e} nosketch={row['nosketch_max_abs_err']:.2e}"
        )

        row = {**base, **bench_decision(ops, n, m, args.seed, cap)}
        decision_rows.append(row)
        print(
            f"[decision] n={n:4d} m={m:4d} {kind:12s} "
            f"old={row['old_seconds']:8.3f}s  new={row['new_seconds']:7.3f}s  "
            f"speedup={row['speedup']:6.1f}x outcomes={row['outcome_old']}/{row['outcome_new']}"
        )

    payload = {
        "experiment": "E13-gram",
        "description": "rank-adaptive Gram-space engine vs PR-2 blocked kernel",
        "quick": args.quick,
        "config": {
            "rank": DEFAULT_RANK,
            "sparse_density": DEFAULT_SPARSE_DENSITY,
            "oracle_eps": ORACLE_EPS,
            "taylor_kappa": TAYLOR_KAPPA,
            "decision_iteration_cap": cap,
            "weight_steps": WEIGHT_STEPS,
            "repeats": repeats,
            "seed": args.seed,
        },
        "environment": environment_info(),
        "taylor_block": taylor_rows,
        "decision": decision_rows,
    }
    emit_payload(payload, args.output)

    failures = []
    for row in taylor_rows:
        if row["max_abs_err"] > 1e-8:
            failures.append(f"taylor-apply mismatch {row['max_abs_err']:.2e} at {row}")
        if row["nosketch_max_abs_err"] > 1e-8:
            failures.append(
                f"no-sketch mismatch {row['nosketch_max_abs_err']:.2e} at {row}"
            )
        if not args.quick and row["factor_kind"] == "sparse" and row["speedup"] < 3.0:
            failures.append(
                f"sparse taylor speedup {row['speedup']:.1f}x < 3x "
                f"at n={row['n']}, m={row['m']}"
            )
    for row in decision_rows:
        if row["outcome_old"] != row["outcome_new"]:
            failures.append(
                f"decision outcome diverged ({row['outcome_old']} vs "
                f"{row['outcome_new']}) at n={row['n']}, m={row['m']}"
            )
        # R = rank * n; the acceptance gate targets the R <= m/4 rows.
        low_rank = row["factor_kind"] == "lowrank" and 4 * DEFAULT_RANK * row["n"] <= row["m"]
        if not args.quick and low_rank and row["speedup"] < 2.0:
            failures.append(
                f"low-rank decision speedup {row['speedup']:.1f}x < 2x "
                f"at n={row['n']}, m={row['m']}"
            )
    return report_failures(failures)


if __name__ == "__main__":
    raise SystemExit(main())
