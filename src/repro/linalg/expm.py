"""Exact matrix-exponential primitives.

Every iteration of the decision solver (Algorithm 3.1) needs the quantities

* ``W = exp(Psi)`` for the PSD matrix ``Psi = sum_i x_i A_i``,
* ``Tr[W]``, and
* ``W . A_i`` (trace inner products) for every constraint matrix.

For moderate dimensions the cheapest reliable way to obtain all of these is
a single symmetric eigendecomposition of ``Psi``; this module implements
that reference path.  The nearly-linear-work approximation of Theorem 4.1
(truncated Taylor polynomial + Johnson–Lindenstrauss sketching) lives in
:mod:`repro.linalg.taylor`, :mod:`repro.linalg.sketching`, and
:mod:`repro.core.dotexp`; its accuracy is validated against the functions
here.

A numerical subtlety: the exponentials in the solver grow like
``exp((1 + 10 eps) K)`` with ``K = O(log(n)/eps)``, which can overflow double
precision.  Because the solver only ever consumes the *normalized* matrix
``P = W / Tr[W]`` (Equation 3.2), all functions here optionally shift the
spectrum by its maximum eigenvalue before exponentiating — mathematically a
multiplication of both numerator and denominator by ``exp(-lambda_max)`` —
which keeps every intermediate quantity in range without changing ``P``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_symmetric, symmetrize


def _eigh_shifted(psi: np.ndarray, shift: bool) -> tuple[np.ndarray, np.ndarray, float]:
    """Eigendecompose ``psi`` returning (eigvals, eigvecs, applied_shift).

    ``psi`` only needs to be symmetric: the solver always exponentiates PSD
    matrices, but baseline MMW schemes (and tests) exponentiate matrices with
    negative eigenvalues too, and the exponential is well-defined either way.
    """
    psi = check_symmetric(psi, "psi")
    eigvals, eigvecs = np.linalg.eigh(psi)
    applied = float(eigvals[-1]) if (shift and eigvals.size) else 0.0
    return eigvals, eigvecs, applied


def expm_eigh(psi: np.ndarray) -> np.ndarray:
    """Exact ``exp(psi)`` for a symmetric PSD matrix via eigendecomposition.

    Equivalent to :func:`scipy.linalg.expm` for symmetric inputs but
    guarantees an exactly symmetric output and reuses the eigenbasis style
    of the rest of this module.
    """
    eigvals, eigvecs, _ = _eigh_shifted(psi, shift=False)
    return symmetrize((eigvecs * np.exp(eigvals)) @ eigvecs.T)


def expm_psd(psi: np.ndarray, shift: bool = False) -> tuple[np.ndarray, float]:
    """Return ``(E, log_scale)`` with ``exp(psi) = exp(log_scale) * E``.

    With ``shift=True`` the returned ``E = exp(psi - lambda_max I)`` has
    spectral norm exactly 1 and ``log_scale = lambda_max``; this is the
    overflow-safe representation used by the solver.  With ``shift=False``
    the plain exponential is returned with ``log_scale = 0``.
    """
    eigvals, eigvecs, applied = _eigh_shifted(psi, shift)
    mat = symmetrize((eigvecs * np.exp(eigvals - applied)) @ eigvecs.T)
    return mat, applied


def expm_trace(psi: np.ndarray, shift: bool = True) -> tuple[float, float]:
    """Return ``(t, log_scale)`` with ``Tr[exp(psi)] = exp(log_scale) * t``."""
    eigvals, _, applied = _eigh_shifted(psi, shift)
    return float(np.sum(np.exp(eigvals - applied))), applied


def expm_normalized(psi: np.ndarray) -> np.ndarray:
    """Return the density matrix ``P = exp(psi) / Tr[exp(psi)]`` (Eq. 3.2).

    Computed with the spectral shift so it is safe for the large exponents
    that arise late in a solver run; ``Tr[P] = 1`` exactly up to rounding.
    """
    eigvals, eigvecs, applied = _eigh_shifted(psi, shift=True)
    weights = np.exp(eigvals - applied)
    total = float(np.sum(weights))
    if total <= 0:  # pragma: no cover - cannot happen for finite input
        raise FloatingPointError("trace of matrix exponential vanished")
    return symmetrize((eigvecs * (weights / total)) @ eigvecs.T)


def expm_dot(psi: np.ndarray, a: np.ndarray, normalized: bool = False) -> float:
    """Compute ``exp(psi) . a`` (or ``P . a`` when ``normalized=True``).

    ``X . Y`` denotes the trace inner product ``Tr[X Y]`` of the paper.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.shape != psi.shape:
        raise ValueError(f"shape mismatch: psi {psi.shape} vs a {a.shape}")
    if normalized:
        return float(np.sum(expm_normalized(psi) * a))
    return float(np.sum(expm_eigh(psi) * a))


def expm_dot_many(
    psi: np.ndarray,
    mats: list[np.ndarray] | tuple[np.ndarray, ...],
    normalized: bool = True,
) -> np.ndarray:
    """Compute all trace products ``exp(psi) . A_i`` in one eigendecomposition.

    This is the dense reference implementation of the per-iteration oracle:
    the eigendecomposition is done once and each product costs one
    ``m x m`` elementwise multiply-sum.  Returns a vector of length
    ``len(mats)``.  When ``normalized=True`` the products are against the
    density matrix ``P`` instead of ``exp(psi)`` itself (the solver only
    needs the ratio ``(exp(psi) . A_i) / Tr[exp(psi)]``, see Algorithm 3.1
    line 5).
    """
    if normalized:
        weight_matrix = expm_normalized(psi)
    else:
        weight_matrix = expm_eigh(psi)
    out = np.empty(len(mats), dtype=np.float64)
    for idx, mat in enumerate(mats):
        out[idx] = float(np.sum(weight_matrix * mat))
    return out
