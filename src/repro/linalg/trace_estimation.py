"""Structured estimation of the oracle's trace normalisation ``Tr[exp(Psi)]``.

Every iteration of the decision solver normalises the Theorem 4.1 estimates
by ``Tr[exp(Psi)]``.  In the *degenerate-sketch* regime — ``eps`` tight
enough that the JL dimension reaches the ambient dimension ``m``, which is
the default configuration for every ``m`` below several thousand — the
sketch is the identity and the legacy path obtained the trace by pushing
the full ``(m, m)`` identity through the Lemma 4.2 Taylor polynomial once
per oracle call: ``Tr[p(Psi/2)^2] = || p(Psi/2) I ||_F^2``.  After the
matrix-free iteration core (PR 4) that identity push was the last dense
``O(m^2 . degree)``-per-column object on the hot path.

This module removes it.  All estimators target the *same* quantity the
identity push measured — ``Tr[p(s Psi)^2]`` for the truncated polynomial
``p`` of degree ``k`` (``squared=False`` variants of the helpers return
``Tr[p(s Psi)]``) — so the oracle's normalisation semantics are unchanged:

* **Gram-spectrum path** (:func:`gram_exp_trace`, mode ``"gram"``) — exact.
  ``Psi = Q diag(w) Q^T`` and the symmetrised Gram matrix
  ``S = diag(sqrt(w)) (Q^T Q) diag(sqrt(w))`` share their nonzero spectrum
  (``AB`` and ``BA`` have the same nonzero eigenvalues), so

  .. math:: \\mathrm{Tr}[p(s\\Psi)^2] = (m - R) + \\sum_{j=1}^{R} p(s\\lambda_j)^2,
      \\qquad \\lambda = \\mathrm{eig}(S),

  one ``R x R`` symmetric eigendecomposition plus ``R`` scalar polynomial
  evaluations — ``O(R^3 + R k)`` instead of ``O(m^2 k)`` per column times
  ``m`` columns.  Selected whenever the stacked rank satisfies
  ``2R <= GRAM_HYSTERESIS * m`` (the same gate as the Gram-space Taylor
  kernel).
* **Deflated block-Krylov path** (mode ``"deflated"``) — exact.  Writing
  ``p(s Psi) = I + U``, the update ``U`` is symmetric with range contained
  in ``range(Q)`` — the one-step block Krylov subspace of the factor stack
  captures the *entire* non-identity part.  With ``T = p(s Psi) Q`` (the
  transformed factor block the structured estimates pass computes anyway)
  and the cached eigendecomposition of the weight-independent ``Q^T Q``,
  the projected ``S = V^T U V`` onto an orthonormal basis ``V`` of
  ``range(Q)`` costs one ``(R, m) x (m, R)`` GEMM, and

  .. math:: \\mathrm{Tr}[p(s\\Psi)^2] = m + 2\\,\\mathrm{Tr}[S] + \\|S\\|_F^2.

  Used when ``2R`` exceeds the Gram gate but ``R`` is still meaningfully
  below ``m`` (dense-``Psi`` / sparse-``Psi`` kernel regimes).
* **Hutchinson with control variate** (:class:`TraceEstimator` mode
  ``"hutchinson"``) — stochastic, with a certified error bound.  Rademacher
  probes ``z`` give unbiased samples of ``Tr[p^2] - m`` through
  ``2 z^T U z + ||U z||^2`` (``||z||^2 = m`` exactly for Rademacher, so the
  identity part contributes zero variance), with the first-order control
  variate ``2s z^T Psi z`` subtracted and its exact expectation
  ``2s Tr[Psi] = 2s sum_c w_c ||q_c||^2`` added back.  Probes are drawn in
  blocks and doubled adaptively until the certified bound
  ``TRACE_CONFIDENCE * stderr`` fits the caller's relative tolerance; if
  the probe budget is exhausted the estimator *falls back to the exact
  identity push* (counted, never silent), so the oracle's accuracy
  guarantee is unconditional.  A fixed ``seed`` makes every call
  deterministic and independent of the oracle's sketch stream.

:func:`select_trace_mode` is the measured-cost policy (the companion of
:func:`~repro.linalg.taylor_gram.select_taylor_mode`): the structured modes
pay ``R`` polynomial columns (the factor stack, which also yields the
Theorem 4.1 estimates) instead of the ``m`` identity columns, so they win
exactly when ``R`` is sufficiently below ``m``; at ``R`` near or above
``m`` the identity push *is* optimal (it serves the estimates too) and the
policy keeps it.

``tests/test_linalg_trace_estimation.py`` pins every mode against the
dense-reference identity push across low-rank, sparse, and concentrated
stacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.backend import NUMPY, get_array_backend
from repro.exceptions import InvalidProblemError, NumericalError
from repro.linalg.taylor_gram import GRAM_HYSTERESIS
from repro.robustness.faultinject import fault_hook

__all__ = [
    "TraceEstimate",
    "TraceEstimator",
    "batched_gram_exp_trace",
    "gram_exp_trace",
    "select_trace_mode",
    "truncated_exp_values",
    "TRACE_CONFIDENCE",
    "TRACE_MIN_PROBES",
    "TRACE_PROBE_CAP_FRACTION",
    "TRACE_IDENTITY_MARGIN",
]

#: One-sided normal quantile used to certify the Hutchinson estimator: the
#: reported ``error_bound`` is ``TRACE_CONFIDENCE`` sample standard errors,
#: i.e. a ~99.9% confidence bound under the CLT normal approximation.  The
#: exact modes report a bound of 0 (they are deterministic up to rounding).
TRACE_CONFIDENCE = 3.0

#: Probes drawn by the first Hutchinson block (doubled adaptively until the
#: certified bound fits the tolerance).
TRACE_MIN_PROBES = 8

#: Default Hutchinson probe budget as a fraction of ``m``: past this the
#: stochastic estimate is approaching the exact identity push's cost, so
#: the estimator stops doubling and falls back to the exact push instead.
TRACE_PROBE_CAP_FRACTION = 0.5

#: Required headroom before a structured mode replaces the identity push:
#: the structured estimate pass costs ``R`` polynomial columns (plus
#: probes), the identity push ``m`` — and the identity's columns also carry
#: the Theorem 4.1 estimates, so the swap must win by a clear margin, and
#: the margined gate cannot flip-flop for stacks near the boundary.
TRACE_IDENTITY_MARGIN = 0.9

_TRACE_MODES = ("gram", "deflated", "hutchinson", "identity")

#: Relative eigenvalue cutoff for the deflated basis: directions of
#: ``Q^T Q`` below ``_BASIS_RTOL * mu_max`` are numerically rank-deficient
#: and are dropped from the projection (their ``U``-components are of the
#: same tiny order, so dropping them perturbs the trace at rounding level).
_BASIS_RTOL = 1e-12


def truncated_exp_values(x: np.ndarray, degree: int, scale: float = 1.0) -> np.ndarray:
    """Elementwise truncated exponential ``sum_{0 <= i < degree} (scale*x)^i / i!``.

    The scalar form of the Lemma 4.2 polynomial the Taylor kernels apply to
    blocks: evaluating it on the eigenvalues of ``Psi`` gives the exact
    eigenvalues of ``p(scale * Psi)``, which is how :func:`gram_exp_trace`
    turns the ``R x R`` Gram spectrum into the trace.
    """
    if degree < 1:
        raise InvalidProblemError(f"degree must be >= 1, got {degree}")
    x = np.asarray(x, dtype=np.float64) * float(scale)
    acc = np.ones_like(x)
    term = np.ones_like(x)
    for i in range(1, degree):
        term = term * x / i
        acc = acc + term
    return acc


def select_trace_mode(
    dim: int, total_rank: int, probes: int = TRACE_MIN_PROBES
) -> str:
    """Pick the trace estimator for a stack of shape ``(dim, total_rank)``.

    The decision mirrors :func:`~repro.linalg.taylor_gram.select_taylor_mode`:
    it depends only on immutable shape quantities, so repeated calls can
    never flip-flop.  The per-column polynomial cost cancels between the
    candidates (all push blocks through the same kernel), leaving a pure
    column-count comparison:

    * ``"gram"`` when ``2R <= GRAM_HYSTERESIS * dim`` — the exact Gram
      spectrum (``R^3`` eigendecomposition, no polynomial columns beyond
      the ``R`` the estimates already pay);
    * ``"deflated"`` when ``R + probes <= TRACE_IDENTITY_MARGIN * dim`` —
      the exact block-Krylov projection (one ``(R, m) x (m, R)`` GEMM over
      the transformed factor block);
    * ``"identity"`` otherwise — at ``R`` near or above ``m`` the identity
      push is optimal because its ``m`` columns also carry the Theorem 4.1
      estimates, which the structured modes would recompute from ``R >= m``
      factor columns.

    ``"hutchinson"`` is never auto-selected — the exact deflated projection
    costs less than any probe block whenever pushing the factor stack is
    affordable at all — but remains explicitly selectable (it is the only
    mode whose cost is independent of ``R``, and its certified-bound
    machinery is exercised by the tests).
    """
    if dim < 0 or total_rank < 0:
        raise InvalidProblemError(
            f"dim and total_rank must be non-negative, got {dim}, {total_rank}"
        )
    if total_rank == 0 or 2 * total_rank <= GRAM_HYSTERESIS * dim:
        return "gram"
    if total_rank + probes <= TRACE_IDENTITY_MARGIN * dim:
        return "deflated"
    return "identity"


def gram_exp_trace(
    gram: np.ndarray,
    col_weights: np.ndarray,
    dim: int,
    degree: int,
    scale: float = 1.0,
    squared: bool = True,
    backend=None,
) -> float:
    """Exact ``Tr[p(scale * Psi)^2]`` from the Gram spectrum of the stack.

    Parameters
    ----------
    gram:
        The weight-independent dense ``(R, R)`` Gram matrix ``Q^T Q``
        (:meth:`~repro.operators.packed.PackedGramFactors.gram_matrix`).
    col_weights:
        Per-column non-negative weights ``w`` of length ``R``.
    dim:
        Ambient dimension ``m`` of ``Psi = Q diag(w) Q^T``.
    degree:
        Taylor truncation degree ``k`` of ``p``.
    scale:
        Scalar multiplier on ``Psi`` inside the polynomial (the oracle
        passes ``0.5`` and squares, matching ``||p(Psi/2)||_F^2``).
    squared:
        Return ``Tr[p^2]`` (the oracle's normalisation) when ``True``,
        ``Tr[p]`` when ``False``.
    backend:
        Array backend spec for the ``R x R`` eigendecomposition; the
        weighted Gram build and the scalar polynomial stay host-side.

    Notes
    -----
    ``Psi`` and ``S = diag(sqrt(w)) gram diag(sqrt(w))`` share their
    nonzero spectrum, and the ``m - R`` remaining eigenvalues of ``Psi``
    are 0 where ``p(0) = 1``, so the trace is
    ``(m - R) + sum_j p(scale * lambda_j)^(1 or 2)`` — exact up to
    rounding, never touching an ``(m, m)`` object.  Requires ``R <= m``
    (guaranteed under the Gram gate of :func:`select_trace_mode`).
    """
    col_weights = np.asarray(col_weights, dtype=np.float64).ravel()
    gram = np.asarray(gram, dtype=np.float64)
    r = col_weights.shape[0]
    if gram.shape != (r, r):
        raise InvalidProblemError(
            f"gram matrix must have shape {(r, r)}, got {gram.shape}"
        )
    if r > dim:
        raise InvalidProblemError(
            f"the Gram-spectrum trace requires R <= m, got R={r}, m={dim}"
        )
    if np.any(col_weights < 0):
        raise InvalidProblemError("column weights must be non-negative")
    if r == 0:
        return float(dim)
    xp = get_array_backend(backend)
    root = np.sqrt(col_weights)
    weighted = gram * root[None, :] * root[:, None]
    eigenvalues = xp.to_numpy(xp.eigvalsh(xp.asarray(0.5 * (weighted + weighted.T))))
    # Psi is PSD; tiny negative eigenvalues are rounding noise.
    np.clip(eigenvalues, 0.0, None, out=eigenvalues)
    values = truncated_exp_values(eigenvalues, degree, scale=scale)
    if squared:
        values = values * values
    trace = float(dim - r) + float(values.sum())
    if not np.isfinite(trace):
        raise NumericalError(
            "Gram-spectrum trace evaluation overflowed; reduce the spectral "
            "norm of psi or the degree",
            site="trace_estimation",
            kernel_mode="gram",
        )
    return trace


def batched_gram_exp_trace(
    gram_stack: np.ndarray,
    colw_stack: np.ndarray,
    dim: int,
    degrees: np.ndarray,
    scale: float = 1.0,
    squared: bool = True,
) -> np.ndarray:
    """Vectorised :func:`gram_exp_trace` over a batch of weight vectors.

    Each row ``b`` of the result equals ``gram_exp_trace(gram_stack[b],
    colw_stack[b], dim, degrees[b], scale, squared)`` bitwise: the weighting
    and truncated-exponential evaluations are elementwise (identical
    floating-point sequences per row), ``np.linalg.eigvalsh`` on a stack
    runs the same LAPACK routine per slice, and the per-row reduction
    matches the 1-D sum.  Rows on which the scalar form would raise
    (negative weights, non-finite spectra, overflowed traces) come back as
    ``nan`` instead of raising, so one bad instance cannot poison its
    batchmates — the caller re-solves those rows sequentially to reproduce
    the exact error.
    """
    gram_stack = np.asarray(gram_stack, dtype=np.float64)
    colw_stack = np.asarray(colw_stack, dtype=np.float64)
    degrees = np.asarray(degrees, dtype=np.int64)
    if gram_stack.ndim != 3 or colw_stack.ndim != 2 or degrees.ndim != 1:
        raise InvalidProblemError(
            "batched_gram_exp_trace expects a (B, R, R) gram stack, a (B, R) "
            "weight stack and a (B,) degree vector"
        )
    batch, r = colw_stack.shape
    if gram_stack.shape != (batch, r, r) or degrees.shape[0] != batch:
        raise InvalidProblemError(
            f"inconsistent batch shapes: gram {gram_stack.shape}, "
            f"weights {colw_stack.shape}, degrees {degrees.shape}"
        )
    if r > dim:
        raise InvalidProblemError(
            f"the Gram-spectrum trace requires R <= m, got R={r}, m={dim}"
        )
    if np.any(degrees < 1):
        raise InvalidProblemError("every degree must be >= 1")
    if r == 0:
        return np.full(batch, float(dim))
    traces = np.full(batch, np.nan)
    bad = np.any(colw_stack < 0, axis=1)
    with np.errstate(invalid="ignore", over="ignore"):
        root = np.sqrt(colw_stack)
        weighted = gram_stack * root[:, None, :] * root[:, :, None]
    bad |= ~np.isfinite(weighted).all(axis=(1, 2))
    good = np.flatnonzero(~bad)
    if good.size == 0:
        return traces
    sym = 0.5 * (weighted[good] + weighted[good].transpose(0, 2, 1))
    # The fused batch path is NumPy-resident by contract; the stacked
    # eigendecomposition routes through the shared NumPy backend object.
    xp = NUMPY
    try:
        eigenvalues = xp.eigvalsh(sym)
    except np.linalg.LinAlgError:
        # Isolate non-converging slices so the rest of the batch survives.
        eigenvalues = np.zeros((good.size, r))
        keep = np.ones(good.size, dtype=bool)
        for j in range(good.size):
            try:
                eigenvalues[j] = xp.eigvalsh(sym[j])
            except np.linalg.LinAlgError:
                keep[j] = False
        good = good[keep]
        eigenvalues = eigenvalues[keep]
        if good.size == 0:
            return traces
    np.clip(eigenvalues, 0.0, None, out=eigenvalues)
    # truncated_exp_values with per-row degrees: run the shared recurrence
    # to the largest degree, snapshotting each row at its own truncation
    # point (the elementwise term/acc updates are row-independent).
    deg_good = degrees[good]
    with np.errstate(invalid="ignore", over="ignore"):
        x = eigenvalues * float(scale)
        acc = np.ones_like(x)
        term = np.ones_like(x)
        values = np.empty_like(x)
        sel = np.flatnonzero(deg_good == 1)
        if sel.size:
            values[sel] = acc[sel]
        for i in range(1, int(deg_good.max())):
            term = term * x / i
            acc = acc + term
            sel = np.flatnonzero(deg_good == i + 1)
            if sel.size:
                values[sel] = acc[sel]
        if squared:
            values = values * values
        traces[good] = float(dim - r) + values.sum(axis=1)
    traces[~np.isfinite(traces)] = np.nan
    return traces


@dataclass
class TraceEstimate:
    """One structured trace estimate and its certification.

    Attributes
    ----------
    value:
        The estimate of ``Tr[p(scale * Psi)^2]``.
    error_bound:
        Certified absolute error bound: 0 for the exact modes (``gram``,
        ``deflated``, and the ``identity`` fallback — deterministic up to
        rounding), ``TRACE_CONFIDENCE`` standard errors for ``hutchinson``.
    mode:
        The mode that produced the value (``"identity"`` when the
        Hutchinson budget was exhausted and the exact fallback ran).
    probes:
        Rademacher probe columns pushed through the polynomial (0 for the
        exact modes) — the oracle adds them to its column-count work charge.
    extra_work:
        Model work of the estimator beyond the shared polynomial columns
        (the ``R^3`` eigendecomposition, the projection GEMMs, the
        control-variate matvecs, or the fallback identity push).
    """

    value: float
    error_bound: float
    mode: str
    probes: int = 0
    extra_work: float = 0.0


class TraceEstimator:
    """Per-oracle structured estimator of ``Tr[p(s Psi)^2]`` with counters.

    One estimator is held by each :class:`~repro.core.dotexp.FastDotExpOracle`
    and engaged by :func:`~repro.core.dotexp.big_dot_exp` whenever the trace
    would otherwise require the full-identity Taylor apply (the
    degenerate-sketch regime and the ``use_sketch=False`` path).  The mode
    is resolved once at construction from the stack's immutable shape
    (:func:`select_trace_mode`); weight-dependent inputs are rebound per
    oracle call through :meth:`bind`.

    Parameters
    ----------
    packed:
        The :class:`~repro.operators.packed.PackedGramFactors` view whose
        ``Psi = sum_i x_i Q_i Q_i^T`` is being exponentiated.
    eps:
        Relative tolerance the ``hutchinson`` mode must certify (the fast
        oracle passes the sketch half of its budget, which the degenerate
        regime's identity "sketch" leaves unused).  Ignored by the exact
        modes.
    mode:
        ``"auto"`` (default) applies :func:`select_trace_mode`; any
        explicit mode from its vocabulary (plus ``"hutchinson"``) forces
        the estimator.  ``"identity"`` makes :attr:`structured` false — the
        caller keeps the legacy push and this object only counts.
    seed:
        Deterministic seed of the Hutchinson probe stream.  Probes are
        drawn from ``default_rng((seed, call_index))``, so every call is
        reproducible and *independent of the oracle's sketch stream* —
        enabling the fixed-seed structured-vs-reference decision
        equivalence the regression tests certify.
    confidence:
        Standard-error multiple of the certified bound
        (:data:`TRACE_CONFIDENCE`).
    min_probes, max_probes:
        First probe block size and total probe budget (defaults:
        :data:`TRACE_MIN_PROBES` and ``TRACE_PROBE_CAP_FRACTION * m``).
        Exhausting the budget triggers the exact identity fallback.
    """

    def __init__(
        self,
        packed,
        eps: float = 0.05,
        mode: str = "auto",
        seed: int = 0,
        confidence: float = TRACE_CONFIDENCE,
        min_probes: int = TRACE_MIN_PROBES,
        max_probes: int | None = None,
    ) -> None:
        if eps <= 0 or eps >= 1:
            raise InvalidProblemError(f"eps must be in (0, 1), got {eps}")
        self.packed = packed
        # Adopt the stack's array backend for the eigendecompositions; all
        # other estimator state (probe streams, counters, caches) is host
        # NumPy regardless of backend.
        self.backend = getattr(packed, "backend", NUMPY)
        self.dim = int(packed.dim)
        self.total_rank = int(packed.total_rank)
        self.eps = float(eps)
        self.seed = int(seed)
        self.confidence = float(confidence)
        self.min_probes = max(2, int(min_probes))
        if max_probes is None:
            max_probes = max(
                self.min_probes, int(TRACE_PROBE_CAP_FRACTION * self.dim)
            )
        self.max_probes = int(max_probes)
        if mode == "auto":
            mode = select_trace_mode(self.dim, self.total_rank, probes=self.min_probes)
        if mode not in _TRACE_MODES:
            raise InvalidProblemError(
                f"unknown trace mode {mode!r}; expected one of {_TRACE_MODES} or 'auto'"
            )
        if mode == "gram" and self.total_rank > self.dim:
            raise InvalidProblemError(
                "trace mode 'gram' requires R <= m "
                f"(got R={self.total_rank}, m={self.dim})"
            )
        self.mode = mode
        self.calls = 0
        self.probes_drawn = 0
        self.identity_fallbacks = 0
        self.extra_work = 0.0
        self.max_error_bound = 0.0
        self.last: TraceEstimate | None = None
        self._mode_counts: dict[str, int] = {}
        self._col_w: np.ndarray | None = None
        self._gram_eig: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def structured(self) -> bool:
        """Whether this estimator replaces the identity push (mode != identity)."""
        return self.mode != "identity"

    def stats(self) -> dict:
        """Counters for regression tests and solver result metadata.

        The decision solvers surface this dict as
        ``result.metadata["trace_estimator"]`` next to the ``psi_state``
        and ``taylor_engine`` counters, so tests can assert the
        zero-identity-apply discipline and the certified-bound budget.
        """
        return {
            "mode": self.mode,
            "calls": self.calls,
            "probes_drawn": self.probes_drawn,
            "identity_fallbacks": self.identity_fallbacks,
            "extra_work": self.extra_work,
            "max_error_bound": self.max_error_bound,
            "mode_counts": dict(self._mode_counts),
        }

    def demote_to_identity(self) -> None:
        """Drop to the exact legacy identity push — the trace ladder's floor.

        Called by :class:`~repro.robustness.FastPathSupervisor` when a
        structured mode breaks (overflow, injected bound violation).  After
        demotion :attr:`structured` is ``False``, so
        :func:`~repro.core.dotexp.big_dot_exp` performs the identity push
        itself and this estimator is never consulted again; counters (and
        :attr:`identity_fallbacks`) are preserved for the run's metadata.
        """
        self.mode = "identity"
        self.identity_fallbacks += 1

    def export_state(self) -> dict:
        """Checkpointable snapshot of the estimator's mutable state.

        Restoring :attr:`calls` restores the Hutchinson probe stream — each
        call draws probes from ``default_rng((seed, call_index))`` — so a
        resumed solve replays the exact probe sequence an uninterrupted run
        would have drawn.  ``_col_w`` (rebound per oracle call) and the
        ``_gram_eig`` cache (a deterministic function of the stack) are
        derived data and deliberately absent.
        """
        return {
            "mode": self.mode,
            "calls": int(self.calls),
            "probes_drawn": int(self.probes_drawn),
            "identity_fallbacks": int(self.identity_fallbacks),
            "extra_work": float(self.extra_work),
            "max_error_bound": float(self.max_error_bound),
            "mode_counts": dict(self._mode_counts),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The mode is restored too: a checkpoint captured after a
        ``demote_to_identity`` resumes on the identity floor, keeping the
        resumed run's ladder position (and therefore its arithmetic)
        identical to the interrupted one.
        """
        mode = state["mode"]
        if mode not in _TRACE_MODES:
            raise InvalidProblemError(f"unknown trace mode {mode!r} in estimator state")
        self.mode = mode
        self.calls = int(state["calls"])
        self.probes_drawn = int(state["probes_drawn"])
        self.identity_fallbacks = int(state["identity_fallbacks"])
        self.extra_work = float(state["extra_work"])
        self.max_error_bound = float(state["max_error_bound"])
        self._mode_counts = dict(state["mode_counts"])
        self.last = None

    def bind(self, weights: np.ndarray) -> "TraceEstimator":
        """Bind the per-constraint weights of the current oracle call.

        Returns ``self`` so the oracle can pass
        ``trace_estimator=estimator.bind(x)`` straight into
        :func:`~repro.core.dotexp.big_dot_exp` (which has no weight
        argument of its own — the weights are exactly what generated its
        ``phi``).
        """
        self._col_w = self.packed.expand_weights(weights)
        return self

    # ------------------------------------------------------------------ modes
    def _gram_estimate(self, degree: int, scale: float) -> TraceEstimate:
        if self._col_w is None:
            raise InvalidProblemError(
                "bind(weights) must be called before a Gram trace estimate"
            )
        value = gram_exp_trace(
            self.packed.gram_matrix(),
            self._col_w,
            self.dim,
            degree,
            scale=scale,
            squared=True,
            backend=self.backend,
        )
        r = self.total_rank
        return TraceEstimate(
            value=value,
            error_bound=0.0,
            mode="gram",
            extra_work=float(r) ** 3 + float(r) * degree,
        )

    def _basis(self) -> tuple[np.ndarray, np.ndarray]:
        """Kept eigenpairs of the weight-independent ``Q^T Q`` (cached)."""
        if self._gram_eig is None:
            xp = self.backend
            gram = self.packed.gram_matrix()
            mu, w = xp.eigh(xp.asarray(0.5 * (gram + gram.T)))
            mu, w = xp.to_numpy(mu), xp.to_numpy(w)
            keep = mu > _BASIS_RTOL * max(float(mu[-1]), 0.0) if mu.size else mu > 0
            self._gram_eig = (mu[keep], w[:, keep])
        return self._gram_eig

    def _deflated_estimate(
        self, kernel, degree: int, scale: float, transformed: np.ndarray | None
    ) -> TraceEstimate:
        stacked = self.packed.dense_columns()
        if transformed is None:
            transformed = kernel.apply(stacked, degree, scale=scale)
        q = self.packed.matrix
        # M = Q^T (p(sPsi) Q - Q) = Q^T U Q with U = p(sPsi) - I; U is
        # symmetric with range inside range(Q), so projecting onto an
        # orthonormal basis V of range(Q) loses nothing: S = V^T U V.
        update = transformed - stacked
        m_mat = np.asarray(q.T @ update, dtype=np.float64)
        mu, w = self._basis()
        if mu.size == 0:
            return TraceEstimate(value=float(self.dim), error_bound=0.0, mode="deflated")
        inv_root = 1.0 / np.sqrt(mu)
        s = (w.T @ m_mat @ w) * inv_root[:, None] * inv_root[None, :]
        s = 0.5 * (s + s.T)
        value = float(self.dim) + 2.0 * float(np.trace(s)) + float(np.sum(s * s))
        if not np.isfinite(value):
            raise NumericalError(
                "deflated trace evaluation overflowed; reduce the spectral "
                "norm of psi or the degree",
                site="trace_estimation",
                kernel_mode="deflated",
            )
        r = self.total_rank
        return TraceEstimate(
            value=value,
            error_bound=0.0,
            mode="deflated",
            extra_work=float(self.dim) * r * r + 2.0 * float(r) ** 3,
        )

    def _identity_push(self, kernel, degree: int, scale: float) -> float:
        # kernel.apply takes (and returns) host arrays whatever the kernel's
        # backend, so the identity is materialised through the NumPy object.
        eye_transformed = kernel.apply(NUMPY.eye(self.dim), degree, scale=scale)
        return float(np.sum(eye_transformed * eye_transformed))

    def _hutchinson_estimate(
        self, kernel, degree: int, scale: float
    ) -> TraceEstimate:
        fault_hook("hutchinson", kernel_mode="hutchinson")
        if self._col_w is None:
            raise InvalidProblemError(
                "bind(weights) must be called before a Hutchinson trace estimate"
            )
        m = self.dim
        psi_trace = float(self._col_w @ self.packed.column_sq_norms())
        rng = np.random.default_rng((self.seed, self.calls))
        samples = np.zeros(0, dtype=np.float64)
        drawn = 0
        block = min(self.min_probes, self.max_probes)
        while True:
            z = rng.integers(0, 2, size=(m, block)).astype(np.float64) * 2.0 - 1.0
            pz = kernel.apply(z, degree, scale=scale)
            uz = pz - z
            psi_z = kernel.matvec(z)
            # ||z||^2 = m exactly for Rademacher probes, so the identity
            # part of p^2 = I + 2U + U^2 contributes zero variance; the
            # first-order control variate 2s z^T Psi z (exact expectation
            # 2s Tr[Psi]) removes the leading term of 2 z^T U z.
            # Probe blocks and kernel outputs are host arrays; the column
            # reductions route through the shared NumPy backend object.
            xp = NUMPY
            new = (
                2.0 * xp.einsum("ij,ij->j", z, uz)
                + xp.einsum("ij,ij->j", uz, uz)
                - 2.0 * scale * xp.einsum("ij,ij->j", z, psi_z)
            )
            samples = np.concatenate([samples, new])
            drawn += block
            estimate = float(m) + 2.0 * scale * psi_trace + float(samples.mean())
            stderr = float(samples.std(ddof=1)) / np.sqrt(samples.shape[0])
            bound = self.confidence * stderr
            if not np.isfinite(estimate):
                raise NumericalError(
                    "Hutchinson trace evaluation overflowed; reduce the "
                    "spectral norm of psi or the degree",
                    site="hutchinson",
                    kernel_mode="hutchinson",
                )
            if estimate > 0 and bound <= self.eps * estimate:
                self.probes_drawn += drawn
                return TraceEstimate(
                    value=estimate,
                    error_bound=bound,
                    mode="hutchinson",
                    probes=drawn,
                    extra_work=float(drawn) * max(self.packed.nnz, m),
                )
            if drawn >= self.max_probes:
                # Budget exhausted: certify by computing the exact value.
                # Never silent — the fallback is counted so the regression
                # tests can assert it does not fire on the supported grids.
                self.probes_drawn += drawn
                self.identity_fallbacks += 1
                value = self._identity_push(kernel, degree, scale)
                return TraceEstimate(
                    value=value,
                    error_bound=0.0,
                    mode="identity",
                    probes=drawn,
                    extra_work=float(m) * degree * max(self.packed.nnz, m),
                )
            block = min(drawn, self.max_probes - drawn)

    # ------------------------------------------------------------------ entry
    def estimate(
        self,
        kernel,
        degree: int,
        scale: float = 0.5,
        transformed_factors: np.ndarray | None = None,
    ) -> TraceEstimate:
        """Estimate ``Tr[p(scale * Psi)^2]`` for the currently-bound weights.

        Parameters
        ----------
        kernel:
            The Taylor kernel over the current ``Psi`` (any representation
            — the estimator only uses ``apply``/``matvec``).
        degree:
            Taylor truncation degree of ``p``.
        scale:
            Scalar inside the polynomial (the oracle's ``0.5``).
        transformed_factors:
            Optional ``p(scale * Psi) Q`` block, when the caller has
            already computed it for the Theorem 4.1 estimates — the
            deflated mode then adds only one projection GEMM.

        Returns
        -------
        TraceEstimate
            Value, certified bound, mode, probe count and extra model work;
            also stored as :attr:`last` for the oracle's work accounting.
        """
        if self.mode == "identity":
            raise InvalidProblemError(
                "trace mode 'identity' keeps the legacy push; the caller "
                "should not engage the estimator (structured is False)"
            )
        self.calls += 1
        if self.mode == "gram":
            result = self._gram_estimate(degree, scale)
        elif self.mode == "deflated":
            result = self._deflated_estimate(kernel, degree, scale, transformed_factors)
        else:
            result = self._hutchinson_estimate(kernel, degree, scale)
        self.extra_work += result.extra_work
        self.max_error_bound = max(self.max_error_bound, result.error_bound)
        self._mode_counts[result.mode] = self._mode_counts.get(result.mode, 0) + 1
        self.last = result
        return result

    def record_gram_estimate(self, value: float, degree: int) -> TraceEstimate:
        """Account a Gram-mode trace computed externally (the batched path).

        :func:`~repro.core.batch.solve_many` evaluates
        :func:`batched_gram_exp_trace` across a whole instance group in one
        stacked eigendecomposition, then books each row here so counters,
        work charges and :attr:`last` advance exactly as a
        :meth:`estimate` call in mode ``"gram"`` would have.
        """
        if self.mode != "gram":
            raise InvalidProblemError(
                f"record_gram_estimate requires trace mode 'gram', got {self.mode!r}"
            )
        self.calls += 1
        r = self.total_rank
        result = TraceEstimate(
            value=float(value),
            error_bound=0.0,
            mode="gram",
            extra_work=float(r) ** 3 + float(r) * degree,
        )
        self.extra_work += result.extra_work
        self.max_error_bound = max(self.max_error_bound, result.error_bound)
        self._mode_counts[result.mode] = self._mode_counts.get(result.mode, 0) + 1
        self.last = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceEstimator(dim={self.dim}, R={self.total_rank}, "
            f"mode={self.mode}, calls={self.calls})"
        )
