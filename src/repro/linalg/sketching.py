"""Johnson–Lindenstrauss sketching (the dimension-reduction step of Theorem 4.1).

Theorem 4.1 reduces ``exp(Phi) . A_i = || exp(Phi/2) Q_i ||_F^2`` to the
squared norm of a *sketched* matrix ``Pi exp(Phi/2) Q_i`` where ``Pi`` is a
Gaussian matrix with ``O(eps^{-2} log m)`` rows.  Because the left factor
``Pi`` is shared by all constraints, the polynomial approximation of
``exp(Phi/2)`` only has to be applied to the ``O(eps^{-2} log m)`` rows of
``Pi`` (not to every column of every ``Q_i``), which is what brings the work
down to nearly-linear in the number of nonzeros of the factorization.

This module provides the sketch-dimension rule, Gaussian sketch generation,
and :class:`SketchedNormEstimator` which packages the "sketch once, estimate
many Frobenius norms" pattern used by :func:`repro.core.dotexp.big_dot_exp`.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.utils.random_utils import RandomState, as_generator


def jl_dimension(m: int, eps: float, constant: float = 8.0) -> int:
    """Sketch dimension ``ceil(constant * log(max(m, 2)) / eps^2)``.

    The paper states the dimension as ``O(eps^{-2} log m)``; the constant is
    exposed because experiment E8 sweeps it to locate the accuracy/work
    trade-off empirically.
    """
    if eps <= 0 or eps >= 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    if constant <= 0:
        raise ValueError(f"constant must be > 0, got {constant}")
    return max(1, int(math.ceil(constant * math.log(max(m, 2)) / eps**2)))


def gaussian_sketch(rows: int, cols: int, rng: RandomState = None) -> np.ndarray:
    """Return a ``rows x cols`` Gaussian JL sketch matrix ``Pi``.

    Entries are i.i.d. ``N(0, 1/rows)`` so that ``E[||Pi v||^2] = ||v||^2``
    for every fixed vector ``v``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"sketch shape must be positive, got ({rows}, {cols})")
    gen = as_generator(rng)
    return gen.standard_normal((rows, cols)) / math.sqrt(rows)


def sketch_columns(sketch: np.ndarray, matrix: np.ndarray | sp.spmatrix) -> np.ndarray:
    """Apply the sketch to the columns of ``matrix`` (compute ``sketch @ matrix``)."""
    if sp.issparse(matrix):
        return np.asarray(sketch @ matrix)
    return sketch @ np.asarray(matrix, dtype=np.float64)


class SketchedNormEstimator:
    """Estimate many squared Frobenius norms ``||T Q_i||_F^2`` with one sketch.

    Parameters
    ----------
    transform_rows:
        The matrix ``(Pi T)`` — the sketch already pushed through the linear
        transform ``T`` (for Theorem 4.1, ``T`` is the Taylor approximation
        of ``exp(Phi/2)``).  Shape ``d x m`` with ``d`` the sketch dimension.

    Notes
    -----
    The estimator is unbiased for every fixed ``Q_i``:
    ``E[||Pi T Q_i||_F^2] = ||T Q_i||_F^2``, and by the JL lemma the relative
    error is at most ``eps`` with high probability when the sketch dimension
    is ``Omega(eps^{-2} log(m))``.
    """

    def __init__(self, transform_rows: np.ndarray) -> None:
        transform_rows = np.asarray(transform_rows, dtype=np.float64)
        if transform_rows.ndim != 2:
            raise ValueError("transform_rows must be a 2-D array")
        self.transform_rows = transform_rows
        self.sketch_dim, self.dim = transform_rows.shape

    def estimate(self, factor: np.ndarray | sp.spmatrix) -> float:
        """Return the estimate of ``||T Q||_F^2`` for factor ``Q`` (m x r)."""
        if sp.issparse(factor):
            sketched = np.asarray(self.transform_rows @ factor)
        else:
            sketched = self.transform_rows @ np.asarray(factor, dtype=np.float64)
        return float(np.sum(sketched * sketched))

    def estimate_many(self, factors: list) -> np.ndarray:
        """Vector of estimates for a list of factors."""
        return np.array([self.estimate(q) for q in factors], dtype=np.float64)
