"""Truncated-Taylor approximation of the matrix exponential (Lemma 4.2).

Lemma 4.2 of the paper (reproduced from Lemma 6 of Arora–Kale) states that
for a PSD matrix ``B`` with ``||B||_2 <= kappa`` the truncated series

.. math::

    \\hat B \\;=\\; \\sum_{0 \\le i < k} \\frac{1}{i!} B^i,
    \\qquad k = \\max\\{e^2 \\kappa,\\ \\ln(2/\\varepsilon)\\}

satisfies ``(1 - eps) exp(B) <= \\hat B <= exp(B)`` in the Loewner order.
The point of the lemma is that :math:`\\hat B` can be *applied to a vector*
using only ``k`` matrix–vector products with ``B`` — no eigendecomposition —
which is what makes the nearly-linear-work oracle of Theorem 4.1 possible.

This module provides the degree rule (:func:`taylor_degree`), a vector-apply
(:func:`taylor_expm_apply`), a dense materialisation used in tests
(:func:`taylor_expm_matrix`), and :class:`TaylorExpmOperator`, a
``LinearOperator``-style object representing :math:`\\hat B` for a fixed
``Phi`` that tracks how many matrix–vector products it performed (the work
measure used in experiment E2/E3).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.exceptions import NumericalError
from repro.utils.validation import check_symmetric


MatVec = Callable[[np.ndarray], np.ndarray]


def taylor_degree(kappa: float, eps: float) -> int:
    """Number of Taylor terms ``k = max(e^2 kappa, ln(2/eps))`` (Lemma 4.2).

    Parameters
    ----------
    kappa:
        Upper bound on the spectral norm of the matrix being exponentiated
        (``kappa >= max(1, ||B||_2)`` in Theorem 4.1).
    eps:
        Relative accuracy target in ``(0, 1)``.
    """
    if eps <= 0 or eps >= 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    if kappa < 0:
        raise ValueError(f"kappa must be non-negative, got {kappa}")
    k = max(math.e**2 * max(kappa, 1.0), math.log(2.0 / eps))
    return int(math.ceil(k))


def _as_matvec(phi: np.ndarray | sp.spmatrix | MatVec) -> tuple[MatVec, int | None]:
    """Normalise ``phi`` into a matvec callable, returning (matvec, dim)."""
    if callable(phi) and not isinstance(phi, np.ndarray) and not sp.issparse(phi):
        return phi, None
    if sp.issparse(phi):
        mat = phi.tocsr()
        return (lambda v: mat @ v), mat.shape[0]
    dense = check_symmetric(np.asarray(phi, dtype=np.float64), "phi")
    return (lambda v: dense @ v), dense.shape[0]


def taylor_expm_apply(
    phi: np.ndarray | sp.spmatrix | MatVec,
    vectors: np.ndarray,
    degree: int,
) -> np.ndarray:
    """Apply the degree-``degree`` Taylor polynomial of ``exp(phi)`` to vectors.

    ``vectors`` may be a single vector (1-D) or a matrix whose *columns* are
    the vectors to transform; the result has the same shape.  The evaluation
    uses the stable forward recurrence ``t_{i+1} = (phi @ t_i) / (i+1)``,
    accumulating ``sum_i t_i``, which needs exactly ``degree - 1``
    matrix–vector products per column.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    matvec, _ = _as_matvec(phi)
    single = vectors.ndim == 1
    cols = vectors[:, None] if single else np.asarray(vectors, dtype=np.float64)
    term = cols.astype(np.float64).copy()
    acc = term.copy()
    for i in range(1, degree):
        term = matvec(term) / float(i)
        acc += term
        if not np.all(np.isfinite(acc)):
            raise NumericalError(
                "Taylor expm evaluation overflowed; reduce the spectral norm "
                "of phi (e.g. by splitting exp(phi) = exp(phi/2)^2) or the degree",
                site="taylor.reference",
            )
    return acc[:, 0] if single else acc


def taylor_expm_matrix(phi: np.ndarray, degree: int) -> np.ndarray:
    """Materialise the truncated Taylor polynomial ``sum_{i<degree} phi^i / i!``.

    Intended for validation/tests on small matrices; the solver itself only
    ever applies the polynomial to (sketched) vectors.
    """
    phi = check_symmetric(np.asarray(phi, dtype=np.float64), "phi")
    return taylor_expm_apply(phi, np.eye(phi.shape[0]), degree)


class TaylorExpmOperator:
    """Operator representing ``exp(phi/2)`` approximated by a Taylor polynomial.

    Theorem 4.1 writes ``exp(Phi) . A_i = || exp(Phi/2) Q_i ||_F^2`` for
    ``A_i = Q_i Q_i^T``; the operator exponentiates ``phi/2`` so callers can
    form those Frobenius norms directly.  The operator records the number of
    matrix–vector products it has performed in :attr:`matvec_count`, which
    the work–depth accounting of experiment E2 consumes.

    Matrix inputs (dense/sparse) and Taylor kernels
    (:class:`~repro.linalg.taylor_blocked.BlockedTaylorKernel` or
    :class:`~repro.linalg.taylor_gram.GramTaylorKernel`) are evaluated
    through their fused block recurrences (same polynomial, fewer per-term
    passes); matvec callables keep the per-term reference recurrence of
    :func:`taylor_expm_apply`.

    Parameters
    ----------
    phi:
        Symmetric PSD matrix (dense or sparse), a matvec callable, or an
        already-built Taylor kernel over ``phi``.
    kappa:
        Upper bound on ``||phi||_2`` (not ``phi/2``); the degree rule of
        Lemma 4.2 is applied to ``kappa/2``.
    eps:
        Relative accuracy of the polynomial approximation.
    """

    def __init__(
        self,
        phi: np.ndarray | sp.spmatrix | MatVec | "BlockedTaylorKernel",
        kappa: float,
        eps: float,
        dim: int | None = None,
    ) -> None:
        from repro.linalg.taylor_blocked import BlockedTaylorKernel
        from repro.linalg.taylor_gram import GramTaylorKernel

        if kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {kappa}")
        self._kernel: BlockedTaylorKernel | GramTaylorKernel | None
        if isinstance(phi, (BlockedTaylorKernel, GramTaylorKernel)):
            self._kernel = phi
            self._matvec = phi.matvec
            inferred_dim = phi.dim
        elif callable(phi) and not isinstance(phi, np.ndarray) and not sp.issparse(phi):
            self._kernel = None
            self._matvec, inferred_dim = _as_matvec(phi)
        else:
            if not sp.issparse(phi):
                phi = check_symmetric(np.asarray(phi, dtype=np.float64), "phi")
            self._kernel = BlockedTaylorKernel.from_matrix(phi)
            self._matvec = self._kernel.matvec
            inferred_dim = self._kernel.dim
        self.dim = dim if dim is not None else inferred_dim
        if self.dim is None:
            raise ValueError("dim must be provided when phi is a callable")
        self.kappa = float(kappa)
        self.eps = float(eps)
        self.degree = taylor_degree(max(self.kappa / 2.0, 1.0), eps)
        self.matvec_count = 0

    def _counted_matvec(self, block: np.ndarray) -> np.ndarray:
        ncols = 1 if block.ndim == 1 else block.shape[1]
        self.matvec_count += ncols
        return self._matvec(block) * 0.5  # apply phi/2

    def apply(self, vectors: np.ndarray) -> np.ndarray:
        """Apply the polynomial approximation of ``exp(phi/2)`` to ``vectors``."""
        if self._kernel is not None:
            before = self._kernel.matvec_count
            out = self._kernel.apply(vectors, self.degree, scale=0.5)
            self.matvec_count += self._kernel.matvec_count - before
            return out
        return taylor_expm_apply(self._counted_matvec, vectors, self.degree)

    def quadratic_form(self, q: np.ndarray) -> float:
        """Return ``|| exp(phi/2) q ||_F^2`` approximated by the polynomial.

        For a factor matrix ``q`` (``m x r``) this equals ``exp(phi) . (q q^T)``
        up to the ``(1 - eps)`` one-sided error of Lemma 4.2.
        """
        transformed = self.apply(np.asarray(q, dtype=np.float64))
        return float(np.sum(transformed * transformed))
