"""Positive-semidefiniteness checks and the Loewner partial order.

The paper works exclusively with symmetric PSD matrices and the Loewner
order ``A <= B  iff  B - A`` is PSD (Section 2.1).  This module provides the
numerical versions of those predicates along with a PSD-cone projection used
for sanitising nearly-PSD inputs and a random PSD generator used throughout
tests and synthetic workloads.
"""

from __future__ import annotations

import numpy as np

from repro.config import get_config
from repro.exceptions import NotPositiveSemidefiniteError
from repro.utils.random_utils import RandomState, as_generator
from repro.utils.validation import check_symmetric, symmetrize


def min_eigenvalue(matrix: np.ndarray) -> float:
    """Return the minimum eigenvalue of a symmetric matrix."""
    matrix = check_symmetric(matrix, "matrix")
    if matrix.shape[0] == 0:
        return 0.0
    return float(np.linalg.eigvalsh(matrix)[0])


def max_eigenvalue(matrix: np.ndarray) -> float:
    """Return the maximum eigenvalue of a symmetric matrix."""
    matrix = check_symmetric(matrix, "matrix")
    if matrix.shape[0] == 0:
        return 0.0
    return float(np.linalg.eigvalsh(matrix)[-1])


def is_psd(matrix: np.ndarray, tol: float | None = None) -> bool:
    """Return ``True`` if ``matrix`` is PSD up to tolerance.

    A Cholesky factorization is attempted first (cheap accept path for
    strictly positive definite matrices); if it fails the minimum eigenvalue
    is compared against ``-tol * scale`` where ``scale`` bounds the matrix
    magnitude, so the test is scale-invariant.
    """
    matrix = check_symmetric(matrix, "matrix")
    if matrix.shape[0] == 0:
        return True
    tol = get_config().psd_tol if tol is None else tol
    scale = max(1.0, float(np.abs(matrix).max(initial=0.0)))
    try:
        np.linalg.cholesky(matrix + (tol * scale) * np.eye(matrix.shape[0]))
        return True
    except np.linalg.LinAlgError:
        pass
    return min_eigenvalue(matrix) >= -tol * scale


def check_psd(matrix: np.ndarray, name: str = "matrix", tol: float | None = None) -> np.ndarray:
    """Validate that ``matrix`` is PSD; return its symmetrized form.

    Raises
    ------
    NotPositiveSemidefiniteError
        If the minimum eigenvalue is below ``-tol * scale``.
    """
    matrix = check_symmetric(matrix, name)
    tol = get_config().psd_tol if tol is None else tol
    if matrix.shape[0] == 0:
        return matrix
    scale = max(1.0, float(np.abs(matrix).max(initial=0.0)))
    lam_min = min_eigenvalue(matrix)
    if lam_min < -tol * scale:
        raise NotPositiveSemidefiniteError(
            f"{name} is not positive semidefinite: lambda_min = {lam_min:.3e}",
            min_eigenvalue=lam_min,
        )
    return matrix


def loewner_leq(a: np.ndarray, b: np.ndarray, tol: float | None = None) -> bool:
    """Return ``True`` if ``a <= b`` in the Loewner order (``b - a`` PSD)."""
    a = check_symmetric(a, "a")
    b = check_symmetric(b, "b")
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return is_psd(b - a, tol=tol)


def project_to_psd(matrix: np.ndarray) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone (clip negative eigenvalues).

    This is the Frobenius-norm projection: eigenvalues below zero are set to
    zero and the matrix is reassembled.
    """
    matrix = check_symmetric(matrix, "matrix")
    if matrix.shape[0] == 0:
        return matrix
    eigvals, eigvecs = np.linalg.eigh(matrix)
    eigvals = np.clip(eigvals, 0.0, None)
    return symmetrize((eigvecs * eigvals) @ eigvecs.T)


def nearest_psd(matrix: np.ndarray) -> np.ndarray:
    """Return the nearest PSD matrix to an arbitrary square matrix.

    The input is first symmetrized (projection onto symmetric matrices) and
    then projected onto the PSD cone; the composition is the Frobenius-norm
    projection onto the set of symmetric PSD matrices (Higham, 1988).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    return project_to_psd(symmetrize(matrix))


def random_psd(
    dim: int,
    rank: int | None = None,
    scale: float = 1.0,
    rng: RandomState = None,
    spectrum: np.ndarray | None = None,
) -> np.ndarray:
    """Generate a random symmetric PSD matrix.

    Parameters
    ----------
    dim:
        Matrix dimension ``m``.
    rank:
        Rank of the output (defaults to full rank).  The matrix is formed as
        ``G G^T`` with ``G`` an ``m x rank`` Gaussian matrix unless an
        explicit ``spectrum`` is supplied.
    scale:
        The result is scaled so its spectral norm equals ``scale`` (when the
        matrix is nonzero).
    spectrum:
        Optional explicit non-negative eigenvalue vector of length ``dim``;
        when given, a Haar-random orthogonal basis is used and ``rank`` is
        ignored.
    """
    if dim <= 0:
        raise ValueError(f"dim must be >= 1, got {dim}")
    gen = as_generator(rng)
    if spectrum is not None:
        spectrum = np.asarray(spectrum, dtype=np.float64)
        if spectrum.shape != (dim,):
            raise ValueError(f"spectrum must have shape ({dim},), got {spectrum.shape}")
        if np.any(spectrum < 0):
            raise ValueError("spectrum must be non-negative")
        from repro.utils.random_utils import random_orthogonal

        basis = random_orthogonal(dim, gen)
        mat = (basis * spectrum) @ basis.T
    else:
        rank = dim if rank is None else int(rank)
        if rank <= 0 or rank > dim:
            raise ValueError(f"rank must be in [1, {dim}], got {rank}")
        factor = gen.standard_normal((dim, rank))
        mat = factor @ factor.T
    mat = symmetrize(mat)
    norm = float(np.linalg.eigvalsh(mat)[-1]) if dim else 0.0
    if norm > 0 and scale > 0:
        mat *= scale / norm
    return symmetrize(mat)
