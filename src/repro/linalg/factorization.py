"""Gram factorizations and matrix square roots for PSD matrices.

The fast oracle of Theorem 4.1 assumes each constraint matrix is given in
factorized ("prefactored") form ``A_i = Q_i Q_i^T`` and that ``C^{-1/2}`` is
available.  This module provides:

* :func:`gram_factor` — an eigendecomposition-based factorization
  ``A = Q Q^T`` with ``Q`` of width equal to the numerical rank,
* :func:`pivoted_cholesky` — a pivoted Cholesky alternative that produces a
  lower-triangular-up-to-permutation factor and works on rank-deficient
  inputs,
* :func:`sqrt_psd` / :func:`inverse_sqrt` — symmetric (inverse) square roots
  used by the normalization ``B_i = C^{-1/2} A_i C^{-1/2}`` of Appendix A.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import NumericalError
from repro.linalg.psd import check_psd
from repro.utils.validation import symmetrize


def _eig_psd(matrix: np.ndarray, name: str) -> tuple[np.ndarray, np.ndarray]:
    matrix = check_psd(matrix, name)
    eigvals, eigvecs = np.linalg.eigh(matrix)
    eigvals = np.clip(eigvals, 0.0, None)
    return eigvals, eigvecs


def gram_factor(matrix: np.ndarray, rank_tol: float = 1e-12) -> np.ndarray:
    """Return ``Q`` such that ``matrix = Q @ Q.T`` with ``Q`` m-by-r.

    ``r`` is the numerical rank: eigenvalues below ``rank_tol * lambda_max``
    are dropped.  For the zero matrix a single zero column is returned so
    that downstream code never has to special-case empty factors.
    """
    eigvals, eigvecs = _eig_psd(matrix, "matrix")
    if eigvals.size == 0:
        return np.zeros((0, 1))
    lam_max = float(eigvals[-1])
    if lam_max <= 0.0:
        return np.zeros((matrix.shape[0], 1))
    keep = eigvals > rank_tol * lam_max
    vals = eigvals[keep]
    vecs = eigvecs[:, keep]
    return vecs * np.sqrt(vals)


def gram_factor_lowrank(matrix: np.ndarray, rank: int) -> np.ndarray:
    """Return the best rank-``rank`` Gram factor of a PSD matrix.

    Keeps the ``rank`` largest eigenpairs; the result ``Q`` satisfies
    ``Q @ Q.T ~= matrix`` with error equal to the discarded eigenvalue mass.
    """
    if rank <= 0:
        raise ValueError(f"rank must be >= 1, got {rank}")
    eigvals, eigvecs = _eig_psd(matrix, "matrix")
    order = np.argsort(eigvals)[::-1][: min(rank, eigvals.size)]
    vals = eigvals[order]
    vecs = eigvecs[:, order]
    return vecs * np.sqrt(vals)


def pivoted_cholesky(
    matrix: np.ndarray, tol: float = 1e-12, max_rank: int | None = None
) -> np.ndarray:
    """Pivoted (rank-revealing) Cholesky factorization of a PSD matrix.

    Returns ``L`` with ``matrix ~= L @ L.T`` where ``L`` has one column per
    pivot step.  The algorithm greedily picks the largest remaining diagonal
    entry, which makes it robust on rank-deficient matrices and gives an
    approximation error bounded by the trace of the un-eliminated diagonal.
    """
    matrix = check_psd(matrix, "matrix")
    m = matrix.shape[0]
    if m == 0:
        return np.zeros((0, 1))
    diag = np.diag(matrix).astype(np.float64).copy()
    max_rank = m if max_rank is None else min(max_rank, m)
    columns: list[np.ndarray] = []
    residual = matrix.astype(np.float64).copy()
    threshold = tol * max(1.0, float(diag.max(initial=0.0)))
    for _ in range(max_rank):
        pivot = int(np.argmax(diag))
        pivot_val = diag[pivot]
        if pivot_val <= threshold:
            break
        col = residual[:, pivot] / np.sqrt(pivot_val)
        columns.append(col)
        residual -= np.outer(col, col)
        diag = np.clip(np.diag(residual).copy(), 0.0, None)
    if not columns:
        return np.zeros((m, 1))
    return np.column_stack(columns)


def sqrt_psd(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric PSD square root ``matrix^{1/2}``."""
    eigvals, eigvecs = _eig_psd(matrix, "matrix")
    return symmetrize((eigvecs * np.sqrt(eigvals)) @ eigvecs.T)


def inverse_sqrt(matrix: np.ndarray, rcond: float = 1e-12) -> np.ndarray:
    """Return the symmetric inverse square root ``matrix^{-1/2}``.

    The paper's Appendix A treats the objective matrix ``C`` as full rank on
    the support of the constraints; here eigenvalues below
    ``rcond * lambda_max`` are treated as zero and pseudo-inverted, which
    implements exactly that restriction-to-support behaviour.

    Raises
    ------
    NumericalError
        If the matrix is (numerically) the zero matrix, for which no
        normalization is possible.
    """
    eigvals, eigvecs = _eig_psd(matrix, "matrix")
    if eigvals.size == 0:
        return matrix.copy()
    lam_max = float(eigvals[-1])
    if lam_max <= 0.0:
        raise NumericalError("cannot form inverse square root of the zero matrix")
    inv_sqrt_vals = np.where(eigvals > rcond * lam_max, 1.0 / np.sqrt(np.clip(eigvals, 1e-300, None)), 0.0)
    return symmetrize((eigvecs * inv_sqrt_vals) @ eigvecs.T)
