"""Spectral norms, trace inner products, and related estimators.

The solver needs ``||Phi||_2`` upper bounds (to pick the Taylor degree in
Theorem 4.1, Lemma 3.5 guarantees ``||Phi||_2 <= O(log(n)/eps)`` for the
matrices it exponentiates) and trace inner products ``A . B = Tr[A B]``
throughout.  For matrices given only through matrix–vector products we
provide power iteration and a Lanczos-based estimator built on
``scipy.sparse.linalg.eigsh``.

The estimators here are host-side drivers: they hand NumPy vectors to the
caller's matvec callable and consume NumPy vectors back.  Array-backend
acceleration (see :mod:`repro.backend`) happens *inside* those callables —
the packed/Taylor kernels transfer at their own boundaries — so the
Lanczos/power iterations themselves are backend-agnostic by construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.config import get_config
from repro.exceptions import NumericalError
from repro.robustness.faultinject import fault_hook
from repro.utils.random_utils import RandomState, as_generator
from repro.utils.validation import check_symmetric


def trace_product(a: np.ndarray | sp.spmatrix, b: np.ndarray | sp.spmatrix) -> float:
    """Trace inner product ``A . B = Tr[A B] = sum_ij A_ij B_ij`` (Section 2.1).

    For symmetric inputs the elementwise form is used because it is
    ``O(m^2)`` rather than the ``O(m^3)`` of forming the product ``A B``.
    """
    if sp.issparse(a) or sp.issparse(b):
        a_sp = sp.csr_matrix(a)
        b_sp = sp.csr_matrix(b)
        if a_sp.shape != b_sp.shape:
            raise ValueError(f"shape mismatch: {a_sp.shape} vs {b_sp.shape}")
        return float(a_sp.multiply(b_sp).sum())
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError(f"shape mismatch: {a_arr.shape} vs {b_arr.shape}")
    return float(np.sum(a_arr * b_arr))


def frobenius_inner(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius inner product; identical to :func:`trace_product` for symmetric inputs."""
    return trace_product(a, b)


def spectral_norm_power(
    matvec: Callable[[np.ndarray], np.ndarray] | np.ndarray | sp.spmatrix,
    dim: int | None = None,
    tol: float | None = None,
    maxiter: int | None = None,
    rng: RandomState = None,
    v0: np.ndarray | None = None,
    return_vector: bool = False,
) -> float | tuple[float, np.ndarray]:
    """Estimate the spectral norm of a symmetric PSD operator by power iteration.

    Accepts a dense matrix, a sparse matrix, or a matvec callable (in which
    case ``dim`` is required).  Convergence is declared when the Rayleigh
    quotient changes by less than ``tol`` relatively between iterations.

    Parameters
    ----------
    v0:
        Optional warm-start vector (normalised internally; ``rng`` is not
        consumed when given).  The decision solvers' iterates change mildly
        per step, so re-estimating ``||Psi||_2`` from the previous call's
        converged vector takes a handful of iterations instead of a cold
        start's hundreds — the fast oracle threads this through
        ``return_vector``.  Caution: a pure warm start forfeits the random
        start's overlap guarantee — if the operator's dominant
        eigendirection has rotated away from ``v0``, the stopping rule can
        fire on the stale direction and under-estimate the norm.  Callers
        re-estimating a *changing* operator should blend fresh randomness
        into ``v0`` (see ``repro.core.dotexp.NORM_RESTART_MIX``).
    return_vector:
        When ``True`` return ``(estimate, vector)`` where ``vector`` is the
        last normalised iterate (the warm start for the next call).
    """
    cfg = get_config()
    tol = cfg.power_iteration_tol if tol is None else tol
    maxiter = cfg.power_iteration_maxiter if maxiter is None else maxiter

    if callable(matvec) and not isinstance(matvec, np.ndarray) and not sp.issparse(matvec):
        apply_op = matvec
        if dim is None:
            raise ValueError("dim is required when passing a matvec callable")
    elif sp.issparse(matvec):
        mat = matvec.tocsr()
        apply_op = lambda v: mat @ v  # noqa: E731
        dim = mat.shape[0]
    else:
        dense = check_symmetric(np.asarray(matvec, dtype=np.float64), "matrix")
        apply_op = lambda v: dense @ v  # noqa: E731
        dim = dense.shape[0]

    if dim == 0:
        return (0.0, np.zeros(0)) if return_vector else 0.0
    if v0 is not None:
        vec = np.asarray(v0, dtype=np.float64).ravel()
        if vec.shape[0] != dim:
            raise ValueError(f"v0 must have length {dim}, got {vec.shape[0]}")
        norm0 = float(np.linalg.norm(vec))
        if norm0 <= 1e-300:
            v0 = None
        else:
            vec = vec / norm0
    if v0 is None:
        gen = as_generator(rng)
        vec = gen.standard_normal(dim)
        vec /= np.linalg.norm(vec)
    estimate = 0.0

    def result(value: float):
        return (value, vec) if return_vector else value

    for _ in range(maxiter):
        new_vec = apply_op(vec)
        norm = float(np.linalg.norm(new_vec))
        if norm <= 1e-300:
            return result(0.0)
        new_estimate = float(vec @ new_vec)
        vec = new_vec / norm
        if abs(new_estimate - estimate) <= tol * max(abs(new_estimate), 1e-300):
            return result(max(new_estimate, 0.0))
        estimate = new_estimate
    return result(max(estimate, 0.0))


def batched_spectral_norm_power(
    apply_fn: Callable[[np.ndarray], np.ndarray],
    v0: np.ndarray,
    tol: float | None = None,
    maxiter: int | None = None,
    fallback_rngs: "list | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run :func:`spectral_norm_power` on a batch of operators in lockstep.

    The batched counterpart used by :func:`repro.core.batch.solve_many`:
    every slice follows the sequential estimator's exact update sequence
    (norm, Rayleigh quotient, normalisation, relative-change stop), but the
    matvec and both inner products run as stacked GEMMs over the
    still-active slices, so each slice's trajectory — and therefore its
    estimate, its converged vector, and its sweep count — is bit-identical
    to a sequential :func:`spectral_norm_power` call on that slice alone.

    Parameters
    ----------
    apply_fn:
        Batched matvec ``apply_fn(vecs, rows)``: maps an ``(A, m)`` stack of
        vectors to the ``(A, m)`` stack of per-slice products ``Psi_b v_b``.
        ``rows`` is ``None`` while every slice is still iterating, and an
        index array selecting the still-active slices once some have
        converged — converged slices drop out of the GEMMs entirely instead
        of riding along as dead weight.
    v0:
        ``(B, m)`` stack of start vectors (normalised internally, exactly
        like the sequential ``v0`` path; ``fallback_rngs`` is only consumed
        for rows whose start vector is degenerate).
    tol, maxiter:
        As in :func:`spectral_norm_power` (config defaults when ``None``).
    fallback_rngs:
        Optional per-slice generators for the degenerate-``v0`` cold start
        (sequentially a fresh Gaussian draw); ``None`` raises on a
        degenerate row instead.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``(estimates, vectors)``: the ``(B,)`` norm estimates and the
        ``(B, m)`` stack of last normalised iterates (the warm starts for
        the next call).
    """
    cfg = get_config()
    tol = cfg.power_iteration_tol if tol is None else tol
    maxiter = cfg.power_iteration_maxiter if maxiter is None else maxiter
    vecs = np.asarray(v0, dtype=np.float64)
    if vecs.ndim != 2:
        raise ValueError(f"v0 must be a (B, m) stack, got ndim={vecs.ndim}")
    batch, dim = vecs.shape
    out_est = np.zeros(batch, dtype=np.float64)
    out_vec = np.array(vecs, copy=True)
    if batch == 0 or dim == 0:
        return out_est, out_vec
    norms0 = np.sqrt(np.matmul(vecs[:, None, :], vecs[:, :, None])[:, 0, 0])
    degenerate = norms0 <= 1e-300
    vecs = vecs / np.where(degenerate, 1.0, norms0)[:, None]
    for b in np.flatnonzero(degenerate):
        if fallback_rngs is None:
            raise ValueError("degenerate v0 row and no fallback rng given")
        fresh = as_generator(fallback_rngs[b]).standard_normal(dim)
        fresh /= np.linalg.norm(fresh)
        vecs[b] = fresh
    estimates = np.zeros(batch, dtype=np.float64)
    rows = np.arange(batch)
    for _ in range(maxiter):
        new_vecs = apply_fn(vecs, None if rows.shape[0] == batch else rows)
        norms = np.sqrt(np.matmul(new_vecs[:, None, :], new_vecs[:, :, None])[:, 0, 0])
        dead = norms <= 1e-300
        new_estimates = np.matmul(vecs[:, None, :], new_vecs[:, :, None])[:, 0, 0]
        divided = new_vecs / np.where(dead, 1.0, norms)[:, None]
        converged = np.abs(new_estimates - estimates) <= tol * np.maximum(
            np.abs(new_estimates), 1e-300
        )
        finishing = dead | converged
        if finishing.any():
            # Sequential semantics: a vanishing iterate returns estimate 0
            # with the *previous* normalised vector.
            if dead.any():
                out_est[rows[dead]] = 0.0
                out_vec[rows[dead]] = vecs[dead]
            settled = converged & ~dead
            if settled.any():
                out_est[rows[settled]] = np.maximum(new_estimates[settled], 0.0)
                out_vec[rows[settled]] = divided[settled]
            keep = ~finishing
            rows = rows[keep]
            if rows.shape[0] == 0:
                return out_est, out_vec
            vecs = divided[keep]
            estimates = new_estimates[keep]
        else:
            vecs = divided
            estimates = new_estimates
    out_est[rows] = np.maximum(estimates, 0.0)
    out_vec[rows] = vecs
    return out_est, out_vec


def top_eigenvalue(
    matrix: np.ndarray | sp.spmatrix | Callable[[np.ndarray], np.ndarray],
    dim: int | None = None,
    tol: float = 1e-10,
    rng: RandomState = None,
    dense_cutoff: int = 64,
    maxiter: int | None = None,
    v0: np.ndarray | None = None,
    return_vector: bool = False,
    info: dict | None = None,
) -> float | tuple[float, np.ndarray | None]:
    """Largest eigenvalue of a symmetric PSD matrix, cheaply but reliably.

    For tiny matrices (``dim <= dense_cutoff``) a dense ``eigvalsh`` is both
    fastest and exact; above the cutoff the value is computed by Lanczos
    (ARPACK ``eigsh`` with genuine convergence control) at one
    matrix–vector product per sweep instead of the ``O(m^3)``
    eigendecomposition, falling back to power iteration only if ARPACK
    fails to converge.  Matvec-callable inputs run the same Lanczos through
    a :class:`scipy.sparse.linalg.LinearOperator`, so the matrix behind the
    callable is never materialised (tiny callables below the cutoff are
    materialised through ``dim`` matvecs and handed to ``eigvalsh``, which
    is both cheaper and exact at that size).  The decision solvers use
    this for their periodic certificate checks, history records, and the
    final dual rescaling, charging the *measured* cost (see ``info``) to
    the work–depth tracker; the certificate uses demand an accurate value
    (an underestimate would overstate dual feasibility), which is why
    Lanczos is preferred over the margin-free power iteration above the
    cutoff.

    Parameters
    ----------
    matrix:
        Symmetric PSD matrix (dense or scipy sparse) or a matvec callable
        ``v -> A @ v`` (requires ``dim``).
    dim:
        Ambient dimension, required only for callable input.
    tol:
        Convergence tolerance of the iterative estimators.
    rng:
        Randomness source for the power-iteration fallback's start vector.
        Callers that also consume randomness elsewhere should pass a
        *spawned* generator so eigenvalue estimation cannot perturb other
        streams (see the decision solver's usage).
    dense_cutoff:
        Dimension at or below which the exact dense ``eigvalsh`` is used.
    maxiter:
        Iteration cap forwarded to the power-iteration fallback.
    v0:
        Optional warm-start vector for the Lanczos iteration.  The decision
        solvers' iterates change mildly per step, so seeding ARPACK with
        the previous call's converged eigenvector cuts the sweep count from
        dozens to a handful.  Unlike power iteration, Lanczos convergence
        is certified by the Ritz residual rather than Rayleigh-quotient
        stagnation, so a stale ``v0`` costs extra sweeps but cannot silently
        return the wrong eigenvalue.  ``None`` keeps ARPACK's own
        (deterministic) starting residual.
    return_vector:
        When ``True`` return ``(value, vector)`` where ``vector`` is the
        converged top eigenvector (the warm start for the next call), or
        ``None`` on paths that do not produce one.
    info:
        Optional dict filled with the measured cost of the call:
        ``info["matvecs"]`` (operator applications performed — ``dim`` for
        the dense ``eigvalsh`` paths, the ARPACK/power sweep count
        otherwise) and ``info["method"]`` (``"eigvalsh"``, ``"lanczos"``
        or ``"power"``).  The decision solvers charge their eigenvalue
        work from these counts instead of a pessimistic a-priori constant.

    Returns
    -------
    float or (float, numpy.ndarray | None)
        The largest eigenvalue (clamped at 0 for the iterative paths),
        plus the converged eigenvector when ``return_vector`` is set.
    """
    is_callable = (
        callable(matrix) and not isinstance(matrix, np.ndarray) and not sp.issparse(matrix)
    )
    if is_callable:
        if dim is None:
            raise ValueError("dim is required when passing a matvec callable")
    else:
        dim = matrix.shape[0]

    def done(value: float, vector: np.ndarray | None, method: str, matvecs: int):
        if info is not None:
            info["method"] = method
            info["matvecs"] = int(matvecs)
        return (value, vector) if return_vector else value

    if dim == 0:
        return done(0.0, np.zeros(0), "eigvalsh", 0)

    if dim <= dense_cutoff:
        if is_callable:
            # Materialising through dim matvecs is one Lanczos restart's
            # worth of work at this size, and eigvalsh is exact.  Columns
            # are applied one vector at a time: the matvec contract only
            # promises single vectors (power iteration never passed more).
            eye = np.eye(dim)
            dense = np.empty((dim, dim), dtype=np.float64)
            for j in range(dim):
                dense[:, j] = np.asarray(
                    matrix(eye[:, j]), dtype=np.float64
                ).ravel()
        else:
            dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        vals, vecs = np.linalg.eigh(dense)
        return done(float(vals[-1]), vecs[:, -1], "eigvalsh", dim)

    counted = {"matvecs": 0}
    if is_callable:
        apply_op = matrix
    elif sp.issparse(matrix):
        csr = matrix.tocsr()
        apply_op = lambda v: csr @ v  # noqa: E731
    else:
        dense_mat = np.asarray(matrix, dtype=np.float64)
        apply_op = lambda v: dense_mat @ v  # noqa: E731

    def counting_matvec(v: np.ndarray) -> np.ndarray:
        counted["matvecs"] += 1
        return apply_op(v)

    operator = spla.LinearOperator((dim, dim), matvec=counting_matvec, dtype=np.float64)
    if v0 is not None:
        v0 = np.asarray(v0, dtype=np.float64).ravel()
        if v0.shape[0] != dim:
            raise ValueError(f"v0 must have length {dim}, got {v0.shape[0]}")
        if not np.isfinite(v0).all() or float(np.linalg.norm(v0)) <= 1e-300:
            v0 = None
    fault_hook("lanczos")
    try:
        vals, vecs = spla.eigsh(operator, k=1, which="LA", tol=tol, v0=v0)
        # Clamp at 0 per the PSD contract: ARPACK can return a -1e-16-ish
        # Ritz value for numerically-zero operators.
        return done(max(float(vals[0]), 0.0), vecs[:, 0], "lanczos", counted["matvecs"])
    # ArpackError only (not bare RuntimeError): an exception raised by the
    # caller's own matvec must propagate, not silently degrade the
    # certificate-critical estimate to the power-iteration fallback.
    except spla.ArpackError:  # pragma: no cover - ARPACK failure
        counted["matvecs"] = 0
        estimate, vec = spectral_norm_power(
            counting_matvec,
            dim=dim,
            tol=tol,
            maxiter=maxiter,
            rng=rng,
            v0=v0,
            return_vector=True,
        )
        return done(estimate, vec, "power", counted["matvecs"])


def spectral_norm_lanczos(matrix: np.ndarray | sp.spmatrix, tol: float = 1e-8) -> float:
    """Largest eigenvalue of a symmetric matrix via Lanczos (``eigsh``).

    Falls back to a dense ``eigvalsh`` for very small matrices where ARPACK
    cannot run (``k`` must be < dim).
    """
    dim = matrix.shape[0]
    if dim <= 2 or (not sp.issparse(matrix) and dim <= 64):
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        dense = check_symmetric(dense, "matrix")
        if dim == 0:
            return 0.0
        return float(np.linalg.eigvalsh(dense)[-1])
    try:
        vals = spla.eigsh(matrix, k=1, which="LA", tol=tol, return_eigenvectors=False)
    except (spla.ArpackNoConvergence, RuntimeError) as exc:  # pragma: no cover
        raise NumericalError(f"Lanczos eigenvalue estimation failed: {exc}") from exc
    return float(vals[0])


def spectral_norm(matrix: np.ndarray | sp.spmatrix, method: str = "auto") -> float:
    """Spectral norm (largest eigenvalue) of a symmetric PSD matrix.

    ``method`` is one of ``"auto"``, ``"dense"``, ``"lanczos"``, ``"power"``.
    ``"auto"`` uses a dense eigendecomposition for small matrices and Lanczos
    otherwise.
    """
    if method not in {"auto", "dense", "lanczos", "power"}:
        raise ValueError(f"unknown method {method!r}")
    dim = matrix.shape[0]
    if method == "power":
        return spectral_norm_power(matrix)
    if method == "lanczos":
        return spectral_norm_lanczos(matrix)
    if method == "dense" or dim <= 256 or not sp.issparse(matrix):
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        dense = check_symmetric(dense, "matrix")
        if dim == 0:
            return 0.0
        return float(np.linalg.eigvalsh(dense)[-1])
    return spectral_norm_lanczos(matrix)
