"""Spectral norms, trace inner products, and related estimators.

The solver needs ``||Phi||_2`` upper bounds (to pick the Taylor degree in
Theorem 4.1, Lemma 3.5 guarantees ``||Phi||_2 <= O(log(n)/eps)`` for the
matrices it exponentiates) and trace inner products ``A . B = Tr[A B]``
throughout.  For matrices given only through matrix–vector products we
provide power iteration and a Lanczos-based estimator built on
``scipy.sparse.linalg.eigsh``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.config import get_config
from repro.exceptions import NumericalError
from repro.utils.random_utils import RandomState, as_generator
from repro.utils.validation import check_symmetric


def trace_product(a: np.ndarray | sp.spmatrix, b: np.ndarray | sp.spmatrix) -> float:
    """Trace inner product ``A . B = Tr[A B] = sum_ij A_ij B_ij`` (Section 2.1).

    For symmetric inputs the elementwise form is used because it is
    ``O(m^2)`` rather than the ``O(m^3)`` of forming the product ``A B``.
    """
    if sp.issparse(a) or sp.issparse(b):
        a_sp = sp.csr_matrix(a)
        b_sp = sp.csr_matrix(b)
        if a_sp.shape != b_sp.shape:
            raise ValueError(f"shape mismatch: {a_sp.shape} vs {b_sp.shape}")
        return float(a_sp.multiply(b_sp).sum())
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    if a_arr.shape != b_arr.shape:
        raise ValueError(f"shape mismatch: {a_arr.shape} vs {b_arr.shape}")
    return float(np.sum(a_arr * b_arr))


def frobenius_inner(a: np.ndarray, b: np.ndarray) -> float:
    """Frobenius inner product; identical to :func:`trace_product` for symmetric inputs."""
    return trace_product(a, b)


def spectral_norm_power(
    matvec: Callable[[np.ndarray], np.ndarray] | np.ndarray | sp.spmatrix,
    dim: int | None = None,
    tol: float | None = None,
    maxiter: int | None = None,
    rng: RandomState = None,
    v0: np.ndarray | None = None,
    return_vector: bool = False,
) -> float | tuple[float, np.ndarray]:
    """Estimate the spectral norm of a symmetric PSD operator by power iteration.

    Accepts a dense matrix, a sparse matrix, or a matvec callable (in which
    case ``dim`` is required).  Convergence is declared when the Rayleigh
    quotient changes by less than ``tol`` relatively between iterations.

    Parameters
    ----------
    v0:
        Optional warm-start vector (normalised internally; ``rng`` is not
        consumed when given).  The decision solvers' iterates change mildly
        per step, so re-estimating ``||Psi||_2`` from the previous call's
        converged vector takes a handful of iterations instead of a cold
        start's hundreds — the fast oracle threads this through
        ``return_vector``.  Caution: a pure warm start forfeits the random
        start's overlap guarantee — if the operator's dominant
        eigendirection has rotated away from ``v0``, the stopping rule can
        fire on the stale direction and under-estimate the norm.  Callers
        re-estimating a *changing* operator should blend fresh randomness
        into ``v0`` (see ``repro.core.dotexp.NORM_RESTART_MIX``).
    return_vector:
        When ``True`` return ``(estimate, vector)`` where ``vector`` is the
        last normalised iterate (the warm start for the next call).
    """
    cfg = get_config()
    tol = cfg.power_iteration_tol if tol is None else tol
    maxiter = cfg.power_iteration_maxiter if maxiter is None else maxiter

    if callable(matvec) and not isinstance(matvec, np.ndarray) and not sp.issparse(matvec):
        apply_op = matvec
        if dim is None:
            raise ValueError("dim is required when passing a matvec callable")
    elif sp.issparse(matvec):
        mat = matvec.tocsr()
        apply_op = lambda v: mat @ v  # noqa: E731
        dim = mat.shape[0]
    else:
        dense = check_symmetric(np.asarray(matvec, dtype=np.float64), "matrix")
        apply_op = lambda v: dense @ v  # noqa: E731
        dim = dense.shape[0]

    if dim == 0:
        return (0.0, np.zeros(0)) if return_vector else 0.0
    if v0 is not None:
        vec = np.asarray(v0, dtype=np.float64).ravel()
        if vec.shape[0] != dim:
            raise ValueError(f"v0 must have length {dim}, got {vec.shape[0]}")
        norm0 = float(np.linalg.norm(vec))
        if norm0 <= 1e-300:
            v0 = None
        else:
            vec = vec / norm0
    if v0 is None:
        gen = as_generator(rng)
        vec = gen.standard_normal(dim)
        vec /= np.linalg.norm(vec)
    estimate = 0.0

    def result(value: float):
        return (value, vec) if return_vector else value

    for _ in range(maxiter):
        new_vec = apply_op(vec)
        norm = float(np.linalg.norm(new_vec))
        if norm <= 1e-300:
            return result(0.0)
        new_estimate = float(vec @ new_vec)
        vec = new_vec / norm
        if abs(new_estimate - estimate) <= tol * max(abs(new_estimate), 1e-300):
            return result(max(new_estimate, 0.0))
        estimate = new_estimate
    return result(max(estimate, 0.0))


def top_eigenvalue(
    matrix: np.ndarray | sp.spmatrix | Callable[[np.ndarray], np.ndarray],
    dim: int | None = None,
    tol: float = 1e-10,
    rng: RandomState = None,
    dense_cutoff: int = 64,
    maxiter: int | None = None,
) -> float:
    """Largest eigenvalue of a symmetric PSD matrix, cheaply but reliably.

    For tiny matrices (``dim <= dense_cutoff``) a dense ``eigvalsh`` is both
    fastest and exact; above the cutoff the value is computed by Lanczos
    (:func:`spectral_norm_lanczos`, with genuine convergence control) at
    ``O(m^2)`` per iteration instead of the ``O(m^3)`` eigendecomposition,
    falling back to power iteration only if ARPACK fails to converge.
    Matvec-callable inputs use power iteration directly.  The decision
    solvers use this for their periodic certificate checks, history
    records, and the final dual rescaling, charging the cheaper cost to the
    work–depth tracker; the certificate uses demand an accurate value (an
    underestimate would overstate dual feasibility), which is why Lanczos
    is preferred over the margin-free power iteration above the cutoff.

    Parameters
    ----------
    matrix:
        Symmetric PSD matrix (dense or scipy sparse) or a matvec callable
        ``v -> A @ v`` (requires ``dim``).
    dim:
        Ambient dimension, required only for callable input.
    tol:
        Convergence tolerance of the iterative estimators.
    rng:
        Randomness source for the power-iteration start vector.  Callers
        that also consume randomness elsewhere should pass a *spawned*
        generator so eigenvalue estimation cannot perturb other streams
        (see the decision solver's usage).
    dense_cutoff:
        Dimension at or below which the exact dense ``eigvalsh`` is used.
    maxiter:
        Iteration cap forwarded to the power-iteration fallback.

    Returns
    -------
    float
        The largest eigenvalue (clamped at 0 for the iterative paths).
    """
    if callable(matrix) and not isinstance(matrix, np.ndarray) and not sp.issparse(matrix):
        if dim is None:
            raise ValueError("dim is required when passing a matvec callable")
        if dim == 0:
            return 0.0
        return spectral_norm_power(matrix, dim=dim, tol=tol, maxiter=maxiter, rng=rng)
    dim = matrix.shape[0]
    if dim == 0:
        return 0.0
    if dim <= dense_cutoff:
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        return float(np.linalg.eigvalsh(dense)[-1])
    try:
        return spectral_norm_lanczos(matrix, tol=tol)
    except NumericalError:  # pragma: no cover - ARPACK convergence failure
        return spectral_norm_power(matrix, tol=tol, maxiter=maxiter, rng=rng)


def spectral_norm_lanczos(matrix: np.ndarray | sp.spmatrix, tol: float = 1e-8) -> float:
    """Largest eigenvalue of a symmetric matrix via Lanczos (``eigsh``).

    Falls back to a dense ``eigvalsh`` for very small matrices where ARPACK
    cannot run (``k`` must be < dim).
    """
    dim = matrix.shape[0]
    if dim <= 2 or (not sp.issparse(matrix) and dim <= 64):
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        dense = check_symmetric(dense, "matrix")
        if dim == 0:
            return 0.0
        return float(np.linalg.eigvalsh(dense)[-1])
    try:
        vals = spla.eigsh(matrix, k=1, which="LA", tol=tol, return_eigenvectors=False)
    except (spla.ArpackNoConvergence, RuntimeError) as exc:  # pragma: no cover
        raise NumericalError(f"Lanczos eigenvalue estimation failed: {exc}") from exc
    return float(vals[0])


def spectral_norm(matrix: np.ndarray | sp.spmatrix, method: str = "auto") -> float:
    """Spectral norm (largest eigenvalue) of a symmetric PSD matrix.

    ``method`` is one of ``"auto"``, ``"dense"``, ``"lanczos"``, ``"power"``.
    ``"auto"`` uses a dense eigendecomposition for small matrices and Lanczos
    otherwise.
    """
    if method not in {"auto", "dense", "lanczos", "power"}:
        raise ValueError(f"unknown method {method!r}")
    dim = matrix.shape[0]
    if method == "power":
        return spectral_norm_power(matrix)
    if method == "lanczos":
        return spectral_norm_lanczos(matrix)
    if method == "dense" or dim <= 256 or not sp.issparse(matrix):
        dense = matrix.toarray() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
        dense = check_symmetric(dense, "matrix")
        if dim == 0:
            return 0.0
        return float(np.linalg.eigvalsh(dense)[-1])
    return spectral_norm_lanczos(matrix)
