"""Rank-adaptive Gram-space exponential engine (Lemma 4.2, all representations).

:mod:`repro.linalg.taylor_blocked` evaluates the truncated exponential of
``Psi = Q diag(w) Q^T`` either through the factor stack (``2 m R s`` madds
per term) or through a one-time densification (``m^2 s`` per term).  Two
cheaper exact representations exist and this module adds both, plus the
policy that picks between all of them and an engine that reuses state
across the solver's mildly-changing weight iterates:

* **Gram-space kernel** (:class:`GramTaylorKernel`): with
  ``G = Q^T Q diag(w)`` (the ``R x R`` Gram matrix of the stacked factors,
  column-scaled by the weights) every power satisfies
  ``Psi^i = Q_w G^{i-1} Q^T`` (``Q_w = Q diag(w)``), so the truncated
  series collapses to

  .. math::

      p(s\\,\\Psi)\\,B \\;=\\; B + Q\\,\\bigl(w \\circ q(s G)\\,(Q^T B)\\bigr),
      \\qquad q(sG) = \\sum_{1 \\le i < k} \\frac{s^i}{i!} G^{i-1},

  i.e. two ``(m, R)`` projections bracketing a recurrence whose per-term
  cost is ``R^2 s`` instead of ``m^2 s`` or ``2 m R s`` — the win when the
  stacked rank satisfies ``2R <= m``.
* **Sparse-Psi accumulation** (:class:`SparsePsiAccumulator`): when the
  factors are sparse, ``Psi = (Q w) Q^T`` is assembled as a CSR matrix
  whose *symbolic* pattern is weight-independent; the accumulator maps
  column weights to the CSR value array through one sparse matrix ``M``
  (``values = M w_cols``), so rebuilding ``Psi`` for new weights — or
  updating it for a sparse weight delta — never repeats the symbolic
  product.  The Horner recurrence then runs with one sparse GEMM per term
  (``nnz(Psi) s`` madds) via
  :meth:`~repro.linalg.taylor_blocked.BlockedTaylorKernel.from_matrix`.
* **Selection policy** (:func:`select_taylor_mode`): compares the measured
  per-term costs of all applicable representations — Gram space, densified
  ``Psi``, sparse ``Psi`` (discounted by the measured throughput gap
  between sparse and dense GEMMs, :data:`SPARSE_GEMM_DISCOUNT`), and the
  factor recurrences — replacing the blocked kernel's single ``2R > m``
  densification rule.
* **Incremental engine** (:class:`TaylorEngine`): the decision solvers
  change only the qualifying weight coordinates per iteration, so the
  engine keeps the weight-*independent* artifacts (``Q^T Q``, the CSR
  pattern and its accumulator) forever and maintains the weight-*dependent*
  state (``G``, the CSR values, the densified ``Psi``, the scaled factor
  stack) by updating only the active columns — work proportional to the
  touched columns, charged to the
  :class:`~repro.parallel.backends.ExecutionBackend` under the
  ``taylor-engine-update`` label, never a silent full rebuild.

Every representation evaluates the *identical* Lemma 4.2 polynomial; the
modes differ only in floating-point rounding order, which the tests in
``tests/test_linalg_taylor_gram.py`` pin per column at 1e-10.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.backend import NUMPY, get_array_backend
from repro.exceptions import InvalidProblemError
from repro.linalg.taylor_blocked import _FusedTaylorApplyBase, _stack_dtype

__all__ = [
    "GramTaylorKernel",
    "SparsePsiAccumulator",
    "TaylorEngine",
    "batched_gram_taylor_apply",
    "gram_taylor_apply",
    "select_taylor_mode",
    "taylor_mode_cost",
    "GRAM_HYSTERESIS",
    "REFINEMENT_MARGIN",
    "SPARSE_GEMM_DISCOUNT",
]

#: Effective throughput penalty of a scipy CSR x dense block product versus
#: a dense BLAS-3 GEMM, per multiply-add (measured at 6-12x on the target
#: container across ``m`` in 128..512 and densities in 2..20%; 8 is the
#: conservative midpoint).  The selection policy multiplies sparse-mode madd
#: counts by this factor so "fewer flops" only wins when it survives the
#: throughput gap.
SPARSE_GEMM_DISCOUNT = 8.0

#: Hysteresis margin on the Gram-space gate: the Gram recurrence is allowed
#: up to ``2R <= GRAM_HYSTERESIS * m`` instead of the sharp ``2R <= m``.  At
#: ``2R`` just past ``m`` the per-term cost ``R^2 ~ m^2/4`` still clearly
#: beats the densified recurrence's ``m^2`` (the two ``m x R`` projections
#: it adds amortise over the Taylor degree), so near-threshold adversary
#: stacks — the E13 row PR 3 left at break-even — no longer fall off a
#: cliff onto the legacy kernel for being a few columns over the boundary.
#: Past ~1.1m the projection overhead and the Gram build's ``m R^2`` start
#: eating the margin, so the gate stays conservative.
GRAM_HYSTERESIS = 1.1

#: Required relative win before `auto_taylor_mode`'s two-stage refinement
#: builds the exact sparse-``Psi`` pattern: the candidate's optimistic cost
#: must undercut the current winner by at least this factor.  Refinement
#: that could at best *match* the already-selected kernel would pay the
#: pattern build only to flip-flop between equal-cost modes.
REFINEMENT_MARGIN = 0.9

#: Modes understood by :func:`select_taylor_mode` / :class:`TaylorEngine`.
_MODES = ("gram", "dense-psi", "sparse-psi", "dense-factors", "sparse-factors")


def taylor_mode_cost(
    mode: str,
    dim: int,
    total_rank: int,
    nnz: int,
    psi_nnz: int | None = None,
) -> float:
    """Estimated per-term cost (dense-madd units, per block column) of a mode.

    The single cost model behind :func:`select_taylor_mode` and the
    exact-pattern refinement in
    :meth:`~repro.operators.packed.PackedGramFactors.auto_taylor_mode`:

    * ``gram``: ``R^2``;
    * ``dense-psi``: ``m^2``;
    * ``dense-factors``: ``2 m R``;
    * ``sparse-factors``: ``2 nnz(Q)`` discounted by
      :data:`SPARSE_GEMM_DISCOUNT`;
    * ``sparse-psi``: ``nnz(Psi)`` with the same discount (``inf`` when
      ``psi_nnz`` is unknown).
    """
    if mode == "gram":
        return float(total_rank) * total_rank
    if mode == "dense-psi":
        return float(dim) * dim
    if mode == "dense-factors":
        return 2.0 * float(dim) * total_rank
    if mode == "sparse-factors":
        return SPARSE_GEMM_DISCOUNT * 2.0 * float(nnz)
    if mode == "sparse-psi":
        if psi_nnz is None:
            return float("inf")
        return SPARSE_GEMM_DISCOUNT * float(psi_nnz)
    raise InvalidProblemError(f"unknown taylor mode {mode!r}")


def select_taylor_mode(
    dim: int,
    total_rank: int,
    nnz: int,
    is_sparse: bool,
    psi_nnz: int | None = None,
) -> str:
    """Pick the cheapest exact Taylor representation for ``Psi = Q w Q^T``.

    Parameters
    ----------
    dim:
        Ambient dimension ``m``.
    total_rank:
        Stacked rank ``R`` of the factor matrix ``Q``.
    nnz:
        Stored nonzeros of ``Q`` (``m * R`` for a dense stack).
    is_sparse:
        Whether the stack is stored sparse (CSR/CSC).
    psi_nnz:
        Nonzero count (or a cheap upper bound, e.g.
        :meth:`~repro.operators.packed.PackedGramFactors.psi_nnz_bound`) of
        the assembled ``Psi``; only consulted for sparse stacks.  ``None``
        disables the sparse-``Psi`` candidate.

    Returns
    -------
    str
        One of ``"gram"``, ``"dense-psi"``, ``"sparse-psi"``,
        ``"sparse-factors"`` — the mode whose :func:`taylor_mode_cost` is
        smallest among the applicable candidates:

        * dense stacks: gram whenever ``2R <= GRAM_HYSTERESIS * dim``
          (``R^2 <= m^2/4`` at the nominal boundary beats both the dense
          recurrence and the ``2mR`` factor recurrence; the two ``m x R``
          projections it adds are one factor-term's worth of work,
          amortised over the degree — and the ~10% hysteresis keeps
          near-threshold stacks with ``2R`` just past ``m`` on the Gram
          path instead of dropping them onto the legacy densified
          kernel at break-even), the densified recurrence otherwise;
        * sparse stacks: the argmin over gram (gated on the same
          hysteresis boundary, and costed at the *dense* ``R^2`` rate
          since ``G`` is materialised dense), densified ``Psi``, sparse
          ``Psi``, and the sparse factor recurrence — so a very sparse
          stack never pays a dense ``R x R`` Gram matrix its factor
          recurrence undercuts.

        Ties break toward the earlier entry in the order above (denser
        representations are preferred at equal cost: their constants are
        more predictable).  The decision depends only on the immutable
        shape quantities ``(m, R, nnz, nnz(Psi))``, so repeated calls for
        the same stack can never flip-flop between modes.
    """
    if dim < 0 or total_rank < 0:
        raise InvalidProblemError(
            f"dim and total_rank must be non-negative, got {dim}, {total_rank}"
        )
    if total_rank == 0:
        return "gram"
    gram_ok = 2 * total_rank <= GRAM_HYSTERESIS * dim
    if not is_sparse:
        return "gram" if gram_ok else "dense-psi"
    candidates = (["gram"] if gram_ok else []) + [
        "dense-psi",
        "sparse-psi",
        "sparse-factors",
    ]
    best_mode, best_cost = None, float("inf")
    for mode in candidates:
        cost = taylor_mode_cost(mode, dim, total_rank, nnz, psi_nnz=psi_nnz)
        if cost < best_cost:
            best_mode, best_cost = mode, cost
    return best_mode


def _validated_stack(q, col_weights):
    """Shared (q, col_weights) validation for the Gram kernel and engine.

    Dense float32 stacks keep their dtype (everything else is computed in
    float64) so the Gram recurrence never silently upcasts a float32
    workload — the same rule as
    :func:`repro.linalg.taylor_blocked._stack_dtype`.
    """
    if sp.issparse(q):
        q = q.tocsr()
        dtype = np.dtype(np.float64)
        m, r = q.shape
    else:
        q = np.asarray(q)
        if q.ndim != 2:
            raise InvalidProblemError(f"q must be 2-dimensional, got ndim={q.ndim}")
        dtype = _stack_dtype(q)
        q = np.asarray(q, dtype=dtype)
        m, r = q.shape
    col_weights = np.asarray(col_weights, dtype=dtype).ravel()
    if col_weights.shape[0] != r:
        raise InvalidProblemError(
            f"expected {r} column weights for a (m, {r}) stack, "
            f"got {col_weights.shape[0]}"
        )
    if np.any(col_weights < 0):
        raise InvalidProblemError("column weights must be non-negative")
    return q, col_weights, int(m), int(r), dtype


class GramTaylorKernel(_FusedTaylorApplyBase):
    """Gram-space block apply of the truncated Taylor series of ``exp(scale * Psi)``.

    Evaluates the same polynomial as
    :class:`~repro.linalg.taylor_blocked.BlockedTaylorKernel` through the
    identity ``p(s Psi) B = B + Q (w ∘ q(sG) (Q^T B))`` with the ``R x R``
    Gram matrix ``G = (Q^T Q) diag(w)``: one down-projection ``Q^T B``, a
    forward recurrence of ``R x R`` GEMMs in ping-pong buffers, and one
    up-projection.  Per-term cost ``R^2 s`` — the cheapest representation
    whenever ``2R <= m``.

    Parameters
    ----------
    q:
        Packed factor stack ``Q`` of shape ``(m, R)`` (dense or scipy
        sparse; the :attr:`~repro.operators.packed.PackedGramFactors.matrix`
        layout).
    col_weights:
        Per-column non-negative weights ``w`` of length ``R``.
    gram:
        Optional precomputed dense ``(R, R)`` matrix ``(Q^T Q) diag(w)``.
        :class:`TaylorEngine` maintains this across calls by rescaling only
        the active columns; when omitted it is computed here (one
        ``R x m x R`` product).
    chunk_columns:
        Default column-chunk size for :meth:`apply` (``None`` = unchunked).
    backend:
        Array backend spec (``None``/name/instance, resolved through
        :func:`repro.backend.get_array_backend`).  The recurrence and the
        two projections run on the backend; sparse stacks are NumPy-only.

    Attributes
    ----------
    dim, total_rank, matvec_count:
        Same conventions as the blocked kernel (``matvec_count`` grows by
        ``s * (degree - 1)`` per apply — the model-level product count).
    """

    def __init__(
        self,
        q: np.ndarray | sp.spmatrix,
        col_weights: np.ndarray,
        gram: np.ndarray | None = None,
        chunk_columns: int | None = None,
        backend=None,
    ) -> None:
        self.backend = get_array_backend(backend)
        q, col_weights, m, r = _validated_stack(q, col_weights)[:4]
        if sp.issparse(q) and not self.backend.is_numpy:
            raise InvalidProblemError(
                "sparse factor stacks are NumPy-only; densify the stack "
                "before handing it to a non-NumPy backend"
            )
        self.dtype = _stack_dtype(q) if not sp.issparse(q) else np.dtype(np.float64)
        self._q = q
        self._col_w = col_weights
        self.dim = m
        self.total_rank = r
        self.matvec_count = 0
        self.chunk_columns = chunk_columns
        if gram is None:
            if r == 0:
                gram = np.zeros((0, 0), dtype=self.dtype)
            elif sp.issparse(q):
                gram = np.asarray((q.T @ q).todense(), dtype=np.float64) * col_weights
            else:
                gram = (q.T @ q) * col_weights
        else:
            gram = np.asarray(gram, dtype=self.dtype)
            if gram.shape != (r, r):
                raise InvalidProblemError(
                    f"gram matrix must have shape {(r, r)}, got {gram.shape}"
                )
        self._g = gram
        # Lazily-transferred device copies of (q, gram, col_w); on the NumPy
        # backend asarray is a pass-through, so this is the host state itself.
        self._dev = None

    def _device_state(self):
        if self._dev is None:
            xp = self.backend
            q = self._q if sp.issparse(self._q) else xp.asarray(self._q)
            self._dev = (q, xp.asarray(self._g), xp.asarray(self._col_w))
        return self._dev

    @property
    def mode(self) -> str:
        """Representation tag (always ``"gram"``; mirrors the engine's vocabulary)."""
        return "gram"

    #: Gram-space apply failures are attributed to their own site so the
    #: supervisor can demote the Gram recurrence specifically.
    fault_site = "taylor_gram.apply"

    def matvec(self, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` (unscaled) through the factors — two projections."""
        if sp.issparse(self._q):
            inner = self._q.T @ block
            if inner.ndim == 1:
                return self._q @ (self._col_w * inner)
            return self._q @ (self._col_w[:, None] * inner)
        xp = self.backend
        q, _, col_w = self._device_state()
        b = xp.asarray(np.asarray(block, dtype=self.dtype))
        inner = xp.matmul(q.T, b)
        scaled = col_w * inner if inner.ndim == 1 else col_w[:, None] * inner
        return xp.to_numpy(xp.matmul(q, scaled))

    # apply() is inherited from _FusedTaylorApplyBase (the shared validation
    # + chunk-loop + finiteness driver); the Gram recurrence lives here.
    def _apply_chunk(self, block: np.ndarray, degree: int, scale: float) -> np.ndarray:
        if self.total_rank == 0 or degree == 1:
            return np.array(block, dtype=self.dtype, copy=True)
        xp = self.backend
        q, g, col_w = self._device_state()
        sparse_q = sp.issparse(self._q)
        # q(sG) C with C = Q^T B: u_1 = s C, u_{i} = (s / i) G u_{i-1}.
        if sparse_q:
            # Sparse stacks are NumPy-resident (xp is the NumPy backend).
            b = block
            inner = xp.asarray(np.asarray(self._q.T @ block, dtype=self.dtype))
        else:
            b = xp.asarray(block)
            inner = xp.matmul(q.T, b)
        term = scale * inner
        acc = xp.copy(term)
        buf = xp.empty_like(term)
        for i in range(2, degree):
            xp.matmul(g, term, out=buf)
            buf *= scale / i
            acc += buf
            term, buf = buf, term
        acc *= col_w[:, None]
        if sparse_q:
            return block + self._q @ xp.to_numpy(acc)
        return xp.to_numpy(b + xp.matmul(q, acc))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GramTaylorKernel(dim={self.dim}, R={self.total_rank})"


def gram_taylor_apply(
    q: np.ndarray | sp.spmatrix,
    col_weights: np.ndarray,
    block: np.ndarray,
    degree: int,
    scale: float = 1.0,
    chunk_columns: int | None = None,
    backend=None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`GramTaylorKernel`.

    Equivalent to ``GramTaylorKernel(q, col_weights).apply(block, degree,
    scale, chunk_columns)``; prefer the kernel (or a
    :class:`TaylorEngine`) when the same stack is applied repeatedly so the
    Gram matrix is built once.
    """
    kernel = GramTaylorKernel(q, col_weights, backend=backend)
    return kernel.apply(block, degree, scale=scale, chunk_columns=chunk_columns)


def batched_gram_taylor_apply(
    q_stack: np.ndarray,
    inner_stack: np.ndarray,
    gram_stack: np.ndarray,
    colw_stack: np.ndarray,
    degrees: np.ndarray,
    scale: float = 0.5,
) -> np.ndarray:
    """Ragged-degree Gram-recurrence Taylor apply over a batch of instances.

    Runs the same accumulation as :meth:`GramTaylorKernel._apply_chunk` for
    ``B`` shape-homogeneous instances at once, with every multiply a single
    stacked GEMM.  ``q_stack`` is the ``(B, m, R)`` factor super-stack,
    ``inner_stack`` the precomputed ``(B, R, R)`` block of ``Q^T Q`` products
    (the sequential path's ``self._q.T @ block`` for ``block =
    dense_columns()``), ``gram_stack`` the per-instance weighted Gram matrices
    ``G = (Q^T Q) * w`` and ``colw_stack`` the ``(B, R)`` expanded column
    weights.  ``degrees`` holds each instance's Taylor degree; instances with
    shorter series simply stop accumulating while the shared ping-pong keeps
    rolling for the longest one, so the per-instance results match
    ``kernel.apply(dense_columns(), degree, scale)`` bitwise.

    Returns the ``(B, m, R)`` batch of transformed factor stacks.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if q_stack.ndim != 3 or inner_stack.ndim != 3 or gram_stack.ndim != 3:
        raise InvalidProblemError("batched Taylor apply expects 3-D stacks")
    if degrees.shape[0] != q_stack.shape[0]:
        raise InvalidProblemError("one Taylor degree per batched instance required")
    if q_stack.shape[2] < 1:
        raise InvalidProblemError("batched Taylor apply requires total rank >= 1")
    if degrees.size == 0 or int(degrees.min()) < 2:
        raise InvalidProblemError("batched Taylor apply requires degree >= 2")
    max_degree = int(degrees.max())
    # The fused batch path is NumPy-resident by contract (see
    # core.batch._fused_key); the stacked GEMMs route through the shared
    # NumPy backend object explicitly.
    xp = NUMPY
    term = scale * inner_stack
    acc = term.copy()
    buf = np.empty_like(term)
    for i in range(2, max_degree):
        xp.matmul(gram_stack, term, out=buf)
        buf *= scale / i
        idx = np.flatnonzero(degrees > i)
        if idx.size == degrees.size:
            acc += buf
        elif idx.size:
            acc[idx] += buf[idx]
        term, buf = buf, term
    acc *= colw_stack[:, :, None]
    return q_stack + xp.matmul(q_stack, acc)


class SparsePsiAccumulator:
    """Weight-to-CSR-values map for ``Psi = Q diag(w) Q^T`` with a fixed pattern.

    The symbolic pattern of ``Psi`` depends only on the sparsity structure
    of ``Q``: entry ``(i, j)`` can be nonzero iff some column of ``Q`` has
    nonzeros in both rows.  The accumulator computes that pattern once (a
    structural ``|Q| |Q|^T`` product) and assembles the sparse matrix

    .. math:: M \\in \\mathbb{R}^{\\mathrm{nnz}(\\Psi) \\times R},
        \\qquad M[e, c] = Q[i_e, c]\\, Q[j_e, c],

    mapping per-column weights to the CSR value array: ``values(w) = M w``.
    Rebuilding ``Psi`` for new weights is one SpMV over ``nnz(M) = sum_c
    nnz(Q_{:,c})^2`` entries, and updating it for a sparse weight delta
    touches only the active columns of ``M`` — the cross-iteration reuse
    the decision solvers exploit through :class:`TaylorEngine`.

    Parameters
    ----------
    q:
        Sparse ``(m, R)`` factor stack (any scipy format; converted to CSC).
    """

    def __init__(self, q: sp.spmatrix) -> None:
        if not sp.issparse(q):
            raise InvalidProblemError("SparsePsiAccumulator requires a sparse stack")
        q_csc = q.tocsc()
        m, r = q_csc.shape
        self.dim = int(m)
        self.total_rank = int(r)
        structure = abs(q_csc)
        pattern = (structure @ structure.T).tocsr()
        pattern.sort_indices()
        self._indptr = pattern.indptr.copy()
        self._indices = pattern.indices.copy()
        self.psi_nnz = int(self._indices.shape[0])
        # Composite row-major keys make the per-row sorted index arrays one
        # globally sorted array, so every (i, j) -> entry-id lookup is a
        # single vectorised searchsorted.
        entry_rows = np.repeat(np.arange(m, dtype=np.int64), np.diff(self._indptr))
        pattern_keys = entry_rows * m + self._indices.astype(np.int64)

        entry_ids: list[np.ndarray] = []
        col_ids: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for c in range(r):
            lo, hi = q_csc.indptr[c], q_csc.indptr[c + 1]
            rows_c = q_csc.indices[lo:hi].astype(np.int64)
            vals_c = q_csc.data[lo:hi]
            k = rows_c.shape[0]
            if k == 0:
                continue
            ii = np.repeat(rows_c, k)
            jj = np.tile(rows_c, k)
            keys = ii * m + jj
            entry_ids.append(np.searchsorted(pattern_keys, keys))
            col_ids.append(np.full(k * k, c, dtype=np.int64))
            data.append(np.repeat(vals_c, k) * np.tile(vals_c, k))
        if entry_ids:
            coo = sp.coo_matrix(
                (
                    np.concatenate(data),
                    (np.concatenate(entry_ids), np.concatenate(col_ids)),
                ),
                shape=(self.psi_nnz, r),
            )
            self._m = coo.tocsc()
        else:
            self._m = sp.csc_matrix((self.psi_nnz, r), dtype=np.float64)

    @property
    def map_nnz(self) -> int:
        """Stored entries of the weight-to-values map ``M`` (build/update cost)."""
        return int(self._m.nnz)

    def column_cost(self, columns: np.ndarray) -> int:
        """Entries of ``M`` touched when updating the given weight columns."""
        columns = np.asarray(columns, dtype=np.int64)
        return int(
            np.sum(self._m.indptr[columns + 1] - self._m.indptr[columns])
        )

    def values(self, col_weights: np.ndarray) -> np.ndarray:
        """CSR value array of ``Psi`` for the given per-column weights."""
        col_weights = np.asarray(col_weights, dtype=np.float64).ravel()
        if col_weights.shape[0] != self.total_rank:
            raise InvalidProblemError(
                f"expected {self.total_rank} column weights, got {col_weights.shape[0]}"
            )
        return self._m @ col_weights

    def update_values(
        self, values: np.ndarray, columns: np.ndarray, delta: np.ndarray
    ) -> None:
        """In-place ``values += M[:, columns] @ delta`` (active columns only)."""
        if columns.shape[0] == 0:
            return
        values += self._m[:, columns] @ np.asarray(delta, dtype=np.float64)

    def psi(self, values: np.ndarray) -> sp.csr_matrix:
        """CSR ``Psi`` sharing the fixed pattern with the given value array."""
        return sp.csr_matrix(
            (values, self._indices, self._indptr), shape=(self.dim, self.dim)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparsePsiAccumulator(dim={self.dim}, R={self.total_rank}, "
            f"psi_nnz={self.psi_nnz}, map_nnz={self.map_nnz})"
        )


class TaylorEngine:
    """Incrementally-updated factory of Taylor kernels over one factor stack.

    One engine is cached per :class:`~repro.operators.packed.PackedGramFactors`
    view (see :meth:`~repro.operators.packed.PackedGramFactors.taylor_engine`).
    Construction selects the representation once — the mode depends only on
    the weight-independent shape quantities ``(m, R, nnz, nnz(Psi))`` — and
    :meth:`kernel_for` then maintains the weight-dependent state across
    calls:

    ================  =======================================  =====================
    mode              persistent state                         per-active-column cost
    ========================================================================
    ``gram``          ``Q^T Q`` (immutable) + scaled ``G``     ``R`` (column rescale)
    ``dense-psi``     densified ``Psi`` buffer                 ``m^2`` (rank-1 update)
    ``sparse-psi``    CSR values via the accumulator           ``nnz(M[:, col])``
    ``*-factors``     scaled stack ``Q diag(w)``               column nnz (rescale)
    ========================================================================

    The first :meth:`kernel_for` call performs the one full build; every
    later call updates only the columns whose weights changed — there is no
    staleness detector that silently falls back to a full rebuild, and the
    :attr:`full_builds` / :attr:`columns_updated` counters (plus the
    ``taylor-engine-update`` work recorded on the backend's tracker) let
    regression tests assert exactly that.

    Parameters
    ----------
    packed:
        The :class:`~repro.operators.packed.PackedGramFactors` view whose
        stack the engine exponentiates.
    chunk_columns:
        Default column chunking forwarded to the kernels.
    mode:
        ``"auto"`` (default) applies :func:`select_taylor_mode`; any
        explicit mode from that function's vocabulary (plus
        ``"dense-factors"``) forces the representation.
    """

    def __init__(self, packed, chunk_columns: int | None = None, mode: str = "auto") -> None:
        self.packed = packed
        # The engine's host state (Gram buffers, CSR values, scaled stacks)
        # stays NumPy; the stack's array backend is only handed to the
        # kernels it builds, which transfer their inputs at construction.
        self.backend = getattr(packed, "backend", NUMPY)
        self.chunk_columns = chunk_columns
        self.dim = int(packed.dim)
        self.total_rank = int(packed.total_rank)
        if mode == "auto":
            mode = packed.auto_taylor_mode()
        if mode not in _MODES:
            raise InvalidProblemError(
                f"unknown taylor mode {mode!r}; expected one of {_MODES} or 'auto'"
            )
        if mode in ("sparse-psi", "sparse-factors") and not packed.is_sparse:
            raise InvalidProblemError(f"mode {mode!r} requires a sparse factor stack")
        if mode == "dense-factors" and packed.is_sparse:
            raise InvalidProblemError("mode 'dense-factors' requires a dense stack")
        self.mode = mode
        self.full_builds = 0
        self.incremental_updates = 0
        self.columns_updated = 0
        self.charged_work = 0.0
        self._w_cols: np.ndarray | None = None
        # Weight-dependent state, populated by the first kernel_for call.
        self._gram: np.ndarray | None = None
        self._psi: np.ndarray | None = None
        self._psi_values: np.ndarray | None = None
        self._psi_csr: sp.csr_matrix | None = None
        self._qw: np.ndarray | sp.csc_matrix | None = None
        self._q_csc: sp.csc_matrix | None = (
            packed.matrix.tocsc() if packed.is_sparse else None
        )
        self._depth = math.log2(max(self.dim * max(self.total_rank, 1), 2))

    # ------------------------------------------------------------------ stats
    def stats(self) -> dict:
        """Counters for regression tests and solver metadata."""
        return {
            "mode": self.mode,
            "total_rank": self.total_rank,
            "full_builds": self.full_builds,
            "incremental_updates": self.incremental_updates,
            "columns_updated": self.columns_updated,
            "charged_work": self.charged_work,
        }

    # ------------------------------------------------------------------ checkpointing
    def export_state(self) -> dict:
        """Checkpointable snapshot of the weight-dependent engine state.

        Only the genuinely path-dependent buffers are captured: the
        ``dense-psi`` matrix and ``sparse-psi`` value vector accumulate
        rank-1 bumps per iteration, so their bits depend on the update
        history and must round-trip exactly.  The ``gram``/factor-mode
        buffers are elementwise functions of the expanded column weights
        (full build and incremental update apply the same per-element
        product), so :meth:`import_state` rebuilds them from ``w_cols``
        bit-identically instead of storing them.
        """
        return {
            "mode": self.mode,
            "full_builds": int(self.full_builds),
            "incremental_updates": int(self.incremental_updates),
            "columns_updated": int(self.columns_updated),
            "charged_work": float(self.charged_work),
            "w_cols": None if self._w_cols is None else np.array(self._w_cols),
            "psi": (
                np.array(self._psi)
                if self.mode == "dense-psi" and self._psi is not None
                else None
            ),
            "psi_values": (
                np.array(self._psi_values)
                if self.mode == "sparse-psi" and self._psi_values is not None
                else None
            ),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if state["mode"] != self.mode:
            raise InvalidProblemError(
                f"cannot import taylor-engine state for mode {state['mode']!r} "
                f"into an engine in mode {self.mode!r}"
            )
        w_cols = state.get("w_cols")
        self._w_cols = None if w_cols is None else np.array(w_cols, dtype=np.float64)
        if self._w_cols is not None:
            if self.mode == "dense-psi":
                self._psi = np.array(state["psi"], dtype=np.float64)
            elif self.mode == "sparse-psi":
                self._psi_values = np.array(state["psi_values"], dtype=np.float64)
                self._psi_csr = self.packed.psi_accumulator().psi(self._psi_values)
            else:
                self._full_build(self._w_cols)
        self.full_builds = int(state["full_builds"])
        self.incremental_updates = int(state["incremental_updates"])
        self.columns_updated = int(state["columns_updated"])
        self.charged_work = float(state["charged_work"])

    # ------------------------------------------------------------------ charging
    def _charge(self, work: float, backend) -> None:
        self.charged_work += work
        if backend is not None:
            backend.charge(work, self._depth, label="taylor-engine-update")

    # ------------------------------------------------------------------ builds
    def _full_build(self, col_w: np.ndarray) -> float:
        m, r = self.dim, self.total_rank
        packed = self.packed
        if self.mode == "gram":
            g0 = packed.gram_matrix()
            self._gram = g0 * col_w[None, :]
            return float(m) * r * r + float(r) * r
        if self.mode == "dense-psi":
            from repro.linalg.taylor_blocked import densified_psi

            self._psi = densified_psi(packed.matrix, col_w)
            return float(m) * m * r
        if self.mode == "sparse-psi":
            acc = packed.psi_accumulator()
            self._psi_values = acc.values(col_w)
            self._psi_csr = acc.psi(self._psi_values)
            return float(acc.map_nnz)
        # Factor modes: keep the scaled stack Q diag(w).
        if self.mode == "sparse-factors":
            qw = self._q_csc.copy()
            # Scale the data array per column in one vectorised pass so the
            # symbolic pattern (and therefore in-place column updates)
            # survives zero weights.
            qw.data *= np.repeat(col_w, np.diff(qw.indptr))
            self._qw = qw
            return float(self._q_csc.nnz)
        self._qw = packed.matrix * col_w
        return float(m) * r

    def _update(self, col_w: np.ndarray, active: np.ndarray, delta: np.ndarray) -> float:
        m = self.dim
        a = active.shape[0]
        if self.mode == "gram":
            g0 = self.packed.gram_matrix()
            self._gram[:, active] = g0[:, active] * col_w[active]
            return float(self.total_rank) * a
        if self.mode == "dense-psi":
            if self.packed.is_sparse:
                sub = self._q_csc[:, active]
                bump = (sub.multiply(delta[None, :]) @ sub.T).toarray()
            else:
                sub = self.packed.matrix[:, active]
                bump = (sub * delta) @ sub.T
            self._psi += 0.5 * (bump + bump.T)
            return float(m) * m * a
        if self.mode == "sparse-psi":
            acc = self.packed.psi_accumulator()
            acc.update_values(self._psi_values, active, delta)
            return float(acc.column_cost(active))
        if self.mode == "sparse-factors":
            q_csc, qw = self._q_csc, self._qw
            # One fancy-indexed pass over the active columns' data ranges —
            # the multi-range gather keeps the update off the Python
            # per-column path the packed kernels exist to avoid.
            starts = qw.indptr[active].astype(np.int64)
            widths = qw.indptr[active + 1].astype(np.int64) - starts
            touched = int(widths.sum())
            if touched:
                before = np.concatenate([[0], np.cumsum(widths)[:-1]])
                idx = np.arange(touched) + np.repeat(starts - before, widths)
                qw.data[idx] = q_csc.data[idx] * np.repeat(col_w[active], widths)
            return float(touched)
        self._qw[:, active] = self.packed.matrix[:, active] * col_w[active]
        return float(m) * a

    def update_weights(self, col_w: np.ndarray, backend=None) -> None:
        """Advance the weight-dependent state to ``col_w`` — no kernel built.

        The build/update bookkeeping of :meth:`kernel_for` factored out for
        callers that already hold the expanded column weights: the batched
        solver (:func:`repro.core.batch.solve_many`) expands and validates a
        whole instance group's weight stack in one pass, then advances each
        engine here and reads the Gram buffers as a stack, so counters and
        ``taylor-engine-update`` charges evolve exactly as under
        :meth:`kernel_for`.
        """
        if self._w_cols is None:
            cost = self._full_build(col_w)
            self.full_builds += 1
            self._charge(cost, backend)
        else:
            delta = col_w - self._w_cols
            active = np.flatnonzero(delta)
            if active.shape[0]:
                cost = self._update(col_w, active, delta[active])
                self.incremental_updates += 1
                self.columns_updated += int(active.shape[0])
                self._charge(cost, backend)
        self._w_cols = col_w

    # ------------------------------------------------------------------ kernels
    def kernel_for(self, weights: np.ndarray, backend=None, chunk_columns=...):
        """A Taylor kernel for ``Psi = sum_i weights[i] Q_i Q_i^T``.

        On the first call the engine performs the one full build of its
        weight-dependent state; on every later call it updates only the
        columns whose expanded weights changed relative to the previous
        call, charging ``taylor-engine-update`` work proportional to those
        active columns on ``backend`` (when given).  The returned kernel is
        a lightweight view over the engine's buffers — use it before the
        next ``kernel_for`` call.
        """
        from repro.linalg.taylor_blocked import BlockedTaylorKernel

        col_w = self.packed.expand_weights(weights)
        chunk = self.chunk_columns if chunk_columns is ... else chunk_columns
        self.update_weights(col_w, backend=backend)

        if self.mode == "gram":
            return GramTaylorKernel(
                self.packed.matrix,
                col_w,
                gram=self._gram,
                chunk_columns=chunk,
                backend=self.backend,
            )
        if self.mode == "dense-psi":
            kernel = BlockedTaylorKernel.from_matrix(self._psi, backend=self.backend)
            kernel.chunk_columns = chunk
            return kernel
        if self.mode == "sparse-psi":
            # Sparse-Psi CSR recurrences are NumPy-only (and only reachable
            # with a NumPy-backed stack — non-NumPy stacks densify).
            kernel = BlockedTaylorKernel.from_matrix(self._psi_csr)
            kernel.chunk_columns = chunk
            return kernel
        return BlockedTaylorKernel.from_scaled_factors(
            self.packed.matrix, self._qw, chunk_columns=chunk, backend=self.backend
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaylorEngine(dim={self.dim}, R={self.total_rank}, mode={self.mode}, "
            f"full_builds={self.full_builds}, updates={self.incremental_updates})"
        )
