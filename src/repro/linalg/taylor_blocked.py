"""Blocked/fused truncated-Taylor kernel for the Lemma 4.2 apply.

:func:`repro.linalg.taylor.taylor_expm_apply` evaluates the degree-``k``
polynomial one *term* at a time through a matvec callable.  That is the
right reference implementation, but when the operator being exponentiated
is the solver's weight matrix ``Psi = Q diag(w) Q^T`` (``Q`` the packed
Gram-factor stack of :class:`~repro.operators.packed.PackedGramFactors`)
the callable hides structure the kernel can exploit:

* each Taylor step ``t <- (scale * Psi) t / i`` is *two* GEMMs against the
  factor stack — ``Q ((w * scale / i) ∘ (Q^T t))`` — and the generic path
  additionally pays a weight-broadcast pass, a ``scale`` copy, a division
  copy, and a full finiteness scan *per term*.  The kernel folds the
  weights and the step scale into a pre-scaled copy of ``Q`` once, runs the
  Horner-style forward recurrence in two preallocated ping-pong buffers
  (``np.matmul(..., out=...)``), and checks finiteness once at the end;
* when the stacked rank ``R`` exceeds ``m/2`` (dense factors) the two
  factor GEMMs cost *more* than one dense ``m x m`` product: the kernel
  then materialises ``Psi`` once (a single ``(m, R) x (R, m)`` GEMM — the
  cost of one Taylor term) and runs the recurrence with a fused dense GEMM
  per term, ``m^2 s`` instead of ``2 m R s`` madds.  For the degenerate-
  sketch regime of Theorem 4.1 (``m ≲ 1000`` at tight eps, where the JL
  dimension reaches ``m`` and the "sketch" block is the full identity) this
  is the dominant-cost path and the densified recurrence is the ``~2R/m``-
  fold speedup measured by ``benchmarks/bench_e12_taylor.py``.

The *default* densification rule never leaves the Theorem 4.1 work
regime: it only triggers when the stored factor nonzeros ``q`` already
satisfy ``2 q > m^2``, so ``m^2 < 2 q`` and the dense recurrence still
performs ``O(q)`` work per column per term.  The rank-adaptive selection
policy (:mod:`repro.linalg.taylor_gram`) may force densification earlier
— when the dense GEMM's throughput beats the sparse products despite more
madds — in which case the oracle's charges (which always bill the model's
factored costs, keeping them representation-invariant) undercount the
hardware madds by at most the policy's discount factor; see the
work–depth notes in :mod:`repro.core.dotexp`.

Both modes evaluate *exactly the same polynomial* as
:func:`~repro.linalg.taylor.taylor_expm_apply`; results agree to floating-
point rounding (~1e-13), which the equivalence tests in
``tests/test_linalg_taylor_blocked.py`` pin down per column.

The optional ``chunk_columns`` argument bounds peak memory: the block is
processed in column slices, so the working set is ``O((m + R) * chunk)``
instead of ``O((m + R) * s)``.  Columns are independent, so chunking
computes exactly the same per-column quantities; results can differ from
the unchunked apply only by the last-ulp reordering inside the BLAS GEMM
kernels (different widths select different internal blockings), which the
tests bound at ``1e-12``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backend import NUMPY, get_array_backend
from repro.exceptions import InvalidProblemError, NumericalError
from repro.robustness.faultinject import fault_hook_array

__all__ = ["BlockedTaylorKernel", "blocked_taylor_apply", "densified_psi"]


def _stack_dtype(q: np.ndarray | sp.spmatrix) -> np.dtype:
    """The working dtype a kernel adopts for stack ``q``: ``float32`` stays
    ``float32`` (no silent upcast in the ping-pong buffers), everything
    else runs in the reference ``float64``."""
    dtype = np.dtype(getattr(q, "dtype", np.float64))
    return np.dtype(np.float32) if dtype == np.float32 else np.dtype(np.float64)


def densified_psi(
    q: np.ndarray | sp.spmatrix, col_weights: np.ndarray
) -> np.ndarray:
    """Materialise ``Psi = Q diag(w) Q^T`` dense, symmetrised.

    The one densification implementation shared by the blocked kernel's
    construction and the rank-adaptive engine's ``dense-psi`` state build
    (:class:`~repro.linalg.taylor_gram.TaylorEngine`), so the weight fold
    and the ``0.5 (Psi + Psi^T)`` symmetrisation can never drift apart.
    """
    if sp.issparse(q):
        qw = q.multiply(np.asarray(col_weights)[None, :]).tocsr()
        psi = np.asarray((qw @ q.T).todense(), dtype=np.float64)
    else:
        psi = (q * col_weights) @ q.T
    return 0.5 * (psi + psi.T)

#: densify ``Psi`` when twice the stored factor nonzeros exceed ``m^2``
#: (the break-even point between two factor GEMMs and one dense GEMM).
DENSIFY_FLOP_RATIO = 2.0


class _FusedTaylorApplyBase:
    """Shared chunked block-apply driver of the fused Taylor kernels.

    Subclasses (:class:`BlockedTaylorKernel`,
    :class:`~repro.linalg.taylor_gram.GramTaylorKernel`) provide
    ``_apply_chunk(block, degree, scale)`` plus ``dim``/``chunk_columns``/
    ``matvec_count`` attributes; this base owns the one implementation of
    input validation, the column-chunk loop, the model-level matvec
    bookkeeping, and the final finiteness check, so the kernels cannot
    drift apart on those behaviours.
    """

    dim: int
    chunk_columns: int | None
    matvec_count: int

    #: Fault-injection / error-attribution site identifier; Gram-space
    #: subclasses override it so supervisors can tell the kernels apart.
    fault_site = "taylor_blocked.apply"

    #: Array backend executing the recurrence (constructors override).
    backend = NUMPY

    #: Working dtype of the recurrence buffers: the stack's dtype when it
    #: is float32, the reference float64 otherwise (constructors override).
    dtype: np.dtype = np.dtype(np.float64)

    def apply(
        self,
        block: np.ndarray,
        degree: int,
        scale: float = 1.0,
        chunk_columns: int | None = None,
    ) -> np.ndarray:
        """Apply ``sum_{i<degree} (scale * Psi)^i / i!`` to every column of ``block``.

        Parameters
        ----------
        block:
            ``(m, s)`` block (or a single ``(m,)`` vector) to transform.
        degree:
            Number of Taylor terms ``k`` (Lemma 4.2's
            :func:`~repro.linalg.taylor.taylor_degree`).
        scale:
            Scalar multiplier on ``Psi`` inside the exponential — the
            Theorem 4.1 oracle passes ``0.5`` so the result approximates
            ``exp(Psi/2) block``.
        chunk_columns:
            Process the block in column slices of this width, bounding peak
            memory; ``None`` uses the kernel default, ``0`` forces
            unchunked.  Columns are independent, so chunking changes the
            result only by last-ulp BLAS reordering effects.
        """
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        block = np.asarray(block, dtype=self.dtype)
        single = block.ndim == 1
        if single:
            block = block[:, None]
        if block.shape[0] != self.dim:
            raise InvalidProblemError(
                f"block must have {self.dim} rows, got {block.shape[0]}"
            )
        chunk = self.chunk_columns if chunk_columns is None else chunk_columns
        s = block.shape[1]
        if chunk and 0 < chunk < s:
            out = np.empty((self.dim, s), dtype=self.dtype)
            for lo in range(0, s, chunk):
                hi = min(lo + chunk, s)
                out[:, lo:hi] = self._apply_chunk(block[:, lo:hi], degree, scale)
        else:
            out = self._apply_chunk(block, degree, scale)
        self.matvec_count += s * (degree - 1)
        fault_hook_array(self.fault_site, out)
        if not np.all(np.isfinite(out)):
            raise NumericalError(
                "fused Taylor expm evaluation overflowed; reduce the spectral "
                "norm of psi (e.g. by splitting exp(psi) = exp(psi/2)^2) or the degree",
                site=self.fault_site,
                kernel_mode=getattr(self, "mode", None),
            )
        return out[:, 0] if single else out

    def _apply_chunk(self, block: np.ndarray, degree: int, scale: float) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - subclasses implement


class BlockedTaylorKernel(_FusedTaylorApplyBase):
    """Fused block apply of the truncated Taylor series of ``exp(scale * Psi)``.

    The kernel represents a symmetric PSD operator
    ``Psi = Q diag(w) Q^T`` (factor form) or an explicit symmetric matrix
    ``Psi`` (matrix form) and evaluates

    .. math::

        \\hat B(s) \\; b \\;=\\; \\sum_{0 \\le i < k} \\frac{(s\\,\\Psi)^i}{i!}\\, b

    for an entire ``(m, s)`` block of vectors ``b`` at once — the Lemma 4.2
    truncated exponential that the Theorem 4.1 oracle pushes its sketch
    block through.  Construction chooses between the factor-space recurrence
    and a one-time densification of ``Psi`` by comparing their per-term GEMM
    cost (see the module docstring); both evaluate the identical polynomial.

    Parameters
    ----------
    q:
        Packed factor stack of shape ``(m, R)`` — a dense array or a scipy
        sparse matrix (the :attr:`PackedGramFactors.matrix` layout).
    col_weights:
        Per-*column* non-negative weights ``w`` of length ``R`` (the
        constraint weights already expanded by rank, e.g. via
        :meth:`PackedGramFactors.expand_weights`).
    chunk_columns:
        Default column-chunk size for :meth:`apply` (``None`` = unchunked).
    densify:
        Force (``True``) or forbid (``False``) the one-time materialisation
        of ``Psi``; ``None`` (default) keeps the legacy flop-ratio rule
        ``2 nnz(Q) > m^2``.  The rank-adaptive engine
        (:class:`~repro.linalg.taylor_gram.TaylorEngine`) passes an explicit
        choice from its measured-cost policy.

    Attributes
    ----------
    dim:
        Ambient dimension ``m``.
    matvec_count:
        Running count of (model-level) matrix–vector products performed by
        :meth:`apply` — ``s * (degree - 1)`` per call, the same unit
        :class:`~repro.linalg.taylor.TaylorExpmOperator` reports.
    uses_dense_psi:
        Whether construction materialised ``Psi`` (diagnostic; both modes
        produce the same values).
    """

    def __init__(
        self,
        q: np.ndarray | sp.spmatrix,
        col_weights: np.ndarray,
        chunk_columns: int | None = None,
        densify: bool | None = None,
        backend: "str | None" = None,
    ) -> None:
        self.backend = get_array_backend(backend)
        if sp.issparse(q):
            if not self.backend.is_numpy:
                raise InvalidProblemError(
                    "sparse factor stacks are NumPy-only; densify the stack "
                    "before handing it to a non-NumPy backend"
                )
            q = q.tocsr()
            m, r = q.shape
            nnz = q.nnz
            self.dtype = np.dtype(np.float64)
            col_weights = np.asarray(col_weights, dtype=np.float64).ravel()
        else:
            q = np.asarray(q)
            if q.ndim != 2:
                raise InvalidProblemError(f"q must be 2-dimensional, got ndim={q.ndim}")
            # Preserve float32 stacks instead of silently upcasting; the
            # reference float64 path is byte-for-byte what it always was.
            self.dtype = _stack_dtype(q)
            q = np.asarray(q, dtype=self.dtype)
            m, r = q.shape
            nnz = m * r
            col_weights = np.asarray(col_weights, dtype=self.dtype).ravel()
        if col_weights.shape[0] != r:
            raise InvalidProblemError(
                f"expected {r} column weights for a (m, {r}) stack, "
                f"got {col_weights.shape[0]}"
            )
        if np.any(col_weights < 0):
            raise InvalidProblemError("column weights must be non-negative")
        self.dim = int(m)
        self.total_rank = int(r)
        self.matvec_count = 0
        self.chunk_columns = chunk_columns
        self._psi: np.ndarray | None = None
        self._psi_sparse: sp.csr_matrix | None = None
        self._q: np.ndarray | sp.csr_matrix | None = None
        self._qw: np.ndarray | sp.csr_matrix | None = None

        if densify is None:
            densify = DENSIFY_FLOP_RATIO * nnz > m * m
        if densify:
            # One (m, R) x (R, m) GEMM now — the cost of a single Taylor
            # term — buys an m^2-per-term recurrence instead of 2 m R.
            self._psi = self.backend.asarray(densified_psi(q, col_weights))
        elif sp.issparse(q):
            self._q = q
            self._qw = q.multiply(col_weights[None, :]).tocsr()
        else:
            self._q = self.backend.asarray(q)
            self._qw = self.backend.asarray(q * col_weights)

    # ------------------------------------------------------------------ alternates
    @classmethod
    def from_matrix(
        cls, psi: np.ndarray | sp.spmatrix, backend: "str | None" = None
    ) -> "BlockedTaylorKernel":
        """Kernel over an explicit symmetric matrix ``Psi`` (no factor form).

        Dense matrices use the fused dense recurrence directly; sparse
        matrices keep sparse matvecs (NumPy backend only).
        """
        kernel = cls.__new__(cls)
        kernel.backend = get_array_backend(backend)
        kernel.matvec_count = 0
        kernel.chunk_columns = None
        kernel._q = None
        kernel._qw = None
        kernel._psi = None
        kernel._psi_sparse = None
        if sp.issparse(psi):
            if not kernel.backend.is_numpy:
                raise InvalidProblemError(
                    "sparse psi matrices are NumPy-only; densify before "
                    "handing them to a non-NumPy backend"
                )
            kernel.dtype = np.dtype(np.float64)
            kernel._psi_sparse = psi.tocsr()
            kernel.dim = int(psi.shape[0])
        else:
            kernel.dtype = _stack_dtype(psi)
            psi = np.asarray(psi, dtype=kernel.dtype)
            kernel._psi = kernel.backend.asarray(psi)
            kernel.dim = int(psi.shape[0])
        kernel.total_rank = kernel.dim
        if psi.shape != (kernel.dim, kernel.dim):
            raise InvalidProblemError(f"psi must be square, got shape {psi.shape}")
        return kernel

    @classmethod
    def from_scaled_factors(
        cls,
        q: np.ndarray | sp.spmatrix,
        qw: np.ndarray | sp.spmatrix,
        chunk_columns: int | None = None,
        backend: "str | None" = None,
    ) -> "BlockedTaylorKernel":
        """Kernel over a stack whose weight fold ``Q diag(w)`` already exists.

        The :class:`~repro.linalg.taylor_gram.TaylorEngine` maintains the
        scaled stack across solver iterations by rescaling only the active
        columns; this constructor reuses it instead of re-folding the
        weights (an ``O(nnz)`` pass) on every call.  The factor recurrence
        is forced — no densification check — because the engine's selection
        policy already decided against the dense representation.
        """
        kernel = cls.__new__(cls)
        kernel.backend = get_array_backend(backend)
        kernel.matvec_count = 0
        kernel.chunk_columns = chunk_columns
        kernel._psi = None
        kernel._psi_sparse = None
        if sp.issparse(q) != sp.issparse(qw) or q.shape != qw.shape:
            raise InvalidProblemError(
                "q and qw must share storage kind and shape, got "
                f"{q.shape} and {qw.shape}"
            )
        if sp.issparse(q):
            if not kernel.backend.is_numpy:
                raise InvalidProblemError(
                    "sparse factor stacks are NumPy-only; densify the stack "
                    "before handing it to a non-NumPy backend"
                )
            kernel.dtype = np.dtype(np.float64)
            kernel._q = q.tocsr()
            kernel._qw = qw
        else:
            kernel.dtype = _stack_dtype(q)
            kernel._q = kernel.backend.asarray(np.asarray(q, dtype=kernel.dtype))
            kernel._qw = kernel.backend.asarray(np.asarray(qw, dtype=kernel.dtype))
        kernel.dim = int(q.shape[0])
        kernel.total_rank = int(q.shape[1])
        return kernel

    @property
    def uses_dense_psi(self) -> bool:
        """Whether the kernel runs the recurrence on a materialised ``Psi``."""
        return self._psi is not None

    @property
    def mode(self) -> str:
        """Representation tag in the engine's vocabulary (for error attribution)."""
        if self._psi is not None:
            return "dense-psi"
        if self._psi_sparse is not None:
            return "sparse-psi"
        if sp.issparse(self._q):
            return "sparse-factors"
        return "dense-factors"

    # ------------------------------------------------------------------ matvec
    def matvec(self, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` (unscaled) — used for spectral-norm estimation.

        Uses whichever representation the kernel holds; for the densified
        mode this is a single ``m^2``-madd product per column.
        """
        if self._psi_sparse is not None:
            return self._psi_sparse @ block
        if sp.issparse(self._q):
            return self._qw @ (self._q.T @ block)
        xp = self.backend
        b = xp.asarray(block, dtype=self.dtype)
        if self._psi is not None:
            return xp.to_numpy(xp.matmul(self._psi, b))
        return xp.to_numpy(xp.matmul(self._qw, xp.matmul(self._q.T, b)))

    # ------------------------------------------------------------------ apply
    # apply() is inherited from _FusedTaylorApplyBase; this kernel supplies
    # the per-chunk recurrence for whichever representation it holds.
    def _apply_chunk(self, block: np.ndarray, degree: int, scale: float) -> np.ndarray:
        if self._psi is not None:
            return self._apply_dense_psi(block, degree, scale)
        if self._psi_sparse is not None:
            return self._apply_sparse_op(self._psi_sparse, None, block, degree, scale)
        if sp.issparse(self._q):
            return self._apply_sparse_op(self._qw, self._q, block, degree, scale)
        return self._apply_dense_factors(block, degree, scale)

    def _apply_dense_psi(self, block: np.ndarray, degree: int, scale: float) -> np.ndarray:
        xp = self.backend
        acc = xp.copy(xp.asarray(block, dtype=self.dtype))
        term = xp.copy(acc)
        buf = xp.empty_like(term)
        for i in range(1, degree):
            xp.matmul(self._psi, term, out=buf)
            buf *= scale / i
            acc += buf
            term, buf = buf, term
        return xp.to_numpy(acc)

    def _apply_dense_factors(self, block: np.ndarray, degree: int, scale: float) -> np.ndarray:
        xp = self.backend
        acc = xp.copy(xp.asarray(block, dtype=self.dtype))
        term = xp.copy(acc)
        buf = xp.empty_like(term)
        inner = xp.empty((self.total_rank, block.shape[1]), dtype=self.dtype)
        qw_t = self._qw.T
        for i in range(1, degree):
            xp.matmul(qw_t, term, out=inner)
            xp.matmul(self._q, inner, out=buf)
            buf *= scale / i
            acc += buf
            term, buf = buf, term
        return xp.to_numpy(acc)

    @staticmethod
    def _apply_sparse_op(
        op: sp.csr_matrix,
        q: sp.csr_matrix | None,
        block: np.ndarray,
        degree: int,
        scale: float,
    ) -> np.ndarray:
        # scipy sparse products cannot write into preallocated buffers, so
        # this mode only folds the weights (op = Q diag(w)) and hoists the
        # finiteness check; the per-term product count matches the factored
        # reference.
        term = np.array(block, dtype=np.float64, copy=True)
        acc = term.copy()
        for i in range(1, degree):
            term = op @ (q.T @ term) if q is not None else op @ term
            term *= scale / i
            acc += term
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BlockedTaylorKernel(dim={self.dim}, R={self.total_rank}, mode={self.mode})"
        )


def blocked_taylor_apply(
    q: np.ndarray | sp.spmatrix,
    col_weights: np.ndarray,
    block: np.ndarray,
    degree: int,
    scale: float = 1.0,
    chunk_columns: int | None = None,
    backend: "str | None" = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`BlockedTaylorKernel`.

    Equivalent to ``BlockedTaylorKernel(q, col_weights).apply(block, degree,
    scale, chunk_columns)``; prefer constructing the kernel once when the
    same ``(q, w)`` pair is applied to several blocks (the densified ``Psi``
    and scaled factor copies are then reused across calls).
    """
    kernel = BlockedTaylorKernel(q, col_weights, backend=backend)
    return kernel.apply(block, degree, scale=scale, chunk_columns=chunk_columns)
