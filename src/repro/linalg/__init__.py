"""Dense PSD linear-algebra substrate.

This subpackage provides the matrix primitives the positive-SDP solver is
built on:

* :mod:`repro.linalg.psd` — positive-semidefiniteness checks, Loewner-order
  comparisons, projection to the PSD cone.
* :mod:`repro.linalg.factorization` — Gram factorizations ``A = Q Q^T``,
  inverse square roots ``C^{-1/2}`` (Appendix A of the paper), pivoted
  Cholesky.
* :mod:`repro.linalg.expm` — exact (eigendecomposition-based) matrix
  exponentials and exponential-weighted trace products, the reference
  implementation of the oracle used in each solver iteration.
* :mod:`repro.linalg.taylor` — the truncated-Taylor approximation of
  ``exp(B)`` from Lemma 4.2 (Arora–Kale Lemma 6), with the paper's degree
  rule ``k = max(e^2 * kappa, ln(2/eps))``.
* :mod:`repro.linalg.taylor_blocked` — the blocked/fused evaluation of the
  same polynomial on an entire ``(m, s)`` block at once: Horner-style fused
  GEMMs against the packed Gram factors, with an optional column-chunked
  variant that bounds peak memory.
* :mod:`repro.linalg.taylor_gram` — the rank-adaptive exponential engine:
  the ``R x R`` Gram-space recurrence (``2R <= m``), the sparse-``Psi``
  CSR accumulation with symbolic-pattern reuse, the measured-cost kernel
  selection policy, and the incremental cross-iteration
  :class:`~repro.linalg.taylor_gram.TaylorEngine`.
* :mod:`repro.linalg.trace_estimation` — structured estimation of the
  oracle's trace normalisation ``Tr[exp(Psi)]`` in the degenerate-sketch
  regime: the exact ``R x R`` Gram-spectrum evaluation, the exact deflated
  block-Krylov projection, and a certified Hutchinson sampler — replacing
  the per-call full-identity Taylor apply.
* :mod:`repro.linalg.sketching` — Johnson–Lindenstrauss Gaussian sketching
  used by the nearly-linear-work oracle of Theorem 4.1.
* :mod:`repro.linalg.norms` — spectral-norm estimation (power iteration and
  Lanczos), trace inner products, and eigenvalue helpers.
"""

from repro.linalg.psd import (
    is_psd,
    check_psd,
    min_eigenvalue,
    max_eigenvalue,
    loewner_leq,
    project_to_psd,
    nearest_psd,
    random_psd,
)
from repro.linalg.factorization import (
    gram_factor,
    gram_factor_lowrank,
    inverse_sqrt,
    sqrt_psd,
    pivoted_cholesky,
)
from repro.linalg.expm import (
    expm_psd,
    expm_eigh,
    expm_dot,
    expm_dot_many,
    expm_trace,
    expm_normalized,
)
from repro.linalg.taylor import (
    taylor_degree,
    taylor_expm_apply,
    taylor_expm_matrix,
    TaylorExpmOperator,
)
from repro.linalg.taylor_blocked import (
    BlockedTaylorKernel,
    blocked_taylor_apply,
)
from repro.linalg.taylor_gram import (
    GramTaylorKernel,
    SparsePsiAccumulator,
    TaylorEngine,
    gram_taylor_apply,
    select_taylor_mode,
)
from repro.linalg.trace_estimation import (
    TraceEstimate,
    TraceEstimator,
    gram_exp_trace,
    select_trace_mode,
    truncated_exp_values,
)
from repro.linalg.sketching import (
    jl_dimension,
    gaussian_sketch,
    sketch_columns,
    SketchedNormEstimator,
)
from repro.linalg.norms import (
    spectral_norm,
    spectral_norm_power,
    spectral_norm_lanczos,
    top_eigenvalue,
    trace_product,
    frobenius_inner,
)

__all__ = [
    "is_psd",
    "check_psd",
    "min_eigenvalue",
    "max_eigenvalue",
    "loewner_leq",
    "project_to_psd",
    "nearest_psd",
    "random_psd",
    "gram_factor",
    "gram_factor_lowrank",
    "inverse_sqrt",
    "sqrt_psd",
    "pivoted_cholesky",
    "expm_psd",
    "expm_eigh",
    "expm_dot",
    "expm_dot_many",
    "expm_trace",
    "expm_normalized",
    "taylor_degree",
    "taylor_expm_apply",
    "taylor_expm_matrix",
    "TaylorExpmOperator",
    "BlockedTaylorKernel",
    "blocked_taylor_apply",
    "GramTaylorKernel",
    "SparsePsiAccumulator",
    "TaylorEngine",
    "gram_taylor_apply",
    "select_taylor_mode",
    "TraceEstimate",
    "TraceEstimator",
    "gram_exp_trace",
    "select_trace_mode",
    "truncated_exp_values",
    "jl_dimension",
    "gaussian_sketch",
    "sketch_columns",
    "SketchedNormEstimator",
    "spectral_norm",
    "spectral_norm_power",
    "spectral_norm_lanczos",
    "top_eigenvalue",
    "trace_product",
    "frobenius_inner",
]
