"""Batched constraint collections.

``ConstraintCollection`` wraps the list of constraint operators
``A_1, ..., A_n`` of a packing/covering SDP and provides the *batched*
operations the decision solver performs every iteration:

* ``weighted_sum(x)`` — build ``Psi = sum_i x_i A_i`` as a dense matrix;
* ``dots(W)`` — all trace products ``A_i . W`` at once;
* ``traces()`` — the vector ``(Tr[A_1], ..., Tr[A_n])``;
* ``gram_factors()`` — the factors ``Q_i`` for the Theorem 4.1 oracle;
* ``total_nnz`` — the work parameter ``q`` of Corollary 1.2.

The batched operations optionally run through a
:class:`repro.parallel.backends.ExecutionBackend` so that per-constraint
work is expressed as a parallel map (constant depth over ``n`` in the
work–depth model) and so its work/depth is recorded by the cost tracker.

Packed fast path
----------------
:meth:`ConstraintCollection.packed` builds (and caches) a
:class:`repro.operators.packed.PackedGramFactors` view: all Gram factors
stacked into one ``(m, sum_i r_i)`` matrix with column offsets.  Once that
view exists — and every operator's factor is *exact* (``Q Q^T = A`` by
construction: factorized, low-rank, diagonal representations) —
``weighted_sum``/``dots``/``traces`` route through it: each becomes a
single GEMM plus a segment reduction instead of an ``n``-term Python
loop.  Dense/sparse operators, whose factors come from a truncated
eigendecomposition, never reroute the reference operations (the fast
oracle may still use their packed factors, exactly as the seed per-factor
loop did).  The packed path charges the same ``O(q)`` work (``q`` = total
factor nonzeros) and polylogarithmic depth in the cost model; only the
wall-clock constants change.  The view is built lazily because deriving
Gram factors of dense operators costs one eigendecomposition each —
callers that never ask for the packed view never pay it, and the
reference loop remains the bit-exact baseline the packed results are
tested against.  Both oracles now request the view when the factors are
exact (the fast oracle always packs; the exact oracle packs for its
batched trace-product pass unless constructed with ``batched=False``).

The packed view also carries the rank-adaptive Taylor machinery: its
weight-independent artifacts (the ``R x R`` Gram matrix ``Q^T Q``, the
sparse-``Psi`` symbolic pattern, the auto-selected representation) and the
incremental :class:`~repro.linalg.taylor_gram.TaylorEngine` are cached on
the view, so every oracle built over the same collection shares them and
the engine's cross-iteration state survives oracle reconstruction.

Dense-collection fallback
-------------------------
All-dense collections can never take the packed reroute, so
``weighted_sum`` batches them differently: the dense matrices are stacked
once into a cached ``(n, m, m)`` array (within a memory cap) and the sum
becomes a single ``tensordot`` contraction over the weights instead of an
``n``-term accumulation loop.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.operators.dense import DensePSDOperator
from repro.operators.packed import PackedGramFactors
from repro.operators.psd_operator import PSDOperator, as_operator

#: memory cap (bytes) on the cached dense ``(n, m, m)`` stack used to batch
#: ``weighted_sum`` for all-dense collections without an exact packed view.
DENSE_STACK_MAX_BYTES = 1 << 27


class ConstraintCollection:
    """An immutable ordered collection of PSD constraint operators."""

    def __init__(self, operators: Iterable, validate: bool = True) -> None:
        ops = [as_operator(op, validate=validate) for op in operators]
        if not ops:
            raise InvalidProblemError("constraint collection must contain at least one matrix")
        dims = {op.dim for op in ops}
        if len(dims) != 1:
            raise InvalidProblemError(f"all constraint matrices must share one dimension, got {sorted(dims)}")
        if validate:
            for i, op in enumerate(ops):
                # A zero-rank factor stack makes the normalized problem
                # ill-posed: A_i . W = 0 keeps constraint i in the
                # qualifying set forever while x_i grows against a zero
                # matrix.  (Zero-rank *blocks* inside a hand-built
                # PackedGramFactors remain supported; this guards solver
                # inputs.)
                if getattr(op, "rank", None) == 0:
                    raise InvalidProblemError(
                        f"constraint {i} has a zero-rank factor (A_i = 0); "
                        "remove zero constraints before solving"
                    )
        self._operators: list[PSDOperator] = ops
        self.dim = ops[0].dim
        self.size = len(ops)
        self._packed: PackedGramFactors | None = None
        self._packed_by_backend: dict[str, PackedGramFactors] = {}
        self._exact_factors = all(op.gram_factor_is_exact for op in ops)
        self._dense_stack: np.ndarray | None = None
        self._dense_stack_checked = False
        self._op_work: list[float] | None = None
        self._total_nnz: int | None = None

    # ------------------------------------------------------------------ dunder
    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[PSDOperator]:
        return iter(self._operators)

    def __getitem__(self, index: int) -> PSDOperator:
        return self._operators[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConstraintCollection(n={self.size}, dim={self.dim}, nnz={self.total_nnz})"

    # ------------------------------------------------------------------ batched ops
    @property
    def operators(self) -> Sequence[PSDOperator]:
        """The wrapped operators, in constraint order (immutable view)."""
        return tuple(self._operators)

    @property
    def total_nnz(self) -> int:
        """Total stored nonzeros across the collection (the ``q`` of Cor. 1.2
        when operators are factorized, and the input-size proxy otherwise).

        Cached on first access — the collection is immutable and the fast
        oracle reads ``q`` for its work charge on every call."""
        if self._total_nnz is None:
            self._total_nnz = int(sum(op.nnz for op in self._operators))
        return self._total_nnz

    @property
    def operator_work(self) -> list[float]:
        """Per-operator work charges ``max(nnz(A_i), 1)``, computed once.

        Counting nonzeros scans each operator's storage, so the list is
        cached — the collection is immutable and ``dots`` needs it every
        solver iteration for its work–depth charges.
        """
        if self._op_work is None:
            self._op_work = [float(max(op.nnz, 1)) for op in self._operators]
        return self._op_work

    def packed(self, backend=None) -> PackedGramFactors:
        """The cached packed Gram-factor view (built on first access).

        Building the view requires a Gram factor per operator — free for
        factorized/low-rank/diagonal representations, one eigendecomposition
        for dense ones — so it is only constructed on demand.  Once built,
        ``weighted_sum``/``dots``/``traces`` route through it automatically.

        ``backend`` selects the array backend of the returned view (see
        :mod:`repro.backend`).  Views are cached per backend name; the
        default NumPy view is the one the collection's own batched
        operations use, so requesting a torch/CuPy view never perturbs
        the NumPy fast path.
        """
        from repro.backend import get_array_backend

        resolved = get_array_backend(backend)
        if resolved.is_numpy:
            if self._packed is None:
                self._packed = PackedGramFactors.from_collection(self)
            return self._packed
        cached = self._packed_by_backend.get(resolved.name)
        if cached is None:
            cached = PackedGramFactors.from_collection(self, backend=resolved)
            self._packed_by_backend[resolved.name] = cached
        return cached

    @property
    def packed_view(self) -> PackedGramFactors | None:
        """The packed view if it has already been built, else ``None``."""
        return self._packed

    @property
    def has_exact_factors(self) -> bool:
        """Whether every operator's Gram factor is exact (``Q Q^T = A`` by
        construction), i.e. whether the packed view may replace the
        reference batched operations (see
        :attr:`~repro.operators.psd_operator.PSDOperator.gram_factor_is_exact`)."""
        return self._exact_factors

    @property
    def packed_fast_path(self) -> PackedGramFactors | None:
        """The packed view, but only when it may replace the reference ops.

        Requires the view to exist *and* every operator's Gram factor to be
        exact (``Q Q^T = A`` by construction), so rerouting
        ``weighted_sum``/``dots``/``traces`` through it changes floating
        point rounding order only — never the operator semantics.
        """
        if self._packed is None or not self._exact_factors:
            return None
        return self._packed

    def traces(self) -> np.ndarray:
        """Vector of traces ``Tr[A_i]``."""
        packed = self.packed_fast_path
        if packed is not None:
            return packed.traces()
        return np.array([op.trace() for op in self._operators], dtype=np.float64)

    def spectral_norms(self) -> np.ndarray:
        """Vector of spectral norms ``||A_i||_2`` (the per-constraint widths)."""
        return np.array([op.spectral_norm() for op in self._operators], dtype=np.float64)

    def width(self) -> float:
        """The width parameter ``rho = max_i ||A_i||_2`` of the instance."""
        return float(self.spectral_norms().max())

    def _dense_stacked(self) -> np.ndarray | None:
        """Cached ``(n, m, m)`` stack of dense constraint matrices, or ``None``.

        Built lazily, and only for all-dense collections (whose eigh-derived
        factors are inexact, so the packed reroute never applies) within the
        :data:`DENSE_STACK_MAX_BYTES` memory cap.  The stack turns the
        ``weighted_sum`` fallback loop into one ``tensordot`` contraction
        without changing operator semantics — each slice *is* the operator's
        dense matrix.
        """
        if not self._dense_stack_checked:
            self._dense_stack_checked = True
            fits = self.size * self.dim * self.dim * 8 <= DENSE_STACK_MAX_BYTES
            if fits and all(
                isinstance(op, DensePSDOperator) for op in self._operators
            ):
                self._dense_stack = np.stack(
                    [op.to_dense() for op in self._operators]
                )
        return self._dense_stack

    def weighted_sum(self, weights: np.ndarray) -> np.ndarray:
        """Dense matrix ``sum_i weights[i] * A_i``.

        Weights must be non-negative (the sum must stay PSD); zero weights
        are skipped so the cost is proportional to the support of ``weights``.
        Exact-factor collections with a built packed view route through a
        single rank-``R`` GEMM; all-dense collections batch the sum as one
        ``tensordot`` over a cached ``(n, m, m)`` stack; everything else
        keeps the per-operator accumulation loop.
        """
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != self.size:
            raise InvalidProblemError(
                f"expected {self.size} weights, got {weights.shape[0]}"
            )
        if not np.all(np.isfinite(weights)):
            # NaN slips through the sign check below (NaN compares False
            # to everything), so non-finiteness is rejected explicitly.
            raise InvalidProblemError("weights contain non-finite entries")
        if np.any(weights < 0):
            raise InvalidProblemError("weights must be non-negative")
        packed = self.packed_fast_path
        if packed is not None:
            return packed.weighted_sum(weights)
        stack = self._dense_stacked()
        if stack is not None:
            active = np.flatnonzero(weights)
            if active.shape[0] == 0:
                return np.zeros((self.dim, self.dim), dtype=np.float64)
            if 4 * active.shape[0] >= self.size:
                acc = np.tensordot(weights, stack, axes=1)
            else:
                # Sparse support (incremental solver deltas): contract only
                # the active slices.
                acc = np.tensordot(weights[active], stack[active], axes=1)
            return 0.5 * (acc + acc.T)
        acc = np.zeros((self.dim, self.dim), dtype=np.float64)
        for weight, op in zip(weights, self._operators):
            if weight != 0.0:
                op.add_to(acc, float(weight))
        return 0.5 * (acc + acc.T)

    def dots(self, weight_matrix: np.ndarray, backend=None) -> np.ndarray:
        """All trace products ``A_i . W`` as a vector of length ``n``.

        When ``backend`` is given, the products are included in its
        work–depth accounting with per-item work ``nnz(A_i)`` and unit
        depth.  If the packed fast path is available the products are
        computed as one GEMM plus a segment reduction and the backend is
        charged the identical per-item costs through
        :meth:`~repro.parallel.backends.ExecutionBackend.charge_batched`;
        otherwise they run through the backend's parallel ``map``.
        """
        weight_matrix = np.asarray(weight_matrix, dtype=np.float64)
        if weight_matrix.shape != (self.dim, self.dim):
            raise InvalidProblemError(
                f"weight matrix must have shape {(self.dim, self.dim)}, got {weight_matrix.shape}"
            )
        packed = self.packed_fast_path
        if backend is None:
            if packed is not None:
                return packed.dots(weight_matrix)
            return np.array([op.dot(weight_matrix) for op in self._operators], dtype=np.float64)
        if packed is not None:
            backend.charge_batched(
                self.size,
                work_per_item=self.operator_work,
                label="constraint-dots",
            )
            return packed.dots(weight_matrix)
        results = backend.map(
            lambda op: op.dot(weight_matrix),
            self._operators,
            work_per_item=self.operator_work,
            label="constraint-dots",
        )
        return np.asarray(list(results), dtype=np.float64)

    def gram_factors(self) -> list[np.ndarray]:
        """Gram factors ``Q_i`` (dense) for every constraint."""
        return [op.gram_factor() for op in self._operators]

    def to_dense_list(self) -> list[np.ndarray]:
        """Dense copies of every constraint matrix (for tests / reference solvers)."""
        return [op.to_dense() for op in self._operators]

    # ------------------------------------------------------------------ transforms
    def scaled(self, coeffs: np.ndarray) -> "ConstraintCollection":
        """Return a new collection with each ``A_i`` scaled by ``coeffs[i] >= 0``."""
        coeffs = np.asarray(coeffs, dtype=np.float64).ravel()
        if coeffs.shape[0] != self.size:
            raise InvalidProblemError(f"expected {self.size} coefficients, got {coeffs.shape[0]}")
        if not np.all(np.isfinite(coeffs)) or np.any(coeffs < 0):
            raise InvalidProblemError("scaling coefficients must be finite and non-negative")
        return ConstraintCollection(
            [op.scaled(float(c)) for op, c in zip(self._operators, coeffs)], validate=False
        )

    def subset(self, indices: Sequence[int]) -> "ConstraintCollection":
        """Return the sub-collection with the given constraint indices."""
        indices = list(indices)
        if not indices:
            raise InvalidProblemError("subset must contain at least one index")
        return ConstraintCollection([self._operators[i] for i in indices], validate=False)
