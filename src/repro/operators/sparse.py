"""Sparse (CSR) PSD operator."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.linalg.factorization import gram_factor
from repro.linalg.psd import check_psd
from repro.operators.psd_operator import PSDOperator


class SparsePSDOperator(PSDOperator):
    """PSD operator backed by a ``scipy.sparse`` matrix (stored as CSR).

    Symmetric sparse matrices that arise from combinatorial instances
    (graph Laplacians for MaxCut, edge matrices, diagonal blocks) keep their
    sparsity; trace products and matvecs cost ``O(nnz)``.
    """

    def __init__(self, matrix: sp.spmatrix, validate: bool = True) -> None:
        if not sp.issparse(matrix):
            raise InvalidProblemError("SparsePSDOperator requires a scipy sparse matrix")
        csr = sp.csr_matrix(matrix, dtype=np.float64)
        if csr.shape[0] != csr.shape[1]:
            raise InvalidProblemError(f"matrix must be square, got {csr.shape}")
        if validate:
            check_psd(csr.toarray(), "matrix")
        self._matrix = csr
        self.dim = csr.shape[0]
        self._gram: np.ndarray | None = None

    def to_dense(self) -> np.ndarray:
        return self._matrix.toarray()

    def trace(self) -> float:
        return float(self._matrix.diagonal().sum())

    def dot(self, weight: np.ndarray) -> float:
        rows, cols = self._matrix.nonzero()
        vals = np.asarray(self._matrix[rows, cols]).ravel()
        return float(np.sum(vals * weight[rows, cols]))

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self._matrix @ vector

    def add_to(self, accumulator: np.ndarray, coeff: float = 1.0) -> None:
        rows, cols = self._matrix.nonzero()
        vals = np.asarray(self._matrix[rows, cols]).ravel()
        accumulator[rows, cols] += coeff * vals

    def gram_factor(self) -> np.ndarray:
        if self._gram is None:
            self._gram = gram_factor(self.to_dense())
        return self._gram

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the sparse matrix."""
        return int(self._matrix.nnz)

    @property
    def sparse(self) -> sp.csr_matrix:
        """The underlying CSR matrix (read-only view)."""
        return self._matrix
