"""PSD operator representations for constraint matrices.

The solver only ever interacts with each constraint matrix ``A_i`` through a
small interface: trace, trace inner products against a weight matrix,
matrix–vector products, additions into a running weighted sum, and (for the
fast oracle of Theorem 4.1) access to a Gram factor ``Q_i`` with
``A_i = Q_i Q_i^T``.  Encapsulating this interface in
:class:`~repro.operators.psd_operator.PSDOperator` lets the same solver code
run on dense matrices, scipy sparse matrices, explicit low-rank/diagonal
representations, and "prefactored" inputs (the form Corollary 1.2 assumes),
while the work accounting can use each representation's true nonzero count.
"""

from repro.operators.psd_operator import PSDOperator, as_operator
from repro.operators.dense import DensePSDOperator
from repro.operators.sparse import SparsePSDOperator
from repro.operators.diagonal import DiagonalPSDOperator
from repro.operators.factorized import FactorizedPSDOperator
from repro.operators.lowrank import LowRankPSDOperator
from repro.operators.packed import PackedGramFactors
from repro.operators.collection import ConstraintCollection

__all__ = [
    "PackedGramFactors",
    "PSDOperator",
    "as_operator",
    "DensePSDOperator",
    "SparsePSDOperator",
    "DiagonalPSDOperator",
    "FactorizedPSDOperator",
    "LowRankPSDOperator",
    "ConstraintCollection",
]
