"""Dense PSD operator."""

from __future__ import annotations

import numpy as np

from repro.linalg.factorization import gram_factor
from repro.linalg.psd import check_psd
from repro.operators.psd_operator import PSDOperator
from repro.utils.validation import symmetrize


class DensePSDOperator(PSDOperator):
    """PSD operator backed by a dense ``numpy`` array.

    Parameters
    ----------
    matrix:
        Symmetric PSD ``m x m`` array.
    validate:
        When ``True`` (default) the matrix is checked for symmetry and
        positive semidefiniteness at construction time.  Internal callers
        that construct matrices known to be PSD pass ``False`` to skip the
        ``O(m^3)`` eigenvalue check.
    """

    def __init__(self, matrix: np.ndarray, validate: bool = True) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if validate:
            matrix = check_psd(matrix, "matrix")
        else:
            matrix = symmetrize(matrix)
        self._matrix = matrix
        self.dim = matrix.shape[0]
        self._gram: np.ndarray | None = None

    def to_dense(self) -> np.ndarray:
        return self._matrix.copy()

    def trace(self) -> float:
        return float(np.trace(self._matrix))

    def dot(self, weight: np.ndarray) -> float:
        return float(np.sum(self._matrix * weight))

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        return self._matrix @ vector

    def add_to(self, accumulator: np.ndarray, coeff: float = 1.0) -> None:
        accumulator += coeff * self._matrix

    def gram_factor(self) -> np.ndarray:
        if self._gram is None:
            self._gram = gram_factor(self._matrix)
        return self._gram

    @property
    def nnz(self) -> int:
        """Nonzero entries of the dense matrix."""
        return int(np.count_nonzero(self._matrix))

    def spectral_norm(self) -> float:
        if self.dim == 0:
            return 0.0
        return float(np.linalg.eigvalsh(self._matrix)[-1])
