"""Abstract PSD operator interface and the :func:`as_operator` coercion helper."""

from __future__ import annotations

import abc
from typing import Any

import numpy as np
import scipy.sparse as sp


class PSDOperator(abc.ABC):
    """A symmetric positive semidefinite matrix exposed through an operator API.

    Concrete subclasses store the matrix in whatever representation is
    natural (dense array, sparse matrix, diagonal vector, Gram factor) and
    implement the handful of primitives the solvers use.  All operators are
    immutable after construction.

    The interface deliberately mirrors the quantities that appear in the
    paper:

    * :meth:`trace` — ``Tr[A]``, used by the initialisation
      ``x_i(0) = 1 / (n Tr[A_i])`` and the trace bound of Lemma 2.2;
    * :meth:`dot` — ``A . W = Tr[A W]``, the per-iteration oracle output;
    * :meth:`add_to` — accumulate ``coeff * A`` into a dense running sum
      (used to build ``Psi = sum_i x_i A_i``);
    * :meth:`matvec` — ``A @ v``, used by iterative norm estimation;
    * :meth:`gram_factor` — a matrix ``Q`` with ``A = Q Q^T`` (computed
      lazily for representations that do not already store one), the input
      format of Theorem 4.1;
    * :attr:`nnz` — the representation's nonzero count, the work-measure
      unit of Corollary 1.2.
    """

    #: matrix dimension m (set by subclasses)
    dim: int

    # ------------------------------------------------------------------ core
    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Return the operator as a dense symmetric ``m x m`` array."""

    @abc.abstractmethod
    def trace(self) -> float:
        """Return ``Tr[A]``."""

    @abc.abstractmethod
    def dot(self, weight: np.ndarray) -> float:
        """Return the trace inner product ``A . W`` against a dense matrix ``W``."""

    @abc.abstractmethod
    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """Return ``A @ vector`` (also accepts a block of column vectors)."""

    @abc.abstractmethod
    def add_to(self, accumulator: np.ndarray, coeff: float = 1.0) -> None:
        """Accumulate ``coeff * A`` into the dense array ``accumulator`` in place."""

    @abc.abstractmethod
    def gram_factor(self) -> np.ndarray:
        """Return a factor ``Q`` (dense, ``m x r``) with ``A = Q Q^T``."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of explicitly stored nonzero entries of this representation."""

    @property
    def gram_factor_is_exact(self) -> bool:
        """Whether ``gram_factor()`` reproduces the operator exactly.

        This is the gating contract of every packed fast path.  A subclass
        may return ``True`` only when ``Q Q^T = A`` holds *by construction*
        — i.e. the factor is the representation (factorized, low-rank,
        diagonal), not a derived approximation — so that computing any
        batched quantity through ``Q`` instead of ``A`` changes
        floating-point rounding order only, never operator semantics.
        ``False`` (the default) is mandatory for dense/sparse matrices whose
        factor comes from a truncated eigendecomposition: that factor is a
        controlled approximation, acceptable inside the randomized fast
        oracle (whose output is approximate anyway) but not in exact
        reference paths.

        Consumers of the contract:

        * :attr:`ConstraintCollection.packed_fast_path
          <repro.operators.collection.ConstraintCollection.packed_fast_path>`
          reroutes ``weighted_sum``/``dots``/``traces`` through the packed
          view only when *every* operator reports ``True``;
        * :class:`~repro.core.dotexp.ExactDotExpOracle` builds the packed
          view for its batched trace-product pass under the same condition
          (``batched=True``), keeping the per-constraint loop otherwise;
        * the fast oracle's sketched estimates use packed factors
          regardless, exactly as the seed per-factor loop did.
        """
        return False

    # ------------------------------------------------------------- conveniences
    @property
    def shape(self) -> tuple[int, int]:
        """The (square) matrix shape ``(m, m)``."""
        return (self.dim, self.dim)

    def spectral_norm(self) -> float:
        """Spectral norm (largest eigenvalue); subclasses may override with
        cheaper representation-specific computations."""
        from repro.linalg.norms import spectral_norm

        return spectral_norm(self.to_dense())

    def scaled(self, coeff: float) -> "PSDOperator":
        """Return a new operator representing ``coeff * A`` (``coeff >= 0``)."""
        if coeff < 0:
            raise ValueError(f"coeff must be >= 0 to preserve positive semidefiniteness, got {coeff}")
        from repro.operators.dense import DensePSDOperator

        return DensePSDOperator(coeff * self.to_dense(), validate=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(dim={self.dim}, nnz={self.nnz})"


def as_operator(matrix: Any, validate: bool = True) -> PSDOperator:
    """Coerce ``matrix`` into a :class:`PSDOperator`.

    Accepts an existing operator (returned unchanged), a scipy sparse
    matrix, a 1-D array (interpreted as a diagonal PSD matrix), or anything
    convertible to a dense 2-D array.
    """
    from repro.operators.dense import DensePSDOperator
    from repro.operators.diagonal import DiagonalPSDOperator
    from repro.operators.sparse import SparsePSDOperator

    if isinstance(matrix, PSDOperator):
        return matrix
    if sp.issparse(matrix):
        return SparsePSDOperator(matrix, validate=validate)
    arr = np.asarray(matrix, dtype=np.float64)
    if arr.ndim == 1:
        return DiagonalPSDOperator(arr, validate=validate)
    return DensePSDOperator(arr, validate=validate)
