"""Explicit low-rank PSD operator ``A = sum_j lambda_j v_j v_j^T``.

Several of the paper's motivating applications produce constraint matrices
that are rank one (MaxCut edge matrices ``(e_u - e_v)(e_u - e_v)^T``,
beamforming steering matrices ``a a^H``) or very low rank.  Storing the
eigenpairs directly makes trace products and matvecs ``O(m * rank)`` and the
Gram factor trivially available.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.operators.psd_operator import PSDOperator


class LowRankPSDOperator(PSDOperator):
    """PSD operator stored as scaled outer products of explicit vectors.

    Parameters
    ----------
    vectors:
        Array of shape ``(m, r)`` whose columns are the directions ``v_j``.
    weights:
        Optional non-negative weights ``lambda_j`` (default all ones), so
        that ``A = sum_j weights[j] * v_j v_j^T``.
    """

    def __init__(self, vectors: np.ndarray, weights: np.ndarray | None = None) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors[:, None]
        if vectors.ndim != 2:
            raise InvalidProblemError("vectors must have shape (m, r)")
        if not np.all(np.isfinite(vectors)):
            raise InvalidProblemError("vectors contain NaN or infinite entries")
        if weights is None:
            weights = np.ones(vectors.shape[1])
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != vectors.shape[1]:
            raise InvalidProblemError(
                f"got {vectors.shape[1]} vectors but {weights.shape[0]} weights"
            )
        if np.any(weights < 0):
            raise InvalidProblemError("weights must be non-negative")
        self._vectors = vectors
        self._weights = weights
        self.dim = vectors.shape[0]
        self.rank = vectors.shape[1]

    @classmethod
    def outer(cls, vector: np.ndarray, weight: float = 1.0) -> "LowRankPSDOperator":
        """Convenience constructor for a single rank-one term ``weight * v v^T``."""
        return cls(np.asarray(vector, dtype=np.float64)[:, None], np.array([weight]))

    def to_dense(self) -> np.ndarray:
        scaled = self._vectors * self._weights
        return scaled @ self._vectors.T

    def trace(self) -> float:
        return float(np.sum(self._weights * np.sum(self._vectors**2, axis=0)))

    def dot(self, weight: np.ndarray) -> float:
        wv = weight @ self._vectors
        return float(np.sum(self._weights * np.sum(self._vectors * wv, axis=0)))

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        inner = self._vectors.T @ vector
        if inner.ndim == 1:
            return self._vectors @ (self._weights * inner)
        return self._vectors @ (self._weights[:, None] * inner)

    def add_to(self, accumulator: np.ndarray, coeff: float = 1.0) -> None:
        scaled = self._vectors * (coeff * self._weights)
        accumulator += scaled @ self._vectors.T

    def gram_factor(self) -> np.ndarray:
        return self._vectors * np.sqrt(self._weights)

    @property
    def nnz(self) -> int:
        """Stored nonzeros across the rank-one vectors and their weights."""
        return int(np.count_nonzero(self._vectors)) + int(np.count_nonzero(self._weights))

    @property
    def gram_factor_is_exact(self) -> bool:
        """``sum_j w_j v_j v_j^T`` factors exactly as ``(V sqrt(w)) (V sqrt(w))^T``."""
        return True

    def spectral_norm(self) -> float:
        factor = self.gram_factor()
        if min(factor.shape) == 0:
            return 0.0
        return float(np.linalg.norm(factor, ord=2) ** 2)
