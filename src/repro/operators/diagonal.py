"""Diagonal PSD operator — the positive-LP special case.

When every constraint matrix is diagonal, the packing SDP
``sum_i x_i A_i <= I`` reduces coordinate-wise to a positive packing LP
(Section 1.2 of the paper: axis-aligned ellipses).  Representing diagonal
constraints explicitly keeps their cost at ``O(m)`` per operation and lets
experiment E7 compare the SDP solver against the dedicated positive-LP
algorithms in :mod:`repro.lp` on identical instances.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.operators.psd_operator import PSDOperator


class DiagonalPSDOperator(PSDOperator):
    """PSD operator ``A = diag(d)`` with ``d >= 0`` stored as a vector."""

    def __init__(self, diagonal: np.ndarray, validate: bool = True) -> None:
        diagonal = np.asarray(diagonal, dtype=np.float64).ravel()
        if validate:
            if not np.all(np.isfinite(diagonal)):
                raise InvalidProblemError("diagonal contains NaN or infinite entries")
            if np.any(diagonal < 0):
                raise InvalidProblemError(
                    "diagonal PSD operator requires non-negative entries; "
                    f"min entry is {diagonal.min():.3e}"
                )
        self._diag = diagonal
        self.dim = diagonal.shape[0]

    @property
    def diagonal(self) -> np.ndarray:
        """The diagonal entries (read-only copy)."""
        return self._diag.copy()

    def to_dense(self) -> np.ndarray:
        return np.diag(self._diag)

    def trace(self) -> float:
        return float(self._diag.sum())

    def dot(self, weight: np.ndarray) -> float:
        return float(np.sum(self._diag * np.diag(weight)))

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        if vector.ndim == 1:
            return self._diag * vector
        return self._diag[:, None] * vector

    def add_to(self, accumulator: np.ndarray, coeff: float = 1.0) -> None:
        idx = np.arange(self.dim)
        accumulator[idx, idx] += coeff * self._diag

    def gram_factor(self) -> np.ndarray:
        return np.diag(np.sqrt(self._diag))

    def gram_factor_raw(self) -> sp.csr_matrix:
        """Sparse factor ``diag(sqrt(d))`` — ``m`` stored entries instead of
        the dense ``m x m`` of :meth:`gram_factor`, so packing ``n`` diagonal
        constraints stays at ``O(n m)`` memory rather than ``O(n m^2)``."""
        return sp.diags(np.sqrt(self._diag), format="csr")

    @property
    def nnz(self) -> int:
        """Nonzero diagonal entries."""
        return int(np.count_nonzero(self._diag))

    @property
    def gram_factor_is_exact(self) -> bool:
        """``diag(sqrt(d)) diag(sqrt(d))^T = diag(d)`` by construction."""
        return True

    def spectral_norm(self) -> float:
        return float(self._diag.max(initial=0.0))
