"""Packed Gram-factor representation — the single-GEMM fast path.

The per-iteration primitives of the decision solver are all sums over the
``n`` constraints of small factor products: ``Psi v = sum_i x_i Q_i (Q_i^T
v)``, ``Psi = sum_i x_i Q_i Q_i^T``, ``A_i . W = || W^{1/2} Q_i ||_F^2`` and
the Theorem 4.1 sketch estimates ``|| (Pi exp(Phi/2)) Q_i ||_F^2``.  Looping
over the constraints in Python makes every one of these cost ``n``
interpreter round-trips and ``n`` small BLAS dispatches.

:class:`PackedGramFactors` removes the loop: the factors are stacked once
into a single ``(m, R)`` matrix ``Q`` (``R = sum_i r_i``) together with a
column-offset table, so that each primitive becomes one or two large GEMMs
followed by a segment reduction over the column blocks:

* ``Psi v      = Q (w_cols ∘ (Q^T v))``                — two GEMMs;
* ``Psi        = (Q ∘ w_cols) Q^T``                    — one GEMM;
* ``dots(W)    = segsum(colsum((W Q) ∘ Q))``           — one GEMM + reduce;
* ``traces()   = segsum(colnorms^2(Q))``               — no GEMM at all;
* ``estimates  = segsum(colnorms^2(T Q))`` for a sketch/transform ``T`` —
  one GEMM for *all* ``n`` Theorem 4.1 estimates.

``w_cols`` denotes the per-column expansion of the constraint weights
(``w_cols = repeat(w, ranks)``) and ``segsum`` the per-constraint segment
sum over the column blocks (``np.add.reduceat`` on the offsets, with a
cumulative-sum fallback for rank-zero blocks).

In the work–depth model the packed primitives charge the same ``O(q)`` work
as the reference loop (``q`` = total factor nonzeros, the Corollary 1.2 work
parameter) with polylogarithmic depth — the packing changes the constants,
not the asymptotics.  In wall-clock terms it replaces ``O(n)`` interpreted
iterations with one BLAS-3 call, which is where the order-of-magnitude
speedups measured by ``benchmarks/bench_e11_packed.py`` come from.

Sparse factors are supported: when the stacked matrix would be sparse the
packing keeps a CSR/CSC pair and the same primitives run through
``scipy.sparse`` matrix products.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError

#: stacked density above which sparse inputs are densified when packing
DENSIFY_THRESHOLD = 0.25


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` over ``[offsets[i], offsets[i+1])``.

    Uses ``np.add.reduceat`` when every segment is non-empty; falls back to
    a cumulative-sum difference otherwise (``reduceat`` silently returns
    ``values[offsets[i]]`` for empty segments instead of 0).
    """
    values = np.asarray(values, dtype=np.float64)
    if offsets.shape[0] < 2:
        return np.zeros(max(offsets.shape[0] - 1, 0), dtype=np.float64)
    widths = np.diff(offsets)
    if values.shape[0] == 0:
        return np.zeros(widths.shape[0], dtype=np.float64)
    if np.all(widths > 0):
        return np.add.reduceat(values, offsets[:-1])
    csum = np.concatenate([[0.0], np.cumsum(values)])
    return csum[offsets[1:]] - csum[offsets[:-1]]


class PackedGramFactors:
    """All constraint Gram factors stacked into one column-blocked matrix.

    Parameters
    ----------
    factors:
        Sequence of Gram factors ``Q_i`` with ``A_i = Q_i Q_i^T``, each of
        shape ``(m, r_i)`` (dense arrays or scipy sparse matrices; 1-D
        arrays are treated as single columns).
    densify_threshold:
        When the stacked matrix's density is at least this value, sparse
        inputs are densified so the primitives run through dense BLAS.
    """

    def __init__(
        self,
        factors: Sequence[np.ndarray | sp.spmatrix],
        densify_threshold: float = DENSIFY_THRESHOLD,
    ) -> None:
        if len(factors) == 0:
            raise InvalidProblemError("packed factors require at least one constraint")
        blocks: list[np.ndarray | sp.spmatrix] = []
        ranks = np.empty(len(factors), dtype=np.int64)
        any_sparse = False
        dims = set()
        for i, factor in enumerate(factors):
            if sp.issparse(factor):
                block = sp.csr_matrix(factor, dtype=np.float64)
                any_sparse = True
            else:
                block = np.asarray(factor, dtype=np.float64)
                if block.ndim == 1:
                    block = block[:, None]
                if block.ndim != 2:
                    raise InvalidProblemError(
                        f"factor {i} must be 2-dimensional, got ndim={block.ndim}"
                    )
            dims.add(block.shape[0])
            ranks[i] = block.shape[1]
            blocks.append(block)
        if len(dims) != 1:
            raise InvalidProblemError(
                f"all factors must share the ambient dimension, got {sorted(dims)}"
            )
        self.dim = int(next(iter(dims)))
        self.size = len(factors)
        self.ranks = ranks
        self.offsets = np.concatenate([[0], np.cumsum(ranks)]).astype(np.int64)
        self.total_rank = int(self.offsets[-1])

        if any_sparse:
            stacked = sp.hstack(
                [sp.csr_matrix(b) if not sp.issparse(b) else b for b in blocks],
                format="csr",
            )
            cells = max(stacked.shape[0] * stacked.shape[1], 1)
            if stacked.nnz / cells >= densify_threshold:
                self._q: np.ndarray | sp.csr_matrix = stacked.toarray()
                self._qc = None
                self._sparse = False
            else:
                self._q = stacked
                self._qc = stacked.tocsc()
                self._sparse = True
        else:
            dense_blocks = [np.ascontiguousarray(b) for b in blocks]
            self._q = (
                np.hstack(dense_blocks)
                if self.total_rank
                else np.zeros((self.dim, 0), dtype=np.float64)
            )
            self._qc = None
            self._sparse = False
        self._dense_cache: np.ndarray | None = None

    # ------------------------------------------------------------------ basics
    @classmethod
    def from_collection(cls, collection) -> "PackedGramFactors":
        """Pack the Gram factors of a :class:`ConstraintCollection`, keeping
        native sparse factors sparse when an operator exposes them."""
        factors = []
        for op in collection:
            raw = getattr(op, "gram_factor_raw", None)
            factors.append(raw() if raw is not None else op.gram_factor())
        return cls(factors)

    @property
    def is_sparse(self) -> bool:
        """Whether the stacked factor matrix is stored sparse (CSR/CSC)."""
        return self._sparse

    @property
    def matrix(self) -> np.ndarray | sp.csr_matrix:
        """The stacked ``(m, R)`` factor matrix ``Q`` (read-only view)."""
        return self._q

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the stacked matrix (the ``q`` of Cor. 1.2)."""
        if self._sparse:
            return int(self._q.nnz)
        return int(np.count_nonzero(self._q))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sparse" if self._sparse else "dense"
        return (
            f"PackedGramFactors(n={self.size}, dim={self.dim}, "
            f"R={self.total_rank}, {kind})"
        )

    def dense_columns(self) -> np.ndarray:
        """Dense copy of the stacked matrix (cached; used by the no-sketch
        Taylor path which must push every column through the polynomial)."""
        if self._dense_cache is None:
            self._dense_cache = self._q.toarray() if self._sparse else self._q
        return self._dense_cache

    def factor(self, index: int) -> np.ndarray | sp.csr_matrix:
        """The ``index``-th constraint's factor block ``Q_i``."""
        lo, hi = self.offsets[index], self.offsets[index + 1]
        if self._sparse:
            return self._qc[:, lo:hi]
        return self._q[:, lo:hi]

    # ------------------------------------------------------------------ weights
    def expand_weights(self, weights: np.ndarray) -> np.ndarray:
        """Per-column expansion ``repeat(weights, ranks)`` of per-constraint
        weights, validating length and non-negativity."""
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != self.size:
            raise InvalidProblemError(
                f"expected {self.size} weights, got {weights.shape[0]}"
            )
        if np.any(weights < 0):
            raise InvalidProblemError("weights must be non-negative")
        return np.repeat(weights, self.ranks)

    # ------------------------------------------------------------------ primitives
    def matvec(self, weights: np.ndarray, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` for ``Psi = sum_i weights[i] Q_i Q_i^T`` — two GEMMs."""
        col_w = self.expand_weights(weights)
        inner = self._q.T @ block
        if inner.ndim == 1:
            inner = col_w * inner
        else:
            inner = col_w[:, None] * inner
        return self._q @ inner

    def matvec_fn(self, weights: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
        """Closure form of :meth:`matvec` with the weight expansion hoisted
        out (the oracle applies the same ``Psi`` to many blocks)."""
        col_w = self.expand_weights(weights)
        q = self._q

        def apply(block: np.ndarray) -> np.ndarray:
            inner = q.T @ block
            if inner.ndim == 1:
                return q @ (col_w * inner)
            return q @ (col_w[:, None] * inner)

        return apply

    def taylor_kernel(self, weights: np.ndarray, chunk_columns: int | None = None):
        """A :class:`~repro.linalg.taylor_blocked.BlockedTaylorKernel` for
        ``Psi = sum_i weights[i] Q_i Q_i^T``.

        The kernel evaluates the Lemma 4.2 truncated exponential of
        ``scale * Psi`` on whole ``(m, s)`` blocks via fused GEMMs,
        densifying ``Psi`` once when the stacked rank makes the dense
        recurrence cheaper (see the kernel's module docstring).  Built per
        weight vector — the fast oracle constructs one per call.
        """
        from repro.linalg.taylor_blocked import BlockedTaylorKernel

        return BlockedTaylorKernel(
            self._q, self.expand_weights(weights), chunk_columns=chunk_columns
        )

    def weighted_sum(self, weights: np.ndarray) -> np.ndarray:
        """Dense ``sum_i weights[i] Q_i Q_i^T`` via one rank-``R`` GEMM.

        Columns with zero weight are dropped first, so incremental solver
        updates (sparse ``delta`` vectors) only pay for the active columns.
        """
        col_w = self.expand_weights(weights)
        active = np.flatnonzero(col_w)
        if active.shape[0] == 0:
            return np.zeros((self.dim, self.dim), dtype=np.float64)
        if self._sparse:
            if active.shape[0] == self.total_rank:
                sub, w = self._qc, col_w
            else:
                sub, w = self._qc[:, active], col_w[active]
            scaled = sub @ sp.diags(w)
            acc = (scaled @ sub.T).toarray()
        else:
            if active.shape[0] == self.total_rank:
                sub, w = self._q, col_w
            else:
                sub, w = self._q[:, active], col_w[active]
            acc = (sub * w) @ sub.T
        return 0.5 * (acc + acc.T)

    def dots(self, weight_matrix: np.ndarray) -> np.ndarray:
        """All ``A_i . W = colsum-per-block((W Q) ∘ Q)`` — one GEMM + reduce."""
        weight_matrix = np.asarray(weight_matrix, dtype=np.float64)
        if weight_matrix.shape != (self.dim, self.dim):
            raise InvalidProblemError(
                f"weight matrix must have shape {(self.dim, self.dim)}, "
                f"got {weight_matrix.shape}"
            )
        if self._sparse:
            wq = (self._q.T @ weight_matrix.T).T
            col_vals = np.asarray(self._q.multiply(wq).sum(axis=0)).ravel()
        else:
            wq = weight_matrix @ self._q
            col_vals = np.einsum("ij,ij->j", wq, self._q)
        return segment_sums(col_vals, self.offsets)

    def traces(self) -> np.ndarray:
        """All ``Tr[A_i] = ||Q_i||_F^2`` from the stacked column norms."""
        if self._sparse:
            col_vals = np.asarray(self._q.multiply(self._q).sum(axis=0)).ravel()
        else:
            col_vals = np.einsum("ij,ij->j", self._q, self._q)
        return segment_sums(col_vals, self.offsets)

    def estimates_from_transform(self, transformed: np.ndarray) -> np.ndarray:
        """All Theorem 4.1 estimates ``||T Q_i||_F^2`` for a transform block
        ``T`` of shape ``(d, m)`` — one ``(d, m) x (m, R)`` GEMM + reduce.

        For the fast oracle ``T = Pi exp(Phi/2)`` (sketch rows pushed through
        the Taylor polynomial); ``d`` is the sketch dimension.
        """
        transformed = np.asarray(transformed, dtype=np.float64)
        if transformed.ndim != 2 or transformed.shape[1] != self.dim:
            raise InvalidProblemError(
                f"transform block must have shape (d, {self.dim}), "
                f"got {transformed.shape}"
            )
        if self._sparse:
            sketched = (self._q.T @ transformed.T).T
        else:
            sketched = transformed @ self._q
        col_vals = np.einsum("ij,ij->j", sketched, sketched)
        return segment_sums(col_vals, self.offsets)
