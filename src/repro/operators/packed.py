"""Packed Gram-factor representation — the single-GEMM fast path.

The per-iteration primitives of the decision solver are all sums over the
``n`` constraints of small factor products: ``Psi v = sum_i x_i Q_i (Q_i^T
v)``, ``Psi = sum_i x_i Q_i Q_i^T``, ``A_i . W = || W^{1/2} Q_i ||_F^2`` and
the Theorem 4.1 sketch estimates ``|| (Pi exp(Phi/2)) Q_i ||_F^2``.  Looping
over the constraints in Python makes every one of these cost ``n``
interpreter round-trips and ``n`` small BLAS dispatches.

:class:`PackedGramFactors` removes the loop: the factors are stacked once
into a single ``(m, R)`` matrix ``Q`` (``R = sum_i r_i``) together with a
column-offset table, so that each primitive becomes one or two large GEMMs
followed by a segment reduction over the column blocks:

* ``Psi v      = Q (w_cols ∘ (Q^T v))``                — two GEMMs;
* ``Psi        = (Q ∘ w_cols) Q^T``                    — one GEMM;
* ``dots(W)    = segsum(colsum((W Q) ∘ Q))``           — one GEMM + reduce;
* ``traces()   = segsum(colnorms^2(Q))``               — no GEMM at all;
* ``estimates  = segsum(colnorms^2(T Q))`` for a sketch/transform ``T`` —
  one GEMM for *all* ``n`` Theorem 4.1 estimates.

``w_cols`` denotes the per-column expansion of the constraint weights
(``w_cols = repeat(w, ranks)``) and ``segsum`` the per-constraint segment
sum over the column blocks (``np.add.reduceat`` on the offsets, with a
cumulative-sum fallback for rank-zero blocks).

In the work–depth model the packed primitives charge the same ``O(q)`` work
as the reference loop (``q`` = total factor nonzeros, the Corollary 1.2 work
parameter) with polylogarithmic depth — the packing changes the constants,
not the asymptotics.  In wall-clock terms it replaces ``O(n)`` interpreted
iterations with one BLAS-3 call, which is where the order-of-magnitude
speedups measured by ``benchmarks/bench_e11_packed.py`` come from.

Sparse factors are supported: when the stacked matrix would be sparse the
packing keeps a CSR/CSC pair and the same primitives run through
``scipy.sparse`` matrix products.

The dense primitives route their GEMMs, column dots, and segment sums
through an :class:`~repro.backend.base.ArrayBackend` namespace object
(NumPy by default — a bit-identical pass-through; torch/CuPy optional).
The host-side layout (offsets, ranks, the canonical NumPy stack) is always
NumPy; a non-NumPy backend holds a lazily transferred device copy of the
stack, densifies sparse inputs (scipy representations are NumPy-only), and
converts results back to host arrays at each primitive's boundary.  The
reference segment-sum implementations live in
:mod:`repro.backend.numpy_backend` and are re-exported here unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.backend import get_array_backend
from repro.backend.numpy_backend import batched_segment_sums, segment_sums
from repro.exceptions import InvalidProblemError

__all__ = [
    "DENSIFY_THRESHOLD",
    "PackedGramFactors",
    "batched_segment_sums",
    "segment_sums",
]

#: stacked density above which sparse inputs are densified when packing
DENSIFY_THRESHOLD = 0.25


class PackedGramFactors:
    """All constraint Gram factors stacked into one column-blocked matrix.

    Parameters
    ----------
    factors:
        Sequence of Gram factors ``Q_i`` with ``A_i = Q_i Q_i^T``, each of
        shape ``(m, r_i)`` (dense arrays or scipy sparse matrices; 1-D
        arrays are treated as single columns).
    densify_threshold:
        When the stacked matrix's density is at least this value, sparse
        inputs are densified so the primitives run through dense BLAS.
    backend:
        Array backend (name or :class:`~repro.backend.base.ArrayBackend`)
        executing the dense primitives; default NumPy.  Non-NumPy backends
        force densification — the scipy sparse representations (CSR/CSC
        products, the sparse-``Psi`` accumulator) are NumPy-only, so the
        sparse stack falls back to its dense form and the Taylor-mode
        policy is automatically restricted to the dense representations.
    """

    def __init__(
        self,
        factors: Sequence[np.ndarray | sp.spmatrix],
        densify_threshold: float = DENSIFY_THRESHOLD,
        backend: "str | None" = None,
    ) -> None:
        if len(factors) == 0:
            raise InvalidProblemError("packed factors require at least one constraint")
        self.backend = get_array_backend(backend)
        blocks: list[np.ndarray | sp.spmatrix] = []
        ranks = np.empty(len(factors), dtype=np.int64)
        any_sparse = False
        dims = set()
        for i, factor in enumerate(factors):
            if sp.issparse(factor):
                block = sp.csr_matrix(factor, dtype=np.float64)
                any_sparse = True
            else:
                block = np.asarray(factor, dtype=np.float64)
                if block.ndim == 1:
                    block = block[:, None]
                if block.ndim != 2:
                    raise InvalidProblemError(
                        f"factor {i} must be 2-dimensional, got ndim={block.ndim}"
                    )
            dims.add(block.shape[0])
            ranks[i] = block.shape[1]
            blocks.append(block)
        if len(dims) != 1:
            raise InvalidProblemError(
                f"all factors must share the ambient dimension, got {sorted(dims)}"
            )
        self.dim = int(next(iter(dims)))
        self.size = len(factors)
        self.ranks = ranks
        self.offsets = np.concatenate([[0], np.cumsum(ranks)]).astype(np.int64)
        self.total_rank = int(self.offsets[-1])

        if any_sparse:
            stacked = sp.hstack(
                [sp.csr_matrix(b) if not sp.issparse(b) else b for b in blocks],
                format="csr",
            )
            cells = max(stacked.shape[0] * stacked.shape[1], 1)
            if (
                stacked.nnz / cells >= densify_threshold
                or not self.backend.is_numpy
            ):
                # Dense fallback: non-NumPy backends cannot run the scipy
                # sparse representations, so the stack densifies regardless
                # of its density and every primitive takes the dense path.
                self._q: np.ndarray | sp.csr_matrix = stacked.toarray()
                self._qc = None
                self._sparse = False
            else:
                self._q = stacked
                self._qc = stacked.tocsc()
                self._sparse = True
        else:
            dense_blocks = [np.ascontiguousarray(b) for b in blocks]
            self._q = (
                np.hstack(dense_blocks)
                if self.total_rank
                else np.zeros((self.dim, 0), dtype=np.float64)
            )
            self._qc = None
            self._sparse = False
        self._dense_cache: np.ndarray | None = None
        # Lazily transferred device copy of the dense stack (the identity
        # on the NumPy backend — see device_matrix()).
        self._q_dev = None
        # Weight-independent Taylor-engine artifacts, built lazily and
        # shared by every kernel/engine over this stack (the stack is
        # immutable): the dense Gram matrix Q^T Q, the sparse-Psi
        # accumulator, the auto-selected representation, and the engines.
        self._gram_cache: np.ndarray | None = None
        self._psi_accumulator = None
        self._auto_mode: str | None = None
        self._engine_cache: dict = {}
        self._column_nnz: np.ndarray | None = None
        self._column_sq_norms: np.ndarray | None = None

    # ------------------------------------------------------------------ basics
    @classmethod
    def from_collection(cls, collection, backend: "str | None" = None) -> "PackedGramFactors":
        """Pack the Gram factors of a :class:`ConstraintCollection`, keeping
        native sparse factors sparse when an operator exposes them."""
        factors = []
        for op in collection:
            raw = getattr(op, "gram_factor_raw", None)
            factors.append(raw() if raw is not None else op.gram_factor())
        return cls(factors, backend=backend)

    @property
    def is_sparse(self) -> bool:
        """Whether the stacked factor matrix is stored sparse (CSR/CSC)."""
        return self._sparse

    @property
    def matrix(self) -> np.ndarray | sp.csr_matrix:
        """The stacked ``(m, R)`` factor matrix ``Q`` (read-only view)."""
        return self._q

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the stacked matrix (the ``q`` of Cor. 1.2)."""
        if self._sparse:
            return int(self._q.nnz)
        return int(np.count_nonzero(self._q))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "sparse" if self._sparse else "dense"
        return (
            f"PackedGramFactors(n={self.size}, dim={self.dim}, "
            f"R={self.total_rank}, {kind})"
        )

    def dense_columns(self) -> np.ndarray:
        """Dense copy of the stacked matrix (cached; used by the no-sketch
        Taylor path which must push every column through the polynomial)."""
        if self._dense_cache is None:
            self._dense_cache = self._q.toarray() if self._sparse else self._q
        return self._dense_cache

    def device_matrix(self):
        """The dense stack as the backend's native array (cached transfer).

        On the NumPy backend this is literally ``self.matrix`` — the same
        object, the same bits — so routing the dense primitives through it
        cannot perturb the default path.  Sparse stacks (NumPy-only) have
        no device form; callers take the scipy branch instead.
        """
        if self._sparse:
            raise InvalidProblemError(
                "sparse stacks are NumPy-resident and have no device form"
            )
        if self.backend.is_numpy:
            return self._q
        if self._q_dev is None:
            self._q_dev = self.backend.asarray(self._q)
        return self._q_dev

    def factor(self, index: int) -> np.ndarray | sp.csr_matrix:
        """The ``index``-th constraint's factor block ``Q_i``."""
        lo, hi = self.offsets[index], self.offsets[index + 1]
        if self._sparse:
            return self._qc[:, lo:hi]
        return self._q[:, lo:hi]

    # ------------------------------------------------------------------ weights
    def expand_weights(self, weights: np.ndarray) -> np.ndarray:
        """Per-column expansion ``repeat(weights, ranks)`` of per-constraint
        weights, validating length and non-negativity."""
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape[0] != self.size:
            raise InvalidProblemError(
                f"expected {self.size} weights, got {weights.shape[0]}"
            )
        if np.any(weights < 0):
            raise InvalidProblemError("weights must be non-negative")
        return np.repeat(weights, self.ranks)

    # ------------------------------------------------------------------ primitives
    def matvec(self, weights: np.ndarray, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` for ``Psi = sum_i weights[i] Q_i Q_i^T`` — two GEMMs."""
        return self.matvec_fn(weights)(block)

    def matvec_fn(self, weights: np.ndarray) -> Callable[[np.ndarray], np.ndarray]:
        """Closure form of :meth:`matvec` with the weight expansion hoisted
        out (the oracle applies the same ``Psi`` to many blocks).  Accepts
        and returns host arrays; the two GEMMs run on the backend."""
        col_w = self.expand_weights(weights)
        if self._sparse:
            q = self._q

            def apply_sparse(block: np.ndarray) -> np.ndarray:
                inner = q.T @ block
                if inner.ndim == 1:
                    return q @ (col_w * inner)
                return q @ (col_w[:, None] * inner)

            return apply_sparse

        xp = self.backend
        q = self.device_matrix()
        w = xp.asarray(col_w)

        def apply(block: np.ndarray) -> np.ndarray:
            b = xp.asarray(block)
            inner = xp.matmul(q.T, b)
            if inner.ndim == 1:
                out = xp.matmul(q, w * inner)
            else:
                out = xp.matmul(q, w[:, None] * inner)
            return xp.to_numpy(out)

        return apply

    def column_nnz(self) -> np.ndarray:
        """Stored nonzeros per stacked column (cached; drives the selection
        policy's ``nnz(Psi)`` bound and the engine's per-column charges)."""
        if self._column_nnz is None:
            if self.total_rank == 0:
                self._column_nnz = np.zeros(0, dtype=np.int64)
            elif self._sparse:
                qc = self._qc
                self._column_nnz = np.diff(qc.indptr).astype(np.int64)
            else:
                self._column_nnz = np.count_nonzero(self._q, axis=0).astype(np.int64)
        return self._column_nnz

    def psi_nnz_bound(self) -> int:
        """Upper bound on ``nnz(Psi)`` for ``Psi = (Q w) Q^T``: the sum of
        squared column nonzeros (every column contributes its support's
        outer product; overlaps only merge), capped at ``m^2``."""
        col_nnz = self.column_nnz()
        return int(min(np.sum(col_nnz.astype(np.float64) ** 2), self.dim * self.dim))

    def gram_matrix(self) -> np.ndarray:
        """Dense ``(R, R)`` Gram matrix ``Q^T Q`` of the stack (cached).

        Weight-independent: the Gram-space kernel's ``G = (Q^T Q) diag(w)``
        is a column rescale of this matrix, which is how
        :class:`~repro.linalg.taylor_gram.TaylorEngine` maintains ``G``
        across solver iterations by touching only the active columns.
        """
        if self._gram_cache is None:
            if self.total_rank == 0:
                self._gram_cache = np.zeros((0, 0), dtype=np.float64)
            elif self._sparse:
                self._gram_cache = np.asarray(
                    (self._q.T @ self._q).todense(), dtype=np.float64
                )
            else:
                self._gram_cache = self._q.T @ self._q
        return self._gram_cache

    def psi_accumulator(self):
        """The cached :class:`~repro.linalg.taylor_gram.SparsePsiAccumulator`
        over the stack (sparse stacks only; the symbolic pattern and the
        weight-to-values map are weight-independent, so one accumulator
        serves every kernel and engine built from this view)."""
        if not self._sparse:
            raise InvalidProblemError(
                "the sparse-Psi accumulator requires a sparse factor stack"
            )
        if self._psi_accumulator is None:
            from repro.linalg.taylor_gram import SparsePsiAccumulator

            self._psi_accumulator = SparsePsiAccumulator(self._q)
        return self._psi_accumulator

    def auto_taylor_mode(self) -> str:
        """The representation :func:`~repro.linalg.taylor_gram.select_taylor_mode`
        picks for this stack (cached — it depends only on the immutable
        shape quantities ``m``, ``R``, ``nnz`` and ``nnz(Psi)``).

        Sparse stacks use a two-stage decision: the cheap
        :meth:`psi_nnz_bound` first (it never under-counts, so a
        sparse-``Psi`` verdict from it is final), and when the bound rejects
        sparse-``Psi`` but a lower bound on ``nnz(Psi)`` — the largest
        single-column outer product — says the exact pattern could still
        *meaningfully* win (heavily overlapping supports make the upper
        bound arbitrarily loose), the weight-independent accumulator is
        built once and the decision repeated with the exact count.  The
        second stage only runs when the optimistic sparse-``Psi`` cost
        undercuts the current winner by the
        :data:`~repro.linalg.taylor_gram.REFINEMENT_MARGIN` hysteresis
        (~10%): paying the pattern build to at best *match* the selected
        kernel — the near-threshold adversary shape — is a pure loss, and
        skipping it also pins the selection so it cannot flip-flop between
        equal-cost modes.
        """
        if self._auto_mode is None:
            from repro.linalg.taylor_gram import (
                REFINEMENT_MARGIN,
                SPARSE_GEMM_DISCOUNT,
                select_taylor_mode,
                taylor_mode_cost,
            )

            if not self._sparse:
                self._auto_mode = select_taylor_mode(
                    self.dim, self.total_rank, self.nnz, False
                )
                return self._auto_mode
            mode = select_taylor_mode(
                self.dim,
                self.total_rank,
                self.nnz,
                True,
                psi_nnz=self.psi_nnz_bound(),
            )
            if mode != "sparse-psi":
                winner_cost = taylor_mode_cost(
                    mode, self.dim, self.total_rank, self.nnz
                )
                col_nnz = self.column_nnz()
                psi_lower = float(col_nnz.max()) ** 2 if col_nnz.size else 0.0
                build_cost = float(np.sum(col_nnz.astype(np.float64) ** 2))
                if (
                    SPARSE_GEMM_DISCOUNT * psi_lower < REFINEMENT_MARGIN * winner_cost
                    and build_cost <= 16.0 * self.dim * self.dim
                ):
                    mode = select_taylor_mode(
                        self.dim,
                        self.total_rank,
                        self.nnz,
                        True,
                        psi_nnz=self.psi_accumulator().psi_nnz,
                    )
            self._auto_mode = mode
        return self._auto_mode

    def taylor_engine(self, chunk_columns: int | None = None, mode: str = "auto"):
        """The (cached) incremental :class:`~repro.linalg.taylor_gram.TaylorEngine`
        for this stack.

        One engine per ``(mode, chunk_columns)`` pair is kept so repeated
        oracle constructions over the same collection share the
        weight-dependent state — the cross-iteration reuse the decision
        solvers rely on.
        """
        from repro.linalg.taylor_gram import TaylorEngine

        key = (mode, chunk_columns)
        engine = self._engine_cache.get(key)
        if engine is None:
            engine = TaylorEngine(self, chunk_columns=chunk_columns, mode=mode)
            self._engine_cache[key] = engine
        return engine

    def taylor_kernel(
        self,
        weights: np.ndarray,
        chunk_columns: int | None = None,
        mode: str = "auto",
    ):
        """A one-shot Taylor kernel for ``Psi = sum_i weights[i] Q_i Q_i^T``.

        The kernel evaluates the Lemma 4.2 truncated exponential of
        ``scale * Psi`` on whole ``(m, s)`` blocks; the representation —
        Gram-space, densified ``Psi``, sparse-CSR ``Psi``, or the factor
        recurrence — is picked per stack by
        :func:`~repro.linalg.taylor_gram.select_taylor_mode` (``mode=``
        forces one, ``"legacy"`` keeps the PR-2 blocked kernel with its
        ``2R > m`` densification rule).  Weight-independent artifacts (the
        Gram matrix, the sparse-``Psi`` pattern) are cached on the stack,
        but no weight-dependent state is carried across calls — use
        :meth:`taylor_engine` for the incremental cross-iteration path.
        """
        from repro.linalg.taylor_blocked import BlockedTaylorKernel

        col_w = self.expand_weights(weights)
        if mode == "legacy":
            return BlockedTaylorKernel(
                self._q, col_w, chunk_columns=chunk_columns, backend=self.backend
            )
        if mode == "auto":
            mode = self.auto_taylor_mode()
        if mode == "gram":
            from repro.linalg.taylor_gram import GramTaylorKernel

            return GramTaylorKernel(
                self._q,
                col_w,
                gram=self.gram_matrix() * col_w[None, :],
                chunk_columns=chunk_columns,
                backend=self.backend,
            )
        if mode == "sparse-psi":
            acc = self.psi_accumulator()
            kernel = BlockedTaylorKernel.from_matrix(acc.psi(acc.values(col_w)))
            kernel.chunk_columns = chunk_columns
            return kernel
        if mode == "dense-psi":
            return BlockedTaylorKernel(
                self._q,
                col_w,
                chunk_columns=chunk_columns,
                densify=True,
                backend=self.backend,
            )
        if mode in ("dense-factors", "sparse-factors"):
            return BlockedTaylorKernel(
                self._q,
                col_w,
                chunk_columns=chunk_columns,
                densify=False,
                backend=self.backend,
            )
        raise InvalidProblemError(f"unknown taylor kernel mode {mode!r}")

    def weighted_sum(self, weights: np.ndarray) -> np.ndarray:
        """Dense ``sum_i weights[i] Q_i Q_i^T`` via one rank-``R`` GEMM.

        Columns with zero weight are dropped first, so incremental solver
        updates (sparse ``delta`` vectors) only pay for the active columns.
        """
        col_w = self.expand_weights(weights)
        active = np.flatnonzero(col_w)
        if active.shape[0] == 0:
            return np.zeros((self.dim, self.dim), dtype=np.float64)
        if self._sparse:
            if active.shape[0] == self.total_rank:
                sub, w = self._qc, col_w
            else:
                sub, w = self._qc[:, active], col_w[active]
            scaled = sub @ sp.diags(w)
            acc = (scaled @ sub.T).toarray()
        else:
            xp = self.backend
            q = self.device_matrix()
            if active.shape[0] == self.total_rank:
                sub, w = q, xp.asarray(col_w)
            else:
                sub, w = xp.take_columns(q, active), xp.asarray(col_w[active])
            acc = xp.to_numpy(xp.matmul(sub * w, sub.T))
        return 0.5 * (acc + acc.T)

    def dots(self, weight_matrix: np.ndarray) -> np.ndarray:
        """All ``A_i . W = colsum-per-block((W Q) ∘ Q)`` — one GEMM + reduce."""
        weight_matrix = np.asarray(weight_matrix, dtype=np.float64)
        if weight_matrix.shape != (self.dim, self.dim):
            raise InvalidProblemError(
                f"weight matrix must have shape {(self.dim, self.dim)}, "
                f"got {weight_matrix.shape}"
            )
        if self._sparse:
            wq = (self._q.T @ weight_matrix.T).T
            col_vals = np.asarray(self._q.multiply(wq).sum(axis=0)).ravel()
            return segment_sums(col_vals, self.offsets)
        xp = self.backend
        q = self.device_matrix()
        wq = xp.matmul(xp.asarray(weight_matrix), q)
        col_vals = xp.einsum("ij,ij->j", wq, q)
        return xp.to_numpy(xp.segment_sums(col_vals, self.offsets))

    def column_sq_norms(self) -> np.ndarray:
        """Squared column norms ``||q_c||^2`` of the stack (cached).

        Weight-independent: ``Tr[Psi] = sum_c w_c ||q_c||^2`` for
        ``Psi = Q diag(w) Q^T``, which is how the structured trace
        estimator (:mod:`repro.linalg.trace_estimation`) gets its exact
        control-variate expectation in ``O(R)`` per call.
        """
        if self._column_sq_norms is None:
            if self._sparse:
                self._column_sq_norms = np.asarray(
                    self._q.multiply(self._q).sum(axis=0)
                ).ravel()
            else:
                xp = self.backend
                q = self.device_matrix()
                self._column_sq_norms = xp.to_numpy(xp.einsum("ij,ij->j", q, q))
        return self._column_sq_norms

    def traces(self) -> np.ndarray:
        """All ``Tr[A_i] = ||Q_i||_F^2`` from the stacked column norms."""
        return segment_sums(self.column_sq_norms(), self.offsets)

    def estimates_from_transform(self, transformed: np.ndarray) -> np.ndarray:
        """All Theorem 4.1 estimates ``||T Q_i||_F^2`` for a transform block
        ``T`` of shape ``(d, m)`` — one ``(d, m) x (m, R)`` GEMM + reduce.

        For the fast oracle ``T = Pi exp(Phi/2)`` (sketch rows pushed through
        the Taylor polynomial); ``d`` is the sketch dimension.
        """
        transformed = np.asarray(transformed, dtype=np.float64)
        if transformed.ndim != 2 or transformed.shape[1] != self.dim:
            raise InvalidProblemError(
                f"transform block must have shape (d, {self.dim}), "
                f"got {transformed.shape}"
            )
        xp = self.backend
        if self._sparse:
            # Sparse stacks are NumPy-resident (xp is the NumPy backend).
            sketched = (self._q.T @ transformed.T).T
            col_vals = xp.einsum("ij,ij->j", sketched, sketched)
            return segment_sums(col_vals, self.offsets)
        sketched = xp.matmul(xp.asarray(transformed), self.device_matrix())
        col_vals = xp.einsum("ij,ij->j", sketched, sketched)
        return xp.to_numpy(xp.segment_sums(col_vals, self.offsets))
