"""Prefactored PSD operator ``A = Q Q^T`` — the input format of Corollary 1.2.

The nearly-linear-work bound of the paper is stated for inputs "given in a
factorized form": each constraint matrix arrives as an explicit (typically
sparse or tall-skinny) factor ``Q_i``, and the total nonzero count ``q``
across the factors is the work parameter.  This operator stores the factor
and performs every primitive through it, never materialising ``Q Q^T``
unless explicitly asked to.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.operators.psd_operator import PSDOperator


class FactorizedPSDOperator(PSDOperator):
    """PSD operator represented by a factor ``Q`` with ``A = Q Q^T``.

    Parameters
    ----------
    factor:
        Dense array or scipy sparse matrix of shape ``(m, r)``.  No PSD
        check is needed — every Gram matrix is PSD by construction.
    """

    def __init__(self, factor: np.ndarray | sp.spmatrix) -> None:
        if sp.issparse(factor):
            factor = sp.csr_matrix(factor, dtype=np.float64)
            if factor.ndim != 2:
                raise InvalidProblemError("factor must be 2-dimensional")
            if not np.all(np.isfinite(factor.data)):
                raise InvalidProblemError("factor contains NaN or infinite entries")
            self._sparse = True
        else:
            factor = np.asarray(factor, dtype=np.float64)
            if factor.ndim == 1:
                factor = factor[:, None]
            if factor.ndim != 2:
                raise InvalidProblemError("factor must be 2-dimensional")
            if not np.all(np.isfinite(factor)):
                raise InvalidProblemError("factor contains NaN or infinite entries")
            self._sparse = False
        self._factor = factor
        self.dim = factor.shape[0]
        self.rank = factor.shape[1]

    @property
    def factor(self) -> np.ndarray | sp.spmatrix:
        """The stored factor ``Q`` (shape ``m x r``)."""
        return self._factor

    def _dense_factor(self) -> np.ndarray:
        return self._factor.toarray() if self._sparse else self._factor

    def to_dense(self) -> np.ndarray:
        q = self._dense_factor()
        return q @ q.T

    def trace(self) -> float:
        # Tr[Q Q^T] = ||Q||_F^2, computable in O(nnz(Q)).
        if self._sparse:
            return float(self._factor.multiply(self._factor).sum())
        return float(np.sum(self._factor * self._factor))

    def dot(self, weight: np.ndarray) -> float:
        # A . W = Tr[Q Q^T W] = Tr[Q^T W Q] = sum((W Q) * Q)
        wq = weight @ (self._factor.toarray() if self._sparse else self._factor)
        q = self._dense_factor()
        return float(np.sum(wq * q))

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        inner = self._factor.T @ vector
        return self._factor @ inner

    def add_to(self, accumulator: np.ndarray, coeff: float = 1.0) -> None:
        q = self._dense_factor()
        accumulator += coeff * (q @ q.T)

    def gram_factor(self) -> np.ndarray:
        return self._dense_factor()

    def gram_factor_raw(self) -> np.ndarray | sp.spmatrix:
        """The factor in its native (possibly sparse) representation."""
        return self._factor

    @property
    def nnz(self) -> int:
        """Stored nonzeros of the factor (the Corollary 1.2 work unit)."""
        if self._sparse:
            return int(self._factor.nnz)
        return int(np.count_nonzero(self._factor))

    @property
    def gram_factor_is_exact(self) -> bool:
        """The stored factor *is* the operator: ``Q Q^T = A`` exactly."""
        return True

    def spectral_norm(self) -> float:
        # ||Q Q^T||_2 = sigma_max(Q)^2
        if self._sparse:
            q = self._factor.toarray()
        else:
            q = self._factor
        if min(q.shape) == 0:
            return 0.0
        return float(np.linalg.norm(q, ord=2) ** 2)
