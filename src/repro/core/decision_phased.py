"""Phase-based variant of the decision solver (ablation for experiment E9).

The SPAA 2012 conference version of the algorithm organised the iterations
into *phases*; the arXiv v3 analysis reproduced in this repository removes
the phases ("Our modified analysis is for a simplified pseudocode of the
algorithm from [PT12] that removes these phases.  However, the phase-based
version can be analyzed similarly.").  The exact conference pseudocode is
not included in the paper text we reproduce from, so this module implements
the natural *lazy-weight-update* phase structure that the phase mechanism
buys in practice and that experiment E9 ablates:

* a phase fixes the weight matrix ``W = exp(Psi)`` (one oracle call);
* within the phase, the qualifying set ``B = {i : W . A_i <= (1+eps) Tr W}``
  is updated repeatedly — the selected coordinates keep being multiplied by
  ``(1 + alpha)`` — until either the phase's ℓ1-growth budget
  ``(1 + eps)`` is exhausted or the set would change the spectrum too much;
* then ``W`` is recomputed and the next phase begins.

The variant performs (many) fewer matrix exponentials per unit of ℓ1
progress at the cost of using slightly stale penalties; every returned
certificate is still verified exactly like the phase-less solver's, so the
comparison in E9 is about iteration/oracle counts, not correctness.

Like the phase-less solver, the iteration core is matrix-free on the
fast-oracle path: ``Psi`` lives behind a
:class:`~repro.core.psi_state.PsiState`, and with the implicit state the
phase boundaries estimate the density's trace products from the oracle's
engine-applied factor stack (the values vector) and ``lambda_max`` by
warm-started Lanczos through the factored matvec — the per-phase
``O(m^3)`` ``expm_normalized`` of the dense path disappears, and
``primal_y`` is densified at most once, on demand, when read off the
result.  The fast oracle's structured trace estimator
(:mod:`repro.linalg.trace_estimation`) completes the picture: its
counters appear in ``result.metadata["trace_estimator"]`` and its
column-accurate work rides in the per-phase oracle charge, exactly as in
the phase-less solver.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

import numpy as np

from repro.exceptions import BudgetExhaustedError, InvalidProblemError
from repro.instrumentation.history import ConvergenceHistory, IterationRecord
from repro.linalg.expm import expm_normalized
from repro.operators.collection import ConstraintCollection
from repro.parallel.backends import SerialBackend
from repro.parallel.workdepth import WorkDepthTracker
from repro.core.checkpoint import (
    SolverCheckpoint,
    capture_checkpoint,
    restore_checkpoint,
)
from repro.core.decision import DecisionOptions, DecisionParameters, _resolve_constraints
from repro.core.dotexp import make_oracle, oracle_engine_metadata
from repro.core.problem import NormalizedPackingSDP
from repro.core.psi_state import make_psi_state
from repro.core.result import DecisionOutcome, DecisionResult, SolveStatus
from repro.robustness.supervisor import FastPathSupervisor
from repro.utils.random_utils import spawn_generators


def decision_psdp_phased(
    problem: NormalizedPackingSDP | ConstraintCollection | list,
    epsilon: float | None = None,
    options: DecisionOptions | None = None,
    phase_growth: float | None = None,
    *,
    resume_from: "SolverCheckpoint | None" = None,
    **overrides: Any,
) -> DecisionResult:
    """Phase-based (lazy weight update) variant of :func:`decision_psdp`.

    Parameters
    ----------
    problem, epsilon, options, overrides:
        As in :func:`repro.core.decision.decision_psdp`.
    phase_growth:
        Multiplicative ℓ1-growth budget of a phase (default ``1 + eps``):
        a phase ends when ``||x||_1`` has grown by this factor since the
        last weight-matrix recomputation.
    resume_from:
        A :class:`~repro.core.checkpoint.SolverCheckpoint` captured by an
        earlier (interrupted) run of this solver on the same instance and
        options.  Mid-phase checkpoints carry the active qualifying mask
        and the phase's growth position, so the resumed run re-enters the
        interrupted phase exactly where it stopped — bit-identically to an
        uninterrupted run on the same seed.
    """
    opts = options or DecisionOptions()
    if overrides:
        valid = {f.name for f in opts.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(overrides) - valid
        if unknown:
            raise TypeError(f"unknown decision options: {sorted(unknown)}")
        opts = DecisionOptions(**{**opts.__dict__, **overrides})
    if epsilon is not None:
        # Copy before overriding: the caller's options object must not be
        # silently mutated across calls (mirrors decision_psdp).
        opts = dataclasses.replace(opts, epsilon=float(epsilon))

    constraints = _resolve_constraints(problem)
    eps = float(opts.epsilon)
    params = DecisionParameters.from_instance(len(constraints), eps)
    n, m = len(constraints), constraints.dim
    growth = float(phase_growth) if phase_growth is not None else 1.0 + eps
    if growth <= 1.0:
        raise InvalidProblemError(f"phase_growth must be > 1, got {growth}")

    traces = constraints.traces()
    if np.any(traces <= 0):
        raise InvalidProblemError("every constraint matrix must have a positive trace")

    tracker = WorkDepthTracker()
    backend = opts.backend or SerialBackend(tracker=tracker)
    if backend.tracker is None:
        backend.tracker = tracker
    else:
        tracker = backend.tracker

    if isinstance(opts.oracle, str):
        oracle = make_oracle(
            constraints,
            kind=opts.oracle,
            eps=opts.oracle_eps if opts.oracle_eps is not None else eps / 4.0,
            kappa_bound=None,
            rng=opts.rng,
            backend=backend,
            array_backend=opts.array_backend,
        )
    else:
        # An already-constructed oracle object (the phase-less solver has
        # always honoured these; the phased variant used to silently fall
        # back to a fresh exact oracle).
        oracle = opts.oracle
    oracle_kind = opts.oracle if isinstance(opts.oracle, str) else type(oracle).__name__

    history = ConvergenceHistory() if opts.collect_history else None
    log_depth = math.log2(max(n, 2)) + math.log2(max(m, 2))
    max_iterations = opts.max_iterations if opts.max_iterations is not None else params.R

    # Same matrix-free strategy as the phase-less solver: the PsiState owns
    # the representation and the measured-cost eigenvalue estimation, with
    # a spawned (not shared) generator so eigenvalue draws never perturb
    # the oracle's sketch stream.
    eig_rng = spawn_generators(opts.rng, 1)[0]
    state = make_psi_state(
        constraints,
        1.0 / (n * traces),
        oracle=oracle,
        eig_rng=eig_rng,
        mode=opts.psi_state,
    )
    implicit = state.mode == "implicit"
    x = state.x
    tracker.charge(state.init_work, log_depth, label="init-psi")

    # Fault supervision: same contract as the phase-less solver — the
    # supervisor owns the mutable PsiState reference (an implicit-state
    # matvec failure rebuilds it densely mid-run), and the `implicit`
    # primal-tracking branch choice stays frozen at its start-of-run value.
    supervisor = (
        FastPathSupervisor(
            oracle=oracle,
            state=state,
            constraints=constraints,
            tracker=tracker,
            log_depth=log_depth,
            eig_rng=eig_rng,
            wall_clock_budget=opts.wall_clock_budget,
            iteration_budget=opts.iteration_budget,
            max_recoveries=opts.max_recoveries,
        )
        if opts.supervise
        else None
    )

    primal_sum = None if implicit else np.zeros((m, m), dtype=np.float64)
    primal_rounds = 0
    # Matrix-free primal tracking: on the implicit path the candidate is
    # the *final* iterate's density (built lazily), so the last oracle
    # values — the engine-applied factor-stack estimates of that density's
    # trace products — are carried as its dots vector and no (m, m)
    # density is formed at phase boundaries.
    last_values: np.ndarray | None = None

    checkpoint_every = opts.checkpoint_every or 0
    latest_checkpoint: SolverCheckpoint | None = None

    def capture(iteration: int, phase_state: dict) -> SolverCheckpoint:
        # ``phase_state`` carries the phase counter plus — for mid-phase
        # captures — the active qualifying mask, the stale oracle values,
        # and the phase's starting ℓ1 norm, so a resume can re-enter the
        # interrupted phase without a fresh oracle call.
        return capture_checkpoint(
            solver="phased",
            iteration=iteration,
            eps=eps,
            oracle_kind=oracle_kind,
            strict=opts.strict,
            n=n,
            m=m,
            oracle=oracle,
            state=state,
            supervisor=supervisor,
            eig_rng=eig_rng,
            tracker=tracker,
            history=history,
            primal_sum=primal_sum,
            primal_rounds=primal_rounds,
            last_values=last_values,
            phase=phase_state,
        )

    def current_primal() -> np.ndarray | None:
        if primal_rounds > 0:
            return primal_sum / primal_rounds
        return None

    def build_result(
        outcome: DecisionOutcome,
        iterations: int,
        phases: int,
        early: bool,
        status: SolveStatus | None = None,
    ) -> DecisionResult:
        nonlocal state
        # Same feasibility discipline as the phase-less solver: the dual is
        # rescaled by the *measured* lambda_max, so even a budget-exhausted
        # partial dual is exactly verified, never extrapolated.
        try:
            if supervisor is not None:
                lam, eig_work = supervisor.lambda_max(final=True, iteration=iterations)
                state = supervisor.state
            else:
                lam, eig_work = state.lambda_max(final=True)
        except BudgetExhaustedError:
            lam, eig_work = float("nan"), 0.0
            status = SolveStatus.FAILED
            if supervisor is not None:
                state = supervisor.state
        tracker.charge(eig_work, log_depth, label="dual-rescale")
        verified = bool(np.isfinite(lam))
        scale = lam if lam > 0 else 1.0
        dual_x = x / scale
        if implicit:
            # min_dot describes the same object primal_y's deferred build
            # returns — the final iterate's density — so it is estimated
            # from the last oracle values (and replaced by the exact trace
            # products of that very matrix when primal_y is read), never
            # from the phase average the implicit path does not keep.
            primal_y = None
            if last_values is not None:
                min_dot = float(last_values.min(initial=np.inf))
            else:
                min_dot = float("nan")
        else:
            primal_y = current_primal()
            if primal_y is None:
                primal_y = expm_normalized(state.densify())
            min_dot = float(constraints.dots(primal_y).min(initial=np.inf))
        if status is None:
            status = (
                SolveStatus.DEGRADED
                if supervisor is not None and supervisor.recovery_events
                else SolveStatus.CERTIFIED
            )
        result = DecisionResult(
            outcome=outcome,
            dual_x=dual_x,
            primal_y=primal_y,
            dual_value=float(dual_x.sum()) if verified else float("nan"),
            primal_min_dot=min_dot,
            dual_lambda_max=lam / scale if verified else float("nan"),
            iterations=iterations,
            max_iterations=max_iterations,
            epsilon=eps,
            early_exit=early,
            status=status,
            history=history,
            counters=oracle.counters,
            work_depth=tracker.report(),
            metadata={
                "K": params.K,
                "alpha": params.alpha,
                "R": params.R,
                "phases": phases,
                "phase_growth": growth,
                "variant": "phased",
                "solve_status": status.value,
                "x_l1": float(x.sum()),
                # Matrix-free discipline counters (snapshot at result build).
                "psi_state": state.stats(),
                # Rank-adaptive Taylor-engine counters (fast oracle only).
                **oracle_engine_metadata(oracle),
                **(
                    {
                        "recovery_events": supervisor.event_dicts(),
                        "supervisor": supervisor.stats(),
                    }
                    if supervisor is not None
                    else {}
                ),
                **opts.metadata,
            },
        )
        if result.status is SolveStatus.FAILED and latest_checkpoint is not None:
            # A failed solve (budget blown inside a recovery, crash-style
            # fault) still surfaces the most recent periodic checkpoint so
            # the caller can resume instead of restarting.
            result.metadata["checkpoint"] = latest_checkpoint
        if implicit:
            # The phased solver always reports a primal candidate; on the
            # matrix-free path it is the final iterate's density, built at
            # most once, on demand, when primal_y is actually read.
            def build_primal() -> np.ndarray:
                y = expm_normalized(state.densify())
                result.primal_min_dot = float(
                    constraints.dots(y).min(initial=np.inf)
                )
                return y

            result.primal_builder = build_primal
        return result

    t = 0
    phases = 0
    resume_phase: dict | None = None
    if resume_from is not None:
        # Reconstruction above followed the exact fresh-run order (so the
        # spawned rng streams match); now overlay the checkpointed state.
        state, resumed = restore_checkpoint(
            resume_from,
            solver="phased",
            eps=eps,
            oracle_kind=oracle_kind,
            strict=opts.strict,
            n=n,
            m=m,
            constraints=constraints,
            oracle=oracle,
            state=state,
            supervisor=supervisor,
            eig_rng=eig_rng,
            tracker=tracker,
            history=history,
        )
        x = state.x
        t = resumed.iteration
        primal_sum = resumed.primal_sum
        primal_rounds = resumed.primal_rounds
        last_values = resumed.last_values
        if resumed.phase is not None:
            phases = int(resumed.phase["phases"])
            if resumed.phase.get("mask") is not None:
                # Mid-phase checkpoint: the first outer pass below must
                # re-enter the interrupted phase with the stale mask and
                # values rather than recompute the weight matrix.
                resume_phase = resumed.phase
    while float(x.sum()) <= params.K and t < max_iterations:
        if resume_phase is not None:
            # Re-enter the interrupted phase: no phase increment, no
            # oracle call — the qualifying set was fixed before the
            # interruption and stays fixed until this phase's ℓ1-growth
            # budget is spent, exactly as in the uninterrupted run.  The
            # per-inner-iteration budget check below still runs first, so
            # resuming with an already-exhausted budget re-checkpoints
            # mid-phase instead of losing the phase position.
            mask = np.asarray(resume_phase["mask"], dtype=bool)
            values = np.asarray(resume_phase["values"], dtype=np.float64)
            phase_start_norm = float(resume_phase["phase_start_norm"])
            resume_phase = None
        else:
            if supervisor is not None and supervisor.budget_exhausted(t) is not None:
                checkpoint = capture(t, {"phases": phases, "mask": None})
                result = build_result(
                    DecisionOutcome.DUAL, t, phases, early=True,
                    status=SolveStatus.BUDGET_EXHAUSTED,
                )
                result.metadata["checkpoint"] = checkpoint
                return result
            phases += 1
            if supervisor is not None:
                try:
                    output = supervisor.oracle_call(iteration=t)
                except BudgetExhaustedError:
                    return build_result(
                        DecisionOutcome.DUAL, t, phases, early=True,
                        status=SolveStatus.FAILED,
                    )
                state = supervisor.state
                x = state.x
            else:
                output = oracle(state.oracle_psi(), x)
            values = np.asarray(output.values, dtype=np.float64)
            tracker.charge(output.work, log_depth, label="oracle")

            if implicit:
                last_values = values
            else:
                density = expm_normalized(state.densify())
                primal_sum += density
                primal_rounds += 1

            mask = values <= 1.0 + eps
            if not mask.any():
                if implicit:
                    # The certificate is the current density; min_dot reports
                    # its oracle estimates until primal_y's deferred build
                    # replaces them with the exact trace products.
                    return build_result(DecisionOutcome.PRIMAL, t, phases, early=True)
                primal_sum = density.copy()
                primal_rounds = 1
                return build_result(DecisionOutcome.PRIMAL, t, phases, early=True)

            phase_start_norm = float(x.sum())
        # Inner loop: reuse the stale qualifying set until the phase budget
        # is spent or the loop conditions trip.  Solve budgets are checked
        # per inner iteration, not just per phase — a long phase must not
        # overshoot a wall-clock budget.
        budget_hit = False
        while (
            float(x.sum()) <= params.K
            and t < max_iterations
            and float(x.sum()) < growth * phase_start_norm
        ):
            if supervisor is not None and supervisor.budget_exhausted(t) is not None:
                budget_hit = True
                break
            t += 1
            delta = np.where(mask, params.alpha * x, 0.0)
            # The dense state also maintains psi + weighted_sum(delta)
            # (charging only the touched share of the packed factor
            # columns, as the phase-less solver does); the implicit state
            # touches only the weight vector.
            update_work = state.add_delta(delta, mask)
            x = state.x
            tracker.charge(update_work, log_depth, label="update")
            if history is not None:
                history.append(
                    IterationRecord(
                        iteration=t,
                        x_norm=float(x.sum()),
                        updated=int(mask.sum()),
                        min_value=float(values.min(initial=np.nan)),
                        max_value=float(values.max(initial=np.nan)),
                        oracle_work=0.0,
                    )
                )
            if checkpoint_every and t % checkpoint_every == 0:
                latest_checkpoint = capture(
                    t,
                    {
                        "phases": phases,
                        "mask": mask,
                        "phase_start_norm": phase_start_norm,
                        "values": values,
                    },
                )
                if opts.heartbeat is not None:
                    opts.heartbeat(latest_checkpoint, None)

        if budget_hit:
            # Mid-phase continuation point: the fresh capture carries the
            # active mask so the resume skips the weight-matrix recompute.
            checkpoint = capture(
                t,
                {
                    "phases": phases,
                    "mask": mask,
                    "phase_start_norm": phase_start_norm,
                    "values": values,
                },
            )
            result = build_result(
                DecisionOutcome.DUAL, t, phases, early=True,
                status=SolveStatus.BUDGET_EXHAUSTED,
            )
            result.metadata["checkpoint"] = checkpoint
            return result

        # Optional early dual certificate at phase boundaries (mirrors the
        # phase-less solver's non-strict behaviour).  With the implicit
        # state this runs through the factored matvec — the phase boundary
        # never materialises Psi or a density matrix.
        if not opts.strict:
            if supervisor is not None:
                try:
                    lam, eig_work = supervisor.lambda_max(iteration=t)
                except BudgetExhaustedError:
                    return build_result(
                        DecisionOutcome.DUAL, t, phases, early=True,
                        status=SolveStatus.FAILED,
                    )
                state = supervisor.state
            else:
                lam, eig_work = state.lambda_max()
            tracker.charge(eig_work, log_depth, label="certificate-check")
            if lam > 0 and float(x.sum()) / lam >= 1.0 - eps:
                return build_result(DecisionOutcome.DUAL, t, phases, early=True)

    if float(x.sum()) > params.K:
        return build_result(DecisionOutcome.DUAL, t, phases, early=False)
    return build_result(DecisionOutcome.PRIMAL, t, phases, early=False)
