"""Certificate verification for packing/covering solutions.

Every solver in this package verifies what it returns.  The three
certificates used are:

* **dual (packing) feasibility** — ``x >= 0`` and
  ``lambda_max(sum_i x_i A_i) <= 1 + tol``; the certified value is
  ``1^T x`` (a lower bound on the packing optimum);
* **primal (covering) feasibility** — ``Y`` PSD and
  ``min_i A_i . Y >= 1 - tol`` with the certified value ``Tr[Y]`` (an upper
  bound on the covering optimum = packing optimum);
* **approximation ratio** — the pair of the above, whose ratio bounds the
  relative error of either certificate.

The verification functions return structured results rather than raising,
so solvers can decide whether a failed certificate is fatal
(:func:`require_dual_certificate` raises).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import get_config
from repro.exceptions import CertificateError
from repro.linalg.psd import min_eigenvalue
from repro.operators.collection import ConstraintCollection
from repro.utils.validation import ensure_1d


@dataclass(frozen=True)
class DualCertificate:
    """Verification result for a packing vector ``x``."""

    feasible: bool
    value: float
    lambda_max: float
    min_entry: float

    @property
    def scaled_value(self) -> float:
        """Value of ``x / max(lambda_max, 1)`` — always a valid lower bound.

        If the candidate slightly violates ``sum_i x_i A_i <= I``, dividing
        by the measured ``lambda_max`` restores feasibility; the returned
        value is the corresponding (slightly smaller) certified objective.
        """
        scale = max(self.lambda_max, 1.0)
        return self.value / scale if scale > 0 else 0.0


@dataclass(frozen=True)
class PrimalCertificate:
    """Verification result for a covering matrix ``Y``."""

    feasible: bool
    value: float
    min_dot: float
    min_eigenvalue: float

    @property
    def scaled_value(self) -> float:
        """Value of ``Y / min_dot`` — always a valid upper bound when
        ``min_dot > 0`` (scaling up restores feasibility)."""
        if self.min_dot <= 0:
            return float("inf")
        return self.value / self.min_dot


def verify_dual(
    constraints: ConstraintCollection,
    x: np.ndarray,
    tol: float | None = None,
) -> DualCertificate:
    """Verify a packing (dual) candidate against ``sum_i x_i A_i <= I``."""
    tol = get_config().feasibility_tol if tol is None else tol
    x = ensure_1d(x, "x")
    if x.shape[0] != len(constraints):
        raise ValueError(f"expected {len(constraints)} dual entries, got {x.shape[0]}")
    min_entry = float(x.min(initial=0.0))
    clipped = np.clip(x, 0.0, None)
    psi = constraints.weighted_sum(clipped)
    lam_max = float(np.linalg.eigvalsh(psi)[-1]) if constraints.dim else 0.0
    value = float(clipped.sum())
    feasible = (min_entry >= -tol) and (lam_max <= 1.0 + tol)
    return DualCertificate(feasible=feasible, value=value, lambda_max=lam_max, min_entry=min_entry)


def verify_primal(
    constraints: ConstraintCollection,
    primal: np.ndarray,
    tol: float | None = None,
) -> PrimalCertificate:
    """Verify a covering (primal) candidate against ``A_i . Y >= 1``."""
    tol = get_config().feasibility_tol if tol is None else tol
    primal = np.asarray(primal, dtype=np.float64)
    dots = constraints.dots(primal)
    min_dot = float(dots.min(initial=np.inf))
    lam_min = min_eigenvalue(primal)
    value = float(np.trace(primal))
    feasible = (min_dot >= 1.0 - tol) and (lam_min >= -tol * max(1.0, abs(value)))
    return PrimalCertificate(
        feasible=feasible, value=value, min_dot=min_dot, min_eigenvalue=lam_min
    )


def require_dual_certificate(
    constraints: ConstraintCollection, x: np.ndarray, min_value: float, tol: float | None = None
) -> DualCertificate:
    """Verify a dual candidate and raise :class:`CertificateError` on failure."""
    cert = verify_dual(constraints, x, tol=tol)
    if not cert.feasible:
        raise CertificateError(
            f"dual certificate failed: lambda_max={cert.lambda_max:.6g}, "
            f"min_entry={cert.min_entry:.3g}"
        )
    if cert.value < min_value:
        raise CertificateError(
            f"dual certificate value {cert.value:.6g} is below the required {min_value:.6g}"
        )
    return cert


def approximation_ratio(
    dual: DualCertificate, primal: PrimalCertificate
) -> float:
    """Certified ratio ``upper / lower`` between the two bounds (>= 1)."""
    lower = dual.scaled_value
    upper = primal.scaled_value
    if lower <= 0:
        return float("inf")
    return upper / lower
