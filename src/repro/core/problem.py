"""Problem classes for positive (packing/covering) semidefinite programs.

The paper's input format (Equation 1.1) is the *primal covering* form

.. math::

    \\min\\; C \\bullet Y \\quad \\text{s.t.}\\quad A_i \\bullet Y \\ge b_i
    \\;(i = 1..n), \\quad Y \\succeq 0,

with ``C`` and all ``A_i`` PSD and ``b_i \\ge 0``; its dual is the *packing*
program ``max 1^T x`` s.t. ``\\sum_i x_i A'_i \\preceq I`` after the
normalization of Appendix A.  :class:`PositiveSDP` stores the general form;
:class:`NormalizedPackingSDP` stores the normalized primal/dual pair of
Figure 2 (``C = I``, ``b = 1``), which is what the solvers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import check_psd
from repro.operators.collection import ConstraintCollection
from repro.operators.psd_operator import PSDOperator, as_operator
from repro.utils.validation import ensure_1d


@dataclass
class PositiveSDP:
    """A positive SDP in the paper's general primal form (Equation 1.1).

    Parameters
    ----------
    objective:
        The PSD objective matrix ``C`` (m-by-m).
    constraints:
        The PSD constraint matrices ``A_1, ..., A_n`` (any representation
        accepted by :func:`repro.operators.as_operator`).
    rhs:
        The non-negative right-hand sides ``b_1, ..., b_n``.
    name:
        Optional human-readable instance name used in reports.
    """

    objective: PSDOperator
    constraints: ConstraintCollection
    rhs: np.ndarray
    name: str = "positive-sdp"
    metadata: dict = field(default_factory=dict)

    def __init__(
        self,
        objective,
        constraints: Iterable,
        rhs: Sequence[float] | np.ndarray,
        name: str = "positive-sdp",
        metadata: dict | None = None,
        validate: bool = True,
    ) -> None:
        self.objective = as_operator(objective, validate=validate)
        if isinstance(constraints, ConstraintCollection):
            self.constraints = constraints
        else:
            self.constraints = ConstraintCollection(constraints, validate=validate)
        self.rhs = ensure_1d(rhs, "rhs")
        self.name = name
        self.metadata = dict(metadata or {})
        if validate:
            self.validate()

    # ------------------------------------------------------------------ shape
    @property
    def dim(self) -> int:
        """Matrix dimension ``m``."""
        return self.constraints.dim

    @property
    def num_constraints(self) -> int:
        """Number of constraints ``n``."""
        return len(self.constraints)

    # ------------------------------------------------------------------ checks
    def validate(self) -> None:
        """Check structural validity (shapes, signs, PSD-ness of the objective)."""
        if self.objective.dim != self.constraints.dim:
            raise InvalidProblemError(
                f"objective has dimension {self.objective.dim} but constraints have "
                f"dimension {self.constraints.dim}"
            )
        if self.rhs.shape[0] != self.num_constraints:
            raise InvalidProblemError(
                f"rhs has {self.rhs.shape[0]} entries for {self.num_constraints} constraints"
            )
        if np.any(self.rhs < 0):
            raise InvalidProblemError("all right-hand sides b_i must be non-negative")
        check_psd(self.objective.to_dense(), "objective C")

    # ------------------------------------------------------------------ evaluation
    def objective_value(self, primal: np.ndarray) -> float:
        """Evaluate ``C . Y`` for a candidate primal matrix."""
        return self.objective.dot(np.asarray(primal, dtype=np.float64))

    def constraint_values(self, primal: np.ndarray) -> np.ndarray:
        """Vector of ``A_i . Y`` for a candidate primal matrix."""
        return self.constraints.dots(np.asarray(primal, dtype=np.float64))

    def primal_feasible(self, primal: np.ndarray, tol: float = 1e-7) -> bool:
        """Check ``A_i . Y >= b_i - tol`` for all i and ``Y`` PSD."""
        from repro.linalg.psd import is_psd

        primal = np.asarray(primal, dtype=np.float64)
        if not is_psd(primal, tol=tol):
            return False
        return bool(np.all(self.constraint_values(primal) >= self.rhs - tol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PositiveSDP(name={self.name!r}, m={self.dim}, n={self.num_constraints})"
        )


class NormalizedPackingSDP:
    """The normalized primal/dual pair of Figure 2.

    Holds a constraint collection ``B_1, ..., B_n`` and represents

    * primal (covering): ``min Tr[Y]`` s.t. ``B_i . Y >= 1``, ``Y >= 0``;
    * dual (packing): ``max 1^T x`` s.t. ``sum_i x_i B_i <= I``, ``x >= 0``.

    Both programs share one optimal value ``OPT`` (strong duality is assumed
    by the paper).  Solvers consume this class; use
    :func:`repro.core.normalize.normalize_sdp` to obtain it from a
    :class:`PositiveSDP`.
    """

    def __init__(self, constraints: Iterable, name: str = "normalized-packing", validate: bool = True) -> None:
        if isinstance(constraints, ConstraintCollection):
            self.constraints = constraints
        else:
            self.constraints = ConstraintCollection(constraints, validate=validate)
        self.name = name

    @property
    def dim(self) -> int:
        """Matrix dimension ``m``."""
        return self.constraints.dim

    @property
    def num_constraints(self) -> int:
        """Number of constraints ``n``."""
        return len(self.constraints)

    # ------------------------------------------------------------------ bounds
    def value_bounds(self) -> tuple[float, float]:
        """Crude lower/upper bounds on the shared optimum ``OPT``.

        * lower bound: putting all weight on the single best coordinate,
          ``max_i 1 / ||B_i||_2`` is dual feasible;
        * upper bound: any dual-feasible ``x`` has
          ``sum_i x_i Tr[B_i] = Tr[sum_i x_i B_i] <= Tr[I] = m``, hence
          ``1^T x <= m / min_i Tr[B_i]``.

        These are within a factor ``poly(n, m)`` of each other, which is all
        the binary search of Lemma 2.2 needs.
        """
        norms = self.constraints.spectral_norms()
        traces = self.constraints.traces()
        if np.any(norms <= 0) or np.any(traces <= 0):
            raise InvalidProblemError(
                "every normalized constraint matrix must be nonzero; "
                "remove zero constraints before solving"
            )
        lower = float(np.max(1.0 / norms))
        upper = float(self.dim / np.min(traces))
        # The single-coordinate solution also shows OPT >= 1/min trace never
        # exceeds the upper bound; guard against rounding making lower > upper.
        upper = max(upper, lower)
        return lower, upper

    # ------------------------------------------------------------------ evaluation
    def dual_value(self, x: np.ndarray) -> float:
        """The packing objective ``1^T x``."""
        x = ensure_1d(x, "x")
        return float(np.sum(x))

    def dual_feasible(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        """Check ``x >= 0`` and ``lambda_max(sum_i x_i B_i) <= 1 + tol``."""
        x = ensure_1d(x, "x")
        if x.shape[0] != self.num_constraints or np.any(x < -tol):
            return False
        psi = self.constraints.weighted_sum(np.clip(x, 0.0, None))
        lam = float(np.linalg.eigvalsh(psi)[-1]) if self.dim else 0.0
        return lam <= 1.0 + tol

    def primal_value(self, primal: np.ndarray) -> float:
        """The covering objective ``Tr[Y]``."""
        return float(np.trace(np.asarray(primal, dtype=np.float64)))

    def primal_feasible(self, primal: np.ndarray, tol: float = 1e-7) -> bool:
        """Check ``Y`` PSD and ``B_i . Y >= 1 - tol`` for all i."""
        from repro.linalg.psd import is_psd

        primal = np.asarray(primal, dtype=np.float64)
        if not is_psd(primal, tol=max(tol, 1e-9)):
            return False
        return bool(np.all(self.constraints.dots(primal) >= 1.0 - tol))

    def scaled(self, theta: float) -> "NormalizedPackingSDP":
        """Return the instance with every constraint scaled by ``theta``.

        Used by the decision reduction: the scaled instance has optimum
        ``OPT / theta``, so asking "is the scaled optimum >= 1?" asks
        "is OPT >= theta?".
        """
        if theta <= 0:
            raise InvalidProblemError(f"theta must be > 0, got {theta}")
        coeffs = np.full(self.num_constraints, float(theta))
        return NormalizedPackingSDP(
            self.constraints.scaled(coeffs), name=f"{self.name}@theta={theta:.4g}", validate=False
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NormalizedPackingSDP(name={self.name!r}, m={self.dim}, n={self.num_constraints})"
