"""Result objects returned by the decision solver and the full solver."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.instrumentation.counters import OracleCounters
from repro.instrumentation.history import ConvergenceHistory
from repro.parallel.workdepth import WorkDepthReport


class DecisionOutcome(str, enum.Enum):
    """Which side of the ε-decision problem the solver certified."""

    DUAL = "dual"
    """A packing vector ``x`` with large ``||x||_1`` and ``sum x_i A_i <= I``
    was found: the scaled optimum is at least ``1 - eps``."""

    PRIMAL = "primal"
    """A covering matrix ``Y`` with ``Tr[Y] = 1`` and ``A_i . Y >= 1`` (up to
    the measured slack) was found: the scaled optimum is at most ~1."""


class SolveStatus(str, enum.Enum):
    """How much of the paper's guarantee a :class:`DecisionResult` carries.

    The contract (see ``docs/ROBUSTNESS.md``): a certificate is only ever
    reported when it was *exactly verified* on the returned object — never
    extrapolated from a partial run.  Degradation changes which kernel
    computed the numbers, never what the numbers mean.
    """

    CERTIFIED = "certified"
    """The full Algorithm 3.1 guarantee holds and no fast-path kernel had to
    be demoted during the run."""

    DEGRADED = "degraded"
    """The certificate is exactly verified, but one or more fast-path
    kernels failed mid-run and the supervisor demoted them to slower exact
    rungs (see ``metadata["recovery_events"]``).  The result is as
    trustworthy as :attr:`CERTIFIED`; the flag records that the happy path
    did not survive."""

    BUDGET_EXHAUSTED = "budget_exhausted"
    """A wall-clock or iteration budget ran out before either ε-decision
    certificate was reached.  The returned dual vector is still *feasible*
    (``sum_i x_i A_i <= I`` is verified by the final measured
    ``lambda_max`` rescale) — only its value is smaller than the
    Algorithm 3.1 target, so the run proves a weaker lower bound rather
    than deciding the ε-question."""

    FAILED = "failed"
    """Recovery itself ran out (``max_recoveries`` exceeded, or the bottom
    ladder rung also failed).  The result carries whatever partial dual
    could still be exactly verified; unverifiable fields are ``nan``.  The
    solver returns this instead of raising so batch drivers can triage."""


@dataclass
class DecisionResult:
    """Output of :func:`repro.core.decision.decision_psdp`.

    Exactly one of :attr:`dual_x` / :attr:`primal_y` is the certified object
    (according to :attr:`outcome`), but both are populated when available so
    callers can inspect the non-certified side too.

    Attributes
    ----------
    outcome:
        Which certificate terminated the run.
    dual_x:
        The dual (packing) vector, already rescaled to satisfy
        ``sum_i x_i A_i <= I`` (per Lemma 3.2 / Equation 3.4).
    primal_y:
        The primal (covering) matrix ``Y`` (trace exactly 1).  On the
        exact-oracle (dense ``PsiState``) path this is the running average
        of the probability matrices ``P(t)``, materialised eagerly as
        before.  On the matrix-free fast-oracle path the solver never
        forms a density matrix during the run: reading this attribute
        triggers the one deferred build (``exp(Psi)/Tr[exp(Psi)]`` of the
        final iterate via :attr:`primal_builder`) — a solve whose
        ``primal_y`` is never read performs zero ``O(m^3)``
        eigendecompositions and zero dense ``Psi`` materialisations.
        ``None`` when no primal candidate exists (e.g. a fast-path dual
        outcome).  Note that *any* read resolves the build — including
        indirect ones such as ``dataclasses.asdict``/``replace`` or
        ``==`` on the result — and the first read also refreshes
        :attr:`primal_min_dot` from the oracle's sketched estimate to the
        exact trace products of the returned matrix.
    dual_value:
        ``||dual_x||_1`` (0 if no dual vector was produced).
    primal_min_dot:
        ``min_i A_i . Y`` for the returned ``Y`` (``nan`` if no ``Y``).
    dual_lambda_max:
        Measured ``lambda_max(sum_i dual_x_i A_i)`` — the feasibility margin.
    iterations:
        Number of iterations executed.
    max_iterations:
        The cap ``R`` that was in force.
    epsilon:
        Accuracy parameter the run used.
    early_exit:
        True if the run stopped on an early certificate check rather than on
        the while-loop condition of Algorithm 3.1.
    history:
        Optional per-iteration records (``None`` unless requested).
    counters:
        Oracle operation counters.
    work_depth:
        Work–depth report of the run (model units).
    """

    outcome: DecisionOutcome
    dual_x: np.ndarray | None
    primal_y: np.ndarray | None = field(repr=False)
    dual_value: float
    primal_min_dot: float
    dual_lambda_max: float
    iterations: int
    max_iterations: int
    epsilon: float
    early_exit: bool = False
    #: Guarantee level of this result — see :class:`SolveStatus`.  Anything
    #: other than :attr:`SolveStatus.CERTIFIED` means the run was supervised
    #: through faults or budgets; ``metadata["recovery_events"]`` has the
    #: per-event detail.
    status: SolveStatus = SolveStatus.CERTIFIED
    history: ConvergenceHistory | None = None
    counters: OracleCounters = field(default_factory=OracleCounters)
    work_depth: WorkDepthReport | None = None
    #: Free-form run facts.  The decision solvers record the Algorithm 3.1
    #: constants (``K``/``alpha``/``R``), the oracle kind, and the
    #: fast-path discipline counters: ``psi_state`` (matrix-free
    #: densify/matvec counts), ``taylor_engine`` (incremental-update
    #: counts), and ``trace_estimator`` (structured-trace mode, probes,
    #: identity fallbacks, certified-bound high-water mark).  A
    #: ``BUDGET_EXHAUSTED`` result (and a ``FAILED`` one, when periodic
    #: captures were on via ``DecisionOptions.checkpoint_every``) also
    #: carries ``metadata["checkpoint"]`` — a
    #: :class:`~repro.core.checkpoint.SolverCheckpoint` that
    #: ``decision_psdp(..., resume_from=...)`` continues bit-identically.
    metadata: dict[str, Any] = field(default_factory=dict)
    #: Deferred builder for :attr:`primal_y` (matrix-free path only): called
    #: at most once, on first read, then discarded.  The builder may also
    #: refresh :attr:`primal_min_dot` with the exact trace products of the
    #: matrix it returns.
    primal_builder: Callable[[], np.ndarray | None] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_dual(self) -> bool:
        """Whether the certified outcome is the dual (packing) side."""
        return self.outcome is DecisionOutcome.DUAL

    @property
    def is_primal(self) -> bool:
        """Whether the certified outcome is the primal (covering) side."""
        return self.outcome is DecisionOutcome.PRIMAL


def _primal_y_get(self: "DecisionResult") -> np.ndarray | None:
    """Resolve :attr:`DecisionResult.primal_y`, running the deferred build once."""
    value = self.__dict__.get("_primal_y_value")
    if value is None and self.primal_builder is not None:
        builder, self.primal_builder = self.primal_builder, None
        value = builder()
        self.__dict__["_primal_y_value"] = value
    return value


def _primal_y_set(self: "DecisionResult", value: np.ndarray | None) -> None:
    """Store an eagerly-built primal matrix (the dense-path assignment)."""
    self.__dict__["_primal_y_value"] = value


# The dataclass-generated __init__ assigns `self.primal_y = ...`; routing the
# field through a property keeps that assignment working while making *reads*
# trigger the deferred matrix-free build exactly once.
DecisionResult.primal_y = property(_primal_y_get, _primal_y_set)  # type: ignore[assignment]


@dataclass
class SolveResult:
    """Output of :func:`repro.core.solver.approx_psdp` (the full optimizer).

    The optimizer binary-searches the decision problem (Lemma 2.2) and
    returns two-sided bounds on the shared optimum of the normalized
    primal/dual pair together with explicit certificates in both the
    normalized and the original variable spaces.

    Attributes
    ----------
    optimum_lower / optimum_upper:
        Certified bounds on the normalized optimum ``OPT`` (the packing
        value = covering value).  Their ratio is at most ``1 + epsilon`` on
        success.
    dual_x:
        Feasible packing vector for the normalized program achieving
        :attr:`optimum_lower`.
    primal_y:
        Feasible covering matrix for the normalized program achieving
        :attr:`optimum_upper`.
    original_dual / original_primal:
        The same certificates mapped back to the original
        :class:`~repro.core.problem.PositiveSDP` variables (``None`` when the
        solver was given an already-normalized instance).
    decision_calls:
        Number of ε-decision invocations performed by the binary search.
    total_iterations:
        Total decision-solver iterations across all calls.
    epsilon:
        Target relative accuracy.
    """

    optimum_lower: float
    optimum_upper: float
    dual_x: np.ndarray
    primal_y: np.ndarray
    original_dual: np.ndarray | None
    original_primal: np.ndarray | None
    decision_calls: int
    total_iterations: int
    epsilon: float
    decision_results: list[DecisionResult] = field(default_factory=list)
    counters: OracleCounters = field(default_factory=OracleCounters)
    work_depth: WorkDepthReport | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def optimum_estimate(self) -> float:
        """Geometric midpoint of the certified bounds."""
        return float(np.sqrt(self.optimum_lower * self.optimum_upper))

    @property
    def relative_gap(self) -> float:
        """``optimum_upper / optimum_lower - 1`` (the certified relative error)."""
        if self.optimum_lower <= 0:
            return float("inf")
        return self.optimum_upper / self.optimum_lower - 1.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"OPT in [{self.optimum_lower:.6g}, {self.optimum_upper:.6g}] "
            f"(gap {self.relative_gap:.3%}), {self.decision_calls} decision calls, "
            f"{self.total_iterations} iterations"
        )
