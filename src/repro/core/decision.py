"""The parallel packing-SDP decision solver (Algorithm 3.1, ``decisionPSDP``).

Given constraint matrices ``A_1, ..., A_n`` (already scaled so the
interesting threshold is 1) and an accuracy parameter ``eps``, the solver
answers the ε-decision problem of Section 2.2: it returns either

* a **dual** vector ``x >= 0`` with ``||x||_1 >= 1 - O(eps)`` and
  ``sum_i x_i A_i <= I`` (certifying that the packing optimum is at least
  ``1 - O(eps)``), or
* a **primal** matrix ``Y >= 0`` with ``Tr[Y] = 1`` and ``A_i . Y`` large
  for every ``i`` (certifying that the packing optimum is at most ~1).

The implementation follows the paper's pseudocode exactly in *strict* mode:

* ``K = (1 + ln n) / eps``, ``alpha = eps / (K (1 + 10 eps))``,
  ``R = 32 ln(n) / (eps alpha)`` — the width-independent iteration bound of
  Theorem 3.1;
* ``x_i(0) = 1 / (n Tr[A_i])`` (Claim 3.3's initialisation);
* every iteration computes ``W = exp(Psi)`` with ``Psi = sum_i x_i A_i``,
  selects ``B = {i : W . A_i <= (1 + eps) Tr[W]}`` in parallel, and
  multiplies those coordinates by ``(1 + alpha)``.

Two engineering additions (both certificate-checked, i.e. they can only
make the solver stop earlier with a *verified* answer, never change what it
certifies):

* if the update set ``B`` is empty, the current density matrix ``P``
  already satisfies ``A_i . P > 1 + eps`` for every ``i`` and is therefore a
  valid primal certificate — the solver returns it immediately instead of
  idling until the iteration cap;
* in the default (non-strict) mode the solver periodically checks whether
  the current iterate already yields a primal or dual certificate
  (``certificate_check_every`` iterations) and exits early when it does.
  Experiment E9 quantifies how much this helps in practice.

Matrix-free iteration core
--------------------------
The solver's ``Psi`` lives behind a :class:`~repro.core.psi_state.PsiState`.
With the exact oracle (or any oracle that consumes the dense matrix) the
dense state reproduces the seed semantics bit-for-bit.  With the fast
oracle on exact-factor collections the *implicit* state is selected
automatically (``DecisionOptions.psi_state = "auto"``): the loop then
never materialises ``Psi`` — weight updates are ``O(n)`` vector updates,
history records and certificate checks estimate ``lambda_max`` by Lanczos
through the factored matvec at ``O((mR + nnz) * sweeps)`` with a
warm-started vector carried across iterations, primal tracking accumulates
the oracle's *dots vector* (the segment-summed ``||Pi exp(Psi/2) Q_i||_F^2``
estimates of ``constraints.dots(P(t))``) instead of ``(m, m)`` densities,
and ``primal_y`` is densified at most once, on demand, when a caller
actually reads it off the result.  ``benchmarks/bench_e14_matrixfree.py``
measures the end-to-end effect on large-``m`` low-rank/sparse instances.

The fast oracle's degenerate-sketch trace normalisation is likewise
structured (:mod:`repro.linalg.trace_estimation`): no ``(m, m)`` identity
passes through the Taylor polynomial on the default path, the oracle's
per-call work charge reflects the ``(m, R)`` factor-stack columns that
actually ran, and the estimator's counters are surfaced as
``result.metadata["trace_estimator"]`` next to the ``psi_state`` ones
(``benchmarks/bench_e15_trace.py`` measures the per-call effect).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.config import get_config
from repro.exceptions import BudgetExhaustedError, InvalidProblemError, SolverError
from repro.instrumentation.history import ConvergenceHistory, IterationRecord
from repro.linalg.expm import expm_normalized
from repro.operators.collection import ConstraintCollection
from repro.utils.random_utils import spawn_generators
from repro.parallel.backends import ExecutionBackend, SerialBackend
from repro.parallel.workdepth import WorkDepthTracker
from repro.core.checkpoint import SolverCheckpoint, capture_checkpoint, restore_checkpoint
from repro.core.dotexp import DotExpOracle, make_oracle, oracle_engine_metadata
from repro.core.problem import NormalizedPackingSDP
from repro.core.psi_state import make_psi_state
from repro.core.result import DecisionOutcome, DecisionResult, SolveStatus
from repro.robustness.supervisor import FastPathSupervisor
from repro.utils.random_utils import RandomState


@dataclass
class DecisionOptions:
    """Tuning knobs for :func:`decision_psdp`.

    Attributes
    ----------
    epsilon:
        Accuracy parameter ``eps`` of the decision problem.
    oracle:
        ``"exact"``, ``"fast"``, or an already-constructed oracle object
        implementing the :class:`~repro.core.dotexp.DotExpOracle` protocol.
    oracle_eps:
        Accuracy of the fast oracle (defaults to ``epsilon / 4``).
    strict:
        ``True`` runs the paper's pseudocode with no early certificate
        exits (the empty-update-set shortcut is kept because it returns a
        fully certified primal solution and avoids an idle spin).
    certificate_check_every:
        Cadence of early certificate checks in non-strict mode
        (``0`` disables them; ``None`` uses the package default).
    max_iterations:
        Override for the iteration cap ``R`` (``None`` uses the paper's
        formula).
    collect_history:
        Record an :class:`~repro.instrumentation.history.IterationRecord`
        per iteration.
    track_primal_average:
        Maintain the running average of the density matrices ``P(t)``
        needed for the primal return value.  ``None`` means "automatic":
        on for the exact oracle, off for the fast oracle (where the
        average would require an extra eigendecomposition per iteration).
        On the matrix-free path the average is tracked through the dots
        vector (the oracle's per-iteration trace-product estimates), never
        through ``(m, m)`` matrices; those estimates are *sketched*, so
        the implicit state reports them but never uses them for the early
        primal-certificate exit (a verified certificate needs the exact
        trace products the dense state computes) — a dense-state run with
        ``track_primal_average=True`` may therefore stop at a primal
        check the implicit state deliberately skips.
    backend:
        Execution backend for the batched per-constraint operations.  A
        *string* here is interpreted as an array-backend name and moved to
        ``array_backend`` (``DecisionOptions(backend="torch")`` reads
        naturally and cannot collide: execution backends are objects).
    array_backend:
        Array backend for the fast oracle's packed kernels — ``"numpy"``
        (default), ``"torch"``, ``"cupy"``, or an
        :class:`~repro.backend.ArrayBackend` instance.  Work–depth charges
        are shape-derived and identical across array backends; only the
        kernel arithmetic (and its rounding) moves.  Ignored when
        ``oracle`` is a pre-built oracle object (the object already fixed
        its backend at construction).
    rng:
        Randomness source (used only by the fast oracle's sketches).
    psi_state:
        Representation of the solver's weight matrix
        (:mod:`repro.core.psi_state`): ``"auto"`` (default) picks the
        matrix-free implicit state when the oracle declares
        ``needs_dense_psi = False``, carries a packed factor view, and the
        collection's factors are exact, falling back to the dense seed
        semantics otherwise; ``"dense"``/``"implicit"`` force one (the
        latter raises on inexact-factor collections).
    supervise:
        Run the solve under a :class:`~repro.robustness.FastPathSupervisor`
        (default).  Numerical breakdowns in the fast-path kernels then
        demote one ladder rung and retry instead of raising, budgets are
        enforced, and ``result.status`` /
        ``result.metadata["recovery_events"]`` report what happened.
        ``False`` runs the raw pre-supervision call paths — the reference
        for the happy-path overhead benchmark
        (``benchmarks/bench_e16_robustness.py``); budgets are then ignored.
    wall_clock_budget:
        Optional seconds cap on the solve.  Checked at every iteration
        boundary: when it trips, the solver returns a best-effort result
        with ``status = SolveStatus.BUDGET_EXHAUSTED`` and the current
        (exactly rescaled, genuinely feasible) partial dual — it never
        raises and never reports an unverified certificate.
    iteration_budget:
        Optional iteration cap tighter than the paper's ``R``; same
        exhaustion contract as ``wall_clock_budget``.
    max_recoveries:
        Cap on fault-recovery demotions per solve (``None`` uses
        ``ReproConfig.max_recoveries``).  On exhaustion the solver returns
        ``status = SolveStatus.FAILED`` with whatever could still be
        verified exactly (``nan`` elsewhere).
    checkpoint_every:
        Capture a :class:`~repro.core.checkpoint.SolverCheckpoint` every
        this many iterations (``None``/unset disables periodic captures).
        The latest capture rides on a ``FAILED`` result's
        ``metadata["checkpoint"]`` so even a crashed solve is resumable;
        budget exhaustion always attaches a fresh capture regardless of
        this setting.
    heartbeat:
        Optional callback ``heartbeat(checkpoint, instance)`` invoked on
        every periodic capture (so it fires at the ``checkpoint_every``
        cadence; never without one).  ``instance`` is the per-instance rng
        index inside a fused :func:`~repro.core.batch.solve_many` group and
        ``None`` for a solo solve.  The executor uses this as the worker
        liveness/progress channel: each beat ships the freshest resumable
        state and re-dates the watchdog.  Exceptions raised by the callback
        propagate out of the solver — that is the cooperative-cancellation
        mechanism.  Excluded from options-identity comparisons (like
        ``rng``): it affects observability, never result bits.

    Budgets and the checkpoint cadence are validated at construction:
    negative ``wall_clock_budget``/``iteration_budget``/``max_recoveries``
    and non-positive ``checkpoint_every`` raise
    :class:`~repro.exceptions.InvalidProblemError` immediately instead of
    misbehaving iterations deep into a solve.
    """

    epsilon: float = 0.2
    oracle: str | DotExpOracle = "exact"
    oracle_eps: float | None = None
    strict: bool = False
    certificate_check_every: int | None = None
    max_iterations: int | None = None
    collect_history: bool = False
    track_primal_average: bool | None = None
    backend: ExecutionBackend | None = None
    array_backend: Any = "numpy"
    rng: RandomState = None
    psi_state: str = "auto"
    supervise: bool = True
    wall_clock_budget: float | None = None
    iteration_budget: int | None = None
    max_recoveries: int | None = None
    checkpoint_every: int | None = None
    heartbeat: Callable[[Any, Any], None] | None = None
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.backend, str):
            # DecisionOptions(backend="torch") selects the array backend;
            # execution backends are always objects, so a bare name cannot
            # be one.
            self.array_backend = self.backend
            self.backend = None
        if self.wall_clock_budget is not None and self.wall_clock_budget < 0:
            raise InvalidProblemError(
                f"wall_clock_budget must be >= 0 seconds, got {self.wall_clock_budget}"
            )
        if self.iteration_budget is not None and self.iteration_budget < 0:
            raise InvalidProblemError(
                f"iteration_budget must be >= 0 iterations, got {self.iteration_budget}"
            )
        if self.max_recoveries is not None and self.max_recoveries < 0:
            raise InvalidProblemError(
                f"max_recoveries must be >= 0, got {self.max_recoveries}"
            )
        if self.checkpoint_every is not None and self.checkpoint_every <= 0:
            raise InvalidProblemError(
                f"checkpoint_every must be a positive iteration count, "
                f"got {self.checkpoint_every}"
            )


@dataclass(frozen=True)
class DecisionParameters:
    """The derived constants of Algorithm 3.1 for a given ``(n, eps)``."""

    n: int
    epsilon: float
    K: float
    alpha: float
    R: int

    @staticmethod
    def from_instance(n: int, epsilon: float) -> "DecisionParameters":
        """Compute ``K``, ``alpha`` and ``R`` exactly as defined in Algorithm 3.1."""
        if n < 1:
            raise InvalidProblemError(f"need at least one constraint, got n={n}")
        if not (0 < epsilon < 1):
            raise InvalidProblemError(f"epsilon must be in (0, 1), got {epsilon}")
        log_n = math.log(max(n, 2))
        K = (1.0 + log_n) / epsilon
        alpha = epsilon / (K * (1.0 + 10.0 * epsilon))
        R = int(math.ceil(32.0 * log_n / (epsilon * alpha)))
        return DecisionParameters(n=n, epsilon=epsilon, K=K, alpha=alpha, R=R)


def resolve_decision_options(
    epsilon: float | None,
    options: DecisionOptions | None,
    overrides: dict[str, Any],
) -> DecisionOptions:
    """Merge the ``(epsilon, options, **overrides)`` calling convention.

    Shared by :func:`decision_psdp` and :func:`repro.core.batch.solve_many`
    so a batched solve resolves its options (including override validation
    and the no-mutation copy semantics) exactly like a sequential one.
    """
    opts = options or DecisionOptions()
    if overrides:
        valid = {f.name for f in opts.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(overrides) - valid
        if unknown:
            raise TypeError(f"unknown decision options: {sorted(unknown)}")
        opts = DecisionOptions(**{**opts.__dict__, **overrides})
    if epsilon is not None:
        # Copy before overriding: the caller's options object must not be
        # silently mutated across calls.
        opts = dataclasses.replace(opts, epsilon=float(epsilon))
    return opts


def _resolve_constraints(problem) -> ConstraintCollection:
    if isinstance(problem, NormalizedPackingSDP):
        return problem.constraints
    if isinstance(problem, ConstraintCollection):
        return problem
    return ConstraintCollection(problem)


def decision_psdp(
    problem: NormalizedPackingSDP | ConstraintCollection | list,
    epsilon: float | None = None,
    options: DecisionOptions | None = None,
    *,
    resume_from: "SolverCheckpoint | None" = None,
    **overrides: Any,
) -> DecisionResult:
    """Solve the ε-decision problem for a packing SDP (Algorithm 3.1).

    Parameters
    ----------
    problem:
        A :class:`~repro.core.problem.NormalizedPackingSDP`, a
        :class:`~repro.operators.ConstraintCollection`, or a plain list of
        PSD matrices.  The constraints are interpreted against the threshold
        1 (i.e. the question is whether the packing optimum is above or
        below 1).
    epsilon:
        Accuracy parameter; overrides the one in ``options``.
    options:
        A :class:`DecisionOptions` bundle; individual fields can also be
        overridden with keyword arguments (e.g. ``oracle="fast"``,
        ``strict=True``, ``collect_history=True``).
    resume_from:
        A :class:`~repro.core.checkpoint.SolverCheckpoint` captured by an
        earlier (interrupted) run of this solver on the *same instance with
        the same options*.  The solve continues from the checkpointed
        iteration bit-identically: an interrupt-at-``k``-then-resume run
        returns the same certified decision, dual witness and history as an
        uninterrupted run on the same seed.  Mismatched checkpoints raise
        :class:`~repro.exceptions.CheckpointError`.

    Returns
    -------
    DecisionResult
        The certified outcome together with both candidate solutions,
        iteration statistics, oracle counters and a work–depth report.

    Notes
    -----
    String oracles (``"exact"``/``"fast"``) are built with the batched fast
    paths enabled: the packed single-GEMM estimate pass (``packed=True``),
    the fused blocked Taylor kernel (``blocked=True``), and the exact
    oracle's packed trace products (``batched=True``).  To run a reference
    path instead — e.g. for regression comparisons — construct the oracle
    explicitly and pass it as ``options.oracle``::

        oracle = FastDotExpOracle(constraints, eps=0.05, rng=0,
                                  packed=False)   # seed per-factor loop
        decision_psdp(constraints, epsilon=0.2, oracle=oracle)

    All fast-path/reference pairs certify identical decisions on fixed
    seeds (see ``tests/test_decision_packed_regressions.py``).
    """
    opts = resolve_decision_options(epsilon, options, overrides)

    constraints = _resolve_constraints(problem)
    cfg = get_config()
    eps = float(opts.epsilon)
    params = DecisionParameters.from_instance(len(constraints), eps)
    n, m = len(constraints), constraints.dim

    traces = constraints.traces()
    if np.any(traces <= 0):
        raise InvalidProblemError(
            "every constraint matrix must have a positive trace (remove zero matrices)"
        )

    tracker = WorkDepthTracker()
    backend = opts.backend or SerialBackend(tracker=tracker)
    if backend.tracker is None:
        backend.tracker = tracker
    else:
        tracker = backend.tracker

    oracle: DotExpOracle
    if isinstance(opts.oracle, str):
        oracle = make_oracle(
            constraints,
            kind=opts.oracle,
            eps=opts.oracle_eps if opts.oracle_eps is not None else eps / 4.0,
            # The Lemma 3.2 bound (1 + 10 eps) K would be a valid kappa, but it
            # is very pessimistic early in the run; letting the fast oracle
            # estimate ||Psi||_2 per call keeps the Taylor degree proportional
            # to the *current* spectral norm.
            kappa_bound=None,
            rng=opts.rng,
            backend=backend,
            array_backend=opts.array_backend,
        )
        oracle_kind = opts.oracle
    else:
        oracle = opts.oracle
        oracle_kind = type(oracle).__name__

    track_primal = opts.track_primal_average
    if track_primal is None:
        track_primal = oracle_kind == "exact"

    check_every = opts.certificate_check_every
    if check_every is None:
        check_every = 0 if opts.strict else cfg.certificate_check_every
    max_iterations = opts.max_iterations if opts.max_iterations is not None else params.R

    history = ConvergenceHistory() if opts.collect_history else None
    log_depth = math.log2(max(n, 2)) + math.log2(max(m, 2))

    # Top-eigenvalue estimation (certificate checks, history, final dual
    # rescaling) lives on the PsiState: dense Lanczos on the maintained
    # matrix for the dense state, warm-started Lanczos through the factored
    # matvec for the implicit one.  The eigenvalue work charged below is
    # the *measured* sweep count returned by top_eigenvalue, not an
    # a-priori m^2 * maxiter constant.  The generator is spawned, not
    # shared: consuming the oracle's stream here would make sketch draws
    # depend on history/certificate cadence.
    eig_rng = spawn_generators(opts.rng, 1)[0]

    # --- initialisation (Claim 3.3): x_i(0) = 1 / (n Tr[A_i]) ------------------
    state = make_psi_state(
        constraints,
        1.0 / (n * traces),
        oracle=oracle,
        eig_rng=eig_rng,
        mode=opts.psi_state,
    )
    implicit = state.mode == "implicit"
    x = state.x
    tracker.charge(state.init_work, log_depth, label="init-psi")

    # Fault supervision (robustness subsystem): kernel-demotion ladders,
    # budgets, and the structured recovery log.  The supervisor owns the
    # mutable PsiState reference — the loop re-reads it after every
    # supervised call because an implicit-state matvec failure rebuilds the
    # state densely mid-run.  The primal-tracking branch choice (`implicit`)
    # stays frozen at its start-of-run value: the dots-vector accumulators
    # remain valid after a demotion, only lambda_max/densify follow the
    # demoted state.
    supervisor = (
        FastPathSupervisor(
            oracle=oracle,
            state=state,
            constraints=constraints,
            tracker=tracker,
            log_depth=log_depth,
            eig_rng=eig_rng,
            wall_clock_budget=opts.wall_clock_budget,
            iteration_budget=opts.iteration_budget,
            max_recoveries=opts.max_recoveries,
        )
        if opts.supervise
        else None
    )

    primal_sum = None if implicit else np.zeros((m, m), dtype=np.float64)
    primal_rounds = 0
    last_density: np.ndarray | None = None
    # Matrix-free primal tracking: the oracle's values vector *is* the
    # Theorem 4.1 estimate of the dots vector constraints.dots(P(t)) —
    # segment-summed || Pi exp(Psi/2) Q_i ||_F^2 over the factor stack —
    # so the running density average is tracked through its trace products
    # and an (m, m) density matrix is never formed during the run.
    dots_sum = np.zeros(n, dtype=np.float64) if implicit else None
    last_values: np.ndarray | None = None

    checkpoint_every = opts.checkpoint_every or 0
    latest_checkpoint: SolverCheckpoint | None = None

    def capture(iteration: int) -> SolverCheckpoint:
        return capture_checkpoint(
            solver="psdp",
            iteration=iteration,
            eps=eps,
            oracle_kind=oracle_kind,
            strict=opts.strict,
            n=n,
            m=m,
            oracle=oracle,
            state=state,
            supervisor=supervisor,
            eig_rng=eig_rng,
            tracker=tracker,
            history=history,
            primal_sum=primal_sum,
            primal_rounds=primal_rounds,
            last_density=last_density,
            dots_sum=dots_sum,
            last_values=last_values,
        )

    def current_primal() -> np.ndarray | None:
        if primal_rounds > 0:
            return primal_sum / primal_rounds
        return last_density

    def build_result(
        outcome: DecisionOutcome,
        iterations: int,
        early: bool,
        dual_candidate: np.ndarray,
        primal_final: bool = False,
        status: SolveStatus | None = None,
    ) -> DecisionResult:
        nonlocal state
        # Always report a *feasible* dual candidate by rescaling with the
        # measured lambda_max: if lambda_max(sum_i x_i A_i) = lam > 0 then
        # x / lam is feasible with value ||x||_1 / lam.  Lemma 3.2 bounds lam
        # by (1 + 10 eps) K, so this is never worse than the paper's scaling,
        # and scaling *up* when lam < 1 only strengthens the certificate.
        # This holds for budget-exhausted partial duals too: x / lam is
        # exactly verified feasible, merely with a sub-target value — the
        # certificate is measured on the returned object, never extrapolated.
        try:
            if supervisor is not None:
                lam, eig_work = supervisor.lambda_max(final=True, iteration=iterations)
                state = supervisor.state
            else:
                lam, eig_work = state.lambda_max(final=True)
        except BudgetExhaustedError:
            # Even the exact eigvalsh rung failed (or recoveries ran out):
            # the dual side cannot be verified — report nan, never a guess.
            lam, eig_work = float("nan"), 0.0
            status = SolveStatus.FAILED
            if supervisor is not None:
                state = supervisor.state
        tracker.charge(eig_work, log_depth, label="dual-rescale")
        verified = bool(np.isfinite(lam))
        scale = lam if lam > 0 else 1.0
        dual_x = dual_candidate / scale
        dual_value = float(dual_x.sum()) if verified else float("nan")
        dual_lam = lam / scale if verified else float("nan")

        if implicit:
            # No (m, m) matrix exists; primal_y is attached as a deferred
            # build below when this outcome carries a primal certificate.
            primal_y = None
            if primal_final and last_values is not None:
                # The certificate is the *current* iterate's density; its
                # trace products are the oracle's last estimates.
                min_dot = float(last_values.min(initial=np.inf))
            elif primal_rounds > 0:
                min_dot = float((dots_sum / primal_rounds).min(initial=np.inf))
            else:
                min_dot = float("nan")
        else:
            primal_y = current_primal()
            if primal_y is not None:
                min_dot = float(constraints.dots(primal_y).min(initial=np.inf))
            else:
                min_dot = float("nan")

        if status is None:
            # Demotions occurred but the certificate was still exactly
            # verified: the run is DEGRADED, not failed — same guarantee,
            # slower rungs.
            status = (
                SolveStatus.DEGRADED
                if supervisor is not None and supervisor.recovery_events
                else SolveStatus.CERTIFIED
            )
        result = DecisionResult(
            outcome=outcome,
            dual_x=dual_x,
            primal_y=primal_y,
            dual_value=dual_value,
            primal_min_dot=min_dot,
            dual_lambda_max=dual_lam,
            iterations=iterations,
            max_iterations=max_iterations,
            epsilon=eps,
            early_exit=early,
            status=status,
            history=history,
            counters=oracle.counters,
            work_depth=tracker.report(),
            metadata={
                "K": params.K,
                "alpha": params.alpha,
                "R": params.R,
                "oracle": oracle_kind,
                "strict": opts.strict,
                "solve_status": status.value,
                # Partial-dual mass before rescaling: budget-exhaustion
                # tests assert this grows monotonically with the budget.
                "x_l1": float(dual_candidate.sum()),
                # Matrix-free discipline counters (snapshot at result build:
                # a deferred primal build afterwards is *meant* to densify).
                "psi_state": state.stats(),
                # Rank-adaptive Taylor-engine counters (fast oracle only).
                **oracle_engine_metadata(oracle),
                **(
                    {
                        "recovery_events": supervisor.event_dicts(),
                        "supervisor": supervisor.stats(),
                    }
                    if supervisor is not None
                    else {}
                ),
                **opts.metadata,
            },
        )
        if result.status is SolveStatus.FAILED and latest_checkpoint is not None:
            # A crashed solve is still resumable from the latest periodic
            # capture (budget exhaustion attaches a fresh one at its own
            # return site, overriding this).
            result.metadata["checkpoint"] = latest_checkpoint
        if implicit and primal_final:
            def build_primal() -> np.ndarray:
                # The one deferred densification + eigendecomposition of the
                # matrix-free path, run only when primal_y is actually read;
                # the exact trace products replace the sketched estimate.
                y = expm_normalized(state.densify())
                result.primal_min_dot = float(
                    constraints.dots(y).min(initial=np.inf)
                )
                return y

            result.primal_builder = build_primal
        return result

    # --- main loop (Algorithm 3.1) --------------------------------------------
    t = 0
    if resume_from is not None:
        # Reconstruction above followed the exact fresh-run order (so the
        # spawned rng streams match); now overlay the checkpointed state.
        state, resumed = restore_checkpoint(
            resume_from,
            solver="psdp",
            eps=eps,
            oracle_kind=oracle_kind,
            strict=opts.strict,
            n=n,
            m=m,
            constraints=constraints,
            oracle=oracle,
            state=state,
            supervisor=supervisor,
            eig_rng=eig_rng,
            tracker=tracker,
            history=history,
        )
        x = state.x
        t = resumed.iteration
        primal_sum = resumed.primal_sum
        primal_rounds = resumed.primal_rounds
        last_density = resumed.last_density
        dots_sum = resumed.dots_sum
        last_values = resumed.last_values
    while float(x.sum()) <= params.K and t < max_iterations:
        if supervisor is not None and supervisor.budget_exhausted(t) is not None:
            # Budgets never raise from the public entry point: return the
            # exactly-verified partial dual with an explicit status.  The
            # fresh capture makes the exhausted budget a continuation
            # point, not wasted work.
            checkpoint = capture(t)
            result = build_result(
                DecisionOutcome.DUAL, t, early=True, dual_candidate=x,
                status=SolveStatus.BUDGET_EXHAUSTED,
            )
            result.metadata["checkpoint"] = checkpoint
            return result
        t += 1

        if supervisor is not None:
            try:
                output = supervisor.oracle_call(iteration=t)
            except BudgetExhaustedError:
                return build_result(
                    DecisionOutcome.DUAL, t, early=True, dual_candidate=x,
                    status=SolveStatus.FAILED,
                )
            state = supervisor.state
            x = state.x
        else:
            output = oracle(state.oracle_psi(), x)
        values = np.asarray(output.values, dtype=np.float64)
        tracker.charge(output.work, log_depth, label="oracle")

        if implicit:
            last_values = values
            if track_primal:
                dots_sum += values
                primal_rounds += 1
        elif track_primal:
            last_density = expm_normalized(state.densify())
            primal_sum += last_density
            primal_rounds += 1

        # Line 5: B(t) = {i : W . A_i <= (1 + eps) Tr[W]}  <=>  P . A_i <= 1 + eps
        mask = values <= 1.0 + eps
        updated = int(mask.sum())
        tracker.charge(float(n), math.log2(max(n, 2)), label="select")

        if history is not None:
            if supervisor is not None:
                try:
                    lam_hist, _ = supervisor.lambda_max(iteration=t)
                except BudgetExhaustedError:
                    return build_result(
                        DecisionOutcome.DUAL, t, early=True, dual_candidate=x,
                        status=SolveStatus.FAILED,
                    )
                state = supervisor.state
            else:
                lam_hist, _ = state.lambda_max()
            history.append(
                IterationRecord(
                    iteration=t,
                    x_norm=float(x.sum()),
                    updated=updated,
                    min_value=float(values.min(initial=np.inf)),
                    max_value=float(values.max(initial=-np.inf)),
                    psi_lambda_max=lam_hist,
                    oracle_work=output.work,
                )
            )

        if updated == 0:
            # Every constraint already has A_i . P > 1 + eps: the density
            # matrix itself is a primal certificate (Tr P = 1).
            if implicit:
                return build_result(
                    DecisionOutcome.PRIMAL, t, early=True, dual_candidate=x,
                    primal_final=True,
                )
            density = last_density if last_density is not None else expm_normalized(state.densify())
            primal_sum = density.copy()
            primal_rounds = 1
            last_density = density
            return build_result(DecisionOutcome.PRIMAL, t, early=True, dual_candidate=x)

        # Line 6: multiply the selected coordinates by (1 + alpha).  The
        # dense state also maintains psi + weighted_sum(delta) (a single
        # GEMM over the active packed columns); the implicit state touches
        # only the weight vector.
        delta = np.where(mask, params.alpha * x, 0.0)
        update_work = state.add_delta(delta, mask)
        x = state.x
        tracker.charge(update_work, log_depth, label="update")

        # Early certificate checks (non-strict mode only).
        if check_every and t % check_every == 0:
            if supervisor is not None:
                try:
                    lam, eig_work = supervisor.lambda_max(iteration=t)
                except BudgetExhaustedError:
                    return build_result(
                        DecisionOutcome.DUAL, t, early=True, dual_candidate=x,
                        status=SolveStatus.FAILED,
                    )
                state = supervisor.state
            else:
                lam, eig_work = state.lambda_max()
            tracker.charge(eig_work, log_depth, label="certificate-check")
            if lam > 0 and float(x.sum()) / lam >= 1.0 - eps:
                return build_result(DecisionOutcome.DUAL, t, early=True, dual_candidate=x)
            primal_candidate = None if implicit else current_primal()
            if primal_candidate is not None:
                min_dot = float(constraints.dots(primal_candidate).min(initial=np.inf))
                if min_dot >= 1.0:
                    return build_result(DecisionOutcome.PRIMAL, t, early=True, dual_candidate=x)

        if checkpoint_every and t % checkpoint_every == 0:
            latest_checkpoint = capture(t)
            if opts.heartbeat is not None:
                opts.heartbeat(latest_checkpoint, None)

    if float(x.sum()) > params.K:
        # Lines 7-8: return a dual solution.  The paper rescales by
        # 1/((1+10eps) K); build_result instead rescales by the *measured*
        # lambda_max, which Lemma 3.2 bounds by (1+10eps) K, so the returned
        # value is at least the paper's 1 - 10 eps guarantee.
        return build_result(DecisionOutcome.DUAL, t, early=False, dual_candidate=x)

    if t >= max_iterations:
        # Line 9-10: the averaged density matrices form the primal solution
        # (final iterate's density on the matrix-free path, built lazily).
        if implicit:
            return build_result(
                DecisionOutcome.PRIMAL, t, early=False, dual_candidate=x,
                primal_final=True,
            )
        if primal_rounds == 0 and last_density is None:
            last_density = expm_normalized(state.densify())
        return build_result(DecisionOutcome.PRIMAL, t, early=False, dual_candidate=x)

    raise SolverError("decision solver exited its loop without a certificate")  # pragma: no cover
