"""Solver-side representations of the weight matrix ``Psi = sum_i x_i A_i``.

Corollary 1.2's whole point is that the decision solver only ever needs
``Psi`` through Gram-factor products — yet until this module existed both
decision solvers rebuilt a dense ``(m, m)`` ``Psi`` every iteration (the
``psi = psi + weighted_sum(delta)`` maintenance), ran dense Lanczos on it
for history records and certificate checks, and handed it to the
``O(m^3)`` :func:`~repro.linalg.expm.expm_normalized` for primal tracking.
:class:`PsiState` abstracts that state behind the four operations the
solvers actually perform, with two interchangeable implementations:

* :class:`DensePsiState` — the seed semantics, bit-for-bit: a dense
  ``Psi`` maintained incrementally (``psi + weighted_sum(delta)``), dense
  Lanczos for ``lambda_max``, and an eager density matrix for primal
  tracking.  This is the reference the matrix-free path is certified
  against, and the only state the exact oracle (which consumes ``Psi``
  directly) can run on.
* :class:`ImplicitPsiState` — matrix-free: holds only the weight vector
  ``x`` plus the collection's packed
  :class:`~repro.operators.packed.PackedGramFactors` view.  ``matvec`` is
  two GEMMs against the stacked factors (``O(mR + nnz)`` per block
  column), ``add_delta`` touches only ``x`` (``O(n)``), ``lambda_max``
  runs Lanczos through the factored matvec with the previous call's
  converged eigenvector carried across iterations as a warm start, and
  ``densify()`` — the *only* way a dense ``(m, m)`` matrix can appear —
  is lazy, cached, counted, and invalidated by ``add_delta``.  The
  decision solvers build their ``primal_y`` through it at most once, on
  demand, at result build.

Both states expose the same counters (:meth:`PsiState.stats`) which the
solvers surface in ``DecisionResult.metadata["psi_state"]`` so regression
tests can assert the matrix-free discipline: a fast-path solve with
history and certificate checks enabled performs **zero** dense ``Psi``
materialisations (``densifies == 0``) and zero ``expm_normalized`` calls
unless ``primal_y`` is actually read.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidProblemError, NumericalError
from repro.linalg.norms import top_eigenvalue
from repro.robustness.faultinject import fault_hook_array
from repro.operators.collection import ConstraintCollection
from repro.utils.random_utils import RandomState, as_generator

__all__ = ["PsiState", "DensePsiState", "ImplicitPsiState", "make_psi_state"]


class PsiState:
    """Common interface of the solver's ``Psi`` representations.

    Concrete subclasses implement the four primitives the decision solvers
    need — ``matvec``, ``add_delta``, ``lambda_max``, ``densify`` — plus
    ``oracle_psi`` (what to pass as the oracle's ``psi`` argument).  Work
    quantities are returned to the caller (never charged internally) so the
    solvers keep full control of their work–depth accounting.

    Attributes
    ----------
    x:
        The current weight vector (owned by the state; the solvers read it
        and mutate it only through :meth:`add_delta`).
    matvec_count:
        Block matvec applications performed (each ``O(m^2)`` dense /
        ``O(mR + nnz)`` implicit).
    densify_count:
        Dense ``(m, m)`` materialisations performed by :meth:`densify`
        (always 0 for the dense state, whose matrix exists by
        construction).
    lambda_max_calls / lambda_max_matvecs:
        Number of :meth:`lambda_max` calls and the total measured operator
        applications they consumed.
    """

    mode: str = "abstract"

    def __init__(self, constraints: ConstraintCollection, x0: np.ndarray) -> None:
        self.constraints = constraints
        self.dim = int(constraints.dim)
        self.x = np.asarray(x0, dtype=np.float64).copy()
        self.matvec_count = 0
        self.densify_count = 0
        self.lambda_max_calls = 0
        self.lambda_max_matvecs = 0
        self.init_work = 0.0

    # ------------------------------------------------------------------ interface
    def matvec(self, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` for the current weights."""
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def add_delta(self, delta: np.ndarray, mask: np.ndarray | None = None) -> float:
        """Apply the solver update ``x <- x + delta``; return the model work.

        ``mask`` is the qualifying set that generated ``delta`` (used by the
        dense state to charge only the active factor columns, exactly as
        the pre-``PsiState`` solvers did).
        """
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def lambda_max(self, final: bool = False) -> tuple[float, float]:
        """``(lambda_max(Psi), measured model work)`` for the current weights.

        ``final=True`` marks the one result-build (dual-rescale) call: the
        dense state then recomputes ``Psi`` fresh from ``x`` (the seed
        semantics), and the implicit state skips its warm start so the
        returned value cannot depend on how many history/certificate calls
        preceded it.
        """
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def densify(self) -> np.ndarray:
        """The dense ``(m, m)`` matrix ``Psi`` (lazy and cached when implicit)."""
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def reset_warm_start(self) -> None:
        """Drop any cross-iteration eigenvector warm start.

        The middle rung of the Lanczos demotion ladder
        (:class:`~repro.robustness.FastPathSupervisor`): a non-converged
        warm-started call is retried cold before falling back to the exact
        ``eigvalsh`` rung.  No-op for states without a warm start.
        """

    def lambda_max_exact(self, final: bool = False) -> tuple[float, float]:
        """Exact ``lambda_max`` via dense ``eigvalsh`` — the ladder's bottom rung.

        Returns ``(value, model_work)`` with the work charged at the dense
        ``O(m^3)`` eigendecomposition cost.  Always converges (up to LAPACK
        failure on non-finite input, which the supervisor treats as
        unrecoverable for this site).  ``final=True`` recomputes ``Psi``
        fresh from ``x``, matching :meth:`lambda_max`'s final semantics.
        """
        if self.dim == 0:
            return 0.0, 0.0
        self.lambda_max_calls += 1
        matrix = self.constraints.weighted_sum(self.x) if final else self.densify()
        value = float(np.linalg.eigvalsh(matrix)[-1])
        self.lambda_max_matvecs += self.dim
        return value, float(self.dim) ** 3

    def oracle_psi(self) -> np.ndarray | None:
        """The ``psi`` argument for the oracle call (``None`` when implicit)."""
        raise NotImplementedError  # pragma: no cover - subclasses implement

    def stats(self) -> dict:
        """Counter snapshot surfaced in ``DecisionResult.metadata["psi_state"]``."""
        return {
            "mode": self.mode,
            "matvecs": self.matvec_count,
            "densifies": self.densify_count,
            "lambda_max_calls": self.lambda_max_calls,
            "lambda_max_matvecs": self.lambda_max_matvecs,
        }

    def export_state(self) -> dict:
        """Checkpointable snapshot of the state (weights + counters).

        Subclasses extend this with whatever incrementally-maintained
        buffers they carry (the dense ``Psi``, the implicit warm-start
        vectors).  Arrays are copied so later ``add_delta`` calls cannot
        mutate a captured checkpoint.
        """
        return {
            "mode": self.mode,
            "x": np.array(self.x, dtype=np.float64),
            "matvec_count": int(self.matvec_count),
            "densify_count": int(self.densify_count),
            "lambda_max_calls": int(self.lambda_max_calls),
            "lambda_max_matvecs": int(self.lambda_max_matvecs),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.x = np.array(state["x"], dtype=np.float64)
        self.matvec_count = int(state["matvec_count"])
        self.densify_count = int(state["densify_count"])
        self.lambda_max_calls = int(state["lambda_max_calls"])
        self.lambda_max_matvecs = int(state["lambda_max_matvecs"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(dim={self.dim}, n={len(self.x)}, "
            f"densifies={self.densify_count})"
        )


class DensePsiState(PsiState):
    """Dense ``Psi`` maintenance — the exact-oracle / seed semantics.

    ``Psi`` is built once from the initial weights and updated with
    ``psi + weighted_sum(delta)`` per iteration, in exactly the floating
    point sequence the pre-refactor solvers used, so every fixed-seed
    regression against the seed path stays bit-for-bit.

    Parameters
    ----------
    constraints:
        The constraint collection.
    x0:
        Initial weight vector (Claim 3.3's ``1 / (n Tr[A_i])``).
    eig_rng:
        Spawned generator for the eigenvalue estimator's fallback path
        (never shared with the oracle's sketch stream).
    """

    mode = "dense"

    def __init__(
        self,
        constraints: ConstraintCollection,
        x0: np.ndarray,
        eig_rng: RandomState = None,
    ) -> None:
        super().__init__(constraints, x0)
        self._eig_rng = eig_rng
        self._psi = constraints.weighted_sum(self.x)
        self.init_work = float(constraints.total_nnz)

    def matvec(self, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` against the materialised matrix."""
        self.matvec_count += 1
        return self._psi @ block

    def add_delta(self, delta: np.ndarray, mask: np.ndarray | None = None) -> float:
        """``x += delta`` and ``Psi += weighted_sum(delta)`` (seed arithmetic)."""
        self.x = self.x + delta
        # weighted_sum routes through the packed Gram-factor view when the
        # fast oracle built one (and the factors are exact): a single GEMM
        # over the active columns only.
        self._psi = self._psi + self.constraints.weighted_sum(delta)
        n = len(self.x)
        packed_view = self.constraints.packed_fast_path
        if packed_view is not None and packed_view.total_rank > 0 and mask is not None:
            # Charge only the touched share of the factor nonzeros.
            active_cols = int(packed_view.ranks[mask].sum())
            return (
                self.constraints.total_nnz * active_cols / packed_view.total_rank + n
            )
        return float(self.constraints.total_nnz + n)

    def lambda_max(self, final: bool = False) -> tuple[float, float]:
        """Dense-matrix ``lambda_max`` (Lanczos above the tiny-``m`` cutoff).

        The work is the *measured* operator applications times the dense
        per-matvec cost ``m^2``, replacing the old pessimistic
        ``m^2 * maxiter`` constant.
        """
        if self.dim == 0:
            return 0.0, 0.0
        self.lambda_max_calls += 1
        matrix = self.constraints.weighted_sum(self.x) if final else self._psi
        info: dict = {}
        value = top_eigenvalue(matrix, rng=self._eig_rng, info=info)
        matvecs = int(info.get("matvecs", self.dim))
        self.lambda_max_matvecs += matvecs
        return float(value), float(matvecs) * self.dim * self.dim

    def densify(self) -> np.ndarray:
        """The maintained dense matrix (already materialised; not counted)."""
        return self._psi

    def oracle_psi(self) -> np.ndarray:
        """The dense ``Psi`` the exact oracle consumes."""
        return self._psi

    def export_state(self) -> dict:
        """Snapshot including the incrementally-maintained dense ``Psi``.

        ``Psi`` accumulates one ``psi + weighted_sum(delta)`` per iteration,
        so it is floating-point path dependent and must be restored bitwise
        rather than rebuilt from ``x`` (a rebuild would be the ``final=True``
        arithmetic, not the running matrix).
        """
        out = super().export_state()
        out["psi"] = np.array(self._psi, dtype=np.float64)
        return out

    def import_state(self, state: dict) -> None:
        """Restore weights, counters and the running dense ``Psi``."""
        super().import_state(state)
        self._psi = np.array(state["psi"], dtype=np.float64)


class ImplicitPsiState(PsiState):
    """Matrix-free ``Psi``: the weight vector plus the packed factor view.

    Never materialises ``Psi`` during the iteration: ``matvec`` is
    ``Q (w_cols ∘ (Q^T v))`` through the stacked factors, ``add_delta`` is
    an ``O(n)`` vector update (the engine's own incremental state is
    maintained separately by the oracle's
    :class:`~repro.linalg.taylor_gram.TaylorEngine`), and ``lambda_max``
    runs Lanczos through the factored matvec at ``O((mR + nnz) * sweeps)``
    with the previous call's converged eigenvector carried as a warm
    start.  ``densify()`` is the single deliberate escape hatch — lazy,
    cached until the next ``add_delta``, and counted so regressions can
    assert it never runs during a solve.

    Requires every operator's Gram factor to be exact (``Q Q^T = A`` by
    construction), the same gate as the collection's packed reroute —
    otherwise the factored ``Psi`` would differ from the operator-sum
    semantics of the reference path.
    """

    mode = "implicit"

    def __init__(
        self,
        constraints: ConstraintCollection,
        x0: np.ndarray,
        eig_rng: RandomState = None,
    ) -> None:
        if not constraints.has_exact_factors:
            raise InvalidProblemError(
                "the implicit PsiState requires exact Gram factors "
                "(Q Q^T = A by construction); dense/sparse eigh-derived "
                "collections must keep the dense state"
            )
        super().__init__(constraints, x0)
        self._eig_rng = as_generator(eig_rng)
        self._packed = constraints.packed()
        self.init_work = float(len(self.x))
        # Per-block-matvec model cost: two passes over the stacked factor
        # nonzeros (the Corollary 1.2 representation).
        self._matvec_work = float(max(2 * self._packed.nnz, self.dim, 1))
        self._matvec_fn = None
        self._dense: np.ndarray | None = None
        # Converged eigenvector of the previous lambda_max call: Psi moves
        # mildly per iteration, so warm-starting Lanczos cuts the sweep
        # count from dozens to a handful (convergence stays certified by
        # the Ritz residual, so a stale vector costs sweeps, not accuracy).
        self._eig_vector: np.ndarray | None = None
        # Start vector for the one final (dual-rescale) call, drawn at
        # construction: ARPACK's internal starting residual advances its
        # global seed state between calls, so relying on it would make the
        # reported certificate depend on how many history/certificate-check
        # calls ran before result build.  A vector fixed per run keeps the
        # final estimate deterministic and call-history independent while
        # retaining the random start's overlap guarantee.
        self._final_v0: np.ndarray | None = (
            self._eig_rng.standard_normal(self.dim) if self.dim else None
        )

    def _apply(self):
        if self._matvec_fn is None:
            base = self._packed.matvec_fn(self.x)

            def counting(block: np.ndarray) -> np.ndarray:
                self.matvec_count += 1
                out = base(block)
                fault_hook_array("psi_state.matvec", out)
                if not np.all(np.isfinite(out)):
                    # Catch the corruption here, attributed, before ARPACK
                    # turns it into an opaque convergence failure.
                    raise NumericalError(
                        "implicit Psi matvec produced non-finite output",
                        site="psi_state.matvec",
                    )
                return out

            self._matvec_fn = counting
        return self._matvec_fn

    def matvec(self, block: np.ndarray) -> np.ndarray:
        """``Psi @ block`` through the packed factors — two GEMMs, no ``Psi``."""
        return self._apply()(block)

    def add_delta(self, delta: np.ndarray, mask: np.ndarray | None = None) -> float:
        """``x += delta``; invalidates the matvec closure and dense cache."""
        self.x = self.x + delta
        self._matvec_fn = None
        self._dense = None
        return float(len(self.x))

    def replace_weights(self, x: np.ndarray) -> float:
        """Replace the weight vector wholesale (the batched solver's update).

        Equivalent to :meth:`add_delta` with ``delta = x - self.x`` already
        applied by the caller: ``solve_many`` performs the multiplicative
        update for the whole batch in one stacked operation and hands each
        state its updated row.  Invalidates the matvec closure and the dense
        cache exactly like :meth:`add_delta` and returns the same ``O(n)``
        model work charge.
        """
        self.x = x
        self._matvec_fn = None
        self._dense = None
        return float(len(self.x))

    def lambda_max(self, final: bool = False) -> tuple[float, float]:
        """Warm-started Lanczos through the factored matvec.

        ``final=True`` (the one dual-rescale call at result build) ignores
        the warm vector and starts from a vector drawn once at state
        construction, so the returned value is independent of how many
        history/certificate-check calls ran before it — turning history
        collection on cannot perturb the reported certificate.
        """
        if self.dim == 0:
            return 0.0, 0.0
        self.lambda_max_calls += 1
        info: dict = {}
        value, vector = top_eigenvalue(
            self._apply(),
            dim=self.dim,
            v0=self._final_v0 if final else self._eig_vector,
            rng=self._eig_rng,
            info=info,
            return_vector=True,
        )
        if not final and vector is not None:
            self._eig_vector = vector
        matvecs = int(info.get("matvecs", 0))
        self.lambda_max_matvecs += matvecs
        return float(value), float(matvecs) * self._matvec_work

    def reset_warm_start(self) -> None:
        """Forget the carried eigenvector so the next Lanczos call starts cold."""
        self._eig_vector = None

    def densify(self) -> np.ndarray:
        """Materialise ``Psi`` once, on demand (cached until ``add_delta``)."""
        if self._dense is None:
            self._dense = self.constraints.weighted_sum(self.x)
            self.densify_count += 1
        return self._dense

    def oracle_psi(self) -> None:
        """The fast oracle reads ``x`` only — no dense argument is built."""
        return None

    def export_state(self) -> dict:
        """Snapshot including the Lanczos warm-start vectors.

        ``_eig_vector`` (the carried converged eigenvector) and
        ``_final_v0`` (the per-run dual-rescale start vector, drawn once at
        construction) both feed future ``lambda_max`` calls, so a resumed
        run must replay them exactly.  The matvec closure and dense cache
        are derived data and are rebuilt on demand.
        """
        out = super().export_state()
        out["eig_vector"] = (
            None if self._eig_vector is None
            else np.array(self._eig_vector, dtype=np.float64)
        )
        out["final_v0"] = (
            None if self._final_v0 is None
            else np.array(self._final_v0, dtype=np.float64)
        )
        return out

    def import_state(self, state: dict) -> None:
        """Restore weights, counters and warm-start vectors; drop caches."""
        super().import_state(state)
        vec = state.get("eig_vector")
        self._eig_vector = None if vec is None else np.array(vec, dtype=np.float64)
        v0 = state.get("final_v0")
        self._final_v0 = None if v0 is None else np.array(v0, dtype=np.float64)
        self._matvec_fn = None
        self._dense = None


def make_psi_state(
    constraints: ConstraintCollection,
    x0: np.ndarray,
    oracle=None,
    eig_rng: RandomState = None,
    mode: str = "auto",
) -> PsiState:
    """Pick the ``Psi`` representation for a decision-solver run.

    Parameters
    ----------
    constraints, x0, eig_rng:
        Forwarded to the chosen state.
    oracle:
        The solver's oracle.  ``mode="auto"`` selects the implicit state
        exactly when the oracle declares it never consumes a dense ``psi``
        (``needs_dense_psi = False``, e.g.
        :class:`~repro.core.dotexp.FastDotExpOracle`), it carries a packed
        factor view, and the collection's factors are exact; every other
        combination — the exact oracle, the ``packed=False`` reference
        path, eigh-derived factors, user oracles without the attribute —
        keeps the dense seed semantics.
    mode:
        ``"auto"`` (default), ``"dense"``, or ``"implicit"`` (which raises
        when the collection's factors are inexact).
    """
    if mode not in ("auto", "dense", "implicit"):
        raise InvalidProblemError(
            f"unknown psi_state mode {mode!r}; expected 'auto', 'dense' or 'implicit'"
        )
    if mode == "auto":
        implicit_ok = (
            oracle is not None
            and getattr(oracle, "needs_dense_psi", True) is False
            and getattr(oracle, "packed", None) is not None
            and constraints.has_exact_factors
        )
        mode = "implicit" if implicit_ok else "dense"
    if mode == "implicit":
        return ImplicitPsiState(constraints, x0, eig_rng=eig_rng)
    return DensePsiState(constraints, x0, eig_rng=eig_rng)
