"""The full (1+ε)-approximate positive-SDP optimizer (``approxPSDP``).

Theorem 1.1 / Lemma 2.2: a positive SDP can be approximated to relative
error ``eps`` with ``O(log n)`` calls to the ε-decision problem by binary
searching over the objective value.  This module implements that outer
loop:

1. normalize the input program to the Figure 2 form (Appendix A,
   :func:`repro.core.normalize.normalize_sdp`) — skipped when the caller
   already provides a :class:`~repro.core.problem.NormalizedPackingSDP`;
2. compute crude lower/upper bounds on the shared optimum ``OPT``
   (:meth:`NormalizedPackingSDP.value_bounds`), plus an explicit feasible
   covering matrix realising the upper bound so the search always has a
   primal certificate in hand;
3. repeatedly pick the geometric midpoint ``theta`` of the current bracket,
   scale the constraints by ``theta`` (so the question becomes "is
   ``OPT >= theta``?"), and run :func:`~repro.core.decision.decision_psdp`;
4. use the *measured* certificate of whichever side the decision solver
   returned to shrink the bracket: a dual vector ``x`` with measured
   ``lambda_max`` gives the certified lower bound ``theta ||x||_1 /
   lambda_max``; a primal matrix with measured ``min_i A_i . Y = mu`` gives
   the certified upper bound ``theta / mu``;
5. stop when the bracket's relative width is at most ``eps``.

Because every bracket update is justified by an explicitly verified
certificate, the outer loop is correct even when the decision solver uses
early exits or the randomized fast oracle.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import InvalidProblemError, SolverError
from repro.instrumentation.counters import OracleCounters
from repro.operators.collection import ConstraintCollection
from repro.parallel.workdepth import WorkDepthTracker
from repro.core.certificates import verify_dual, verify_primal
from repro.core.decision import DecisionOptions, decision_psdp
from repro.core.normalize import NormalizationMap, normalize_sdp
from repro.core.problem import NormalizedPackingSDP, PositiveSDP
from repro.core.result import DecisionResult, SolveResult


@dataclass
class SolverOptions:
    """Options of the outer binary-search solver.

    Attributes
    ----------
    epsilon:
        Target relative accuracy of the returned bounds.
    decision_epsilon:
        Accuracy passed to each decision call (defaults to ``epsilon / 4``,
        which leaves room for the decision solver's own constant-factor
        slack).
    max_decision_calls:
        Safety cap on the number of decision invocations.
    decision_options:
        Template :class:`~repro.core.decision.DecisionOptions` applied to
        every decision call (the epsilon field is overridden per call).
    """

    epsilon: float = 0.2
    decision_epsilon: float | None = None
    max_decision_calls: int = 60
    decision_options: DecisionOptions = field(default_factory=DecisionOptions)


def _initial_primal_certificate(constraints: ConstraintCollection) -> tuple[np.ndarray, float]:
    """A feasible covering matrix and its objective value.

    ``Y0 = sum_i B_i / ||B_i||_F^2`` satisfies ``B_i . Y0 >= B_i . B_i /
    ||B_i||_F^2 = 1`` for every ``i`` (all cross terms are non-negative
    because trace products of PSD matrices are non-negative), so it is
    always feasible; its trace gives an explicit upper bound on ``OPT``.
    """
    dim = constraints.dim
    y0 = np.zeros((dim, dim), dtype=np.float64)
    for op in constraints:
        dense = op.to_dense()
        fro2 = float(np.sum(dense * dense))
        if fro2 <= 0:
            raise InvalidProblemError("constraint matrices must be nonzero")
        y0 += dense / fro2
    return y0, float(np.trace(y0))


def approx_psdp(
    problem: PositiveSDP | NormalizedPackingSDP,
    epsilon: float | None = None,
    options: SolverOptions | None = None,
    **decision_overrides: Any,
) -> SolveResult:
    """Compute a (1+ε)-approximation of a positive SDP (Theorem 1.1).

    Parameters
    ----------
    problem:
        Either a general :class:`~repro.core.problem.PositiveSDP` (which is
        normalized internally) or an already-normalized
        :class:`~repro.core.problem.NormalizedPackingSDP`.
    epsilon:
        Target relative accuracy (overrides ``options.epsilon``).
    options:
        Solver options.
    decision_overrides:
        Extra keyword arguments forwarded to every decision call (e.g.
        ``oracle="fast"``, ``strict=True``, ``collect_history=True``) —
        any field of :class:`~repro.core.decision.DecisionOptions`.  An
        already-constructed oracle object cannot be reused across calls
        here because each decision call re-scales the constraints; use
        string oracle kinds (their packed/blocked fast paths are on by
        default) and ``oracle_eps`` to tune accuracy.

    Returns
    -------
    SolveResult
        Certified two-sided bounds on the optimum with feasible primal and
        dual solutions in normalized (and, when applicable, original)
        variables.
    """
    opts = options or SolverOptions()
    if epsilon is not None:
        # Copy before overriding: the caller's options object must not be
        # silently mutated across calls.
        opts = dataclasses.replace(opts, epsilon=float(epsilon))
    eps = opts.epsilon
    if not (0 < eps < 1):
        raise InvalidProblemError(f"epsilon must be in (0, 1), got {eps}")
    eps_dec = opts.decision_epsilon if opts.decision_epsilon is not None else min(eps / 4.0, 0.2)

    mapping: NormalizationMap | None = None
    if isinstance(problem, PositiveSDP):
        normalized, mapping = normalize_sdp(problem)
    elif isinstance(problem, NormalizedPackingSDP):
        normalized = problem
    else:
        raise InvalidProblemError(
            f"expected PositiveSDP or NormalizedPackingSDP, got {type(problem)!r}"
        )

    constraints = normalized.constraints
    lower, upper = normalized.value_bounds()

    # Explicit certificates backing the initial bracket.
    best_primal, primal_value = _initial_primal_certificate(constraints)
    upper = min(upper, primal_value)
    norms = constraints.spectral_norms()
    best_index = int(np.argmax(1.0 / norms))
    best_dual = np.zeros(len(constraints))
    best_dual[best_index] = 1.0 / norms[best_index]
    lower = max(lower, float(best_dual.sum()))
    if lower > upper:
        upper = lower

    total_counters = OracleCounters()
    total_tracker = WorkDepthTracker()
    decision_results: list[DecisionResult] = []
    total_iterations = 0
    calls = 0
    # The certified bracket [lower, upper] only moves when an explicitly
    # verified certificate backs the move; the search bracket below steers the
    # choice of theta and may also react to unverified decision outcomes.
    search_lo, search_hi = lower, upper

    while upper / lower > 1.0 + eps and calls < opts.max_decision_calls:
        calls += 1
        if search_hi / search_lo <= 1.0 + eps / 4.0:
            search_lo, search_hi = lower, upper
        theta = math.sqrt(search_lo * search_hi)
        scaled = normalized.scaled(theta)
        dec_opts = DecisionOptions(**{**opts.decision_options.__dict__, **decision_overrides})
        dec_opts.epsilon = eps_dec
        result = decision_psdp(scaled, options=dec_opts)
        decision_results.append(result)
        total_iterations += result.iterations
        total_counters.merge(result.counters)
        if result.work_depth is not None:
            total_tracker.work += result.work_depth.work
            total_tracker.depth += result.work_depth.depth
            total_tracker.events += result.work_depth.events

        # Dual side: x feasible for the theta-scaled instance with measured
        # lambda_max -> theta * ||x||_1 / lambda_max is a certified lower bound.
        if result.dual_x is not None and result.dual_value > 0:
            candidate = theta * result.dual_x / max(result.dual_lambda_max, 1.0)
            cert = verify_dual(constraints, candidate)
            if cert.feasible and cert.value > lower:
                lower = cert.value
                best_dual = candidate
            elif not cert.feasible and cert.scaled_value > lower:
                lower = cert.scaled_value
                best_dual = candidate / max(cert.lambda_max, 1.0)
        # Primal side: Y with measured min dot mu for the scaled instance ->
        # theta * Y / mu is feasible for the unscaled instance with value
        # theta * Tr[Y] / mu, a certified upper bound.
        if result.primal_y is not None and np.isfinite(result.primal_min_dot) and result.primal_min_dot > 0:
            candidate_y = theta * result.primal_y / result.primal_min_dot
            cert_p = verify_primal(constraints, candidate_y)
            value = cert_p.scaled_value if not cert_p.feasible else cert_p.value
            if np.isfinite(value) and lower <= value < upper:
                upper = value
                best_primal = candidate_y if cert_p.feasible else candidate_y / cert_p.min_dot

        # Steer the next theta with the (unverified) decision outcome; the
        # certified bracket above is unaffected by this heuristic.
        if result.is_dual:
            search_lo = min(max(search_lo, theta), search_hi)
        else:
            search_hi = max(min(search_hi, theta), search_lo)
        search_lo = max(search_lo, lower)
        search_hi = min(max(search_hi, search_lo), upper)

    if upper / lower > 1.0 + eps:
        raise SolverError(
            f"binary search did not reach the target accuracy within "
            f"{opts.max_decision_calls} decision calls: bracket [{lower:.6g}, {upper:.6g}]"
        )

    original_dual = None
    original_primal = None
    if mapping is not None:
        original_dual = mapping.dual_to_original(best_dual)
        original_primal = mapping.primal_to_original(best_primal)

    return SolveResult(
        optimum_lower=float(lower),
        optimum_upper=float(upper),
        dual_x=best_dual,
        primal_y=best_primal,
        original_dual=original_dual,
        original_primal=original_primal,
        decision_calls=calls,
        total_iterations=total_iterations,
        epsilon=eps,
        decision_results=decision_results,
        counters=total_counters,
        work_depth=total_tracker.report(),
        metadata={"decision_epsilon": eps_dec},
    )
