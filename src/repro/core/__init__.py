"""The paper's core contribution: the width-independent positive-SDP solver.

Public entry points:

* :func:`repro.core.solver.approx_psdp` — the full (1+ε)-approximate
  optimizer (Theorem 1.1): normalization, binary search, certified bounds.
* :func:`repro.core.decision.decision_psdp` — the ε-decision solver
  (Algorithm 3.1, Theorem 3.1).
* :func:`repro.core.dotexp.big_dot_exp` — the fast exponential-dot-product
  primitive (Theorem 4.1).
* :class:`repro.core.problem.PositiveSDP` /
  :class:`repro.core.problem.NormalizedPackingSDP` — the problem classes.
"""

from repro.core.problem import PositiveSDP, NormalizedPackingSDP
from repro.core.normalize import normalize_sdp, apply_trace_cap, NormalizationMap, TraceCapResult
from repro.core.result import DecisionOutcome, DecisionResult, SolveResult, SolveStatus
from repro.core.mmw import MatrixMultiplicativeWeights
from repro.core.decision import DecisionOptions, DecisionParameters, decision_psdp
from repro.core.batch import instance_rng, solve_many
from repro.core.checkpoint import SolverCheckpoint, capture_checkpoint, restore_checkpoint
from repro.core.decision_phased import decision_psdp_phased
from repro.core.dotexp import (
    ExactDotExpOracle,
    FastDotExpOracle,
    OracleOutput,
    big_dot_exp,
    make_oracle,
)
from repro.core.psi_state import (
    DensePsiState,
    ImplicitPsiState,
    PsiState,
    make_psi_state,
)
from repro.core.certificates import (
    DualCertificate,
    PrimalCertificate,
    verify_dual,
    verify_primal,
    approximation_ratio,
)
from repro.core.solver import SolverOptions, approx_psdp

__all__ = [
    "PositiveSDP",
    "NormalizedPackingSDP",
    "normalize_sdp",
    "apply_trace_cap",
    "NormalizationMap",
    "TraceCapResult",
    "DecisionOutcome",
    "DecisionResult",
    "SolveResult",
    "SolveStatus",
    "MatrixMultiplicativeWeights",
    "DecisionOptions",
    "DecisionParameters",
    "decision_psdp",
    "decision_psdp_phased",
    "instance_rng",
    "solve_many",
    "SolverCheckpoint",
    "capture_checkpoint",
    "restore_checkpoint",
    "ExactDotExpOracle",
    "FastDotExpOracle",
    "OracleOutput",
    "big_dot_exp",
    "make_oracle",
    "PsiState",
    "DensePsiState",
    "ImplicitPsiState",
    "make_psi_state",
    "DualCertificate",
    "PrimalCertificate",
    "verify_dual",
    "verify_primal",
    "approximation_ratio",
    "SolverOptions",
    "approx_psdp",
]
