"""The exponential-dot-product oracle (Section 4, Theorem 4.1).

Each iteration of the decision solver needs the vector of normalized trace
products ``(exp(Psi) . A_i) / Tr[exp(Psi)]`` for every constraint.  Two
interchangeable oracle implementations are provided:

* :class:`ExactDotExpOracle` — one symmetric eigendecomposition of ``Psi``
  per call, then ``n`` dense trace products.  Cost ``O(m^3 + n m^2)`` work;
  this is the reference used for correctness.
* :class:`FastDotExpOracle` — the Theorem 4.1 algorithm ``bigDotExp``:
  writes ``exp(Phi) . A_i = || exp(Phi/2) Q_i ||_F^2`` for factorized
  constraints ``A_i = Q_i Q_i^T``, approximates ``exp(Phi/2)`` with the
  truncated Taylor polynomial of Lemma 4.2, and sketches the left factor
  with a Johnson–Lindenstrauss Gaussian matrix so that only
  ``O(eps^{-2} log m)`` rows ever pass through the polynomial.  Work is
  nearly linear in ``nnz(Phi) + q`` per call; the trace ``Tr[exp(Phi)]``
  comes from the transformed sketch block at no extra cost when the sketch
  genuinely reduces (``|| Pi exp(Phi/2) ||_F^2`` read directly off the
  block), and from the structured estimator of
  :mod:`repro.linalg.trace_estimation` in the degenerate-sketch regime —
  no identity block, dense or pseudo-factor, enters the polynomial on the
  default path; only the legacy sequence-of-factors path still appends an
  identity pseudo-factor to get it.

The standalone function :func:`big_dot_exp` exposes the Theorem 4.1
primitive directly (given ``Phi``, a norm bound ``kappa``, and the factors),
which is what the E3/E8 benchmarks exercise.

Packed fast path
----------------
``big_dot_exp`` accepts either a plain sequence of factors (the reference
per-factor loop, kept bit-for-bit as the correctness baseline) or a
:class:`repro.operators.packed.PackedGramFactors` view.  With the packed
view the estimate pass ``|| (Pi exp(Phi/2)) Q_i ||_F^2`` for *all* ``n``
constraints is one ``(d, m) x (m, R)`` GEMM followed by a segment sum over
the column blocks — the Python loop over factors disappears.  The trace
normalisation ``Tr[exp(Phi)] ≈ || Pi exp(Phi/2) ||_F^2`` is read directly
off the already-computed transformed sketch block (``Q = I`` makes the
estimate GEMM the identity), so the packed path never materialises the
dense ``np.eye(m)`` pseudo-factor the reference path appends.

:class:`FastDotExpOracle` uses the packed view by default (``packed=True``):
its ``Psi``-matvec becomes ``Q (w ∘ (Q^T v))`` — two GEMMs over the stacked
factor matrix instead of an ``n``-term loop — and its estimates use the
packed pass above.  In the work–depth model both paths charge identical
``O(q)``-work / polylog-depth costs; ``benchmarks/bench_e11_packed.py``
measures the wall-clock difference.

Rank-adaptive Taylor engine
---------------------------
The Taylor apply itself — pushing the sketch block through the Lemma 4.2
polynomial — dominates the oracle once the packed estimates are single
GEMMs, especially in the degenerate-sketch regime (``m ≲ 1000`` at tight
eps, where the JL dimension reaches ``m`` and the whole identity passes
through the polynomial).  With ``blocked=True`` (default) the packed
oracle evaluates the polynomial through a fused block kernel whose
representation is picked per factor stack by
:func:`~repro.linalg.taylor_gram.select_taylor_mode`: the ``R x R``
Gram-space recurrence when ``2R <= 1.1 m`` (the hysteresis-margined gate;
per-term cost ``R^2 s``), a
one-time densification of ``Psi`` (``m^2 s``), a sparse-CSR ``Psi``
accumulated with a reusable symbolic pattern (``nnz(Psi) s``), or the
factor recurrence (``2 nnz(Q) s``) — replacing PR 2's single ``2R > m``
densification rule.  With ``engine=True`` (default) the kernels come from
a cached :class:`~repro.linalg.taylor_gram.TaylorEngine` that maintains
the weight-dependent state (the Gram matrix ``G``, the CSR values, the
densified ``Psi``, the scaled stack) across oracle calls by updating only
the weight coordinates the solver actually changed, charging the backend
work proportional to the active columns.  Every representation evaluates
the identical polynomial, so ``blocked=False`` (the per-term matvec
recurrence) and ``engine=False`` (the PR-2 per-call blocked kernel)
differ only in floating-point rounding; all are kept so the regression
tests can certify identical decisions.  Work–depth charges are
*representation-invariant*: the model bills the factored Corollary 1.2
costs (the paper algorithm's work) no matter which kernel representation
executes, so reported work and depth stay comparable across every fast
path and the reference loops.  The Gram mode performs strictly less
arithmetic than the billed factor recurrence; the sparse-``Psi`` and
throughput-driven densified modes may perform *more* hardware madds than
the model bills — by at most the policy's
:data:`~repro.linalg.taylor_gram.SPARSE_GEMM_DISCOUNT` factor — whenever
that is measurably faster in wall clock, the same madds-for-throughput
trade dense BLAS kernels already make internally.

``big_dot_exp`` accepts a kernel directly as ``phi``; matrix-valued ``phi``
with a packed factor view is routed through a kernel automatically, while
matvec-callable ``phi`` and plain factor sequences keep the reference
per-term recurrence bit-for-bit.

Structured trace estimation
---------------------------
At tight ``eps`` the JL dimension reaches ``m`` (the default for every
``m`` below several thousand), the sketch degenerates to the identity, and
the legacy path pushed the full ``(m, m)`` identity through the polynomial
once per call to read both the estimates and the trace off it.  The
default kernel path now reads the estimates from the polynomial applied to
the ``(m, R)`` factor stack itself (mathematically identical — the
identity "sketch" is a no-op) and the trace from a structured
:class:`~repro.linalg.trace_estimation.TraceEstimator`: the exact
``R x R`` Gram-spectrum evaluation when ``2R`` is within the hysteresis
margin of ``m``, the exact deflated block-Krylov projection of the
already-transformed factor block while ``R`` stays meaningfully below
``m``, a certified Hutchinson sampler on request, and the legacy identity
push where ``R ~ m`` makes it genuinely optimal.  The
``identity_taylor_applies`` counter records every ``(m, m)`` identity that
does pass through the polynomial; the structured paths keep it at zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.instrumentation.counters import OracleCounters
from repro.linalg.expm import expm_normalized
from repro.linalg.norms import spectral_norm_power
from repro.linalg.sketching import gaussian_sketch, jl_dimension
from repro.linalg.taylor import taylor_degree, taylor_expm_apply
from repro.linalg.taylor_blocked import BlockedTaylorKernel
from repro.linalg.taylor_gram import GramTaylorKernel, TaylorEngine
from repro.linalg.trace_estimation import TraceEstimator
from repro.operators.collection import ConstraintCollection
from repro.operators.packed import PackedGramFactors, segment_sums
from repro.backend import get_array_backend
from repro.parallel.backends import ExecutionBackend
from repro.utils.random_utils import RandomState, as_generator


#: Mass of the fresh random direction blended into the warm-started power
#: iteration vector each call.  A pure warm start can lock onto a stale
#: eigendirection — if the solver's weight updates rotate ``Psi``'s dominant
#: eigenvector away from the previous one, the Rayleigh-quotient stopping
#: rule fires while the new dominant component (overlap ~machine noise) is
#: still growing, underestimating ``||Psi||`` and hence the Lemma 4.2
#: degree.  Mixing in a fresh Gaussian restores the random start's
#: ``Omega(1/sqrt(m))`` overlap with *every* eigendirection at the price of
#: a few extra iterations when the direction is unchanged.
NORM_RESTART_MIX = 0.05


@dataclass
class OracleOutput:
    """Result of one oracle call.

    Attributes
    ----------
    values:
        The vector ``(exp(Psi) . A_i) / Tr[exp(Psi)]`` (length ``n``).
    trace:
        The (possibly approximate, possibly rescaled) trace ``Tr[exp(Psi)]``
        used for the normalization.  For the exact oracle this is reported
        as 1.0 because the normalized density matrix is formed directly.
    work:
        Model work units charged for this call.
    """

    values: np.ndarray
    trace: float
    work: float


class DotExpOracle(Protocol):
    """Protocol for per-iteration oracles used by the decision solver.

    The solver supplies its weight matrix ``psi`` and the dual iterate
    ``x`` that generated it (``psi = sum_i x_i A_i``).  The exact oracle
    consumes ``psi`` directly; the fast (Theorem 4.1) oracle rebuilds the
    same operator from ``x`` through the constraint factors so it never
    touches a dense ``m x m`` matrix — it accepts ``psi=None``, and
    declares that through ``needs_dense_psi = False`` so the solver's
    matrix-free :class:`~repro.core.psi_state.ImplicitPsiState` can skip
    maintaining (or ever building) the dense matrix.  Oracles without the
    attribute are assumed to need ``psi`` (the solver then keeps the dense
    seed path).  When both arguments are given they must describe the same
    solver state.
    """

    counters: OracleCounters
    #: Whether the oracle consumes the dense ``psi`` argument.  ``False``
    #: lets the decision solvers run matrix-free and pass ``psi=None``.
    needs_dense_psi: bool

    def __call__(
        self, psi: np.ndarray | None, x: np.ndarray
    ) -> OracleOutput:  # pragma: no cover
        ...


def big_dot_exp(
    phi,
    factors: Sequence[np.ndarray | sp.spmatrix] | PackedGramFactors,
    kappa: float | None = None,
    eps: float = 0.1,
    rng: RandomState = None,
    sketch_constant: float = 8.0,
    use_sketch: bool = True,
    counters: OracleCounters | None = None,
    dim: int | None = None,
    return_trace: bool = False,
    trace_estimator=None,
) -> np.ndarray | tuple[np.ndarray, float]:
    """Approximate all ``exp(phi) . (Q_i Q_i^T)`` (Theorem 4.1's ``bigDotExp``).

    Parameters
    ----------
    phi:
        Symmetric PSD matrix to exponentiate (dense or sparse), a matvec
        callable ``v -> phi @ v`` (in which case ``dim`` is required and the
        matrix is never materialised — the setting of Corollary 1.2 where
        ``Psi = sum_i x_i Q_i Q_i^T`` is applied through the factors), or a
        Taylor kernel over ``phi`` — a
        :class:`~repro.linalg.taylor_blocked.BlockedTaylorKernel` or a
        :class:`~repro.linalg.taylor_gram.GramTaylorKernel`, whichever the
        rank-adaptive engine selected.
        Matrix inputs combined with packed ``factors`` are routed through a
        blocked kernel automatically; callables keep the per-term reference
        recurrence.
    factors:
        The Gram factors ``Q_i`` of the constraint matrices, each of shape
        ``(m, r_i)`` — either a plain sequence (reference per-factor loop)
        or a :class:`~repro.operators.packed.PackedGramFactors` view (the
        single-GEMM batched path).
    kappa:
        Upper bound on ``max(1, ||phi||_2)``; estimated by power iteration
        when omitted.
    eps:
        Relative accuracy of the returned approximations.  Half the budget
        goes to the Taylor truncation (Lemma 4.2) and half to the JL sketch.
    rng:
        Randomness source for the sketch.
    sketch_constant:
        Multiplier in the JL dimension rule (exposed for experiment E8).
    use_sketch:
        When ``False`` the JL step is skipped and the polynomial is applied
        to the factors directly (still avoids the eigendecomposition); used
        to separate the two error sources in tests and E3.
    counters:
        Optional operation counters to update.
    return_trace:
        When ``True`` the estimate of ``Tr[exp(phi)] = exp(phi) . I`` is
        returned alongside the values.  On the packed sketch path with a
        genuinely reducing sketch this is read directly off the transformed
        sketch block (``|| Pi exp(phi/2) ||_F^2``) at no extra cost.  In
        the degenerate-sketch regime (JL dimension at least ``dim``) and on
        the ``use_sketch=False`` path, a structured ``trace_estimator``
        (when provided) supplies it without any ``(m, m)`` identity ever
        entering the polynomial; without one, the identity block is pushed
        through the polynomial (counted under the
        ``identity_taylor_applies`` counter).  Only the legacy
        sequence-of-factors path still appends an identity pseudo-factor.
    trace_estimator:
        Optional :class:`~repro.linalg.trace_estimation.TraceEstimator`
        (already :meth:`~repro.linalg.trace_estimation.TraceEstimator.bind`-ed
        to the weights that generated ``phi``).  Engaged only where the
        trace would otherwise require a full-identity Taylor apply — the
        packed kernel path in the degenerate-sketch regime and the
        ``use_sketch=False`` packed path; the Theorem 4.1 estimates are
        then read from the polynomial applied to the factor stack itself
        (an ``(m, R)`` block — mathematically identical, since the
        identity "sketch" is a no-op) and the trace comes from the
        estimator's exact Gram-spectrum / deflated projection or its
        certified Hutchinson sampler.

    Returns
    -------
    numpy.ndarray or (numpy.ndarray, float)
        Vector of approximations to ``exp(phi) . Q_i Q_i^T``, plus the trace
        estimate when ``return_trace`` is set.
    """
    if eps <= 0 or eps >= 1:
        raise InvalidProblemError(f"eps must be in (0, 1), got {eps}")
    packed = factors if isinstance(factors, PackedGramFactors) else None
    if packed is None and not factors:
        raise InvalidProblemError("factors must be a non-empty sequence")
    kernel = phi if isinstance(phi, (BlockedTaylorKernel, GramTaylorKernel)) else None
    phi_is_callable = (
        kernel is None
        and callable(phi)
        and not isinstance(phi, np.ndarray)
        and not sp.issparse(phi)
    )
    if kernel is not None:
        dim = kernel.dim
    elif phi_is_callable:
        if dim is None:
            raise InvalidProblemError("dim is required when phi is a matvec callable")
    else:
        dim = phi.shape[0]
        if phi.shape != (dim, dim):
            raise InvalidProblemError(f"phi must be square, got shape {phi.shape}")
        if packed is not None:
            # Matrix input on the packed path: run the fused blocked
            # recurrence (same polynomial, fewer per-term passes).
            kernel = BlockedTaylorKernel.from_matrix(phi)

    if kappa is None:
        kappa = max(
            1.0,
            spectral_norm_power(
                kernel.matvec if kernel is not None else phi, dim=dim, rng=rng
            )
            * 1.05,
        )
    kappa = max(1.0, float(kappa))

    eps_taylor = eps / 2.0
    eps_sketch = eps / 2.0
    degree = taylor_degree(kappa / 2.0, eps_taylor)

    if counters is not None:
        counters.record_call()

    if use_sketch:
        # The JL dimension rule can exceed the ambient dimension for small m
        # or very small eps; sketching is then pointless (and noisier), so
        # fall back to the identity "sketch", which makes the left factor
        # exact and leaves only the Taylor truncation error.
        sketch_dim = min(jl_dimension(dim, eps_sketch, constant=sketch_constant), dim)
        if (
            sketch_dim >= dim
            and return_trace
            and packed is not None
            and kernel is not None
            and trace_estimator is not None
            and trace_estimator.structured
        ):
            # Degenerate-sketch regime with a structured trace estimator:
            # the identity "sketch" is a mathematical no-op (the left
            # factor is exact), so this call is exactly the
            # ``use_sketch=False`` packed path below — the Theorem 4.1
            # estimates read from the polynomial applied to the (m, R)
            # factor stack, the trace from the estimator, no full-identity
            # Taylor apply.  Fall through to that block instead of
            # duplicating it.
            use_sketch = False
        elif sketch_dim >= dim:
            sketch = np.eye(dim)
            if counters is not None:
                # The (m, m) identity is about to pass through the Taylor
                # polynomial — the counter the structured estimator's
                # regression tests assert stays at zero on its grids.
                counters.add("identity_taylor_applies")
        else:
            sketch = gaussian_sketch(sketch_dim, dim, rng=as_generator(rng))

    if use_sketch:
        # Rows of (Pi exp(phi/2)) = (exp(phi/2) Pi^T)^T because phi is symmetric.
        if kernel is not None:
            transformed = kernel.apply(sketch.T, degree, scale=0.5).T
        else:
            transformed = taylor_expm_apply(
                _half_matvec(phi), sketch.T.copy(), degree
            ).T
        if counters is not None:
            counters.matvecs += sketch_dim * (degree - 1)
        if packed is not None:
            results = packed.estimates_from_transform(transformed)
            if counters is not None:
                # One GEMM covers every constraint, but the count keeps the
                # reference path's per-constraint unit so counter reports
                # stay comparable across packed=True/False (the aggregate
                # nonzeros touched are identical).
                counters.factor_passes += len(packed) + (1 if return_trace else 0)
                counters.add("packed_estimate_gemms")
            if return_trace:
                # exp(phi) . I estimated from the already-computed block:
                # || Pi exp(phi/2) I ||_F^2 = || transformed ||_F^2.
                return results, float(np.sum(transformed * transformed))
            return results
        seq = list(factors) + ([np.eye(dim)] if return_trace else [])
        results = np.empty(len(seq), dtype=np.float64)
        for idx, factor in enumerate(seq):
            if sp.issparse(factor):
                sketched = np.asarray(transformed @ factor)
            else:
                sketched = transformed @ np.asarray(factor, dtype=np.float64)
            results[idx] = float(np.sum(sketched * sketched))
            if counters is not None:
                counters.factor_passes += 1
        if return_trace:
            return results[:-1], float(results[-1])
        return results

    if packed is not None:
        stacked = packed.dense_columns()
        if kernel is not None:
            transformed = kernel.apply(stacked, degree, scale=0.5)
        else:
            transformed = taylor_expm_apply(_half_matvec(phi), stacked, degree)
        col_vals = np.einsum("ij,ij->j", transformed, transformed)
        results = segment_sums(col_vals, packed.offsets)
        if counters is not None:
            counters.matvecs += packed.total_rank * (degree - 1)
            counters.factor_passes += len(packed)
            counters.add("packed_estimate_gemms")
        if return_trace:
            if (
                kernel is not None
                and trace_estimator is not None
                and trace_estimator.structured
            ):
                # `transformed` is already the polynomial applied to the
                # factor stack — exactly the block the deflated estimator
                # projects, so the structured trace costs no extra apply.
                estimate = trace_estimator.estimate(
                    kernel, degree, scale=0.5, transformed_factors=transformed
                )
                if counters is not None:
                    counters.matvecs += estimate.probes * (degree - 1)
                    counters.add("structured_trace_estimates")
                    if estimate.mode == "identity":
                        # Probe budget exhausted: the estimator ran the
                        # exact identity push, so charge its columns too.
                        counters.matvecs += dim * (degree - 1)
                        counters.factor_passes += 1
                        counters.add("identity_taylor_applies")
                return results, float(estimate.value)
            if kernel is not None:
                eye_transformed = kernel.apply(np.eye(dim), degree, scale=0.5)
            else:
                eye_transformed = taylor_expm_apply(_half_matvec(phi), np.eye(dim), degree)
            if counters is not None:
                counters.matvecs += dim * (degree - 1)
                counters.factor_passes += 1
                counters.add("identity_taylor_applies")
            return results, float(np.sum(eye_transformed * eye_transformed))
        return results

    seq = list(factors) + ([np.eye(dim)] if return_trace else [])
    results = np.empty(len(seq), dtype=np.float64)
    for idx, factor in enumerate(seq):
        dense_factor = factor.toarray() if sp.issparse(factor) else np.asarray(factor, dtype=np.float64)
        if kernel is not None:
            transformed = kernel.apply(dense_factor, degree, scale=0.5)
        else:
            transformed = taylor_expm_apply(_half_matvec(phi), dense_factor, degree)
        results[idx] = float(np.sum(transformed * transformed))
        if counters is not None:
            counters.matvecs += dense_factor.shape[1] * (degree - 1)
            counters.factor_passes += 1
    if return_trace:
        return results[:-1], float(results[-1])
    return results


def _half_matvec(phi):
    """Return a matvec callable for ``phi / 2`` (matrix or matvec input)."""
    if callable(phi) and not isinstance(phi, np.ndarray) and not sp.issparse(phi):
        return lambda block: 0.5 * phi(block)
    if sp.issparse(phi):
        half = phi.tocsr() * 0.5
        return lambda block: half @ block
    dense = 0.5 * np.asarray(phi, dtype=np.float64)
    return lambda block: dense @ block


class ExactDotExpOracle:
    """Reference oracle: exact density matrix via eigendecomposition.

    With ``batched=True`` (default) and a collection whose Gram factors are
    exact (``Q_i Q_i^T = A_i`` by construction — see
    :attr:`~repro.operators.psd_operator.PSDOperator.gram_factor_is_exact`),
    the oracle builds the packed factor view up front so the per-iteration
    trace products ``A_i . W`` run as one GEMM plus a segment reduction
    instead of a per-constraint loop through the backend map.  The
    work–depth accounting is unchanged: the batched pass charges the same
    per-constraint ``nnz(A_i)`` work and max-depth as the mapped loop
    (see :meth:`~repro.parallel.backends.ExecutionBackend.charge_batched`),
    and collections with inexact (eigendecomposition-derived) factors keep
    the reference loop.  ``batched=False`` forces the oracle's own trace
    products through the seed per-constraint loop even when another
    consumer has already packed the collection (other collection-level
    operations such as ``weighted_sum`` still follow the collection's own
    packed gating); the regression tests certify both settings return
    identical decisions.

    Parameters
    ----------
    constraints:
        The constraint collection whose trace products are needed.
    backend:
        Optional execution backend used for the batched trace products (and
        their work–depth accounting).
    batched:
        Use the packed single-GEMM pass for the trace products when the
        collection's factors are exact.
    """

    #: The exact oracle eigendecomposes the dense ``psi`` argument, so the
    #: decision solvers must maintain it (dense ``PsiState``).
    needs_dense_psi = True

    def __init__(
        self,
        constraints: ConstraintCollection,
        backend: ExecutionBackend | None = None,
        batched: bool = True,
    ) -> None:
        self.constraints = constraints
        self.backend = backend
        self.batched = bool(batched)
        self.counters = OracleCounters()
        if self.batched and constraints.has_exact_factors:
            # Build (and cache) the packed view so dots()/weighted_sum()
            # reroute to the batched kernels; free for factorized inputs.
            constraints.packed()

    def __call__(self, psi: np.ndarray, x: np.ndarray) -> OracleOutput:
        if psi is None:
            raise InvalidProblemError(
                "the exact oracle needs the dense psi matrix "
                "(needs_dense_psi = True); only the fast oracle accepts psi=None"
            )
        self.counters.record_call()
        self.counters.eigendecompositions += 1
        m = self.constraints.dim
        density = expm_normalized(psi)
        if self.batched:
            values = self.constraints.dots(density, backend=self.backend)
        elif self.backend is not None:
            # Honour batched=False even if another consumer already built
            # the collection's packed view: run the seed per-constraint
            # loop, not the packed reroute inside dots().
            values = np.asarray(
                self.backend.map(
                    lambda op: op.dot(density),
                    self.constraints.operators,
                    work_per_item=self.constraints.operator_work,
                    label="constraint-dots",
                ),
                dtype=np.float64,
            )
        else:
            values = np.array(
                [op.dot(density) for op in self.constraints], dtype=np.float64
            )
        work = float(m**3 + self.constraints.total_nnz)
        self.counters.flops_estimate += work
        return OracleOutput(values=values, trace=1.0, work=work)

    def export_state(self) -> dict:
        """Checkpointable snapshot (the exact oracle is stateless bar counters)."""
        return {"kind": "exact", "counters": self.counters.export_state()}

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        if state.get("kind") != "exact":
            raise InvalidProblemError(
                f"cannot import oracle state of kind {state.get('kind')!r} "
                "into an ExactDotExpOracle"
            )
        self.counters.import_state(state["counters"])


class FastDotExpOracle:
    """Theorem 4.1 oracle: truncated Taylor + JL sketch on factorized constraints.

    The oracle's normalization ``Tr[exp(Psi)]`` depends on the regime: with
    a genuinely reducing sketch it is read off the transformed sketch block
    at no extra cost (``|| Pi exp(Psi/2) ||_F^2``); in the degenerate-sketch
    regime (JL dimension at least ``m`` — the default configuration for
    every ``m`` below several thousand) the default kernel path hands it to
    a structured :class:`~repro.linalg.trace_estimation.TraceEstimator`
    (exact Gram-spectrum / deflated block-Krylov projection, or the
    certified Hutchinson sampler) so no ``(m, m)`` identity ever passes
    through the Taylor polynomial; the legacy per-factor path instead
    treats the identity as an extra factor (``exp(Psi) . I``).  Every
    variant estimates the same quantity, so the returned values are
    directly comparable to the exact oracle's.

    The oracle rebuilds ``Psi`` from ``x`` through the constraint factors
    and never reads the ``psi`` argument — ``needs_dense_psi = False``, and
    calls may pass ``psi=None`` (the decision solvers do exactly that when
    their matrix-free :class:`~repro.core.psi_state.ImplicitPsiState` is
    active, so no dense ``sum_i x_i A_i`` is ever assembled for the
    oracle's sake).  The positional ``psi`` slot is kept for backward
    compatibility with the :class:`DotExpOracle` protocol.

    Parameters
    ----------
    constraints:
        Constraint collection; Gram factors are extracted once and cached.
    eps:
        Relative accuracy of the oracle (values are within ``(1 +- eps)`` of
        the exact ratios with high probability).  The decision solver's
        threshold test tolerates a constant-factor slack in ``eps``.
    kappa_bound:
        Optional a-priori bound on ``||Psi||_2`` (e.g. the Lemma 3.2 bound
        ``(1 + 10 eps) K``); when omitted the norm is estimated per call by
        power iteration.
    sketch_constant:
        JL dimension multiplier.
    rng:
        Randomness source (a fresh sketch is drawn every call).
    packed:
        When ``True`` (default) the oracle uses the collection's cached
        :class:`~repro.operators.packed.PackedGramFactors` view: the
        ``Psi``-matvec and the estimate pass become single GEMMs over the
        stacked factor matrix, and the trace estimate is read off the
        transformed sketch block instead of a dense identity pseudo-factor.
        ``False`` keeps the seed per-factor loop (the reference the packed
        path is benchmarked and tested against).
    blocked:
        When ``True`` (default, packed path only) the Lemma 4.2 Taylor
        apply runs through a fused block kernel built from the packed
        factors and the current weights instead of the per-term matvec
        recurrence (``False``; same polynomial — the paths differ only in
        floating-point rounding and wall clock; see
        ``benchmarks/bench_e12_taylor.py``).
    engine:
        When ``True`` (default, with ``packed`` and ``blocked``) kernels
        come from the collection's cached rank-adaptive
        :class:`~repro.linalg.taylor_gram.TaylorEngine`: the representation
        (Gram-space / densified ``Psi`` / sparse-CSR ``Psi`` / factor
        recurrence) is selected once per stack by measured ``nnz`` and
        stacked rank, and the weight-dependent state is maintained across
        oracle calls by updating only the active columns (work charged to
        ``backend`` under ``taylor-engine-update``).  ``False`` rebuilds a
        PR-2 style :class:`~repro.linalg.taylor_blocked.BlockedTaylorKernel`
        (single ``2R > m`` densification rule, no cross-call reuse) every
        call — the reference the engine is benchmarked against in
        ``benchmarks/bench_e13_gram.py``.
    taylor_chunk_columns:
        Optional column-chunk size forwarded to the kernels to bound
        their peak memory on wide sketch blocks (``None`` = unchunked).
    trace_mode:
        Trace-normalisation strategy for the degenerate-sketch regime
        (packed kernel path only).  ``"auto"`` (default) applies
        :func:`~repro.linalg.trace_estimation.select_trace_mode` —
        the exact Gram-spectrum path when ``2R`` is within the hysteresis
        margin of ``m``, the exact deflated block-Krylov projection while
        ``R`` stays meaningfully below ``m``, the legacy identity push
        otherwise (at ``R ~ m`` its columns carry the estimates too, so it
        is genuinely optimal).  Explicit values force a mode
        (``"gram"``/``"deflated"``/``"hutchinson"``/``"identity"``);
        ``"identity"`` reproduces the pre-estimator reference bit-for-bit
        and exists for benchmarking and regression testing.
    trace_seed:
        Deterministic seed of the Hutchinson probe stream (default 0).
        The probes never touch the oracle's ``rng``, so enabling or
        disabling the structured trace cannot shift the sketch stream —
        the fixed-seed decision-equivalence regressions rely on this.
    """

    #: The fast oracle reads ``x`` only; the decision solvers may therefore
    #: run matrix-free and pass ``psi=None``.
    needs_dense_psi = False

    def __init__(
        self,
        constraints: ConstraintCollection,
        eps: float = 0.05,
        kappa_bound: float | None = None,
        sketch_constant: float = 8.0,
        rng: RandomState = None,
        backend: ExecutionBackend | None = None,
        packed: bool = True,
        blocked: bool = True,
        engine: bool = True,
        taylor_chunk_columns: int | None = None,
        trace_mode: str = "auto",
        trace_seed: int | None = None,
        array_backend=None,
    ) -> None:
        if eps <= 0 or eps >= 1:
            raise InvalidProblemError(f"eps must be in (0, 1), got {eps}")
        self.constraints = constraints
        self.eps = float(eps)
        self.kappa_bound = kappa_bound
        self.sketch_constant = float(sketch_constant)
        self.rng = as_generator(rng)
        self.backend = backend
        self.blocked = bool(blocked)
        self.engine = bool(engine)
        self.taylor_chunk_columns = taylor_chunk_columns
        self.counters = OracleCounters()
        self._engine: TaylorEngine | None = None
        # Converged power-iteration vector of the previous call: the
        # solver's Psi changes mildly per iteration, so warm-starting the
        # per-call norm estimate cuts it from hundreds of cold iterations
        # to a handful.
        self._norm_vector: np.ndarray | None = None
        if packed:
            # The packed view carries the array backend; the Taylor engine
            # and trace estimator adopt it from there.
            self._packed: PackedGramFactors | None = constraints.packed(
                backend=array_backend
            )
            self._factors: list | None = None
            self._identity: np.ndarray | None = None
        else:
            if not get_array_backend(array_backend).is_numpy:
                raise InvalidProblemError(
                    "the per-factor reference path (packed=False) is "
                    "NumPy-only; use packed=True with a non-NumPy backend"
                )
            self._packed = None
            self._factors = constraints.gram_factors()
            self._identity = np.eye(constraints.dim)
        # Structured degenerate-regime trace estimator (kernel path only).
        # The sketch half of the eps budget funds the Hutchinson
        # certification: the degenerate regime's identity "sketch" is
        # exact, so that half is otherwise unused there.
        if self._packed is not None and self.blocked and trace_mode != "identity":
            self._trace_estimator: TraceEstimator | None = TraceEstimator(
                self._packed,
                eps=self.eps / 2.0,
                mode=trace_mode,
                seed=0 if trace_seed is None else trace_seed,
            )
        else:
            self._trace_estimator = None

    @property
    def packed(self) -> PackedGramFactors | None:
        """The packed factor view when the fast path is enabled."""
        return self._packed

    @property
    def taylor_engine(self) -> TaylorEngine | None:
        """The incremental Taylor engine, once the first call has built it.

        The decision solvers read its :meth:`~repro.linalg.taylor_gram.TaylorEngine.stats`
        into the result metadata so regressions can assert the
        active-column update discipline.
        """
        return self._engine

    @property
    def trace_estimator(self) -> TraceEstimator | None:
        """The structured degenerate-regime trace estimator (kernel path).

        ``None`` on the reference paths (``packed=False``, ``blocked=False``,
        or ``trace_mode="identity"``).  The decision solvers read its
        :meth:`~repro.linalg.trace_estimation.TraceEstimator.stats` into
        the result metadata next to the ``psi_state`` counters so
        regressions can assert the zero-identity-apply discipline.
        """
        return self._trace_estimator

    def _factored_matvec(self, x: np.ndarray):
        """Matvec ``v -> Psi v = sum_i x_i Q_i (Q_i^T v)`` applied through the
        factors — the Corollary 1.2 representation, O(q) per (block) matvec,
        never materialising the dense ``Psi``.  With the packed view this is
        ``Q (x_cols ∘ (Q^T v))``: two GEMMs over the stacked matrix."""
        if self._packed is not None:
            return self._packed.matvec_fn(x)
        active = [(float(xi), q) for xi, q in zip(x, self._factors) if xi != 0.0]

        def matvec(block: np.ndarray) -> np.ndarray:
            out = np.zeros_like(block, dtype=np.float64)
            for weight, factor in active:
                out += weight * (factor @ (factor.T @ block))
            return out

        return matvec

    def __call__(self, psi: np.ndarray | None = None, x: np.ndarray | None = None) -> OracleOutput:
        if x is None:
            raise InvalidProblemError(
                "the fast oracle requires the weight vector x (psi may be None)"
            )
        m = self.constraints.dim
        weights = np.asarray(x, dtype=np.float64)
        if self._packed is not None and self.blocked:
            # Fused block-kernel path: the kernel is built from x rather
            # than from the caller's psi — callers may legitimately pass a
            # placeholder psi (the fast oracle is documented to read x
            # only, and the E11-E13 benchmarks do exactly that) — and also
            # serves as the matvec for the norm estimate.  With the engine
            # (default) the representation is rank-adaptive and the
            # weight-dependent state carries over from the previous call,
            # so only the changed weight coordinates are touched; without
            # it a PR-2 blocked kernel is rebuilt per call.
            if self.engine:
                if self._engine is None:
                    self._engine = self._packed.taylor_engine(
                        chunk_columns=self.taylor_chunk_columns
                    )
                operator = self._engine.kernel_for(weights, backend=self.backend)
            else:
                operator = self._packed.taylor_kernel(
                    weights,
                    chunk_columns=self.taylor_chunk_columns,
                    mode="legacy",
                )
            matvec = operator.matvec
        else:
            operator = None
            matvec = self._factored_matvec(weights)
        kappa = self.kappa_bound
        if kappa is None:
            # One fresh draw per call (the cold start's exact rng
            # consumption, so fast-path variants stay stream-identical),
            # blended into the previous call's converged vector: warm where
            # Psi's dominant direction persists, never blind where it moved.
            fresh = self.rng.standard_normal(m)
            if self._norm_vector is not None and m > 0:
                fresh_norm = float(np.linalg.norm(fresh))
                if fresh_norm > 0:
                    fresh = self._norm_vector + NORM_RESTART_MIX * (fresh / fresh_norm)
            estimate, self._norm_vector = spectral_norm_power(
                matvec,
                dim=m,
                v0=fresh if m > 0 else None,
                rng=self.rng,
                return_vector=True,
            )
            kappa = max(1.0, estimate * 1.05)
            self.counters.add("norm_estimates")
        tracer = self._trace_estimator if operator is not None else None
        trace_calls_before = tracer.calls if tracer is not None else 0
        if self._packed is not None:
            estimates, trace_estimate = big_dot_exp(
                operator if operator is not None else matvec,
                self._packed,
                kappa=kappa,
                eps=self.eps,
                rng=self.rng,
                sketch_constant=self.sketch_constant,
                counters=self.counters,
                dim=m,
                return_trace=True,
                trace_estimator=tracer.bind(weights) if tracer is not None else None,
            )
        else:
            raw = big_dot_exp(
                matvec,
                list(self._factors) + [self._identity],
                kappa=kappa,
                eps=self.eps,
                rng=self.rng,
                sketch_constant=self.sketch_constant,
                counters=self.counters,
                dim=m,
            )
            estimates, trace_estimate = raw[:-1], float(raw[-1])
        if trace_estimate <= 0:
            raise InvalidProblemError(
                "sketched trace estimate is non-positive; increase the sketch dimension"
            )
        values = estimates / trace_estimate
        sketch_dim = min(jl_dimension(m, self.eps / 2.0, constant=self.sketch_constant), m)
        degree = taylor_degree(kappa / 2.0, self.eps / 2.0)
        # Work in the Corollary 1.2 units: each of the `degree` polynomial
        # steps applies Psi to the block through the factors (O(q) per
        # column), plus one pass over the factor nonzeros for the estimates.
        # When the structured trace estimator handled the degenerate-regime
        # normalisation, the block is the (m, R) factor stack plus any
        # Hutchinson probes — not the (m, m) identity — and the estimator's
        # own model work (eigendecomposition / projection GEMMs / fallback
        # push) rides along, so the charge reflects what actually ran.
        q = self.constraints.total_nnz
        trace_info = (
            tracer.last
            if tracer is not None and tracer.calls > trace_calls_before
            else None
        )
        if trace_info is not None:
            columns = self._packed.total_rank + trace_info.probes
            work = float(columns * degree * max(q, m) + q + trace_info.extra_work)
        else:
            work = float(sketch_dim * degree * max(q, m) + q)
        self.counters.flops_estimate += work
        return OracleOutput(values=values, trace=trace_estimate, work=work)

    def export_state(self) -> dict:
        """Checkpointable snapshot of everything a resumed call sequence reads.

        Captures the sketch rng (``bit_generator.state``), the
        power-iteration warm-start vector, the counters, and — when built —
        the Taylor engine's mode/buffers and the trace estimator's state.
        The ladder flags (``engine``/``blocked``) ride along so a resume
        lands on the exact demotion rung the checkpoint was captured on.
        """
        return {
            "kind": "fast",
            "engine_enabled": bool(self.engine),
            "blocked": bool(self.blocked),
            "rng": dict(self.rng.bit_generator.state),
            "norm_vector": (
                None if self._norm_vector is None
                else np.array(self._norm_vector, dtype=np.float64)
            ),
            "counters": self.counters.export_state(),
            "engine": (
                None if self._engine is None else self._engine.export_state()
            ),
            "trace": (
                None if self._trace_estimator is None
                else self._trace_estimator.export_state()
            ),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        The Taylor engine is rebuilt *directly* (not through the packed
        view's shared engine cache) at the checkpointed mode: an in-process
        resume must not alias the interrupted run's engine, whose buffers
        have advanced past the checkpoint.
        """
        if state.get("kind") != "fast":
            raise InvalidProblemError(
                f"cannot import oracle state of kind {state.get('kind')!r} "
                "into a FastDotExpOracle"
            )
        self.engine = bool(state["engine_enabled"])
        self.blocked = bool(state["blocked"])
        self.rng.bit_generator.state = state["rng"]
        vec = state.get("norm_vector")
        self._norm_vector = None if vec is None else np.array(vec, dtype=np.float64)
        self.counters.import_state(state["counters"])
        engine_state = state.get("engine")
        if engine_state is None:
            self._engine = None
        else:
            if self._packed is None:
                raise InvalidProblemError(
                    "checkpoint carries taylor-engine state but the oracle "
                    "was built with packed=False"
                )
            self._engine = TaylorEngine(
                self._packed,
                chunk_columns=self.taylor_chunk_columns,
                mode=engine_state["mode"],
            )
            self._engine.import_state(engine_state)
        trace_state = state.get("trace")
        if trace_state is not None:
            if self._trace_estimator is None:
                self._trace_estimator = TraceEstimator(
                    self._packed,
                    eps=self.eps / 2.0,
                    mode=trace_state["mode"],
                )
            self._trace_estimator.import_state(trace_state)
        elif self._trace_estimator is not None and state.get("trace") is None:
            # The checkpointed run had no estimator (identity reference
            # path); mirror that so the resumed arithmetic matches.
            self._trace_estimator = None

    def fused_update_weights(self, col_w: np.ndarray) -> None:
        """Advance the engine to one call's expanded weights (batched path).

        Exactly the kernel-construction step of :meth:`__call__` on the
        default engine path, minus the kernel view the batched solver never
        needs: ``repro.core.batch.solve_many`` expands and validates the
        whole group's weight stack in one pass, then advances each
        instance's engine here so its counters, charges and Gram buffer
        evolve exactly as they would under sequential solves (the batched
        GEMMs read the Gram stack directly instead of through a kernel).
        """
        if self._engine is None:
            self._engine = self._packed.taylor_engine(
                chunk_columns=self.taylor_chunk_columns
            )
        self._engine.update_weights(col_w, backend=self.backend)

    def fused_power_v0(self) -> np.ndarray:
        """Draw one call's warm-started power-iteration start vector.

        Reproduces the kappa chain's rng consumption and warm-start blend
        from :meth:`__call__` bit-for-bit: one fresh ``standard_normal(m)``
        draw, blended into the previous call's converged norm vector when
        one exists.  The batched solver stacks these rows as ``v0`` for
        :func:`~repro.linalg.norms.batched_spectral_norm_power`.
        """
        m = self.constraints.dim
        fresh = self.rng.standard_normal(m)
        if self._norm_vector is not None and m > 0:
            fresh_norm = float(np.linalg.norm(fresh))
            if fresh_norm > 0:
                fresh = self._norm_vector + NORM_RESTART_MIX * (fresh / fresh_norm)
        return fresh

    def fused_norm_result(self, estimate: float, vector: np.ndarray) -> float:
        """Record one batched power-iteration result; returns the call's kappa.

        Stores the converged vector as the next call's warm start, books the
        ``norm_estimates`` counter, and applies the same ``max(1, est *
        1.05)`` safety margin as :meth:`__call__`.
        """
        self._norm_vector = vector
        kappa = max(1.0, estimate * 1.05)
        self.counters.add("norm_estimates")
        return kappa

    def record_fused_call(self, degree: int, trace_estimate) -> float:
        """Book one batched-solver oracle pass against this oracle's counters.

        ``repro.core.batch.solve_many`` runs the degenerate structured-path
        estimate (stacked Taylor apply + squared column norms + structured
        trace) as batched GEMMs outside :meth:`__call__`, but each instance
        must record exactly the counters and Corollary 1.2 work charge a
        sequential call would have.  ``trace_estimate`` is the
        :class:`~repro.linalg.trace_estimation.TraceEstimate` the instance's
        own estimator returned for this pass (the estimator updates its own
        call/extra-work tallies inside ``estimate``); the norm-estimate
        counter is booked separately by the batched kappa chain.  Returns
        the work charge in model units.
        """
        packed = self._packed
        self.counters.record_call()
        self.counters.matvecs += packed.total_rank * (degree - 1)
        self.counters.factor_passes += len(packed)
        self.counters.add("packed_estimate_gemms")
        self.counters.matvecs += trace_estimate.probes * (degree - 1)
        self.counters.add("structured_trace_estimates")
        q = self.constraints.total_nnz
        m = self.constraints.dim
        columns = packed.total_rank + trace_estimate.probes
        work = float(columns * degree * max(q, m) + q + trace_estimate.extra_work)
        self.counters.flops_estimate += work
        return work


def oracle_engine_metadata(oracle) -> dict:
    """Result-metadata fragment with the oracle's engine/estimator counters.

    Returns ``{"taylor_engine": stats}`` when ``oracle`` is a fast oracle
    whose rank-adaptive engine has been built, plus
    ``{"trace_estimator": stats}`` when it carries a structured trace
    estimator — the one helper both decision solvers merge into their
    result metadata so regressions can assert the incremental-update and
    zero-identity-apply disciplines.
    """
    out: dict = {}
    engine = getattr(oracle, "taylor_engine", None)
    if engine is not None:
        out["taylor_engine"] = engine.stats()
    tracer = getattr(oracle, "trace_estimator", None)
    if tracer is not None:
        out["trace_estimator"] = tracer.stats()
    return out


def make_oracle(
    constraints: ConstraintCollection,
    kind: str = "exact",
    eps: float = 0.05,
    kappa_bound: float | None = None,
    rng: RandomState = None,
    backend: ExecutionBackend | None = None,
    packed: bool = True,
    blocked: bool = True,
    engine: bool = True,
    batched: bool = True,
    trace_mode: str = "auto",
    trace_seed: int | None = None,
    array_backend=None,
) -> DotExpOracle:
    """Factory for the decision solver's oracle (``"exact"`` or ``"fast"``).

    ``packed``/``blocked``/``engine``/``trace_mode`` configure the fast
    oracle's single-GEMM estimate pass, fused Taylor kernels, the
    rank-adaptive incremental engine, and the structured degenerate-regime
    trace estimator (``trace_seed`` its deterministic probe stream);
    ``batched`` configures the exact oracle's packed trace-product pass.
    All default to the fast paths; the ``False`` / ``"identity"`` settings
    reproduce the reference loops bit-for-bit and exist for benchmarking
    and regression testing.  ``array_backend`` selects the array backend
    of the fast oracle's packed kernels (``None``/``"numpy"``/``"torch"``/
    ``"cupy"`` or an :class:`~repro.backend.ArrayBackend` instance); the
    exact oracle is NumPy-resident and rejects non-NumPy backends.
    """
    kind = kind.lower()
    if kind == "exact":
        if not get_array_backend(array_backend).is_numpy:
            raise InvalidProblemError(
                "the exact oracle is NumPy-resident; use kind='fast' with a "
                "non-NumPy array backend"
            )
        return ExactDotExpOracle(constraints, backend=backend, batched=batched)
    if kind == "fast":
        return FastDotExpOracle(
            constraints,
            eps=eps,
            kappa_bound=kappa_bound,
            rng=rng,
            backend=backend,
            packed=packed,
            blocked=blocked,
            engine=engine,
            trace_mode=trace_mode,
            trace_seed=trace_seed,
            array_backend=array_backend,
        )
    raise InvalidProblemError(f"unknown oracle kind {kind!r}; expected 'exact' or 'fast'")
