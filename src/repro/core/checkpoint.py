"""Checkpoint/resume for the decision solvers.

A :class:`SolverCheckpoint` captures everything a decision solve needs to
continue **bit-identically**: the weight vector and iteration index, the
solver's loop accumulators (primal averages, last oracle values, the phased
solver's mid-phase mask), the psi-state's incrementally-maintained buffers
and warm-start vectors, the fast oracle's sketch rng / norm warm start /
Taylor-engine buffers / trace-estimator stream position, the supervisor's
ladder position and recovery-event trail, and the work–depth totals.  The
contract — certified by the chaos suite — is::

    interrupt at iteration k  +  resume_from=checkpoint
        ==  the uninterrupted run        (same seeds, same options)

field for field: same certified decision, same dual witness bitwise, same
history records, same counters, same recovery events.

Checkpoints are produced automatically by :func:`~repro.core.decision.decision_psdp`
and :func:`~repro.core.decision_phased.decision_psdp_phased` when a
``wall_clock_budget``/``iteration_budget`` exhausts (attached to
``result.metadata["checkpoint"]``) and, on demand, every
``DecisionOptions.checkpoint_every`` iterations (the latest one rides on a
``FAILED`` result so even a crashed solve is resumable).  They round-trip
to disk through :func:`repro.io.serialization.save_checkpoint` /
``load_checkpoint`` (versioned header, shape validation, checksum — a
truncated or corrupted file raises
:class:`~repro.exceptions.CheckpointError`, never garbage results).

Resume reconstructs the solver's plumbing exactly as a fresh run would
(same construction order, hence the same spawned rng streams), then applies
the checkpoint: structural ladder position first (rebuild a demoted dense
state or Taylor engine), then buffers, counters and rng states.  Any draws
consumed during construction are overwritten by the import, so the resumed
stream position equals the interrupted one.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import CheckpointError
from repro.instrumentation.history import ConvergenceHistory, IterationRecord

__all__ = ["CHECKPOINT_VERSION", "SolverCheckpoint", "capture_checkpoint", "restore_checkpoint"]

#: Format version stamped into every checkpoint (and its on-disk header).
CHECKPOINT_VERSION = 1


def _copy_or_none(array: np.ndarray | None) -> np.ndarray | None:
    return None if array is None else np.array(array)


def _tree_equal(a: Any, b: Any) -> bool:
    """Recursive exact equality over dict/list/array/scalar trees.

    Arrays compare with :func:`numpy.array_equal` (bitwise for the float
    payloads captured here); floats compare with ``nan == nan`` true so a
    checkpointed ``nan`` statistic does not break equality.
    """
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return a.shape == b.shape and a.dtype == b.dtype and np.array_equal(a, b)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(_tree_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_tree_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        return (a != a and b != b) or a == b
    return type(a) is type(b) and a == b


@dataclass
class SolverCheckpoint:
    """Complete resumable state of one decision solve at an iteration boundary.

    Attributes
    ----------
    solver:
        Which solver captured it — ``"psdp"`` or ``"phased"``.  A resume
        validates this against the resuming entry point.
    iteration:
        The loop-top iteration index ``t`` the capture happened at.
    meta:
        Validation fingerprint: ``n``, ``m``, ``epsilon``, ``oracle`` kind,
        ``strict`` flag, whether the run was supervised and collected
        history.  A resume refuses (typed :class:`~repro.exceptions.CheckpointError`)
        when any of these mismatch the resuming call.
    loop:
        The solver-loop accumulators (weight vector ``x``, primal tracking
        sums, last oracle values).
    phase:
        The phased solver's outer/inner position (``None`` for ``psdp``):
        phase count, and — for mid-phase captures — the active update mask,
        the phase-start norm and the phase's oracle values.
    oracle / psi / supervisor / tracker:
        The component snapshots (each component's ``export_state()``).
    eig_rng:
        ``bit_generator.state`` of the spawned eigenvalue generator.
    history:
        Recorded :class:`~repro.instrumentation.history.IterationRecord`
        dicts up to the capture point (``None`` when history was off).
    version:
        :data:`CHECKPOINT_VERSION` at capture.

    Equality compares every field *except* the supervisor's wall-clock
    ``elapsed`` entry, array-aware — so two captures of the same logical
    state (e.g. batched vs. sequential) compare equal, and results whose
    metadata carries a checkpoint still support the test suite's plain
    ``metadata == metadata`` comparisons.
    """

    solver: str
    iteration: int
    meta: dict[str, Any]
    loop: dict[str, Any]
    phase: dict[str, Any] | None
    oracle: dict[str, Any]
    psi: dict[str, Any]
    supervisor: dict[str, Any] | None
    eig_rng: dict[str, Any] | None
    tracker: dict[str, Any]
    history: list[dict[str, Any]] | None
    version: int = CHECKPOINT_VERSION
    #: ``time.monotonic()`` timestamp of the capture — the executor's worker
    #: heartbeat: a worker that keeps capturing periodic checkpoints is alive,
    #: one whose latest ``captured_at`` goes stale is stalled.  Wall-clock
    #: only; excluded from equality (like the supervisor's ``elapsed``) so
    #: bit-identity comparisons between runs are unaffected.
    captured_at: float | None = None

    def _eq_payload(self) -> dict[str, Any]:
        supervisor = self.supervisor
        if isinstance(supervisor, dict):
            supervisor = {k: v for k, v in supervisor.items() if k != "elapsed"}
        return {
            "solver": self.solver,
            "iteration": self.iteration,
            "meta": self.meta,
            "loop": self.loop,
            "phase": self.phase,
            "oracle": self.oracle,
            "psi": self.psi,
            "supervisor": supervisor,
            "eig_rng": self.eig_rng,
            "tracker": self.tracker,
            "history": self.history,
            "version": self.version,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SolverCheckpoint):
            return NotImplemented
        return _tree_equal(self._eq_payload(), other._eq_payload())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SolverCheckpoint(solver={self.solver!r}, iteration={self.iteration}, "
            f"n={self.meta.get('n')}, m={self.meta.get('m')})"
        )

    # ------------------------------------------------------------------ disk
    def save(self, path) -> None:
        """Write the checkpoint to ``path`` (versioned ``.npz`` with checksum)."""
        from repro.io.serialization import save_checkpoint

        save_checkpoint(path, self)

    @staticmethod
    def load(path) -> "SolverCheckpoint":
        """Read a checkpoint written by :meth:`save`; validates the checksum."""
        from repro.io.serialization import load_checkpoint

        return load_checkpoint(path)

    def to_payload(self) -> dict[str, Any]:
        """The checkpoint as one nested dict (the serialization layer's input)."""
        return {
            "version": self.version,
            "solver": self.solver,
            "iteration": self.iteration,
            "meta": self.meta,
            "loop": self.loop,
            "phase": self.phase,
            "oracle": self.oracle,
            "psi": self.psi,
            "supervisor": self.supervisor,
            "eig_rng": self.eig_rng,
            "tracker": self.tracker,
            "history": self.history,
            "captured_at": self.captured_at,
        }

    @staticmethod
    def from_payload(payload: dict[str, Any]) -> "SolverCheckpoint":
        """Rebuild a checkpoint from :meth:`to_payload` output.

        Raises :class:`~repro.exceptions.CheckpointError` on missing fields
        or an unknown format version.
        """
        try:
            version = int(payload["version"])
            if version != CHECKPOINT_VERSION:
                raise CheckpointError(
                    f"unsupported checkpoint version {version} "
                    f"(this build reads version {CHECKPOINT_VERSION})"
                )
            return SolverCheckpoint(
                solver=str(payload["solver"]),
                iteration=int(payload["iteration"]),
                meta=dict(payload["meta"]),
                loop=dict(payload["loop"]),
                phase=None if payload["phase"] is None else dict(payload["phase"]),
                oracle=dict(payload["oracle"]),
                psi=dict(payload["psi"]),
                supervisor=(
                    None if payload["supervisor"] is None else dict(payload["supervisor"])
                ),
                eig_rng=None if payload["eig_rng"] is None else dict(payload["eig_rng"]),
                tracker=dict(payload["tracker"]),
                history=(
                    None
                    if payload["history"] is None
                    else [dict(rec) for rec in payload["history"]]
                ),
                version=version,
                captured_at=(
                    None
                    if payload.get("captured_at") is None
                    else float(payload["captured_at"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, CheckpointError):
                raise
            raise CheckpointError(f"malformed checkpoint payload: {exc}") from exc


def capture_checkpoint(
    *,
    solver: str,
    iteration: int,
    eps: float,
    oracle_kind: str,
    strict: bool,
    n: int,
    m: int,
    oracle,
    state,
    supervisor,
    eig_rng,
    tracker,
    history: ConvergenceHistory | None,
    primal_sum: np.ndarray | None = None,
    primal_rounds: int = 0,
    last_density: np.ndarray | None = None,
    dots_sum: np.ndarray | None = None,
    last_values: np.ndarray | None = None,
    phase: dict[str, Any] | None = None,
    captured_at: float | None = None,
) -> SolverCheckpoint:
    """Snapshot a running decision solve at an iteration boundary.

    Called by the solvers with their live loop variables; every array is
    copied so the solve can continue mutating its state without disturbing
    the captured checkpoint.  ``captured_at`` defaults to ``time.monotonic()``
    at call time — periodic captures double as worker-liveness heartbeats.
    """
    if captured_at is None:
        captured_at = time.monotonic()
    return SolverCheckpoint(
        solver=solver,
        iteration=int(iteration),
        meta={
            "n": int(n),
            "m": int(m),
            "epsilon": float(eps),
            "oracle": oracle_kind,
            "strict": bool(strict),
            "supervised": supervisor is not None,
            "collect_history": history is not None,
        },
        loop={
            "primal_sum": _copy_or_none(primal_sum),
            "primal_rounds": int(primal_rounds),
            "last_density": _copy_or_none(last_density),
            "dots_sum": _copy_or_none(dots_sum),
            "last_values": _copy_or_none(last_values),
        },
        phase=None if phase is None else {
            "phases": int(phase.get("phases", 0)),
            "mask": _copy_or_none(phase.get("mask")),
            "phase_start_norm": phase.get("phase_start_norm"),
            "values": _copy_or_none(phase.get("values")),
        },
        oracle=oracle.export_state(),
        psi=state.export_state(),
        supervisor=None if supervisor is None else supervisor.export_state(),
        eig_rng=(
            copy.deepcopy(dict(eig_rng.bit_generator.state))
            if isinstance(eig_rng, np.random.Generator)
            else None
        ),
        tracker=tracker.export_state(),
        history=None if history is None else [rec.as_dict() for rec in history],
        captured_at=captured_at,
    )


@dataclass
class ResumedLoop:
    """The loop variables a solver reinstates after :func:`restore_checkpoint`."""

    iteration: int
    primal_sum: np.ndarray | None
    primal_rounds: int
    last_density: np.ndarray | None
    dots_sum: np.ndarray | None
    last_values: np.ndarray | None
    phase: dict[str, Any] | None = field(default=None)


def restore_checkpoint(
    ckpt: SolverCheckpoint,
    *,
    solver: str,
    eps: float,
    oracle_kind: str,
    strict: bool,
    n: int,
    m: int,
    constraints,
    oracle,
    state,
    supervisor,
    eig_rng,
    tracker,
    history: ConvergenceHistory | None,
):
    """Apply a checkpoint to freshly-constructed solver plumbing.

    Validates the checkpoint against the resuming call (typed
    :class:`~repro.exceptions.CheckpointError` on any mismatch), rebuilds a
    demoted-dense psi state when the capture happened mid-ladder, imports
    every component snapshot, and returns ``(state, ResumedLoop)`` — the
    (possibly rebound) psi state plus the loop accumulators to reinstate.
    """
    if not isinstance(ckpt, SolverCheckpoint):
        raise CheckpointError(
            f"resume_from must be a SolverCheckpoint, got {type(ckpt).__name__}"
        )
    if ckpt.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {ckpt.version} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    if ckpt.solver != solver:
        raise CheckpointError(
            f"checkpoint was captured by the {ckpt.solver!r} solver; "
            f"cannot resume it with {solver!r}"
        )
    expect = {"n": n, "m": m, "epsilon": float(eps), "oracle": oracle_kind, "strict": strict}
    for key, value in expect.items():
        have = ckpt.meta.get(key)
        if have != value:
            raise CheckpointError(
                f"checkpoint/options mismatch on {key!r}: "
                f"checkpoint has {have!r}, resuming call has {value!r}"
            )
    if ckpt.meta.get("supervised") != (supervisor is not None):
        raise CheckpointError(
            "checkpoint/options mismatch on 'supervise': resume with the "
            "same supervision setting the checkpoint was captured under"
        )
    if ckpt.meta.get("collect_history") != (history is not None):
        raise CheckpointError(
            "checkpoint/options mismatch on 'collect_history': resume with "
            "the same history setting the checkpoint was captured under"
        )

    # Ladder position first: a capture after an implicit→dense demotion
    # resumes on a dense state even though the fresh construction picked
    # the implicit one.  The reverse direction is an options mismatch.
    psi_mode = ckpt.psi.get("mode")
    if psi_mode != state.mode:
        if psi_mode == "dense" and state.mode == "implicit":
            from repro.core.psi_state import DensePsiState

            state = DensePsiState(constraints, state.x, eig_rng=eig_rng)
            if supervisor is not None:
                supervisor.state = state
        else:
            raise CheckpointError(
                f"checkpoint psi-state mode {psi_mode!r} cannot be resumed "
                f"on a {state.mode!r} state (options mismatch)"
            )
    state.import_state(ckpt.psi)
    try:
        oracle.import_state(ckpt.oracle)
    except AttributeError as exc:
        raise CheckpointError(
            f"oracle {type(oracle).__name__} does not support checkpoint resume"
        ) from exc
    if supervisor is not None:
        supervisor.import_state(ckpt.supervisor)
    if ckpt.eig_rng is not None and isinstance(eig_rng, np.random.Generator):
        eig_rng.bit_generator.state = copy.deepcopy(ckpt.eig_rng)
    tracker.import_state(ckpt.tracker)
    if history is not None and ckpt.history is not None:
        history.records[:] = [IterationRecord(**rec) for rec in ckpt.history]

    loop = ckpt.loop
    resumed = ResumedLoop(
        iteration=int(ckpt.iteration),
        primal_sum=_copy_or_none(loop.get("primal_sum")),
        primal_rounds=int(loop.get("primal_rounds", 0)),
        last_density=_copy_or_none(loop.get("last_density")),
        dots_sum=_copy_or_none(loop.get("dots_sum")),
        last_values=_copy_or_none(loop.get("last_values")),
        phase=None if ckpt.phase is None else {
            "phases": int(ckpt.phase.get("phases", 0)),
            "mask": _copy_or_none(ckpt.phase.get("mask")),
            "phase_start_norm": ckpt.phase.get("phase_start_norm"),
            "values": _copy_or_none(ckpt.phase.get("values")),
        },
    )
    return state, resumed
