"""Matrix multiplicative weights (MMW) update framework (Section 2.1, Theorem 2.1).

The decision solver is an instance of the MMW "game" of Arora–Kale: in round
``t`` the algorithm exposes the probability (density) matrix
``P(t) = W(t) / Tr[W(t)]`` with ``W(t) = exp(eps0 * sum_{t' < t} M(t'))``,
an adversary supplies a PSD gain matrix ``M(t) <= I``, and after ``T`` rounds
the regret bound

.. math::

    (1 + \\varepsilon_0) \\sum_t M^{(t)} \\bullet P^{(t)}
        \\;\\ge\\; \\lambda_{\\max}\\Big(\\sum_t M^{(t)}\\Big) - \\frac{\\ln n}{\\varepsilon_0}

holds (Theorem 2.1; ``n`` there is the matrix dimension).  The decision
solver in :mod:`repro.core.decision` maintains the weight matrix implicitly
through ``Psi = sum_i x_i A_i``; this standalone engine exists so the regret
bound itself can be exercised and property-tested in isolation (it is the
crux of the spectrum bound, Lemma 3.2), and so other MMW-based baselines
(:mod:`repro.baselines.arora_kale`) can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.linalg.expm import expm_normalized
from repro.linalg.psd import check_psd
from repro.utils.validation import symmetrize


@dataclass
class MMWRecord:
    """One round of the MMW game (kept for regret verification)."""

    gain_dot_probability: float
    gain_trace: float


class MatrixMultiplicativeWeights:
    """The Arora–Kale matrix multiplicative weights algorithm.

    Parameters
    ----------
    dim:
        Dimension of the weight matrices.
    eps0:
        Learning rate ``eps0 <= 1/2`` (Theorem 2.1's precondition).
    validate_gains:
        When ``True`` each supplied gain matrix is checked to be PSD with
        ``M <= I`` (the theorem's hypotheses).  Disable for speed inside
        hot loops that construct gains known to satisfy the bounds.
    """

    def __init__(self, dim: int, eps0: float, validate_gains: bool = True) -> None:
        if dim < 1:
            raise InvalidProblemError(f"dim must be >= 1, got {dim}")
        if not (0 < eps0 <= 0.5):
            raise InvalidProblemError(f"eps0 must lie in (0, 1/2], got {eps0}")
        self.dim = dim
        self.eps0 = float(eps0)
        self.validate_gains = validate_gains
        self._gain_sum = np.zeros((dim, dim), dtype=np.float64)
        self._records: list[MMWRecord] = []

    # ------------------------------------------------------------------ state
    @property
    def rounds(self) -> int:
        """Number of gain matrices incorporated so far."""
        return len(self._records)

    def probability_matrix(self) -> np.ndarray:
        """Current density matrix ``P(t) = exp(eps0 * sum M) / Tr[...]``.

        Before any gain is supplied this is ``I / dim`` (the uniform density),
        matching ``W(1) = I`` in the paper's description.
        """
        return expm_normalized(self.eps0 * self._gain_sum)

    def gain_sum(self) -> np.ndarray:
        """The accumulated gain ``sum_t M(t)``."""
        return self._gain_sum.copy()

    # ------------------------------------------------------------------ updates
    def update(self, gain: np.ndarray) -> float:
        """Incorporate one gain matrix; returns ``M(t) . P(t)`` for this round.

        The dot product is computed against the probability matrix *before*
        the update, as in the statement of Theorem 2.1.
        """
        gain = np.asarray(gain, dtype=np.float64)
        if gain.shape != (self.dim, self.dim):
            raise InvalidProblemError(
                f"gain must have shape {(self.dim, self.dim)}, got {gain.shape}"
            )
        if not np.all(np.isfinite(gain)):
            # Checked unconditionally: a NaN entry slips through the
            # lam_max > 1 + 1e-8 comparison below (NaN compares False) and
            # would silently poison the accumulated gain sum.
            raise InvalidProblemError("gain contains non-finite entries")
        if self.validate_gains:
            gain = check_psd(gain, "gain")
            lam_max = float(np.linalg.eigvalsh(gain)[-1])
            if lam_max > 1.0 + 1e-8:
                raise InvalidProblemError(
                    f"gain must satisfy M <= I, got lambda_max = {lam_max:.6g}"
                )
        else:
            gain = symmetrize(gain)
        probability = self.probability_matrix()
        dot = float(np.sum(gain * probability))
        self._gain_sum += gain
        self._records.append(MMWRecord(gain_dot_probability=dot, gain_trace=float(np.trace(gain))))
        return dot

    # ------------------------------------------------------------------ regret
    def total_gain_dot_probability(self) -> float:
        """``sum_t M(t) . P(t)`` across all rounds so far."""
        return float(sum(record.gain_dot_probability for record in self._records))

    def lambda_max_gain_sum(self) -> float:
        """``lambda_max(sum_t M(t))``."""
        if self.rounds == 0:
            return 0.0
        return float(np.linalg.eigvalsh(symmetrize(self._gain_sum))[-1])

    def regret_bound_satisfied(self, slack: float = 1e-7) -> bool:
        """Check the Theorem 2.1 inequality on the rounds played so far.

        Returns ``True`` when
        ``(1 + eps0) * sum_t M(t).P(t) >= lambda_max(sum_t M(t)) - ln(dim)/eps0 - slack``.
        """
        lhs = (1.0 + self.eps0) * self.total_gain_dot_probability()
        rhs = self.lambda_max_gain_sum() - np.log(self.dim) / self.eps0
        return bool(lhs >= rhs - slack)

    def regret_gap(self) -> float:
        """Slack in the Theorem 2.1 inequality (non-negative when it holds)."""
        lhs = (1.0 + self.eps0) * self.total_gain_dot_probability()
        rhs = self.lambda_max_gain_sum() - np.log(self.dim) / self.eps0
        return float(lhs - rhs)
