"""Batched multi-instance decision solving (``solve_many``).

The paper's algorithm is pitched at parallel throughput, but the engine
built across PRs 1-6 is a deep *single-instance* pipeline.  This module is
the serving primitive on top of it: :func:`solve_many` takes ``B``
independent packing-SDP instances and runs them in lockstep, so the
per-iteration heavy kernels — the oracle's power-iteration matvecs, the
Gram-recurrence Taylor apply, the squared-column-norm estimate pass and
the segment sums — execute as single batched GEMMs over a ``(B, m, R)``
factor super-stack instead of ``B`` separate small-matrix calls.

Equivalence contract
--------------------
``solve_many(problems, options)[i]`` certifies **exactly** the result of::

    decision_psdp(problems[i],
                  options=replace(options, rng=instance_rng(options.rng, i)))

bit-for-bit: same outcome, dual vector, counters, work-depth charges and
metadata (up to the supervisor's wall-clock ``elapsed`` reading).  Each
instance's randomness is a :func:`instance_rng` stream derived from the
instance *index*, never from batch position or a shared spawning sequence,
so results are invariant to batch composition and to the order in which
batchmates terminate.

Fusion gate and lockstep layout
-------------------------------
Instances are grouped by ``(m, n, ranks)``; each shape-homogeneous group
runs the fused loop when the options and the instance land on the fast
oracle's degenerate-sketch Gram path (see ``_fused_key``).  Everything
else — exact oracles, history collection, custom backends, sparse stacks,
shapes past the dense-eigensolver cutoff — transparently falls back to
per-instance :func:`~repro.core.decision.decision_psdp` calls with the
same per-index rng streams, so the contract above holds unconditionally.

Inside a fused group every instance keeps its **own** oracle, Taylor
engine, trace estimator, psi state, supervisor and work-depth tracker;
only the shape-uniform numeric kernels are batched.  Per-instance
termination masks let instances exit as they certify (primal/dual early
exits, budget exhaustion, loop-condition exits); the surviving rows are
recompacted so the batched GEMMs never carry dead instances.

Fault isolation
---------------
Supervision demotes only the faulted instance, never the batch: any
per-instance numerical failure inside the fused kernels ejects that one
instance, which is re-solved sequentially from its own rng stream.
Organic failures deterministically replay under the sequential
supervisor's demotion ladder, reproducing the sequential result exactly;
an injected fault that was consumed by the discarded batched attempt
leaves a clean re-solve, which is then reported as ``DEGRADED`` with a
synthetic ``batched -> sequential`` recovery event so chaos runs can see
the ejection.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Sequence

import numpy as np

from repro.backend import NUMPY, get_array_backend
from repro.config import get_config
from repro.exceptions import BudgetExhaustedError, InvalidProblemError
from repro.linalg.expm import expm_normalized
from repro.linalg.norms import batched_spectral_norm_power
from repro.linalg.sketching import jl_dimension
from repro.linalg.taylor import taylor_degree
from repro.linalg.taylor_gram import batched_gram_taylor_apply
from repro.linalg.trace_estimation import batched_gram_exp_trace, select_trace_mode
from repro.operators.collection import ConstraintCollection
from repro.operators.packed import PackedGramFactors, batched_segment_sums
from repro.parallel.backends import SerialBackend
from repro.parallel.workdepth import WorkDepthTracker
from repro.robustness.faultinject import fault_hook_array
from repro.robustness.supervisor import FastPathSupervisor
from repro.core.checkpoint import capture_checkpoint
from repro.core.decision import (
    DecisionOptions,
    DecisionParameters,
    _resolve_constraints,
    decision_psdp,
    resolve_decision_options,
)
from repro.core.dotexp import make_oracle, oracle_engine_metadata
from repro.core.psi_state import make_psi_state
from repro.core.result import DecisionOutcome, DecisionResult, SolveStatus
from repro.utils.random_utils import RandomState, spawn_generators

__all__ = ["instance_rng", "solve_many"]

#: ``top_eigenvalue``'s dense-eigensolver cutoff: at ``m`` at or below it
#: every ``lambda_max`` goes through the deterministic dense path
#: (materialise + ``eigvalsh``).  Above it ARPACK's process-global starting
#: residual makes eigenvalue calls depend on cross-instance call order, so
#: lockstep would break the bitwise equivalence contract — those instances
#: take the sequential fallback instead.
_DENSE_EIG_CUTOFF = 64


def instance_rng(rng: RandomState, index: int) -> np.random.SeedSequence:
    """The rng stream of instance ``index`` under :func:`solve_many`.

    Resolves ``rng`` to its base :class:`numpy.random.SeedSequence` exactly
    like :func:`~repro.utils.random_utils.spawn_generators` (a ``Generator``
    contributes its own seed sequence, ``None`` the package default seed),
    then derives the child deterministically by *extending the spawn key*
    with the instance index — never by calling ``spawn()`` on a shared,
    stateful object.  Repeated calls with the same arguments therefore
    return identical streams regardless of how many instances were
    processed in between, which is what makes batched results independent
    of batch composition and exit order.
    """
    if isinstance(rng, np.random.Generator):
        base = rng.bit_generator.seed_seq  # type: ignore[attr-defined]
        if base is None:  # pragma: no cover - exotic bit generators
            base = np.random.SeedSequence(get_config().default_seed)
    elif isinstance(rng, np.random.SeedSequence):
        base = rng
    else:
        base = np.random.SeedSequence(
            get_config().default_seed if rng is None else rng
        )
    return np.random.SeedSequence(
        entropy=base.entropy, spawn_key=tuple(base.spawn_key) + (int(index),)
    )


def _fused_key(
    opts: DecisionOptions, constraints: ConstraintCollection
) -> tuple | None:
    """Group key when (opts, instance) can run the fused lockstep; else ``None``.

    The fused loop reproduces the sequential solver bit-for-bit only on the
    configuration the batched kernels mirror: the fast oracle's
    degenerate-sketch Gram path over dense exact-factor stacks, implicit
    psi state, supervised, no history/primal tracking, no wall clock (the
    per-iteration elapsed() reads would diverge between lockstep and
    sequential runs), and small enough ``m`` that every eigenvalue call is
    the deterministic dense path.
    """
    if not (isinstance(opts.oracle, str) and opts.oracle == "fast"):
        return None
    if opts.backend is not None:
        return None
    if not get_array_backend(opts.array_backend).is_numpy:
        # The fused lockstep kernels are NumPy-resident; non-NumPy array
        # backends take the sequential per-instance path.
        return None
    if not opts.supervise:
        return None
    if opts.collect_history:
        return None
    if opts.track_primal_average not in (None, False):
        return None
    if opts.psi_state not in ("auto", "implicit"):
        return None
    if opts.wall_clock_budget is not None:
        return None
    eps = float(opts.epsilon)
    if not (0.0 < eps < 1.0):
        return None
    oracle_eps = opts.oracle_eps if opts.oracle_eps is not None else eps / 4.0
    if not (0.0 < float(oracle_eps) < 1.0):
        return None
    if not constraints.has_exact_factors:
        return None
    packed = constraints.packed_view
    if packed is None:
        # Probe on a throwaway view.  Caching it on the collection would
        # reroute ``traces()`` through the packed rounding for instances
        # that end up on the sequential fallback, perturbing their bits
        # relative to a fresh ``decision_psdp`` call.
        packed = PackedGramFactors.from_collection(constraints)
    if packed.is_sparse:
        return None
    m = constraints.dim
    if not (0 < m <= _DENSE_EIG_CUTOFF):
        return None
    if packed.total_rank <= 0:
        return None
    if packed.auto_taylor_mode() != "gram":
        return None
    if select_trace_mode(m, packed.total_rank) != "gram":
        return None
    if min(jl_dimension(m, float(oracle_eps) / 2.0, constant=8.0), m) < m:
        return None
    return (m, len(constraints), tuple(int(r) for r in packed.ranks))


class _FusedInstance:
    """One instance's private solver objects inside a fused group.

    Mirrors the sequential solver's setup (same construction order, same
    rng consumption, same initial charges) so every per-instance object —
    oracle, engine, trace estimator, psi state, supervisor, tracker —
    evolves exactly as it would under ``decision_psdp``.
    """

    def __init__(
        self, index: int, problem: Any, constraints: ConstraintCollection,
        opts: DecisionOptions, traces: np.ndarray, rng_index: int | None = None,
    ) -> None:
        self.index = index
        # The rng stream is keyed by ``rng_index`` (defaults to the batch
        # position): callers that re-batch the same logical request across
        # calls (the solve service) pin it so the stream follows the
        # request, not its position in whatever batch it lands in.
        self.rng_index = index if rng_index is None else rng_index
        self.problem = problem
        self.constraints = constraints
        self.opts = opts
        self.result: DecisionResult | None = None
        self.last_values: np.ndarray | None = None

        child = instance_rng(opts.rng, self.rng_index)
        cfg = get_config()
        self.eps = float(opts.epsilon)
        self.params = DecisionParameters.from_instance(len(constraints), self.eps)
        self.n, self.m = len(constraints), constraints.dim
        self.packed = constraints.packed()

        if np.any(traces <= 0):
            raise InvalidProblemError(
                "every constraint matrix must have a positive trace (remove zero matrices)"
            )

        self.tracker = WorkDepthTracker()
        self.backend = SerialBackend(tracker=self.tracker)
        self.oracle = make_oracle(
            constraints,
            kind="fast",
            eps=opts.oracle_eps if opts.oracle_eps is not None else self.eps / 4.0,
            kappa_bound=None,
            rng=child,
            backend=self.backend,
        )
        self.oracle_kind = "fast"
        check_every = opts.certificate_check_every
        if check_every is None:
            check_every = 0 if opts.strict else cfg.certificate_check_every
        self.check_every = check_every
        self.max_iterations = (
            opts.max_iterations if opts.max_iterations is not None else self.params.R
        )
        self.log_depth = math.log2(max(self.n, 2)) + math.log2(max(self.m, 2))
        self.select_depth = math.log2(max(self.n, 2))
        eig_rng = spawn_generators(child, 1)[0]
        self.eig_rng = eig_rng
        state = make_psi_state(
            constraints,
            1.0 / (self.n * traces),
            oracle=self.oracle,
            eig_rng=eig_rng,
            mode=opts.psi_state,
        )
        self.implicit = state.mode == "implicit"
        self.x0 = state.x
        self.tracker.charge(state.init_work, self.log_depth, label="init-psi")
        self.supervisor = FastPathSupervisor(
            oracle=self.oracle,
            state=state,
            constraints=constraints,
            tracker=self.tracker,
            log_depth=self.log_depth,
            eig_rng=eig_rng,
            wall_clock_budget=opts.wall_clock_budget,
            iteration_budget=opts.iteration_budget,
            max_recoveries=opts.max_recoveries,
        )


def _sequential_result(problem: Any, opts: DecisionOptions, index: int) -> DecisionResult:
    """The contract's sequential solve for instance ``index``."""
    heartbeat = opts.heartbeat
    if heartbeat is not None:
        # The solo solver reports ``instance=None``; re-tag its beats with
        # this instance's rng index so executor watchdogs can attribute the
        # shipped checkpoints to the right request.
        def tagged(checkpoint, _instance, _cb=heartbeat, _idx=index):
            _cb(checkpoint, _idx)

        opts = dataclasses.replace(opts, heartbeat=tagged)
    return decision_psdp(
        problem, options=dataclasses.replace(opts, rng=instance_rng(opts.rng, index))
    )


def _eject(
    inst: _FusedInstance, opts: DecisionOptions, iteration: int, site: str, detail: str
) -> None:
    """Remove one faulted instance from the batch and re-solve it sequentially.

    The re-solve replays the instance's exact rng stream on a *pristine*
    rebuild of its constraint collection (the batched attempt built the
    packed view on the original, which would reroute ``traces()`` through
    the packed rounding and perturb the bits relative to a fresh
    ``decision_psdp`` call): an *organic* failure recurs at the same point
    and flows through the sequential supervisor's demotion ladder, so the
    stored result is exactly what ``decision_psdp`` would have returned.
    When the re-solve instead comes back pristine (``CERTIFIED``, zero
    recovery events), the failure was an injected fault consumed by the
    discarded batched attempt — the result is then marked ``DEGRADED``
    with a synthetic ``batched -> sequential`` recovery event so chaos
    harnesses observe the ejection.
    """
    fresh = ConstraintCollection(list(inst.constraints.operators), validate=False)
    result = _sequential_result(fresh, opts, inst.rng_index)
    events = result.metadata.get("recovery_events") or []
    if result.status == SolveStatus.CERTIFIED and not events:
        result.metadata["recovery_events"] = [
            {
                "site": site,
                "kind": "BatchEjection",
                "from_mode": "batched",
                "to_mode": "sequential",
                "iteration": int(iteration),
                "detail": detail,
            }
        ]
        sup = result.metadata.get("supervisor")
        if isinstance(sup, dict):
            sup["recoveries"] = int(sup.get("recoveries", 0)) + 1
        result.status = SolveStatus.DEGRADED
        result.metadata["solve_status"] = SolveStatus.DEGRADED.value
    inst.result = result


def _build(
    inst: _FusedInstance,
    outcome: DecisionOutcome,
    iterations: int,
    early: bool,
    dual_candidate: np.ndarray,
    primal_final: bool = False,
    status: SolveStatus | None = None,
) -> DecisionResult:
    """Mirror of the sequential solver's ``build_result`` for one instance."""
    supervisor = inst.supervisor
    try:
        lam, eig_work = supervisor.lambda_max(final=True, iteration=iterations)
        state = supervisor.state
    except BudgetExhaustedError:
        lam, eig_work = float("nan"), 0.0
        status = SolveStatus.FAILED
        state = supervisor.state
    inst.tracker.charge(eig_work, inst.log_depth, label="dual-rescale")
    verified = bool(np.isfinite(lam))
    scale = lam if lam > 0 else 1.0
    dual_x = dual_candidate / scale
    dual_value = float(dual_x.sum()) if verified else float("nan")
    dual_lam = lam / scale if verified else float("nan")

    # The fused loop only runs on the implicit state with primal tracking
    # off, so the primal branch is the matrix-free one with zero tracked
    # rounds: the certificate's trace products are the oracle's last
    # estimates, and primal_y is attached as a deferred build below.
    if primal_final and inst.last_values is not None:
        min_dot = float(inst.last_values.min(initial=np.inf))
    else:
        min_dot = float("nan")

    if status is None:
        status = (
            SolveStatus.DEGRADED
            if supervisor.recovery_events
            else SolveStatus.CERTIFIED
        )
    result = DecisionResult(
        outcome=outcome,
        dual_x=dual_x,
        primal_y=None,
        dual_value=dual_value,
        primal_min_dot=min_dot,
        dual_lambda_max=dual_lam,
        iterations=iterations,
        max_iterations=inst.max_iterations,
        epsilon=inst.eps,
        early_exit=early,
        status=status,
        history=None,
        counters=inst.oracle.counters,
        work_depth=inst.tracker.report(),
        metadata={
            "K": inst.params.K,
            "alpha": inst.params.alpha,
            "R": inst.params.R,
            "oracle": inst.oracle_kind,
            "strict": inst.opts.strict,
            "solve_status": status.value,
            "x_l1": float(dual_candidate.sum()),
            "psi_state": state.stats(),
            **oracle_engine_metadata(inst.oracle),
            "recovery_events": supervisor.event_dicts(),
            "supervisor": supervisor.stats(),
            **inst.opts.metadata,
        },
    )
    if primal_final:
        constraints = inst.constraints

        def build_primal() -> np.ndarray:
            y = expm_normalized(state.densify())
            result.primal_min_dot = float(constraints.dots(y).min(initial=np.inf))
            return y

        result.primal_builder = build_primal
    return result


def _compact(
    active: list[_FusedInstance], *stacks: np.ndarray
) -> tuple[list[_FusedInstance], list[np.ndarray]]:
    """Drop instances whose result is set; slice the batch stacks to match."""
    keep = [b for b, inst in enumerate(active) if inst.result is None]
    if len(keep) == len(active):
        return active, list(stacks)
    sel = np.asarray(keep, dtype=np.int64)
    return [active[b] for b in keep], [stack[sel] for stack in stacks]


def _solve_group(instances: list[_FusedInstance], opts: DecisionOptions) -> None:
    """Run one shape-homogeneous group through the fused lockstep loop.

    Stores each instance's :class:`~repro.core.result.DecisionResult` on
    ``inst.result``.  The loop mirrors the sequential Algorithm 3.1 body
    statement-for-statement; only the shape-uniform numeric kernels are
    batched, and every exit/bookkeeping decision is taken per instance.
    """
    inst0 = instances[0]
    eps = inst0.eps
    params = inst0.params
    max_iterations = inst0.max_iterations
    check_every = inst0.check_every
    checkpoint_every = opts.checkpoint_every or 0
    n, m = inst0.n, inst0.m
    offsets = inst0.packed.offsets
    ranks = np.asarray(inst0.packed.ranks, dtype=np.int64)

    def capture_inst(inst: _FusedInstance, iteration: int):
        # Mirrors the sequential solver's capture() closure on the fused
        # (implicit, no-history, no-primal-tracking) path: dots_sum stays
        # its all-zero initial value because primal tracking is off behind
        # the fast oracle, so the capture is bit-identical to the one a
        # sequential solve of this instance would take at the same t.
        return capture_checkpoint(
            solver="psdp",
            iteration=iteration,
            eps=inst.eps,
            oracle_kind=inst.oracle_kind,
            strict=inst.opts.strict,
            n=inst.n,
            m=inst.m,
            oracle=inst.oracle,
            state=inst.supervisor.state,
            supervisor=inst.supervisor,
            eig_rng=inst.eig_rng,
            tracker=inst.tracker,
            history=None,
            primal_sum=None,
            primal_rounds=0,
            last_density=None,
            dots_sum=np.zeros(inst.n, dtype=np.float64),
            last_values=inst.last_values,
        )

    active = list(instances)
    x_stack = np.stack([inst.x0 for inst in active])
    q_stack = np.stack(
        [np.asarray(inst.packed.dense_columns(), dtype=np.float64) for inst in active]
    )
    # The sequential estimate pass recomputes Q^T Q every oracle call (the
    # apply's down-projection of the factor stack onto itself); the product
    # is weight-independent, so compute it once per instance with the same
    # 2-D GEMM expression and reuse the stacked copy.
    inner0_stack = np.stack([inst.packed.gram_matrix() for inst in active])

    t = 0
    while active:
        # --- loop condition (per instance), then post-loop outcomes -------
        x_sums = np.sum(x_stack, axis=1)
        for b, inst in enumerate(active):
            xs = float(x_sums[b])
            if xs > params.K:
                inst.result = _build(
                    inst, DecisionOutcome.DUAL, t, early=False,
                    dual_candidate=np.array(x_stack[b]),
                )
            elif t >= max_iterations:
                inst.result = _build(
                    inst, DecisionOutcome.PRIMAL, t, early=False,
                    dual_candidate=np.array(x_stack[b]), primal_final=True,
                )
        active, (x_stack, q_stack, inner0_stack) = _compact(
            active, x_stack, q_stack, inner0_stack
        )
        if not active:
            break

        # --- budget checks -------------------------------------------------
        for b, inst in enumerate(active):
            if inst.supervisor.budget_exhausted(t) is not None:
                # Same continuation contract as the sequential solver: the
                # checkpoint is captured *before* _build (whose final
                # lambda_max mutates the state and counters), and resuming
                # it through decision_psdp continues the run bit-identically
                # to the sequential solve on the instance's spawned stream.
                checkpoint = capture_inst(inst, t)
                inst.result = _build(
                    inst, DecisionOutcome.DUAL, t, early=True,
                    dual_candidate=np.array(x_stack[b]),
                    status=SolveStatus.BUDGET_EXHAUSTED,
                )
                inst.result.metadata["checkpoint"] = checkpoint
        active, (x_stack, q_stack, inner0_stack) = _compact(
            active, x_stack, q_stack, inner0_stack
        )
        if not active:
            break
        t += 1

        # --- oracle pass: per-instance engine updates, batched numeric core
        batch = len(active)
        negative = np.any(x_stack < 0, axis=1)
        if negative.any():
            # expand_weights raises on negative weights sequentially; the
            # per-instance re-solve reproduces that exact error.
            for b in np.flatnonzero(negative):
                _eject(
                    active[b], opts, t, "expand_weights",
                    "negative constraint weights in batched solve",
                )
            active, (x_stack, q_stack, inner0_stack) = _compact(
                active, x_stack, q_stack, inner0_stack
            )
            if not active:
                break
            batch = len(active)
        colw_stack = np.repeat(x_stack, ranks, axis=1)
        for b, inst in enumerate(active):
            inst.oracle.fused_update_weights(colw_stack[b])
        # Engine invariant: after update_weights the Gram buffer holds
        # gram0 * col_w column-for-column, so the stacked form is one
        # elementwise pass instead of a copy of each engine's buffer.
        g_stack = inner0_stack * colw_stack[:, None, :]

        v0_stack = np.empty((batch, m), dtype=np.float64)
        for b, inst in enumerate(active):
            v0_stack[b] = inst.oracle.fused_power_v0()
        qt_stack = q_stack.transpose(0, 2, 1)

        # The power iteration passes the same `rows` object until another
        # slice converges, so the subset stacks are re-sliced only on those
        # compaction events, not every sweep.
        sub_cache: dict = {"rows": None, "qt": qt_stack, "q": q_stack, "cw": colw_stack}

        def apply_stack(vecs: np.ndarray, rows: np.ndarray | None) -> np.ndarray:
            if rows is not sub_cache["rows"]:
                sub_cache["rows"] = rows
                if rows is None:
                    sub_cache["qt"], sub_cache["q"] = qt_stack, q_stack
                    sub_cache["cw"] = colw_stack
                else:
                    sub_cache["qt"], sub_cache["q"] = qt_stack[rows], q_stack[rows]
                    sub_cache["cw"] = colw_stack[rows]
            # NumPy-resident by the _fused_key contract; the stacked GEMMs
            # route through the shared NumPy backend object.
            inner = NUMPY.matmul(sub_cache["qt"], vecs[:, :, None])
            inner *= sub_cache["cw"][:, :, None]
            return NUMPY.matmul(sub_cache["q"], inner)[:, :, 0]

        estimates, vectors = batched_spectral_norm_power(
            apply_stack, v0_stack,
            fallback_rngs=[inst.oracle.rng for inst in active],
        )
        degrees = np.empty(batch, dtype=np.int64)
        for b, inst in enumerate(active):
            kappa = inst.oracle.fused_norm_result(
                float(estimates[b]), np.array(vectors[b])
            )
            degrees[b] = taylor_degree(kappa / 2.0, inst.oracle.eps / 2.0)

        out_stack = batched_gram_taylor_apply(
            q_stack, inner0_stack, g_stack, colw_stack, degrees, scale=0.5
        )
        fault_hook_array("taylor_gram.apply", out_stack)
        finite = np.isfinite(out_stack).all(axis=(1, 2))
        if not finite.all():
            for b in np.flatnonzero(~finite):
                _eject(
                    active[b], opts, t, "taylor_gram.apply",
                    "non-finite fused Taylor output in batched solve",
                )
            active, (x_stack, q_stack, inner0_stack, colw_stack, out_stack, degrees) = (
                _compact(
                    active, x_stack, q_stack, inner0_stack, colw_stack,
                    out_stack, degrees,
                )
            )
            if not active:
                break
            batch = len(active)

        col_vals = NUMPY.einsum("bij,bij->bj", out_stack, out_stack)
        results_stack = batched_segment_sums(col_vals, offsets)

        # Batched Gram-spectrum traces: one stacked eigendecomposition for
        # the whole group.  Rows on which the scalar path would have raised
        # come back nan and are ejected — the sequential re-solve reproduces
        # the exact error for that instance alone.
        traces_stack = batched_gram_exp_trace(
            inner0_stack, colw_stack, m, degrees, scale=0.5, squared=True
        )
        values_stack = np.empty((batch, n), dtype=np.float64)
        for b, inst in enumerate(active):
            trace = float(traces_stack[b])
            if not np.isfinite(trace):
                _eject(
                    inst, opts, t, "trace_estimation",
                    "Gram-spectrum trace evaluation failed in batched solve",
                )
                continue
            estimate = inst.oracle.trace_estimator.record_gram_estimate(
                trace, int(degrees[b])
            )
            if trace <= 0:
                _eject(
                    inst, opts, t, "trace_estimation",
                    "sketched trace estimate is non-positive",
                )
                continue
            work = inst.oracle.record_fused_call(int(degrees[b]), estimate)
            inst.tracker.charge(work, inst.log_depth, label="oracle")
            values_stack[b] = results_stack[b] / trace
        active, (x_stack, q_stack, inner0_stack, values_stack) = _compact(
            active, x_stack, q_stack, inner0_stack, values_stack
        )
        if not active:
            break

        # --- select + empty-update-set primal exit -------------------------
        mask_stack = values_stack <= 1.0 + eps
        updated_counts = mask_stack.sum(axis=1)
        for b, inst in enumerate(active):
            inst.last_values = np.array(values_stack[b])
            inst.tracker.charge(float(n), inst.select_depth, label="select")
            if int(updated_counts[b]) == 0:
                inst.result = _build(
                    inst, DecisionOutcome.PRIMAL, t, early=True,
                    dual_candidate=np.array(x_stack[b]), primal_final=True,
                )
        active, (x_stack, q_stack, inner0_stack, mask_stack) = _compact(
            active, x_stack, q_stack, inner0_stack, mask_stack
        )
        if not active:
            break

        # --- multiplicative update (batched), per-instance state refresh --
        delta_stack = np.where(mask_stack, params.alpha * x_stack, 0.0)
        x_stack = x_stack + delta_stack
        for b, inst in enumerate(active):
            update_work = inst.supervisor.state.replace_weights(np.array(x_stack[b]))
            inst.tracker.charge(update_work, inst.log_depth, label="update")

        # --- early certificate checks -------------------------------------
        if check_every and t % check_every == 0:
            x_sums_post = np.sum(x_stack, axis=1)
            for b, inst in enumerate(active):
                try:
                    lam, eig_work = inst.supervisor.lambda_max(iteration=t)
                except BudgetExhaustedError:
                    inst.result = _build(
                        inst, DecisionOutcome.DUAL, t, early=True,
                        dual_candidate=np.array(x_stack[b]),
                        status=SolveStatus.FAILED,
                    )
                    continue
                if getattr(inst.supervisor.state, "mode", "dense") != "implicit":
                    # The check demoted this instance's state to dense; the
                    # fused loop only mirrors the implicit path, so hand the
                    # instance back to the sequential solver (which replays
                    # the same demotion deterministically).
                    _eject(
                        inst, opts, t, "psi_state.matvec",
                        "state demoted to dense during batched certificate check",
                    )
                    continue
                inst.tracker.charge(
                    eig_work, inst.log_depth, label="certificate-check"
                )
                if lam > 0 and float(x_sums_post[b]) / lam >= 1.0 - eps:
                    inst.result = _build(
                        inst, DecisionOutcome.DUAL, t, early=True,
                        dual_candidate=np.array(x_stack[b]),
                    )
            active, (x_stack, q_stack, inner0_stack) = _compact(
                active, x_stack, q_stack, inner0_stack
            )

        # --- periodic captures / heartbeats (same cadence and loop point
        # --- as the sequential solver's end-of-body capture).  Captures
        # --- are side-effect-free, so skipping them when nobody listens
        # --- keeps the lockstep loop lean without changing result bits.
        if checkpoint_every and opts.heartbeat is not None and t % checkpoint_every == 0:
            for inst in active:
                opts.heartbeat(capture_inst(inst, t), inst.rng_index)


def solve_many(
    problems: Sequence[Any],
    epsilon: float | None = None,
    options: DecisionOptions | None = None,
    *,
    rng_indices: Sequence[int] | None = None,
    **overrides: Any,
) -> list[DecisionResult]:
    """Solve ``B`` independent ε-decision problems, batched where possible.

    Parameters
    ----------
    problems:
        Sequence of instances, each anything
        :func:`~repro.core.decision.decision_psdp` accepts (a
        :class:`~repro.core.problem.NormalizedPackingSDP`, a
        :class:`~repro.operators.ConstraintCollection`, or a list of PSD
        matrices).  Shapes may be ragged across the batch; instances are
        grouped by ``(m, n, ranks)`` and each shape-homogeneous group that
        clears the fusion gate runs the lockstep batched-GEMM loop, the
        rest solve sequentially.
    epsilon:
        Accuracy parameter; overrides the one in ``options`` (same calling
        convention as ``decision_psdp``).
    options:
        One :class:`~repro.core.decision.DecisionOptions` bundle applied to
        every instance; fields can be overridden with keyword arguments.
    rng_indices:
        Optional per-instance rng stream indices (default ``0..B-1``, the
        batch positions).  ``results[i]`` then matches
        ``decision_psdp(problems[i], rng=instance_rng(options.rng,
        rng_indices[i]))``: a caller that re-submits the same logical
        instance across differently-composed batches (the solve service's
        retry path) pins its stream by passing the same index every time.

    Returns
    -------
    list[DecisionResult]
        ``results[i]`` is bit-identical to
        ``decision_psdp(problems[i], options=replace(options,
        rng=instance_rng(options.rng, i)))`` — same outcome, certified
        dual, counters and metadata — regardless of batch composition or
        the order in which batchmates terminate (the supervisor's
        wall-clock ``elapsed`` metadata reading is the one excluded field).
    """
    opts = resolve_decision_options(epsilon, options, overrides)
    problems = list(problems)
    if rng_indices is not None and len(rng_indices) != len(problems):
        raise InvalidProblemError(
            f"rng_indices has {len(rng_indices)} entries for {len(problems)} problems"
        )
    results: list[DecisionResult | None] = [None] * len(problems)
    groups: dict[tuple, list[_FusedInstance]] = {}
    for index, problem in enumerate(problems):
        rng_index = index if rng_indices is None else int(rng_indices[index])
        constraints = _resolve_constraints(problem)
        # Snapshot the traces *before* the fusion gate builds the packed
        # view: ``traces()`` reroutes through the packed fast path once
        # that view exists, and the sequential solver reads them before
        # its oracle builds it — same values, different rounding order.
        traces = constraints.traces()
        key = _fused_key(opts, constraints)
        if key is None:
            results[index] = _sequential_result(problem, opts, rng_index)
            continue
        inst = _FusedInstance(index, problem, constraints, opts, traces, rng_index=rng_index)
        if not inst.implicit:  # pragma: no cover - gate guarantees implicit
            results[index] = _sequential_result(problem, opts, rng_index)
            continue
        groups.setdefault(key, []).append(inst)
    for group in groups.values():
        _solve_group(group, opts)
        for inst in group:
            results[inst.index] = inst.result
    return results  # type: ignore[return-value]
