"""Normalization of a general positive SDP (Appendix A) and the decision
reduction bookkeeping of Lemma 2.2.

Appendix A of the paper transforms the general primal covering program

.. math:: \\min C \\bullet Y \\; \\text{s.t.}\\; A_i \\bullet Y \\ge b_i,\\; Y \\succeq 0

into the normalized form of Figure 2 by defining

.. math:: B_i = \\tfrac{1}{b_i} C^{-1/2} A_i C^{-1/2},

which leaves the optimal value unchanged (``Z = C^{1/2} Y C^{1/2}`` maps
feasible points between the two programs).  Constraints with ``b_i = 0`` are
dropped (they are vacuous for a PSD ``Y``), and ``C`` is treated as full
rank on the joint support of the constraints (its inverse square root is a
pseudo-inverse square root), exactly as the paper assumes "all A_i's are in
the support of C".

Lemma 2.2 additionally lets the decision solver assume ``Tr[A_i] <= O(n^3)``
after rescaling: constraints whose trace exceeds the cap contribute at most
``1/n`` to the dual optimum and may be ignored at an ``eps`` additive loss.
:func:`apply_trace_cap` implements that filtering step explicitly so the
loss is visible and testable rather than implicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.linalg.factorization import inverse_sqrt, sqrt_psd
from repro.operators.collection import ConstraintCollection
from repro.operators.dense import DensePSDOperator
from repro.operators.factorized import FactorizedPSDOperator
from repro.core.problem import NormalizedPackingSDP, PositiveSDP


@dataclass
class NormalizationMap:
    """Records how a :class:`PositiveSDP` was normalized.

    Holds everything needed to map solutions of the normalized program back
    to the original variables:

    * a primal matrix ``Z`` of the normalized program corresponds to
      ``Y = C^{-1/2} Z C^{-1/2}`` in the original program;
    * a dual vector ``x`` of the normalized program corresponds to the
      original dual variables ``x_i / b_i`` (zero for dropped constraints).
    """

    c_inv_sqrt: np.ndarray
    c_sqrt: np.ndarray
    kept_indices: list[int]
    original_rhs: np.ndarray
    dropped_zero_rhs: list[int] = field(default_factory=list)

    def primal_to_original(self, z: np.ndarray) -> np.ndarray:
        """Map a normalized primal matrix ``Z`` to the original ``Y``."""
        z = np.asarray(z, dtype=np.float64)
        return self.c_inv_sqrt @ z @ self.c_inv_sqrt

    def primal_from_original(self, y: np.ndarray) -> np.ndarray:
        """Map an original primal matrix ``Y`` to the normalized ``Z``."""
        y = np.asarray(y, dtype=np.float64)
        return self.c_sqrt @ y @ self.c_sqrt

    def dual_to_original(self, x: np.ndarray) -> np.ndarray:
        """Map a normalized dual vector to the original constraint indexing."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != len(self.kept_indices):
            raise InvalidProblemError(
                f"expected dual vector of length {len(self.kept_indices)}, got {x.shape[0]}"
            )
        out = np.zeros(self.original_rhs.shape[0], dtype=np.float64)
        for value, idx in zip(x, self.kept_indices):
            b = self.original_rhs[idx]
            out[idx] = value / b if b > 0 else 0.0
        return out


def normalize_sdp(problem: PositiveSDP, rcond: float = 1e-12) -> tuple[NormalizedPackingSDP, NormalizationMap]:
    """Normalize a general positive SDP into the Figure 2 form (Appendix A).

    Returns the normalized packing/covering pair and the
    :class:`NormalizationMap` required to translate solutions back.

    Constraints with ``b_i = 0`` are dropped (recorded in the map); an
    entirely-zero right-hand side is rejected because the resulting program
    is trivial (``Y = 0`` is optimal).
    """
    c_dense = problem.objective.to_dense()
    c_inv_sqrt = inverse_sqrt(c_dense, rcond=rcond)
    c_sqrt = sqrt_psd(c_dense)

    kept: list[int] = []
    dropped: list[int] = []
    operators = []
    for idx, op in enumerate(problem.constraints):
        b = float(problem.rhs[idx])
        if b <= 0.0:
            dropped.append(idx)
            continue
        kept.append(idx)
        if isinstance(op, FactorizedPSDOperator):
            # B_i = (C^{-1/2} Q_i)(C^{-1/2} Q_i)^T / b_i keeps the factorized form
            factor = c_inv_sqrt @ op.gram_factor()
            operators.append(FactorizedPSDOperator(factor / np.sqrt(b)))
        else:
            mat = c_inv_sqrt @ op.to_dense() @ c_inv_sqrt
            operators.append(DensePSDOperator(mat / b, validate=False))
    if not kept:
        raise InvalidProblemError(
            "all right-hand sides are zero: the covering optimum is trivially 0"
        )
    normalized = NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False), name=f"{problem.name}-normalized"
    )
    mapping = NormalizationMap(
        c_inv_sqrt=c_inv_sqrt,
        c_sqrt=c_sqrt,
        kept_indices=kept,
        original_rhs=problem.rhs.copy(),
        dropped_zero_rhs=dropped,
    )
    return normalized, mapping


@dataclass
class TraceCapResult:
    """Outcome of applying the Lemma 2.2 trace cap to a decision instance."""

    constraints: ConstraintCollection
    kept_indices: list[int]
    dropped_indices: list[int]
    trace_cap: float


def apply_trace_cap(
    constraints: ConstraintCollection, trace_cap: float | None = None
) -> TraceCapResult:
    """Drop constraints whose trace exceeds the Lemma 2.2 cap.

    Parameters
    ----------
    constraints:
        Decision-instance constraints (already scaled so the interesting
        threshold is 1).
    trace_cap:
        Cap on ``Tr[A_i]``; defaults to ``n^3`` as in Lemma 2.2.  Constraints
        above the cap can contribute at most ``1/n`` total dual weight, so
        dropping them changes the optimum by less than ``eps`` for the
        accuracy regimes the solver targets.
    """
    n = len(constraints)
    cap = float(n) ** 3 if trace_cap is None else float(trace_cap)
    if cap <= 0:
        raise InvalidProblemError(f"trace_cap must be > 0, got {cap}")
    traces = constraints.traces()
    kept = [i for i in range(n) if traces[i] <= cap]
    dropped = [i for i in range(n) if traces[i] > cap]
    if not kept:
        raise InvalidProblemError(
            "the trace cap removed every constraint; the instance is badly scaled"
        )
    subset = constraints.subset(kept) if dropped else constraints
    return TraceCapResult(
        constraints=subset, kept_indices=kept, dropped_indices=dropped, trace_cap=cap
    )
