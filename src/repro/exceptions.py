"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to discriminate between input problems (:class:`InvalidProblemError`,
:class:`NotPositiveSemidefiniteError`), numerical issues
(:class:`NumericalError`), and solver-state issues
(:class:`SolverError`, :class:`CertificateError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidProblemError(ReproError, ValueError):
    """The supplied problem data does not describe a valid positive SDP/LP.

    Raised for shape mismatches, negative right-hand sides, empty constraint
    sets, non-symmetric matrices, and similar structural defects detected
    during problem construction or validation.
    """


class NotPositiveSemidefiniteError(InvalidProblemError):
    """A matrix that must be positive semidefinite is not.

    The offending minimum eigenvalue (when available) is stored in
    :attr:`min_eigenvalue` to aid debugging of nearly-PSD inputs.
    """

    def __init__(self, message: str, min_eigenvalue: float | None = None):
        super().__init__(message)
        self.min_eigenvalue = min_eigenvalue


class NumericalError(ReproError, ArithmeticError):
    """A numerical routine failed to reach its required accuracy.

    Examples: a truncated Taylor series whose requested degree cannot meet
    the error target, a power iteration that fails to converge, or a
    Cholesky/eigen factorization that breaks down on an ill-conditioned
    matrix.

    When the failure happens inside one of the supervised fast-path kernels
    the raising site attaches structured attributes so that
    :class:`repro.robustness.FastPathSupervisor` can dispatch a targeted
    demotion instead of pattern-matching on the message:

    Attributes
    ----------
    site:
        Stable dotted identifier of the failing computation (e.g.
        ``"taylor_gram.apply"``, ``"lanczos"``, ``"hutchinson"``), or
        ``None`` when the failure predates the supervision layer.
    kernel_mode:
        The kernel/estimator mode that was active when the failure occurred
        (e.g. ``"gram"``, ``"sparse-psi"``, ``"deflated"``), when known.
    """

    def __init__(
        self,
        message: str,
        site: str | None = None,
        kernel_mode: str | None = None,
    ):
        super().__init__(message)
        self.site = site
        self.kernel_mode = kernel_mode


class FaultInjected(NumericalError):
    """A deterministic fault planted by :mod:`repro.robustness.faultinject`.

    Subclasses :class:`NumericalError` so the supervision layer handles
    injected faults through exactly the same recovery path as organic
    numerical breakdowns — chaos tests therefore exercise the production
    dispatch logic, not a parallel test-only code path.

    Attributes
    ----------
    site:
        The instrumented site the fault fired at (inherited).
    kind:
        The :mod:`~repro.robustness.faultinject` fault kind that was
        injected (e.g. ``NonConvergent``, ``BoundViolation``).
    """

    def __init__(
        self,
        message: str,
        site: str | None = None,
        kernel_mode: str | None = None,
        kind: object | None = None,
    ):
        super().__init__(message, site=site, kernel_mode=kernel_mode)
        self.kind = kind


class SerializationError(ReproError, ValueError):
    """A file produced or consumed by :mod:`repro.io.serialization` is bad.

    Raised when a payload is truncated, has the wrong archive kind or
    format version, is missing required entries, or carries arrays whose
    shape/dtype/finiteness fail validation.  The loaders raise this instead
    of letting ``zipfile``/``KeyError`` internals escape so that callers
    (and the serving layer) can distinguish "bad file" from "bad code".
    """


class CheckpointError(SerializationError):
    """A :class:`~repro.core.checkpoint.SolverCheckpoint` is unusable.

    Raised when a checkpoint file is truncated or fails its checksum, when
    its payload fails shape/dtype validation, or when a checkpoint is
    resumed against a solver/instance/options combination it was not
    captured from (wrong solver variant, mismatched dimensions or epsilon).
    """


class SolverError(ReproError, RuntimeError):
    """A solver failed to produce a solution within its resource limits."""


class BudgetExhaustedError(SolverError):
    """A wall-clock / iteration / recovery budget ran out mid-solve.

    The public solvers never let this escape: budget exhaustion is converted
    into a best-effort :class:`~repro.core.result.DecisionResult` with
    ``status`` :attr:`~repro.core.result.SolveStatus.BUDGET_EXHAUSTED` (or
    ``FAILED`` when recoveries ran out).  The exception exists as the
    internal control-flow signal between the supervisor and the solver loop,
    and for callers that drive the supervisor directly.
    """

    def __init__(self, message: str, budget: str | None = None):
        super().__init__(message)
        #: Which budget ran out: ``"wall_clock"``, ``"iterations"``, or
        #: ``"recoveries"``.
        self.budget = budget


class InfeasibleError(SolverError):
    """The problem instance was detected to be infeasible (or unbounded)."""


class CertificateError(ReproError, RuntimeError):
    """A returned solution failed certificate verification.

    The solvers in :mod:`repro.core` verify their outputs (primal feasibility,
    dual feasibility, approximation ratio) before returning.  This error is
    raised when verification fails, which indicates either a bug or a
    numerically pathological instance.
    """


class BackendError(ReproError, RuntimeError):
    """A parallel execution backend failed or was misconfigured."""
