"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers
can catch the whole family with a single ``except`` clause while still being
able to discriminate between input problems (:class:`InvalidProblemError`,
:class:`NotPositiveSemidefiniteError`), numerical issues
(:class:`NumericalError`), and solver-state issues
(:class:`SolverError`, :class:`CertificateError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidProblemError(ReproError, ValueError):
    """The supplied problem data does not describe a valid positive SDP/LP.

    Raised for shape mismatches, negative right-hand sides, empty constraint
    sets, non-symmetric matrices, and similar structural defects detected
    during problem construction or validation.
    """


class NotPositiveSemidefiniteError(InvalidProblemError):
    """A matrix that must be positive semidefinite is not.

    The offending minimum eigenvalue (when available) is stored in
    :attr:`min_eigenvalue` to aid debugging of nearly-PSD inputs.
    """

    def __init__(self, message: str, min_eigenvalue: float | None = None):
        super().__init__(message)
        self.min_eigenvalue = min_eigenvalue


class NumericalError(ReproError, ArithmeticError):
    """A numerical routine failed to reach its required accuracy.

    Examples: a truncated Taylor series whose requested degree cannot meet
    the error target, a power iteration that fails to converge, or a
    Cholesky/eigen factorization that breaks down on an ill-conditioned
    matrix.
    """


class SolverError(ReproError, RuntimeError):
    """A solver failed to produce a solution within its resource limits."""


class InfeasibleError(SolverError):
    """The problem instance was detected to be infeasible (or unbounded)."""


class CertificateError(ReproError, RuntimeError):
    """A returned solution failed certificate verification.

    The solvers in :mod:`repro.core` verify their outputs (primal feasibility,
    dual feasibility, approximation ratio) before returning.  This error is
    raised when verification fails, which indicates either a bug or a
    numerically pathological instance.
    """


class BackendError(ReproError, RuntimeError):
    """A parallel execution backend failed or was misconfigured."""
