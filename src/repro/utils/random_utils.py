"""Random-number-generator plumbing.

Every stochastic component in the package (instance generators, the
Johnson–Lindenstrauss sketch, randomized baselines) accepts either an
integer seed, an existing :class:`numpy.random.Generator`, or ``None``.
:func:`as_generator` normalises all three into a ``Generator`` so that
results are reproducible when a seed is given and the package default seed
(:attr:`repro.config.ReproConfig.default_seed`) is used otherwise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.config import get_config

RandomState = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (use the package default seed), an ``int``, a
        ``SeedSequence``, or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = get_config().default_seed
    return np.random.default_rng(seed)


def spawn_generators(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Used by the parallel backends so that each worker receives its own
    stream regardless of scheduling order, keeping parallel runs
    reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seq is None:  # pragma: no cover - exotic bit generators
            seq = np.random.SeedSequence(get_config().default_seed)
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(
            get_config().default_seed if seed is None else seed
        )
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def random_orthogonal(dim: int, rng: RandomState = None) -> np.ndarray:
    """Sample a Haar-distributed orthogonal ``dim x dim`` matrix.

    Implemented via the QR decomposition of a Gaussian matrix with the sign
    correction of Mezzadri (2007) so that the distribution is exactly Haar.
    """
    gen = as_generator(rng)
    gauss = gen.standard_normal((dim, dim))
    q, r = np.linalg.qr(gauss)
    signs = np.sign(np.diag(r))
    signs[signs == 0] = 1.0
    return q * signs


def random_unit_vector(dim: int, rng: RandomState = None) -> np.ndarray:
    """Sample a uniformly random unit vector in ``R^dim``."""
    gen = as_generator(rng)
    vec = gen.standard_normal(dim)
    norm = np.linalg.norm(vec)
    while norm < 1e-12:  # pragma: no cover - probability ~0
        vec = gen.standard_normal(dim)
        norm = np.linalg.norm(vec)
    return vec / norm


def random_partition(total: float, parts: int, rng: RandomState = None) -> np.ndarray:
    """Split ``total`` into ``parts`` non-negative values summing to ``total``.

    Sampled from a symmetric Dirichlet distribution; useful for generating
    right-hand sides and objective weights in synthetic instances.
    """
    if parts <= 0:
        raise ValueError(f"parts must be >= 1, got {parts}")
    gen = as_generator(rng)
    weights = gen.dirichlet(np.ones(parts))
    return total * weights
