"""Logging configuration helpers.

The solvers use the standard :mod:`logging` module under the ``"repro"``
logger namespace.  :func:`get_logger` returns namespaced child loggers and
:func:`enable_verbose_logging` installs a console handler with a compact
format, which examples and benchmarks use when the user passes ``--verbose``.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the package logger or a child logger named ``repro.<name>``."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_verbose_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a stream handler to the package logger (idempotent)."""
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
