"""Plain-text table and CSV rendering for benchmark and experiment reports.

The environment this repository targets has no plotting stack, so every
benchmark harness reports its "figure" as an aligned text table (one row per
series point) and optionally a CSV file for downstream plotting.
"""

from __future__ import annotations

import csv
import os
from typing import Any, Iterable, Mapping, Sequence


def _format_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, Any]] | Sequence[Sequence[Any]],
    headers: Sequence[str] | None = None,
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned monospace table.

    ``rows`` may be a sequence of dictionaries (headers inferred from the
    first row if not given) or a sequence of sequences (headers required).
    """
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"

    if isinstance(rows[0], Mapping):
        if headers is None:
            headers = list(rows[0].keys())
        table = [
            [_format_cell(row.get(h, ""), float_fmt) for h in headers]  # type: ignore[union-attr]
            for row in rows
        ]
    else:
        if headers is None:
            raise ValueError("headers are required when rows are sequences")
        table = [[_format_cell(cell, float_fmt) for cell in row] for row in rows]

    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in table)
    return "\n".join(lines)


def write_csv(
    path: str | os.PathLike[str],
    rows: Iterable[Mapping[str, Any]],
    headers: Sequence[str] | None = None,
) -> str:
    """Write dictionaries ``rows`` to ``path`` as CSV and return the path.

    Parent directories are created as needed.  Returns the string path so
    callers can log it.
    """
    rows = list(rows)
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    if headers is None:
        headers = list(rows[0].keys()) if rows else []
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(headers))
        writer.writeheader()
        for row in rows:
            writer.writerow({h: row.get(h, "") for h in headers})
    return path
