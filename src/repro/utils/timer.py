"""Lightweight wall-clock timing helpers used by benchmarks and examples."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    A ``Timer`` can be started/stopped repeatedly; :attr:`elapsed` reports
    the total accumulated time and :attr:`laps` the individual segments.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list[float] = field(default_factory=list)
    _start: float | None = None

    def start(self) -> "Timer":
        """Start a lap; returns ``self`` so it can open a ``with`` block."""
        if self._start is not None:
            raise RuntimeError("Timer is already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the running lap, record it, and return its duration."""
        if self._start is None:
            raise RuntimeError("Timer is not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.laps.append(lap)
        self.elapsed += lap
        return lap

    def reset(self) -> None:
        """Discard all laps and accumulated elapsed time."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None

    @property
    def running(self) -> bool:
        """Whether a lap is currently open."""
        return self._start is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextmanager
def timed(label: str = "", sink: Callable[[str], None] | None = None) -> Iterator[Timer]:
    """Context manager that times its body and optionally reports the result.

    Parameters
    ----------
    label:
        Human-readable description included in the report line.
    sink:
        Callable receiving the formatted report (defaults to ``print``).
    """
    timer = Timer()
    timer.start()
    try:
        yield timer
    finally:
        timer.stop()
        if label:
            report = f"[timed] {label}: {timer.elapsed:.6f}s"
            (sink or print)(report)
