"""Shared small utilities: validation, RNG plumbing, timing, text tables."""

from repro.utils.validation import (
    as_float_array,
    check_square,
    check_symmetric,
    ensure_1d,
    ensure_positive_scalar,
    symmetrize,
)
from repro.utils.random_utils import as_generator, spawn_generators
from repro.utils.timer import Timer, timed
from repro.utils.tables import format_table, write_csv

__all__ = [
    "as_float_array",
    "check_square",
    "check_symmetric",
    "ensure_1d",
    "ensure_positive_scalar",
    "symmetrize",
    "as_generator",
    "spawn_generators",
    "Timer",
    "timed",
    "format_table",
    "write_csv",
]
