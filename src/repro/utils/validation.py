"""Input validation helpers shared across the package.

These helpers normalise user inputs (lists, integer arrays, sparse matrices)
into the dense/sparse float representations the algorithms expect, and raise
:class:`repro.exceptions.InvalidProblemError` with actionable messages when
inputs are malformed.  Keeping validation centralised means every public
entry point applies the same rules.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.sparse as sp

from repro.config import get_config
from repro.exceptions import InvalidProblemError


def as_float_array(value: Any, name: str = "array") -> np.ndarray:
    """Convert ``value`` to a C-contiguous ``float64`` ndarray.

    Sparse matrices are densified (callers that want to stay sparse should
    use the operator classes in :mod:`repro.operators` instead).  NaNs and
    infinities are rejected.
    """
    if sp.issparse(value):
        arr = np.asarray(value.todense(), dtype=np.float64)
    else:
        arr = np.ascontiguousarray(value, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise InvalidProblemError(f"{name} contains NaN or infinite entries")
    return arr


def check_square(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that ``matrix`` is a 2-D square array and return it."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise InvalidProblemError(
            f"{name} must be 2-dimensional, got shape {matrix.shape}"
        )
    if matrix.shape[0] != matrix.shape[1]:
        raise InvalidProblemError(
            f"{name} must be square, got shape {matrix.shape}"
        )
    return matrix


def check_symmetric(
    matrix: np.ndarray, name: str = "matrix", tol: float | None = None
) -> np.ndarray:
    """Validate that ``matrix`` is symmetric up to a relative tolerance.

    Returns the exactly-symmetrized matrix ``(M + M.T)/2`` so downstream
    eigendecompositions see a bitwise-symmetric input.
    """
    matrix = check_square(matrix, name=name)
    tol = get_config().symmetry_tol if tol is None else tol
    scale = max(1.0, float(np.abs(matrix).max(initial=0.0)))
    asym = float(np.abs(matrix - matrix.T).max(initial=0.0))
    if asym > tol * scale:
        raise InvalidProblemError(
            f"{name} is not symmetric: max |M - M.T| = {asym:.3e} "
            f"(scale {scale:.3e}, tolerance {tol:.3e})"
        )
    return symmetrize(matrix)


def symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(M + M.T) / 2`` of ``matrix``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    return 0.5 * (matrix + matrix.T)


def ensure_1d(value: Any, name: str = "vector") -> np.ndarray:
    """Convert ``value`` into a finite 1-D ``float64`` vector."""
    arr = np.atleast_1d(np.asarray(value, dtype=np.float64)).ravel()
    if not np.all(np.isfinite(arr)):
        raise InvalidProblemError(f"{name} contains NaN or infinite entries")
    return arr


def ensure_positive_scalar(value: Any, name: str = "value", strict: bool = True) -> float:
    """Validate a (strictly) positive scalar and return it as ``float``."""
    try:
        scalar = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidProblemError(f"{name} must be a real scalar") from exc
    if not np.isfinite(scalar):
        raise InvalidProblemError(f"{name} must be finite, got {scalar}")
    if strict and scalar <= 0:
        raise InvalidProblemError(f"{name} must be > 0, got {scalar}")
    if not strict and scalar < 0:
        raise InvalidProblemError(f"{name} must be >= 0, got {scalar}")
    return scalar
