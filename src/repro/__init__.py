"""repro: width-independent parallel positive semidefinite programming.

A reproduction of "Faster and Simpler Width-Independent Parallel Algorithms
for Positive Semidefinite Programming" (Peng, Tangwongsan, Zhang; SPAA 2012
/ arXiv:1201.5135v3) as a reusable library:

* :mod:`repro.core` — the width-independent solver: the ε-decision routine
  (Algorithm 3.1), the full binary-search optimizer (Theorem 1.1 /
  Lemma 2.2), the MMW framework (Theorem 2.1) and the fast
  exponential-dot-product oracle (Theorem 4.1).
* :mod:`repro.linalg`, :mod:`repro.operators` — the PSD linear-algebra and
  constraint-representation substrates.
* :mod:`repro.parallel` — the work–depth cost model and execution backends.
* :mod:`repro.lp` — positive LP solvers (Young, Luby–Nisan), the diagonal
  special case.
* :mod:`repro.baselines` — width-dependent MMW, a Jain–Yao style primal
  updater, and exact references.
* :mod:`repro.problems` — synthetic and application-derived workloads.
* :mod:`repro.instrumentation`, :mod:`repro.io` — experiment plumbing.

Quickstart
----------
>>> import numpy as np
>>> from repro import NormalizedPackingSDP, approx_psdp
>>> from repro.problems import random_packing_sdp
>>> problem = random_packing_sdp(n=6, m=8, rng=0)
>>> result = approx_psdp(problem, epsilon=0.25)
>>> result.optimum_lower <= result.optimum_upper
True
"""

from repro.config import ReproConfig, config_override, get_config, set_config
from repro.core import (
    DecisionOptions,
    DecisionOutcome,
    DecisionResult,
    NormalizedPackingSDP,
    PositiveSDP,
    SolveResult,
    SolveStatus,
    SolverOptions,
    approx_psdp,
    big_dot_exp,
    decision_psdp,
    decision_psdp_phased,
    SolverCheckpoint,
    instance_rng,
    normalize_sdp,
    solve_many,
    verify_dual,
    verify_primal,
)
from repro.exceptions import (
    BudgetExhaustedError,
    CertificateError,
    CheckpointError,
    FaultInjected,
    InfeasibleError,
    InvalidProblemError,
    NotPositiveSemidefiniteError,
    NumericalError,
    ReproError,
    SerializationError,
    SolverError,
)
from repro.operators import ConstraintCollection, as_operator
from repro.service import (
    CircuitBreaker,
    RequestOutcome,
    ServiceResponse,
    SolveService,
    VirtualClock,
    WorkerPool,
)

__all__ = [
    "ReproConfig",
    "config_override",
    "get_config",
    "set_config",
    "DecisionOptions",
    "DecisionOutcome",
    "DecisionResult",
    "NormalizedPackingSDP",
    "PositiveSDP",
    "SolveResult",
    "SolveStatus",
    "SolverCheckpoint",
    "SolverOptions",
    "approx_psdp",
    "big_dot_exp",
    "decision_psdp",
    "decision_psdp_phased",
    "instance_rng",
    "normalize_sdp",
    "solve_many",
    "verify_dual",
    "verify_primal",
    "BudgetExhaustedError",
    "CertificateError",
    "CheckpointError",
    "FaultInjected",
    "InfeasibleError",
    "InvalidProblemError",
    "NotPositiveSemidefiniteError",
    "NumericalError",
    "ReproError",
    "SerializationError",
    "SolverError",
    "ConstraintCollection",
    "as_operator",
    "CircuitBreaker",
    "RequestOutcome",
    "ServiceResponse",
    "SolveService",
    "VirtualClock",
    "WorkerPool",
]

__version__ = "1.0.0"
