"""Operation counters for oracle implementations.

The nearly-linear-work claim of Corollary 1.2 is about the number of
primitive arithmetic operations the oracle performs, dominated by
matrix–vector products with the (sparse) ``Phi`` and by passes over the
factor nonzeros.  :class:`OracleCounters` collects these counts so that the
E2/E3 benchmarks can report work in machine-independent units next to
wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OracleCounters:
    """Mutable counter bundle shared between an oracle and its caller.

    Attributes
    ----------
    calls:
        Number of oracle invocations (solver iterations that used it).
    matvecs:
        Matrix–vector products against ``Phi`` (each costs ``O(nnz(Phi))``).
    factor_passes:
        Number of passes over constraint-factor nonzeros (each costs
        ``O(q)`` in aggregate).
    eigendecompositions:
        Full symmetric eigendecompositions performed (the exact oracle's
        dominant cost, ``O(m^3)`` each).
    flops_estimate:
        Rough floating-point operation estimate accumulated by the oracle.
    """

    calls: int = 0
    matvecs: int = 0
    factor_passes: int = 0
    eigendecompositions: int = 0
    flops_estimate: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    def record_call(self) -> None:
        """Count one oracle invocation."""
        self.calls += 1

    def add(self, key: str, amount: float = 1.0) -> None:
        """Accumulate into a free-form named counter."""
        self.extra[key] = self.extra.get(key, 0.0) + amount

    def merge(self, other: "OracleCounters") -> None:
        """Accumulate another counter set into this one (field-wise sum)."""
        self.calls += other.calls
        self.matvecs += other.matvecs
        self.factor_passes += other.factor_passes
        self.eigendecompositions += other.eigendecompositions
        self.flops_estimate += other.flops_estimate
        for key, amount in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + amount

    def export_state(self) -> dict:
        """Checkpointable snapshot preserving the integer fields exactly.

        Unlike :meth:`as_dict` (which floats everything for reporting),
        this keeps ``calls``/``matvecs``/... as ints so a restored counter
        bundle is indistinguishable from one that ran uninterrupted.
        """
        return {
            "calls": int(self.calls),
            "matvecs": int(self.matvecs),
            "factor_passes": int(self.factor_passes),
            "eigendecompositions": int(self.eigendecompositions),
            "flops_estimate": float(self.flops_estimate),
            "extra": dict(self.extra),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.calls = int(state["calls"])
        self.matvecs = int(state["matvecs"])
        self.factor_passes = int(state["factor_passes"])
        self.eigendecompositions = int(state["eigendecompositions"])
        self.flops_estimate = float(state["flops_estimate"])
        self.extra = dict(state["extra"])

    def as_dict(self) -> dict[str, float]:
        """All counters (including free-form ones) as a flat float dict."""
        out = {
            "calls": float(self.calls),
            "matvecs": float(self.matvecs),
            "factor_passes": float(self.factor_passes),
            "eigendecompositions": float(self.eigendecompositions),
            "flops_estimate": self.flops_estimate,
        }
        out.update(self.extra)
        return out
