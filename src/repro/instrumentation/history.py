"""Per-iteration convergence records for the decision solver.

Experiments E1, E5 and E9 are statements about *how the solver's state
evolves* (iteration counts, the spectrum bound of Lemma 3.2, the growth of
``||x||_1``), so the solver can optionally record an
:class:`IterationRecord` per iteration into a :class:`ConvergenceHistory`.
Recording is off by default because storing per-iteration data is the only
part of the solver whose memory footprint grows with the iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping


@dataclass(frozen=True)
class IterationRecord:
    """Snapshot of the decision solver's state after one iteration.

    Attributes
    ----------
    iteration:
        1-based iteration index ``t``.
    x_norm:
        ``||x(t)||_1`` after the update.
    updated:
        Size of the update set ``|B(t)|`` (Algorithm 3.1 line 5).
    min_value / max_value:
        Extremes of the oracle values ``P(t) . A_i`` over all constraints.
    psi_lambda_max:
        Largest eigenvalue of ``Psi(t) = sum_i x_i(t) A_i`` (tracked lazily —
        may be ``nan`` if the solver skipped the measurement).
    oracle_work:
        Work charged by the oracle during this iteration (model units).
    """

    iteration: int
    x_norm: float
    updated: int
    min_value: float
    max_value: float
    psi_lambda_max: float = float("nan")
    oracle_work: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """The record's fields as a flat dict (for tables/serialization)."""
        return {
            "iteration": self.iteration,
            "x_norm": self.x_norm,
            "updated": self.updated,
            "min_value": self.min_value,
            "max_value": self.max_value,
            "psi_lambda_max": self.psi_lambda_max,
            "oracle_work": self.oracle_work,
        }


@dataclass
class ConvergenceHistory:
    """Ordered collection of :class:`IterationRecord` objects."""

    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        """Append one iteration's record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[IterationRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> IterationRecord:
        return self.records[index]

    @property
    def iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.records)

    def final_x_norm(self) -> float:
        """``||x||_1`` at the last recorded iteration (0.0 when empty)."""
        return self.records[-1].x_norm if self.records else 0.0

    def x_norms(self) -> list[float]:
        """The ``||x||_1`` trajectory across iterations."""
        return [r.x_norm for r in self.records]

    def update_counts(self) -> list[int]:
        """Per-iteration sizes of the multiplicative-update set ``B(t)``."""
        return [r.updated for r in self.records]

    def as_rows(self) -> list[Mapping[str, float]]:
        """Rows suitable for :func:`repro.utils.tables.format_table`/CSV."""
        return [r.as_dict() for r in self.records]
