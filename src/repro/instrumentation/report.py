"""Experiment report container used by the benchmark harnesses.

Each benchmark (one per experiment in DESIGN.md's experiment index) builds
an :class:`ExperimentReport`, adds one row per series point, and renders a
text table plus an optional CSV file under ``benchmarks/results/``.  The
report is intentionally plain — a name, a list of dict rows, and free-form
notes — so benchmarks stay declarative.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.utils.tables import format_table, write_csv


@dataclass
class ExperimentReport:
    """A named table of result rows for one experiment."""

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> dict[str, Any]:
        """Append a row (keyword arguments become columns) and return it."""
        row = dict(values)
        self.rows.append(row)
        return row

    def add_note(self, note: str) -> None:
        """Attach a free-form annotation to the report."""
        self.notes.append(note)

    def headers(self) -> list[str]:
        """Column names in first-seen order across all rows."""
        seen: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def render(self, float_fmt: str = ".4g") -> str:
        """Render the report as a text block (title, table, notes)."""
        parts = [f"== {self.experiment_id}: {self.title} =="]
        parts.append(format_table(self.rows, headers=self.headers(), float_fmt=float_fmt))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_csv(self, directory: str | os.PathLike[str]) -> str:
        """Write the rows to ``<directory>/<experiment_id>.csv``."""
        path = os.path.join(os.fspath(directory), f"{self.experiment_id}.csv")
        return write_csv(path, self.rows, headers=self.headers())

    def column(self, name: str) -> list[Any]:
        """Extract one column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]

    @staticmethod
    def combine(reports: Sequence["ExperimentReport"]) -> str:
        """Render several reports separated by blank lines."""
        return "\n\n".join(report.render() for report in reports)
