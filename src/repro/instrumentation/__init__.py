"""Instrumentation: convergence histories, counters, and experiment reports."""

from repro.instrumentation.history import IterationRecord, ConvergenceHistory
from repro.instrumentation.counters import OracleCounters
from repro.instrumentation.report import ExperimentReport

__all__ = [
    "IterationRecord",
    "ConvergenceHistory",
    "OracleCounters",
    "ExperimentReport",
]
