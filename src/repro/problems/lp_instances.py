"""Diagonal / LP-flavoured instance generators (the E7 workloads).

When every constraint matrix is diagonal the packing SDP *is* a positive
packing LP (Section 1.2).  These generators produce such instances in both
representations so the SDP solver, the LP solvers in :mod:`repro.lp`, and
the baselines can be run on literally the same data.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.lp.positive_lp import PackingLP, diagonal_sdp_from_packing_lp
from repro.core.problem import NormalizedPackingSDP
from repro.utils.random_utils import RandomState, as_generator


def random_packing_lp(
    constraints: int,
    variables: int,
    density: float = 0.5,
    rng: RandomState = None,
    name: str | None = None,
) -> PackingLP:
    """Random non-negative packing LP with the requested density.

    Nonzero coefficients are uniform in ``(0, 1]``; every column gets at
    least one nonzero so every variable is constrained.
    """
    if not (0 < density <= 1):
        raise InvalidProblemError(f"density must be in (0, 1], got {density}")
    gen = as_generator(rng)
    matrix = gen.uniform(0.0, 1.0, size=(constraints, variables))
    mask = gen.random((constraints, variables)) < density
    matrix = matrix * mask
    for j in range(variables):
        if not matrix[:, j].any():
            matrix[gen.integers(constraints), j] = gen.uniform(0.1, 1.0)
    return PackingLP(matrix, name=name or f"random-lp({constraints}x{variables})")


def set_cover_lp(
    elements: int,
    sets: int,
    coverage: int = 3,
    rng: RandomState = None,
    name: str | None = None,
) -> PackingLP:
    """Fractional set-packing LP derived from a random set system.

    Each of the ``sets`` variables corresponds to picking a set; each of the
    ``elements`` rows limits the total (fractional) multiplicity with which
    that element may be covered to 1 — the classic packing LP whose
    rounding underlies the positive-LP applications cited in the paper's
    introduction.  ``coverage`` controls how many elements each set touches.
    """
    if coverage < 1 or coverage > elements:
        raise InvalidProblemError(f"coverage must be in [1, {elements}], got {coverage}")
    gen = as_generator(rng)
    matrix = np.zeros((elements, sets), dtype=np.float64)
    for j in range(sets):
        members = gen.choice(elements, size=coverage, replace=False)
        matrix[members, j] = 1.0
    for i in range(elements):
        if not matrix[i].any():
            matrix[i, gen.integers(sets)] = 1.0
    return PackingLP(matrix, name=name or f"set-packing({elements}el,{sets}sets)")


def diagonal_packing_sdp(
    constraints: int,
    variables: int,
    density: float = 0.5,
    rng: RandomState = None,
) -> tuple[NormalizedPackingSDP, PackingLP]:
    """A random diagonal packing SDP together with its LP twin.

    Returns ``(sdp, lp)`` describing the same instance, so experiment E7 can
    feed one to :func:`repro.core.approx_psdp` and the other to the LP
    solvers and compare the certified values directly.
    """
    lp = random_packing_lp(constraints, variables, density=density, rng=rng)
    sdp = diagonal_sdp_from_packing_lp(lp)
    return sdp, lp
