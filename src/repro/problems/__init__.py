"""Workload generators: synthetic and application-derived positive SDP instances.

These generators produce the instances the experiment harness sweeps:

* :mod:`repro.problems.random_instances` — random packing SDPs with
  controlled dimension, rank, sparsity and width (E1, E2, E5);
* :mod:`repro.problems.maxcut` — the MaxCut SDP in its positive
  (packing-style) form from Klein–Lu, built from :mod:`networkx` graphs (E6);
* :mod:`repro.problems.beamforming` — synthetic downlink-beamforming
  covering SDP relaxations in the style of Iyengar–Phillips–Stein (the one
  application of [IPS10] the paper says falls inside the packing framework);
* :mod:`repro.problems.lp_instances` — diagonal instances that are positive
  LPs in disguise (E7), including fractional set-cover style families;
* :mod:`repro.problems.sparse_pca` — sparse-PCA style packing instances
  (one of the applications credited to positive packing SDPs in [IPS11]).
"""

from repro.problems.random_instances import (
    random_packing_sdp,
    random_factorized_packing_sdp,
    random_width_controlled_sdp,
    random_positive_sdp,
)
from repro.problems.maxcut import maxcut_sdp, maxcut_value_bound, random_graph
from repro.problems.beamforming import beamforming_sdp
from repro.problems.lp_instances import (
    random_packing_lp,
    set_cover_lp,
    diagonal_packing_sdp,
)
from repro.problems.sparse_pca import sparse_pca_sdp

__all__ = [
    "random_packing_sdp",
    "random_factorized_packing_sdp",
    "random_width_controlled_sdp",
    "random_positive_sdp",
    "maxcut_sdp",
    "maxcut_value_bound",
    "random_graph",
    "beamforming_sdp",
    "random_packing_lp",
    "set_cover_lp",
    "diagonal_packing_sdp",
    "sparse_pca_sdp",
]
