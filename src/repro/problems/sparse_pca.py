"""Sample-covariance covering instances (sparse-PCA / experiment-design flavour).

Iyengar–Phillips–Stein's packing-SDP applications include sparse PCA, whose
relaxations are built from sample outer products ``a_i a_i^T`` of a data
matrix.  The positive-SDP core of that construction that fits the Figure 2
framework verbatim is the *sample-variance covering program*

.. math::

    \\min \\mathrm{Tr}[Y] \\quad\\text{s.t.}\\quad (a_i^T Y a_i) \\ge 1
    \\;\\; (i = 1..n), \\; Y \\succeq 0,

("find the cheapest PSD quadratic form giving every sample direction at
least unit variance"), together with its packing dual
``max 1^T x`` s.t. ``sum_i x_i a_i a_i^T <= I`` — a D/E-experiment-design
style weighting of the samples.  Real sparse-PCA datasets are not available
offline, so the generator synthesizes data matrices with a planted
low-dimensional spike, which produces the ill-conditioned covariance
structure that makes these instances interesting (a few directions are
covered by many samples, the rest by few).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.operators.lowrank import LowRankPSDOperator
from repro.core.problem import NormalizedPackingSDP
from repro.utils.random_utils import RandomState, as_generator


def sparse_pca_sdp(
    samples: int,
    features: int,
    spike_rank: int = 1,
    spike_strength: float = 4.0,
    rng: RandomState = None,
    name: str | None = None,
) -> NormalizedPackingSDP:
    """Generate a sample-variance covering/packing instance.

    Parameters
    ----------
    samples:
        Number of data vectors (= constraints ``n``).
    features:
        Ambient dimension (= matrix dimension ``m``).
    spike_rank:
        Dimension of the planted signal subspace.
    spike_strength:
        Variance multiplier of the planted subspace relative to the
        isotropic noise floor.
    """
    if samples < 1 or features < 1:
        raise InvalidProblemError(f"need samples >= 1 and features >= 1, got {samples}, {features}")
    if spike_rank < 0 or spike_rank > features:
        raise InvalidProblemError(f"spike_rank must be in [0, {features}], got {spike_rank}")
    if spike_strength <= 0:
        raise InvalidProblemError(f"spike_strength must be > 0, got {spike_strength}")
    gen = as_generator(rng)

    basis = np.linalg.qr(gen.standard_normal((features, max(spike_rank, 1))))[0][:, :spike_rank]
    operators = []
    for _ in range(samples):
        noise = gen.standard_normal(features)
        if spike_rank > 0:
            signal = basis @ gen.standard_normal(spike_rank) * np.sqrt(spike_strength)
        else:
            signal = 0.0
        sample = noise + signal
        norm = np.linalg.norm(sample)
        if norm < 1e-12:
            sample = np.ones(features)
            norm = np.linalg.norm(sample)
        operators.append(LowRankPSDOperator.outer(sample, weight=1.0))
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False),
        name=name or f"sparse-pca({samples}samples,{features}features)",
    )
