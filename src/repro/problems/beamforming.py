"""Multicast beamforming covering SDP instances.

The paper's Section 5 points out that among the applications of covering
SDPs studied by Iyengar, Phillips and Stein, the *beamforming SDP
relaxation* (Section 2.2 of [IPS10]) is the one that falls completely
inside the packing/covering framework of Figure 2.  The single-group
multicast downlink beamforming relaxation is

.. math::

    \\min\\; \\mathrm{Tr}(W)
    \\quad\\text{s.t.}\\quad h_k h_k^{\\mathsf H} \\bullet W \\ge \\gamma_k,
    \\; W \\succeq 0,

i.e. choose a transmit covariance ``W`` of minimum total power such that
every user ``k`` (with channel vector ``h_k`` and QoS target ``gamma_k``)
receives enough signal energy.  With ``C = I`` (or a PSD per-antenna power
shaping matrix) and rank-one constraint matrices ``A_k = h_k h_k^H`` this is
exactly Equation 1.1.

Real hardware channel traces are not available in this environment, so the
generator synthesizes Rayleigh-fading channels (i.i.d. complex Gaussian
entries, represented through the standard real embedding so all matrices
stay real symmetric PSD), which is the standard simulation model in the
beamforming literature and exercises the identical code path.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.operators.lowrank import LowRankPSDOperator
from repro.core.problem import PositiveSDP
from repro.linalg.psd import random_psd
from repro.utils.random_utils import RandomState, as_generator


def _real_embedding(vector: np.ndarray) -> np.ndarray:
    """Map a complex channel vector ``h`` to the real vector ``[Re h; Im h]``.

    Under this embedding the real symmetric matrix built from the embedded
    vectors represents the complex rank-one matrix ``h h^H``: trace products
    against real-embedded covariances agree up to the standard factor that
    is absorbed into the QoS targets.
    """
    return np.concatenate([vector.real, vector.imag])


def beamforming_sdp(
    antennas: int,
    users: int,
    snr_targets: np.ndarray | float = 1.0,
    power_shaping: bool = False,
    rng: RandomState = None,
    name: str | None = None,
) -> PositiveSDP:
    """Generate a multicast beamforming covering SDP.

    Parameters
    ----------
    antennas:
        Number of transmit antennas; the real-embedded problem dimension is
        ``2 * antennas``.
    users:
        Number of users (one covering constraint each).
    snr_targets:
        Per-user QoS thresholds ``gamma_k`` (scalar broadcast to all users).
    power_shaping:
        When ``True`` the objective uses a random positive definite
        per-antenna power shaping matrix instead of the identity, which
        exercises the Appendix A normalization with a non-trivial ``C``.
    rng:
        Randomness source for the Rayleigh channels.
    """
    if antennas < 1 or users < 1:
        raise InvalidProblemError(f"need antennas >= 1 and users >= 1, got {antennas}, {users}")
    gen = as_generator(rng)
    dim = 2 * antennas
    targets = np.broadcast_to(np.asarray(snr_targets, dtype=np.float64), (users,)).copy()
    if np.any(targets <= 0):
        raise InvalidProblemError("snr targets must be positive")

    operators = []
    for _ in range(users):
        channel = (gen.standard_normal(antennas) + 1j * gen.standard_normal(antennas)) / np.sqrt(2.0)
        embedded = _real_embedding(channel)
        operators.append(LowRankPSDOperator.outer(embedded, weight=1.0))

    if power_shaping:
        spectrum = gen.uniform(0.5, 2.0, size=dim)
        objective = random_psd(dim, rng=gen, spectrum=spectrum, scale=float(spectrum.max()))
    else:
        objective = np.eye(dim)

    return PositiveSDP(
        objective,
        ConstraintCollection(operators, validate=False),
        targets,
        name=name or f"beamforming({antennas}ant,{users}users)",
        validate=False,
    )
