"""Graph-derived positive SDP instances (MaxCut edge-matrix family).

The MaxCut SDP objective decomposes over edges as
``L/4 = sum_{(u,v) in E} (w_uv / 4) (e_u - e_v)(e_u - e_v)^T`` — a sum of
rank-one PSD *edge matrices*.  Klein–Lu's characterization of the MaxCut SDP
as a positive SDP (cited in Section 1.1 of the paper) is built on exactly
these matrices.  The full MaxCut SDP additionally needs matrix-valued
packing constraints of the mixed type the paper's Section 5 leaves to
future work, so — as the paper itself does — we evaluate on the positive
SDP core of the construction:

* **packing form** (what :func:`maxcut_sdp` returns as the dual):
  ``max sum_e x_e`` s.t. ``sum_e x_e A_e <= I`` — pack as much total edge
  weight as possible before the reweighted graph's Laplacian reaches unit
  spectral norm;
* **covering form** (the primal of the same instance): ``min Tr[Y]`` s.t.
  ``A_e . Y >= 1`` for every edge — the minimum-trace PSD embedding in
  which every edge has squared length at least 4 (a spreading-metric style
  constraint).

The constraints are stored as rank-one
:class:`~repro.operators.LowRankPSDOperator` objects, so the instance
exposes the sparse, factorized structure Corollary 1.2 is about (each edge
matrix has exactly one factor column with two nonzeros).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.operators.lowrank import LowRankPSDOperator
from repro.core.problem import NormalizedPackingSDP
from repro.utils.random_utils import RandomState, as_generator


def random_graph(
    kind: str,
    nodes: int,
    rng: RandomState = None,
    **kwargs,
) -> nx.Graph:
    """Generate a connected test graph of the requested ``kind``.

    Supported kinds: ``"cycle"``, ``"complete"``, ``"erdos_renyi"`` (extra
    kwarg ``p``, default 0.3), ``"regular"`` (extra kwarg ``degree``,
    default 3), ``"grid"`` (uses an approximately square grid), and
    ``"star"``.  Erdős–Rényi samples are re-drawn until connected (with a
    bounded number of attempts) so downstream spectral quantities are
    well-behaved.
    """
    gen = as_generator(rng)
    seed = int(gen.integers(0, 2**31 - 1))
    kind = kind.lower()
    if nodes < 2:
        raise InvalidProblemError(f"need at least 2 nodes, got {nodes}")
    if kind == "cycle":
        return nx.cycle_graph(nodes)
    if kind == "complete":
        return nx.complete_graph(nodes)
    if kind == "star":
        return nx.star_graph(nodes - 1)
    if kind == "grid":
        side = max(2, int(round(np.sqrt(nodes))))
        return nx.convert_node_labels_to_integers(nx.grid_2d_graph(side, side))
    if kind == "regular":
        degree = int(kwargs.get("degree", 3))
        if degree >= nodes:
            raise InvalidProblemError(f"degree {degree} must be < nodes {nodes}")
        if (degree * nodes) % 2 == 1:
            nodes += 1
        return nx.random_regular_graph(degree, nodes, seed=seed)
    if kind == "erdos_renyi":
        p = float(kwargs.get("p", 0.3))
        for attempt in range(50):
            graph = nx.gnp_random_graph(nodes, p, seed=seed + attempt)
            if nx.is_connected(graph):
                return graph
        # Fall back to adding a spanning cycle to the last sample.
        graph.add_edges_from((i, (i + 1) % nodes) for i in range(nodes))
        return graph
    raise InvalidProblemError(f"unknown graph kind {kind!r}")


def maxcut_sdp(
    graph: nx.Graph,
    weight: str = "weight",
    scale: float = 0.25,
    name: str | None = None,
) -> NormalizedPackingSDP:
    """Build the edge-matrix positive SDP of a graph.

    Parameters
    ----------
    graph:
        Any networkx graph; isolated nodes are allowed (they simply do not
        appear in any constraint).
    weight:
        Edge-attribute name for weights (missing attributes default to 1).
    scale:
        Multiplier applied to each edge matrix; the default ``1/4`` matches
        the MaxCut objective decomposition ``L/4``.

    Returns
    -------
    NormalizedPackingSDP
        One rank-one constraint ``scale * w_uv * (e_u - e_v)(e_u - e_v)^T``
        per edge, in the node order of ``graph.nodes``.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2 or graph.number_of_edges() == 0:
        raise InvalidProblemError("graph must have at least 2 nodes and 1 edge")
    index = {node: i for i, node in enumerate(nodes)}
    dim = len(nodes)
    operators = []
    for u, v, data in graph.edges(data=True):
        w = float(data.get(weight, 1.0))
        if w < 0:
            raise InvalidProblemError(f"edge ({u}, {v}) has negative weight {w}")
        if w == 0:
            continue
        vec = np.zeros(dim)
        vec[index[u]] = 1.0
        vec[index[v]] = -1.0
        operators.append(LowRankPSDOperator.outer(vec, weight=scale * w))
    if not operators:
        raise InvalidProblemError("graph has no positively weighted edges")
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False),
        name=name or f"maxcut-edges({graph.number_of_nodes()}n,{graph.number_of_edges()}e)",
    )


def maxcut_value_bound(graph: nx.Graph, weight: str = "weight") -> float:
    """Classical eigenvalue upper bound on the MaxCut value, ``(n/4) lambda_max(L)``.

    Used as a sanity reference in the E6 benchmark (our packing optimum and
    this bound are different quantities, but both are spectral functionals
    of the same edge matrices and move together across graph families).
    """
    laplacian = nx.laplacian_matrix(graph, weight=weight).toarray().astype(float)
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    lam_max = float(np.linalg.eigvalsh(laplacian)[-1])
    return 0.25 * n * lam_max
