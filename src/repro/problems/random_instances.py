"""Random positive-SDP instance generators.

All generators take a seed / Generator and return either a
:class:`~repro.core.problem.NormalizedPackingSDP` (already in the Figure 2
form, the common case for the solver experiments) or a general
:class:`~repro.core.problem.PositiveSDP` (used to exercise the Appendix A
normalization path).  Parameters are chosen so the instances exercise the
regimes the paper's analysis cares about:

* ``width`` — the maximum spectral norm ``max_i ||A_i||_2``; the
  width-independence experiment (E5) sweeps this over orders of magnitude;
* ``rank`` — low-rank constraints are both the application-realistic case
  (MaxCut edge matrices are rank 1) and the case where the factorized
  oracle of Theorem 4.1 shines;
* ``density`` — fraction of nonzero entries in the factors, the ``q``
  parameter of Corollary 1.2.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.operators.dense import DensePSDOperator
from repro.operators.factorized import FactorizedPSDOperator
from repro.core.problem import NormalizedPackingSDP, PositiveSDP
from repro.utils.random_utils import RandomState, as_generator


def random_packing_sdp(
    n: int,
    m: int,
    rank: int | None = None,
    scale_spread: float = 4.0,
    rng: RandomState = None,
    name: str | None = None,
) -> NormalizedPackingSDP:
    """Random dense packing SDP with ``n`` constraints of dimension ``m``.

    Each constraint is a random PSD matrix of the requested rank whose
    spectral norm is drawn log-uniformly from ``[1/scale_spread,
    scale_spread]``, giving mild heterogeneity without extreme width.
    """
    if n < 1 or m < 1:
        raise InvalidProblemError(f"need n >= 1 and m >= 1, got n={n}, m={m}")
    gen = as_generator(rng)
    mats = []
    for _ in range(n):
        scale = float(np.exp(gen.uniform(-np.log(scale_spread), np.log(scale_spread))))
        mats.append(random_psd(m, rank=rank, scale=scale, rng=gen))
    return NormalizedPackingSDP(
        ConstraintCollection([DensePSDOperator(mat, validate=False) for mat in mats], validate=False),
        name=name or f"random-packing(n={n},m={m})",
    )


def random_factorized_packing_sdp(
    n: int,
    m: int,
    rank: int = 2,
    density: float = 0.5,
    rng: RandomState = None,
    name: str | None = None,
) -> NormalizedPackingSDP:
    """Random packing SDP in *prefactored* form (the Corollary 1.2 input format).

    Each constraint is ``A_i = Q_i Q_i^T`` with ``Q_i`` an ``m x rank``
    sparse Gaussian factor of the requested density; factors are stored as
    :class:`~repro.operators.FactorizedPSDOperator` so the fast oracle and
    the nnz-based work accounting see the true ``q``.
    """
    if not (0 < density <= 1):
        raise InvalidProblemError(f"density must be in (0, 1], got {density}")
    if rank < 1:
        raise InvalidProblemError(f"rank must be >= 1, got {rank}")
    gen = as_generator(rng)
    operators = []
    for _ in range(n):
        dense_factor = gen.standard_normal((m, rank))
        if density < 1.0:
            mask = gen.random((m, rank)) < density
            # Guarantee at least one nonzero per factor so the constraint is nonzero.
            if not mask.any():
                mask[gen.integers(m), gen.integers(rank)] = True
            dense_factor = dense_factor * mask
        if np.count_nonzero(dense_factor) == 0:
            dense_factor[gen.integers(m), gen.integers(rank)] = 1.0
        factor = sp.csr_matrix(dense_factor) if density < 0.4 else dense_factor
        operators.append(FactorizedPSDOperator(factor))
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False),
        name=name or f"random-factorized(n={n},m={m},rank={rank},density={density})",
    )


def random_width_controlled_sdp(
    n: int,
    m: int,
    width: float,
    rng: RandomState = None,
    name: str | None = None,
) -> NormalizedPackingSDP:
    """Random packing SDP whose width ``max_i ||A_i||_2`` equals ``width``.

    Half of the constraints (rounded up) have unit spectral norm, the rest
    are scaled up to the requested width, so the instance's optimum stays
    within a moderate range while the width parameter alone grows — the
    construction used by the width-independence experiment (E5).
    """
    if width < 1.0:
        raise InvalidProblemError(f"width must be >= 1, got {width}")
    gen = as_generator(rng)
    operators = []
    for i in range(n):
        scale = width if i >= (n + 1) // 2 else 1.0
        mat = random_psd(m, rank=max(1, m // 2), scale=scale, rng=gen)
        operators.append(DensePSDOperator(mat, validate=False))
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False),
        name=name or f"width-controlled(n={n},m={m},width={width})",
    )


def random_positive_sdp(
    n: int,
    m: int,
    rng: RandomState = None,
    objective_condition: float = 10.0,
    name: str | None = None,
) -> PositiveSDP:
    """Random general positive SDP (Equation 1.1 form, *not* normalized).

    The objective ``C`` is a random well-conditioned positive definite
    matrix (condition number ``objective_condition``); right-hand sides are
    uniform in ``[0.5, 2]``.  Used to exercise the Appendix A normalization
    and the full ``approx_psdp`` pipeline end to end.
    """
    gen = as_generator(rng)
    spectrum = np.exp(gen.uniform(0.0, np.log(objective_condition), size=m))
    objective = random_psd(m, rng=gen, spectrum=spectrum, scale=float(spectrum.max()))
    constraints = [random_psd(m, rank=max(1, m // 2), scale=float(gen.uniform(0.5, 2.0)), rng=gen) for _ in range(n)]
    rhs = gen.uniform(0.5, 2.0, size=n)
    return PositiveSDP(
        objective,
        constraints,
        rhs,
        name=name or f"random-positive-sdp(n={n},m={m})",
        validate=False,
    )
