"""Pluggable array backends (NumPy default; torch and CuPy optional).

The registry resolves a *spec* — ``None``, a name, or an already-built
:class:`~repro.backend.base.ArrayBackend` — into a backend instance:

>>> from repro.backend import get_array_backend
>>> get_array_backend().name
'numpy'

Optional backends are probed without importing them
(:func:`available_backends`), constructed lazily on first request, and
cached.  Requesting a backend whose library is not installed raises
:class:`~repro.exceptions.BackendError` — callers that want auto-skip
behaviour (the conformance suite, the E20 benchmark) iterate
:func:`available_backends` instead.

See ``docs/BACKENDS.md`` for the backend contract: the NumPy backend is a
bit-identity pass-through, work–depth charges are shape-derived and
therefore identical across backends, and host state stays NumPy with
device arrays confined to kernel internals.
"""

from __future__ import annotations

import importlib.util

from repro.backend.base import ArrayBackend
from repro.backend.numpy_backend import NumPyBackend
from repro.exceptions import BackendError

__all__ = [
    "ArrayBackend",
    "NUMPY",
    "available_backends",
    "get_array_backend",
]

#: The shared default backend instance (stateless; safe to share globally).
NUMPY = NumPyBackend()

_OPTIONAL = ("torch", "cupy")
_CACHE: dict[str, ArrayBackend] = {"numpy": NUMPY}


def available_backends() -> tuple[str, ...]:
    """Names of the installed array backends (``"numpy"`` always first).

    Optional libraries are probed via ``importlib.util.find_spec`` so the
    check itself never imports torch/CuPy (both are heavyweight imports).
    """
    names = ["numpy"]
    for name in _OPTIONAL:
        try:
            spec = importlib.util.find_spec(name)
        except (ImportError, ValueError):  # pragma: no cover - broken install
            spec = None
        if spec is not None:
            names.append(name)
    return tuple(names)


def get_array_backend(spec: "str | ArrayBackend | None" = None) -> ArrayBackend:
    """Resolve a backend spec to an :class:`ArrayBackend` instance.

    ``None`` and ``"numpy"`` return the shared :data:`NUMPY` singleton;
    ``"torch"``/``"cupy"`` construct (and cache) the optional backend,
    raising :class:`~repro.exceptions.BackendError` when the library is not
    installed; an :class:`ArrayBackend` instance passes through unchanged.
    """
    if spec is None:
        return NUMPY
    if isinstance(spec, ArrayBackend):
        return spec
    name = str(spec).lower()
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    if name == "torch":
        try:
            from repro.backend.torch_backend import TorchBackend

            backend: ArrayBackend = TorchBackend()
        except ImportError as exc:
            raise BackendError(
                "array backend 'torch' requested but torch is not installed"
            ) from exc
    elif name == "cupy":
        try:
            from repro.backend.cupy_backend import CupyBackend

            backend = CupyBackend()
        except ImportError as exc:
            raise BackendError(
                "array backend 'cupy' requested but cupy is not installed"
            ) from exc
    else:
        raise BackendError(
            f"unknown array backend {spec!r}; expected one of "
            f"('numpy', 'torch', 'cupy') or an ArrayBackend instance"
        )
    _CACHE[name] = backend
    return backend
