"""CuPy array backend (optional — auto-skipped when CuPy/CUDA is absent).

CuPy mirrors the NumPy API closely, so most primitives are direct
delegations; the segment reductions reuse the cumulative-sum-difference
form (CuPy has no ``add.reduceat``), which matches the NumPy reference in
exact arithmetic and is the reference's own fallback path for empty
segments.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):  # pragma: no cover - requires cupy + CUDA
    """CuPy execution on the current CUDA device."""

    name = "cupy"

    def __init__(self) -> None:
        import cupy  # deferred so the registry can probe availability

        self._cp = cupy

    # ------------------------------------------------------------ transfer
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        return self._cp.asarray(x) if dtype is None else self._cp.asarray(x, dtype=dtype)

    def to_numpy(self, x: Any) -> np.ndarray:
        if isinstance(x, self._cp.ndarray):
            return self._cp.asnumpy(x)
        return np.asarray(x)

    def copy(self, x: Any) -> Any:
        return self._cp.array(x, copy=True)

    # ------------------------------------------------------ construction
    def empty(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> Any:
        return self._cp.empty(shape, dtype=dtype)

    def empty_like(self, x: Any) -> Any:
        return self._cp.empty_like(x)

    def zeros(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> Any:
        return self._cp.zeros(shape, dtype=dtype)

    def eye(self, n: int, dtype: Any = np.float64) -> Any:
        return self._cp.eye(n, dtype=dtype)

    # -------------------------------------------------------- introspection
    def dtype_of(self, x: Any) -> np.dtype:
        return np.dtype(x.dtype) if hasattr(x, "dtype") else np.asarray(x).dtype

    def device_of(self, x: Any) -> str:
        if isinstance(x, self._cp.ndarray):
            return f"cuda:{x.device.id}"
        return "cpu"

    # ------------------------------------------------------------- kernels
    def matmul(self, a: Any, b: Any, out: Any = None) -> Any:
        if out is None:
            return self._cp.matmul(a, b)
        return self._cp.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        return self._cp.einsum(subscripts, *operands)

    def norm(self, x: Any) -> float:
        return float(self._cp.linalg.norm(self.asarray(x)))

    def eigvalsh(self, a: Any) -> Any:
        return self._cp.linalg.eigvalsh(a)

    def eigh(self, a: Any) -> tuple[Any, Any]:
        w, v = self._cp.linalg.eigh(a)
        return w, v

    # ---------------------------------------------------- segment reductions
    def segment_sums(self, values: Any, offsets: np.ndarray) -> Any:
        cp = self._cp
        offsets = np.asarray(offsets, dtype=np.int64)
        nseg = max(offsets.shape[0] - 1, 0)
        values = self.asarray(values, dtype=np.float64)
        if nseg == 0 or values.shape[0] == 0:
            return cp.zeros(nseg, dtype=cp.float64)
        csum = cp.concatenate([cp.zeros(1, dtype=cp.float64), cp.cumsum(values)])
        lo = cp.asarray(offsets[:-1])
        hi = cp.asarray(offsets[1:])
        return csum[hi] - csum[lo]

    def batched_segment_sums(self, values: Any, offsets: np.ndarray) -> Any:
        cp = self._cp
        offsets = np.asarray(offsets, dtype=np.int64)
        nseg = max(offsets.shape[0] - 1, 0)
        values = self.asarray(values, dtype=np.float64)
        batch = values.shape[0]
        if nseg == 0 or values.shape[1] == 0:
            return cp.zeros((batch, nseg), dtype=cp.float64)
        csum = cp.concatenate(
            [cp.zeros((batch, 1), dtype=cp.float64), cp.cumsum(values, axis=1)], axis=1
        )
        lo = cp.asarray(offsets[:-1])
        hi = cp.asarray(offsets[1:])
        return csum[:, hi] - csum[:, lo]

    # ------------------------------------------------------------- indexing
    def repeat(self, values: Any, repeats: np.ndarray) -> Any:
        return self._cp.repeat(self.asarray(values), self._cp.asarray(repeats))

    def take_columns(self, x: Any, indices: np.ndarray) -> Any:
        return x[:, self._cp.asarray(np.asarray(indices, dtype=np.int64))]

    def put_columns(self, x: Any, indices: np.ndarray, values: Any) -> None:
        x[:, self._cp.asarray(np.asarray(indices, dtype=np.int64))] = self.asarray(
            values
        )

    def isfinite_all(self, x: Any) -> bool:
        return bool(self._cp.isfinite(x).all())
