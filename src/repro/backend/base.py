"""The array-backend contract: one namespace object per array library.

Every hot kernel in this repository is a GEMM + segment reduction over one
packed factor stack (see :mod:`repro.operators.packed`).  That shape ports
unchanged across NumPy, torch, and CuPy — what differs is only *which*
library executes the arithmetic.  :class:`ArrayBackend` is the namespace
object the kernels route through: ~20 primitives covering construction and
transfer (``asarray``/``to_numpy``), the dense kernels (``matmul``,
``einsum``, ``eigvalsh``/``eigh``, ``norm``), the segment reductions, and
column take/scatter plus dtype/device introspection.

Contract rules (enforced by ``tests/test_backend_conformance.py`` and the
``tools/check_backend_purity.py`` lint):

* **The NumPy backend is a literal pass-through.**  Nine test suites assert
  bit-identical certified decisions, so
  :class:`~repro.backend.numpy_backend.NumPyBackend` wraps the exact
  ``np.*`` calls the kernels used to make, with the same arguments — the
  refactor must not change a single bit on the default backend.
* **Charges are computed from shapes, never from arrays.**  The
  :class:`~repro.parallel.backends.ExecutionBackend` work–depth charges are
  machine-independent model quantities; routing the arithmetic through
  torch or CuPy must leave every charge (and every iteration count)
  identical.  No primitive here reports costs — callers derive work from
  ``shape``/``nnz`` alone.
* **Host state stays NumPy; device arrays live inside kernels.**
  Bookkeeping (weights, offsets, counters, checkpoints) is host-side
  ``numpy`` everywhere.  Kernels transfer their immutable operands once at
  construction (``asarray``) and convert results back at the
  ``apply``/``matvec`` boundary (``to_numpy``).  Sparse (scipy) paths are
  NumPy-only: non-NumPy backends densify (the packed stack's dense
  fallback) and restrict the Taylor-mode policy to the dense
  representations.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """Namespace object exposing the array primitives the engine uses.

    Subclasses wrap one array library (NumPy, torch, CuPy).  ``Array`` below
    means the backend's native array type (``np.ndarray``, ``torch.Tensor``,
    ``cupy.ndarray``); primitives accept host NumPy arrays wherever a
    transfer is implied and say so explicitly.
    """

    #: Registry name (``"numpy"``, ``"torch"``, ``"cupy"``).
    name: str = "abstract"

    @property
    def is_numpy(self) -> bool:
        """Whether this backend executes directly on host NumPy arrays.

        The fused batched path (:mod:`repro.core.batch`) and every sparse
        (scipy) representation require a NumPy-resident stack; callers gate
        on this instead of comparing names.
        """
        return self.name == "numpy"

    # ------------------------------------------------------------ transfer
    @abc.abstractmethod
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        """Device array from ``x`` (no copy when already native + right dtype)."""

    @abc.abstractmethod
    def to_numpy(self, x: Any) -> np.ndarray:
        """Host ``np.ndarray`` view/copy of a device array (identity on NumPy)."""

    @abc.abstractmethod
    def copy(self, x: Any) -> Any:
        """A mutable copy of a device array."""

    # ------------------------------------------------------ construction
    @abc.abstractmethod
    def empty(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> Any:
        """Uninitialised device array."""

    @abc.abstractmethod
    def empty_like(self, x: Any) -> Any:
        """Uninitialised device array with ``x``'s shape and dtype."""

    @abc.abstractmethod
    def zeros(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> Any:
        """Zero-filled device array."""

    @abc.abstractmethod
    def eye(self, n: int, dtype: Any = np.float64) -> Any:
        """Identity matrix — dtype is **explicit** so kernels preserve their
        stack dtype instead of inheriting NumPy's float64 default."""

    # -------------------------------------------------------- introspection
    @abc.abstractmethod
    def dtype_of(self, x: Any) -> np.dtype:
        """The array's dtype as a host ``np.dtype``."""

    @abc.abstractmethod
    def device_of(self, x: Any) -> str:
        """Human-readable device of the array (``"cpu"``, ``"cuda:0"``, …)."""

    def canonical_dtype(self, x: Any) -> np.dtype:
        """The working dtype a kernel should adopt for operand ``x``:
        ``float32`` inputs stay ``float32``; everything else runs in the
        reference ``float64``."""
        dtype = np.dtype(self.dtype_of(x))
        return np.dtype(np.float32) if dtype == np.float32 else np.dtype(np.float64)

    # ------------------------------------------------------------- kernels
    @abc.abstractmethod
    def matmul(self, a: Any, b: Any, out: Any = None) -> Any:
        """Matrix product ``a @ b``, writing into ``out`` when given (the
        Taylor recurrences ping-pong two preallocated buffers)."""

    @abc.abstractmethod
    def einsum(self, subscripts: str, *operands: Any) -> Any:
        """Einstein summation (the kernels use ``"ij,ij->j"`` column dots
        and the batched ``"bij,bij->bj"`` form)."""

    @abc.abstractmethod
    def norm(self, x: Any) -> float:
        """Frobenius / 2-norm of a vector or matrix, as a host float."""

    @abc.abstractmethod
    def eigvalsh(self, a: Any) -> Any:
        """Ascending eigenvalues of a symmetric matrix (or stack of them)."""

    @abc.abstractmethod
    def eigh(self, a: Any) -> tuple[Any, Any]:
        """Eigen-decomposition of a symmetric matrix as an ``(w, v)`` tuple."""

    # ---------------------------------------------------- segment reductions
    @abc.abstractmethod
    def segment_sums(self, values: Any, offsets: np.ndarray) -> Any:
        """Per-segment sums of ``values`` over ``[offsets[i], offsets[i+1])``.

        ``offsets`` is always a host int64 array (part of the packed stack's
        immutable host layout).  Zero-width segments sum to 0.  Must match
        the NumPy reference implementation exactly in exact arithmetic;
        the NumPy backend must match it bitwise.
        """

    @abc.abstractmethod
    def batched_segment_sums(self, values: Any, offsets: np.ndarray) -> Any:
        """Row-wise :meth:`segment_sums` over a ``(B, R)`` batch."""

    # ------------------------------------------------------------- indexing
    @abc.abstractmethod
    def repeat(self, values: Any, repeats: np.ndarray) -> Any:
        """Per-element repetition (the weight expansion ``repeat(w, ranks)``)."""

    @abc.abstractmethod
    def take_columns(self, x: Any, indices: np.ndarray) -> Any:
        """Column gather ``x[:, indices]`` (host index array)."""

    @abc.abstractmethod
    def put_columns(self, x: Any, indices: np.ndarray, values: Any) -> None:
        """Column scatter ``x[:, indices] = values`` in place (host indices)."""

    @abc.abstractmethod
    def isfinite_all(self, x: Any) -> bool:
        """Whether every entry is finite, as a host bool (the kernels'
        fault-detection boundary check)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
