"""Torch array backend (optional — auto-skipped when torch is absent).

Float64 torch-CPU must match NumPy to ~1e-12 on every primitive; the
conformance suite additionally asserts that certified decisions, iteration
counts, and work–depth charges are *identical* (charges are shape-derived,
so only the kernel arithmetic differs, at rounding level).

The segment reductions use ``index_add_`` over ``repeat_interleave``'d
segment ids — deterministic, and numerically closer to the reference
``np.add.reduceat`` than a cumulative-sum difference would be (no
catastrophic cancellation across segment boundaries).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):  # pragma: no cover - requires torch
    """Torch execution on a fixed device (default CPU)."""

    name = "torch"

    def __init__(self, device: str = "cpu") -> None:
        import torch  # deferred so the registry can probe availability

        self._torch = torch
        self._device = torch.device(device)

    # ------------------------------------------------------------ transfer
    def asarray(self, x: Any, dtype: Any = None) -> Any:
        torch = self._torch
        if torch.is_tensor(x):
            tensor = x.to(self._device)
        else:
            tensor = torch.as_tensor(np.asarray(x), device=self._device)
        if dtype is not None:
            tensor = tensor.to(self._torch_dtype(dtype))
        return tensor

    def to_numpy(self, x: Any) -> np.ndarray:
        if self._torch.is_tensor(x):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def copy(self, x: Any) -> Any:
        return self.asarray(x).clone()

    def _torch_dtype(self, dtype: Any):
        torch = self._torch
        if isinstance(dtype, torch.dtype):
            return dtype
        return {
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.int64): torch.int64,
            np.dtype(bool): torch.bool,
        }[np.dtype(dtype)]

    # ------------------------------------------------------ construction
    def empty(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> Any:
        if isinstance(shape, int):
            shape = (shape,)
        return self._torch.empty(
            tuple(shape), dtype=self._torch_dtype(dtype), device=self._device
        )

    def empty_like(self, x: Any) -> Any:
        return self._torch.empty_like(x)

    def zeros(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> Any:
        if isinstance(shape, int):
            shape = (shape,)
        return self._torch.zeros(
            tuple(shape), dtype=self._torch_dtype(dtype), device=self._device
        )

    def eye(self, n: int, dtype: Any = np.float64) -> Any:
        return self._torch.eye(n, dtype=self._torch_dtype(dtype), device=self._device)

    # -------------------------------------------------------- introspection
    def dtype_of(self, x: Any) -> np.dtype:
        torch = self._torch
        if torch.is_tensor(x):
            return {
                torch.float32: np.dtype(np.float32),
                torch.float64: np.dtype(np.float64),
                torch.int64: np.dtype(np.int64),
                torch.bool: np.dtype(bool),
            }[x.dtype]
        return np.asarray(x).dtype

    def device_of(self, x: Any) -> str:
        if self._torch.is_tensor(x):
            return str(x.device)
        return "cpu"

    # ------------------------------------------------------------- kernels
    def matmul(self, a: Any, b: Any, out: Any = None) -> Any:
        if out is None:
            return self._torch.matmul(a, b)
        return self._torch.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands: Any) -> Any:
        return self._torch.einsum(subscripts, *operands)

    def norm(self, x: Any) -> float:
        return float(self._torch.linalg.norm(self.asarray(x)))

    def eigvalsh(self, a: Any) -> Any:
        return self._torch.linalg.eigvalsh(a)

    def eigh(self, a: Any) -> tuple[Any, Any]:
        result = self._torch.linalg.eigh(a)
        return result.eigenvalues, result.eigenvectors

    # ---------------------------------------------------- segment reductions
    def _segment_ids(self, offsets: np.ndarray) -> Any:
        torch = self._torch
        offsets = np.asarray(offsets, dtype=np.int64)
        widths = np.diff(offsets)
        ids = torch.arange(widths.shape[0], device=self._device)
        return torch.repeat_interleave(
            ids, torch.as_tensor(widths, device=self._device)
        )

    def segment_sums(self, values: Any, offsets: np.ndarray) -> Any:
        offsets = np.asarray(offsets, dtype=np.int64)
        nseg = max(offsets.shape[0] - 1, 0)
        values = self.asarray(values, dtype=np.float64)
        out = self.zeros(nseg, dtype=np.float64)
        if nseg == 0 or values.shape[0] == 0:
            return out
        out.index_add_(0, self._segment_ids(offsets), values)
        return out

    def batched_segment_sums(self, values: Any, offsets: np.ndarray) -> Any:
        offsets = np.asarray(offsets, dtype=np.int64)
        nseg = max(offsets.shape[0] - 1, 0)
        values = self.asarray(values, dtype=np.float64)
        batch = values.shape[0]
        out = self.zeros((batch, nseg), dtype=np.float64)
        if nseg == 0 or values.shape[1] == 0:
            return out
        out.index_add_(1, self._segment_ids(offsets), values)
        return out

    # ------------------------------------------------------------- indexing
    def repeat(self, values: Any, repeats: np.ndarray) -> Any:
        torch = self._torch
        return torch.repeat_interleave(
            self.asarray(values),
            torch.as_tensor(np.asarray(repeats, dtype=np.int64), device=self._device),
        )

    def take_columns(self, x: Any, indices: np.ndarray) -> Any:
        idx = self._torch.as_tensor(
            np.asarray(indices, dtype=np.int64), device=self._device
        )
        return x[:, idx]

    def put_columns(self, x: Any, indices: np.ndarray, values: Any) -> None:
        idx = self._torch.as_tensor(
            np.asarray(indices, dtype=np.int64), device=self._device
        )
        x[:, idx] = self.asarray(values, dtype=self.dtype_of(x))

    def isfinite_all(self, x: Any) -> bool:
        return bool(self._torch.isfinite(x).all().item())
