"""The default NumPy backend — a literal pass-through.

Every wrapper below calls the exact ``np.*`` function the kernels invoked
before the backend refactor, with the same arguments, so routing through
this object is bit-identical to the pre-refactor code.  This is load-bearing:
nine test suites assert bit-identical certified decisions, and the
cross-backend conformance suite uses this backend as the reference the
others are diffed against.

This module is also the home of the reference segment-sum implementations
(moved here from :mod:`repro.operators.packed`, which re-exports them): the
``np.add.reduceat`` fast path with the cumulative-sum-difference fallback
for empty segments is *the* semantic definition every other backend must
reproduce in exact arithmetic.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.backend.base import ArrayBackend
from repro.exceptions import InvalidProblemError

__all__ = ["NumPyBackend", "batched_segment_sums", "segment_sums"]


def segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` over ``[offsets[i], offsets[i+1])``.

    Uses ``np.add.reduceat`` when every segment is non-empty; falls back to
    a cumulative-sum difference otherwise (``reduceat`` silently returns
    ``values[offsets[i]]`` for empty segments instead of 0).  ``offsets``
    may be any integer array-like (lists included); zero-width segments —
    rank-zero factor blocks — always sum to 0.
    """
    values = np.asarray(values, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1:
        raise InvalidProblemError(
            f"offsets must be 1-dimensional, got ndim={offsets.ndim}"
        )
    if offsets.shape[0] < 2:
        return np.zeros(max(offsets.shape[0] - 1, 0), dtype=np.float64)
    widths = np.diff(offsets)
    if values.shape[0] == 0:
        return np.zeros(widths.shape[0], dtype=np.float64)
    if np.all(widths > 0):
        return np.add.reduceat(values, offsets[:-1])
    csum = np.concatenate([[0.0], np.cumsum(values)])
    return csum[offsets[1:]] - csum[offsets[:-1]]


def batched_segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`segment_sums` over a ``(B, R)`` batch of value rows.

    All ``B`` instances share one segment layout (``offsets``), so the
    reduction is a single ``np.add.reduceat`` along ``axis=1`` (or one
    cumulative-sum difference when some segment is empty).  Each output row
    matches ``segment_sums(values[b], offsets)`` bitwise.
    """
    values = np.asarray(values, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.int64)
    if values.ndim != 2:
        raise InvalidProblemError(
            f"batched values must be 2-dimensional, got ndim={values.ndim}"
        )
    if offsets.ndim != 1:
        raise InvalidProblemError(
            f"offsets must be 1-dimensional, got ndim={offsets.ndim}"
        )
    batch = values.shape[0]
    if offsets.shape[0] < 2:
        return np.zeros((batch, max(offsets.shape[0] - 1, 0)), dtype=np.float64)
    widths = np.diff(offsets)
    if values.shape[1] == 0:
        return np.zeros((batch, widths.shape[0]), dtype=np.float64)
    if np.all(widths > 0):
        return np.add.reduceat(values, offsets[:-1], axis=1)
    csum = np.concatenate(
        [np.zeros((batch, 1), dtype=np.float64), np.cumsum(values, axis=1)], axis=1
    )
    return csum[:, offsets[1:]] - csum[:, offsets[:-1]]


class NumPyBackend(ArrayBackend):
    """Host NumPy execution — the bit-identity reference backend."""

    name = "numpy"

    # ------------------------------------------------------------ transfer
    def asarray(self, x: Any, dtype: Any = None) -> np.ndarray:
        return np.asarray(x) if dtype is None else np.asarray(x, dtype=dtype)

    def to_numpy(self, x: Any) -> np.ndarray:
        return np.asarray(x)

    def copy(self, x: Any) -> np.ndarray:
        return np.array(x, copy=True)

    # ------------------------------------------------------ construction
    def empty(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def empty_like(self, x: Any) -> np.ndarray:
        return np.empty_like(x)

    def zeros(self, shape: Sequence[int] | int, dtype: Any = np.float64) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def eye(self, n: int, dtype: Any = np.float64) -> np.ndarray:
        return np.eye(n, dtype=dtype)

    # -------------------------------------------------------- introspection
    def dtype_of(self, x: Any) -> np.dtype:
        return np.asarray(x).dtype

    def device_of(self, x: Any) -> str:
        return "cpu"

    # ------------------------------------------------------------- kernels
    def matmul(self, a: Any, b: Any, out: Any = None) -> np.ndarray:
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    def einsum(self, subscripts: str, *operands: Any) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    def norm(self, x: Any) -> float:
        return float(np.linalg.norm(x))

    def eigvalsh(self, a: Any) -> np.ndarray:
        return np.linalg.eigvalsh(a)

    def eigh(self, a: Any) -> tuple[np.ndarray, np.ndarray]:
        w, v = np.linalg.eigh(a)
        return w, v

    # ---------------------------------------------------- segment reductions
    def segment_sums(self, values: Any, offsets: np.ndarray) -> np.ndarray:
        return segment_sums(values, offsets)

    def batched_segment_sums(self, values: Any, offsets: np.ndarray) -> np.ndarray:
        return batched_segment_sums(values, offsets)

    # ------------------------------------------------------------- indexing
    def repeat(self, values: Any, repeats: np.ndarray) -> np.ndarray:
        return np.repeat(values, repeats)

    def take_columns(self, x: Any, indices: np.ndarray) -> np.ndarray:
        return x[:, indices]

    def put_columns(self, x: Any, indices: np.ndarray, values: Any) -> None:
        x[:, indices] = values

    def isfinite_all(self, x: Any) -> bool:
        return bool(np.isfinite(x).all())
