"""Positive packing LP problem class and conversions to/from diagonal SDPs.

A positive packing LP is

.. math:: \\max\\; 1^T x \\quad \\text{s.t.}\\quad P x \\le 1,\\; x \\ge 0,

with a non-negative constraint matrix ``P`` (here ``m`` rows = packing
constraints, ``n`` columns = variables).  Identifying row ``j`` with the
``j``-th diagonal entry, the same program is the packing SDP
``sum_i x_i A_i <= I`` with ``A_i = diag(P[:, i])`` — the conversion
functions below make that identification explicit, which is how experiment
E7 runs the SDP solver and the LP solvers on literally the same instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.operators.diagonal import DiagonalPSDOperator
from repro.core.problem import NormalizedPackingSDP


@dataclass
class PackingLP:
    """A positive packing LP ``max 1^T x`` s.t. ``P x <= 1``, ``x >= 0``.

    Attributes
    ----------
    matrix:
        Dense non-negative array of shape ``(m, n)`` (rows are constraints).
    name:
        Optional instance name for reports.
    """

    matrix: np.ndarray
    name: str = "packing-lp"

    def __init__(self, matrix: np.ndarray | sp.spmatrix, name: str = "packing-lp") -> None:
        if sp.issparse(matrix):
            matrix = matrix.toarray()
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise InvalidProblemError(f"constraint matrix must be 2-D, got shape {matrix.shape}")
        if not np.all(np.isfinite(matrix)):
            raise InvalidProblemError("constraint matrix contains NaN or infinite entries")
        if np.any(matrix < 0):
            raise InvalidProblemError("positive LPs require a non-negative constraint matrix")
        if np.any(matrix.sum(axis=0) == 0):
            raise InvalidProblemError("every variable must appear in at least one constraint")
        self.matrix = matrix
        self.name = name

    # ------------------------------------------------------------------ shape
    @property
    def num_constraints(self) -> int:
        """Number of packing constraints (matrix rows)."""
        return self.matrix.shape[0]

    @property
    def num_variables(self) -> int:
        """Number of variables (matrix columns)."""
        return self.matrix.shape[1]

    @property
    def width(self) -> float:
        """The LP width ``max_ij P_ij`` (after right-hand sides are normalized to 1)."""
        return float(self.matrix.max(initial=0.0))

    # ------------------------------------------------------------------ evaluation
    def value(self, x: np.ndarray) -> float:
        """Objective ``1^T x``."""
        return float(np.sum(np.asarray(x, dtype=np.float64)))

    def feasible(self, x: np.ndarray, tol: float = 1e-7) -> bool:
        """Check ``x >= 0`` and ``P x <= 1 + tol``."""
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self.num_variables or np.any(x < -tol):
            return False
        return bool(np.all(self.matrix @ x <= 1.0 + tol))

    def slack(self, x: np.ndarray) -> np.ndarray:
        """Constraint slacks ``1 - P x`` (negative entries indicate violations)."""
        return 1.0 - self.matrix @ np.asarray(x, dtype=np.float64)

    def greedy_upper_bound(self) -> float:
        """Simple upper bound on the optimum: ``sum_j 1 / max_i P_ij`` is not
        valid in general, but ``m / min_j max_i P_ij``-style bounds are; here
        we use the LP-duality-free bound ``sum over constraints of
        1 / min positive entry`` truncated to the trivial ``n * max_j (1 /
        max_i P_ij)``."""
        col_max = self.matrix.max(axis=0)
        return float(np.sum(1.0 / col_max))


def packing_lp_from_diagonal_sdp(problem: NormalizedPackingSDP) -> PackingLP:
    """Convert a packing SDP whose constraints are all diagonal into a packing LP.

    Raises
    ------
    InvalidProblemError
        If any constraint operator is not (numerically) diagonal.
    """
    columns = []
    for op in problem.constraints:
        if isinstance(op, DiagonalPSDOperator):
            columns.append(op.diagonal)
            continue
        dense = op.to_dense()
        off_diag = dense - np.diag(np.diag(dense))
        if np.abs(off_diag).max(initial=0.0) > 1e-10 * max(1.0, np.abs(dense).max()):
            raise InvalidProblemError(
                "constraint matrices must be diagonal to convert the SDP to a packing LP"
            )
        columns.append(np.diag(dense))
    matrix = np.column_stack(columns)
    return PackingLP(matrix, name=f"{problem.name}-as-lp")


def diagonal_sdp_from_packing_lp(lp: PackingLP) -> NormalizedPackingSDP:
    """Embed a packing LP as a diagonal packing SDP (the E7 identification)."""
    operators = [DiagonalPSDOperator(lp.matrix[:, j]) for j in range(lp.num_variables)]
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False), name=f"{lp.name}-as-sdp"
    )
