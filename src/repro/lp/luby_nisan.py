"""A Luby–Nisan style phase-based positive-LP solver [LN93].

Luby and Nisan gave the first width-independent parallel algorithm for
positive LPs; Jain–Yao's positive-SDP algorithm (the comparison point of
the paper's Section 1.1) generalizes it, while the paper itself generalizes
Young's later algorithm.  This module keeps a *phase-based* inner routine —
the acceptance threshold starts generous and is tightened geometrically
between phases, with the exponential weights held fixed within a phase —
on top of the same certified binary-search outer loop used by
:mod:`repro.lp.young`.  It therefore serves two purposes: an independent
reference value for the LP experiments (E7), and a scalar illustration of
the phased-vs-phase-less contrast the SDP ablation (E9) studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.lp.positive_lp import PackingLP


@dataclass
class LubyNisanResult:
    """Result of :func:`luby_nisan_packing_lp`.

    ``value`` is realised by the feasible vector ``x``; ``upper_bound`` comes
    from the best covering certificate observed, so the pair brackets the
    true LP optimum.
    """

    x: np.ndarray
    value: float
    upper_bound: float
    phases: int
    iterations: int
    decision_calls: int
    max_row: float
    history: list[float] = field(default_factory=list)

    @property
    def relative_gap(self) -> float:
        """Relative gap ``upper/value - 1`` between the certified bounds."""
        return self.upper_bound / self.value - 1.0 if self.value > 0 else float("inf")


def _phased_decision(
    matrix: np.ndarray,
    epsilon: float,
    max_iterations: int,
    collect_history: bool,
) -> tuple[str, np.ndarray, float, np.ndarray, float, int, int, list[float]]:
    """Phase-based growth routine on a scaled packing LP (threshold ~1)."""
    m, n = matrix.shape
    col_max = matrix.max(axis=0)
    log_n = math.log(max(n, 2))
    K = (1.0 + log_n) / epsilon
    alpha = epsilon / (K * (1.0 + 10.0 * epsilon))

    x = 1.0 / (n * col_max)
    cover_y = np.full(m, 1.0 / m)
    history: list[float] = []
    iterations = 0
    phases = 0
    # Best dual snapshot seen so far (the burst updates can overshoot, so the
    # final iterate is not necessarily the best certificate of the run).
    best_ratio = 0.0
    best_x = x.copy()
    best_max_load = float((matrix @ x).max(initial=0.0))
    threshold = 1.0 + epsilon

    best_cover_min = 0.0
    best_cover_y = cover_y.copy()
    # The phase thresholds sweep from a slightly generous (1 + eps) down to
    # (1 + eps/4).  Starting much higher would let clearly unprofitable
    # coordinates grow and permanently damage the packing certificate
    # (coordinates never shrink in a multiplicative-growth scheme).
    threshold_floor = 1.0 + epsilon / 4.0

    def note_snapshot(loads_now: np.ndarray) -> None:
        nonlocal best_ratio, best_x, best_max_load, best_cover_min, best_cover_y
        max_load_now = float(loads_now.max(initial=0.0))
        if max_load_now > 0:
            ratio = float(x.sum()) / max_load_now
            if ratio > best_ratio:
                best_ratio = ratio
                best_x = x.copy()
                best_max_load = max_load_now
        shifted_now = loads_now - loads_now.max(initial=0.0)
        weights_now = np.exp(shifted_now)
        cover_now = weights_now / float(weights_now.sum())
        cover_min_now = float((cover_now @ matrix).min(initial=np.inf))
        if cover_min_now > best_cover_min:
            best_cover_min = cover_min_now
            best_cover_y = cover_now

    while threshold > threshold_floor and iterations < max_iterations and float(x.sum()) <= K:
        phases += 1
        progressed = True
        while progressed and iterations < max_iterations and float(x.sum()) <= K:
            loads = matrix @ x
            note_snapshot(loads)
            shifted = loads - loads.max(initial=0.0)
            weights = np.exp(shifted)
            cover_y = weights / float(weights.sum())
            costs = cover_y @ matrix
            mask = costs <= threshold
            if not mask.any():
                progressed = False
                break
            # Within the phase the qualifying set is reused for a burst of
            # updates (the "lazy weights" behaviour of phase-based schemes).
            # The burst is capped by an ell_1 growth budget of (1 + eps/2) so
            # the stale weights cannot degrade the certificate quality by more
            # than an O(eps) factor.
            burst_target = (1.0 + epsilon / 2.0) * float(x.sum())
            while (
                float(x.sum()) < burst_target
                and float(x.sum()) <= K
                and iterations < max_iterations
            ):
                iterations += 1
                x = x + np.where(mask, alpha * x, 0.0)
                if collect_history:
                    history.append(float(x.sum()))
        threshold *= 1.0 - epsilon / 8.0

    # Recompute the certificates on the final iterate (the weights used inside
    # the loop may be stale after a burst of updates) and report the best
    # snapshots seen during the run.
    note_snapshot(matrix @ x)
    outcome = "dual" if float(x.sum()) > K or best_ratio >= 1.0 else "primal"
    return outcome, best_x, best_max_load, best_cover_y, best_cover_min, iterations, phases, history


def luby_nisan_packing_lp(
    lp: PackingLP,
    epsilon: float = 0.1,
    max_decision_calls: int = 60,
    max_iterations: int | None = None,
    collect_history: bool = False,
) -> LubyNisanResult:
    """Approximately solve a packing LP with a Luby–Nisan style phase scheme.

    Same certified binary-search wrapper as :func:`repro.lp.young.young_packing_lp`;
    only the inner growth routine differs (phased, lazy-weight updates).
    """
    if not (0 < epsilon < 1):
        raise InvalidProblemError(f"epsilon must be in (0, 1), got {epsilon}")
    matrix = lp.matrix
    m, n = matrix.shape
    eps_dec = min(epsilon / 4.0, 0.2)
    if max_iterations is None:
        log_n = math.log(max(n, 2))
        K = (1.0 + log_n) / eps_dec
        alpha = eps_dec / (K * (1.0 + 10.0 * eps_dec))
        max_iterations = int(math.ceil(32.0 * log_n / (eps_dec * alpha)))

    col_max = matrix.max(axis=0)
    col_sums = matrix.sum(axis=0)
    lower = float((1.0 / col_max).max())
    upper = max(float(m / col_sums.min()), lower)

    best_x = np.zeros(n)
    best_x[int(np.argmax(1.0 / col_max))] = lower
    total_iterations = 0
    total_phases = 0
    calls = 0
    history: list[float] = []
    # Certified bracket moves only on verified certificates; the search
    # bracket steers theta using unverified decision outcomes.
    search_lo, search_hi = lower, upper

    while upper / lower > 1.0 + epsilon and calls < max_decision_calls:
        calls += 1
        if search_hi / search_lo <= 1.0 + epsilon / 4.0:
            search_lo, search_hi = lower, upper
        theta = math.sqrt(search_lo * search_hi)
        outcome, x, max_load, cover_y, cover_min, iters, phases, history = _phased_decision(
            theta * matrix, eps_dec, max_iterations, collect_history
        )
        total_iterations += iters
        total_phases += phases
        if max_load > 0:
            candidate = theta * x / max_load
            value = float(candidate.sum())
            if value > lower and lp.feasible(candidate, tol=1e-6):
                lower = value
                best_x = candidate
        if cover_min > 0:
            bound = theta * float(cover_y.sum()) / cover_min
            if lower <= bound < upper:
                upper = bound
        if outcome == "dual":
            search_lo = min(max(search_lo, theta), search_hi)
        else:
            search_hi = max(min(search_hi, theta), search_lo)
        search_lo = max(search_lo, lower)
        search_hi = min(max(search_hi, search_lo), upper)

    max_row = float((matrix @ best_x).max(initial=0.0))
    return LubyNisanResult(
        x=best_x,
        value=float(best_x.sum()),
        upper_bound=float(upper),
        phases=total_phases,
        iterations=total_iterations,
        decision_calls=calls,
        max_row=max_row,
        history=history,
    )
