"""Young's width-independent parallel packing-LP algorithm [You01].

This is the scalar algorithm the paper generalizes (Section 1.2): restricted
to diagonal constraint matrices, Algorithm 3.1 *is* Young's algorithm, with
the matrix exponential penalty ``exp(Psi)`` degenerating to the row-wise
"soft-max" weights ``exp((P x)_i)`` and the Loewner threshold degenerating
to a weighted-average column cost.  The implementation mirrors the SDP
solver's structure exactly:

* :func:`young_decision_lp` — the scalar ε-decision routine: answer whether
  the packing optimum of a (scaled) LP is above ~1 by growing a
  multiplicative iterate; returns measured dual (packing vector) and primal
  (fractional covering vector, read off the exponential weights)
  certificates;
* :func:`young_packing_lp` — the outer binary search over the objective,
  shrinking a certified bracket exactly like
  :func:`repro.core.solver.approx_psdp` does for SDPs (Lemma 2.2).

Because every bracket update is backed by an explicitly measured
certificate, the returned value is a true lower bound on the LP optimum and
the reported bracket a true enclosure, regardless of how heuristically the
inner routine behaved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.lp.positive_lp import PackingLP


@dataclass
class LPDecisionResult:
    """Outcome of one scalar decision run on a scaled packing LP.

    Attributes
    ----------
    outcome:
        ``"dual"`` if the iterate certified that the scaled optimum is
        >= ~1, ``"primal"`` if the exponential weights certified it is <= ~1.
    x:
        The grown packing vector (not yet rescaled to feasibility).
    max_load:
        Measured ``max_i (P x)_i``.
    cover_y:
        Normalized exponential weights — a fractional covering candidate for
        the LP dual ``min 1^T y`` s.t. ``P^T y >= 1``.
    cover_min:
        Measured ``min_j (P^T cover_y)_j`` (the covering candidate's slack).
    iterations:
        Number of multiplicative-update rounds executed.
    """

    outcome: str
    x: np.ndarray
    max_load: float
    cover_y: np.ndarray
    cover_min: float
    iterations: int


@dataclass
class YoungLPResult:
    """Result of :func:`young_packing_lp`.

    Attributes
    ----------
    x:
        Feasible packing vector (``P x <= 1`` up to rounding).
    value:
        Certified objective ``1^T x`` (a lower bound on the LP optimum).
    upper_bound:
        Certified upper bound on the LP optimum (from covering certificates).
    iterations:
        Total inner iterations across all decision calls.
    decision_calls:
        Number of decision invocations the binary search used.
    max_row:
        Measured ``max_i (P x)_i`` of the returned ``x``.
    history:
        Optional ``||x||_1`` trace of the final decision call.
    """

    x: np.ndarray
    value: float
    upper_bound: float
    iterations: int
    decision_calls: int
    max_row: float
    history: list[float] = field(default_factory=list)

    @property
    def relative_gap(self) -> float:
        """Certified relative gap ``upper_bound / value - 1``."""
        return self.upper_bound / self.value - 1.0 if self.value > 0 else float("inf")


def young_decision_lp(
    matrix: np.ndarray,
    epsilon: float,
    max_iterations: int | None = None,
    collect_history: bool = False,
) -> tuple[LPDecisionResult, list[float]]:
    """Scalar ε-decision routine (Algorithm 3.1 specialised to diagonal matrices).

    ``matrix`` is the already-scaled constraint matrix: the routine decides
    whether ``max {1^T x : matrix @ x <= 1, x >= 0}`` is above or below ~1.
    """
    if not (0 < epsilon < 1):
        raise InvalidProblemError(f"epsilon must be in (0, 1), got {epsilon}")
    m, n = matrix.shape
    col_max = matrix.max(axis=0)
    if np.any(col_max <= 0):
        raise InvalidProblemError("every variable needs a positive coefficient somewhere")

    log_n = math.log(max(n, 2))
    K = (1.0 + log_n) / epsilon
    alpha = epsilon / (K * (1.0 + 10.0 * epsilon))
    if max_iterations is None:
        max_iterations = int(math.ceil(32.0 * log_n / (epsilon * alpha)))

    # x_j(0) = 1 / (n * max_i P_ij): the scalar analogue of 1 / (n Tr[A_j]),
    # chosen so that P x(0) <= 1 entrywise.
    x = 1.0 / (n * col_max)
    history: list[float] = []
    iterations = 0
    cover_y = np.full(m, 1.0 / m)

    while float(x.sum()) <= K and iterations < max_iterations:
        iterations += 1
        loads = matrix @ x
        shifted = loads - loads.max(initial=0.0)
        weights = np.exp(shifted)
        total = float(weights.sum())
        cover_y = weights / total
        costs = cover_y @ matrix
        mask = costs <= 1.0 + epsilon
        if collect_history:
            history.append(float(x.sum()))
        if not mask.any():
            # Every variable's weighted cost exceeds 1 + eps: the weight
            # distribution itself certifies that the optimum is below ~1
            # (it is a fractional covering candidate with small value).
            break
        x = x + np.where(mask, alpha * x, 0.0)

    loads = matrix @ x
    max_load = float(loads.max(initial=0.0))
    cover_min = float((cover_y @ matrix).min(initial=np.inf))
    outcome = "dual" if float(x.sum()) > K else "primal"
    if outcome == "primal" and max_load > 0 and float(x.sum()) / max_load >= 1.0:
        # Even without crossing the K threshold the grown iterate may already
        # certify the dual side; report whichever certificate is stronger.
        outcome = "dual"
    return (
        LPDecisionResult(
            outcome=outcome,
            x=x,
            max_load=max_load,
            cover_y=cover_y,
            cover_min=cover_min,
            iterations=iterations,
        ),
        history,
    )


def young_packing_lp(
    lp: PackingLP,
    epsilon: float = 0.1,
    max_decision_calls: int = 60,
    max_iterations: int | None = None,
    collect_history: bool = False,
) -> YoungLPResult:
    """Approximately solve a packing LP with Young's parallel algorithm.

    Runs the binary-search reduction of Lemma 2.2 over the scalar decision
    routine and returns certified two-sided bounds: the packing vector ``x``
    realises ``value`` and the best covering certificate seen realises
    ``upper_bound``.  On success ``upper_bound / value <= 1 + epsilon``.
    """
    if not (0 < epsilon < 1):
        raise InvalidProblemError(f"epsilon must be in (0, 1), got {epsilon}")
    matrix = lp.matrix
    m, n = matrix.shape
    eps_dec = min(epsilon / 4.0, 0.2)

    col_max = matrix.max(axis=0)
    row_sums = matrix.sum(axis=1)
    # Bracket: putting everything on the best single variable is feasible;
    # summing the constraints bounds any feasible objective by m / min_j sum_i P_ij.
    lower = float((1.0 / col_max).max())
    col_sums = matrix.sum(axis=0)
    upper = float(m / col_sums.min())
    upper = max(upper, lower)

    best_x = np.zeros(n)
    best_x[int(np.argmax(1.0 / col_max))] = lower
    total_iterations = 0
    calls = 0
    history: list[float] = []
    # The certified bracket [lower, upper] only moves when backed by a verified
    # certificate; the search bracket below is merely a heuristic for choosing
    # theta and may move on unverified decision outcomes without affecting the
    # soundness of the reported bounds.
    search_lo, search_hi = lower, upper

    while upper / lower > 1.0 + epsilon and calls < max_decision_calls:
        calls += 1
        if search_hi / search_lo <= 1.0 + epsilon / 4.0:
            search_lo, search_hi = lower, upper
        theta = math.sqrt(search_lo * search_hi)
        result, history = young_decision_lp(
            theta * matrix, eps_dec, max_iterations=max_iterations, collect_history=collect_history
        )
        total_iterations += result.iterations
        # Dual certificate: x / max_load is feasible for theta*P, so
        # theta * x / max_load is feasible for P with value theta*||x||/max_load.
        if result.max_load > 0:
            candidate = theta * result.x / result.max_load
            value = float(candidate.sum())
            if value > lower and lp.feasible(candidate, tol=1e-6):
                lower = value
                best_x = candidate
        # Covering certificate: y with P^T y >= cover_min (for theta*P) gives,
        # after scaling, an upper bound of theta * (1^T y) / cover_min = theta / cover_min.
        if result.cover_min > 0:
            bound = theta * float(result.cover_y.sum()) / result.cover_min
            if lower <= bound < upper:
                upper = bound
        # Steer the next theta by the (unverified) decision outcome.
        if result.outcome == "dual":
            search_lo = min(max(search_lo, theta), search_hi)
        else:
            search_hi = max(min(search_hi, theta), search_lo)
        search_lo = max(search_lo, lower)
        search_hi = min(max(search_hi, search_lo), upper)

    max_row = float((matrix @ best_x).max(initial=0.0))
    return YoungLPResult(
        x=best_x,
        value=float(best_x.sum()),
        upper_bound=float(upper),
        iterations=total_iterations,
        decision_calls=calls,
        max_row=max_row,
        history=history,
    )
