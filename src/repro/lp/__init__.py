"""Positive linear programming substrate.

Positive (packing) LPs are the diagonal special case of positive SDPs
(Section 1.2: axis-aligned ellipses), and the paper's algorithm is the
matrix generalization of Young's width-independent packing-LP algorithm
[You01], whose ancestor is Luby–Nisan [LN93].  This subpackage implements:

* :class:`~repro.lp.positive_lp.PackingLP` — the problem class
  ``max 1^T x`` s.t. ``P x <= 1``, ``x >= 0`` with ``P >= 0``;
* :func:`~repro.lp.young.young_packing_lp` — Young's (2001) parallel
  width-independent solver (the scalar counterpart of Algorithm 3.1);
* :func:`~repro.lp.luby_nisan.luby_nisan_packing_lp` — the Luby–Nisan
  style phase-based solver;
* conversions between diagonal positive SDPs and packing LPs used by
  experiment E7.
"""

from repro.lp.positive_lp import PackingLP, packing_lp_from_diagonal_sdp, diagonal_sdp_from_packing_lp
from repro.lp.young import YoungLPResult, young_packing_lp
from repro.lp.luby_nisan import LubyNisanResult, luby_nisan_packing_lp

__all__ = [
    "PackingLP",
    "packing_lp_from_diagonal_sdp",
    "diagonal_sdp_from_packing_lp",
    "YoungLPResult",
    "young_packing_lp",
    "LubyNisanResult",
    "luby_nisan_packing_lp",
]
