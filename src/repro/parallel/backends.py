"""Execution backends for the bulk parallel primitives.

A backend decides *how* a parallel map is executed (serially, in a thread
pool, or in a process pool) and owns an optional
:class:`~repro.parallel.workdepth.WorkDepthTracker` so that executed
primitives are charged to the cost model regardless of the execution
strategy.  The cost accounting is deliberately identical across backends:
the paper's work/depth bounds are machine-independent model quantities, so
the choice of backend must not change the measured work or depth — only the
wall-clock time.

Notes on Python parallelism: thread pools only help for workloads that
release the GIL (large NumPy operations do); process pools require the
mapped function and items to be picklable.  The default backend is serial,
which is also the fastest option for the small per-item tasks that dominate
this library on a single-core container.
"""

from __future__ import annotations

import abc
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.exceptions import BackendError
from repro.parallel.workdepth import WorkDepthTracker

T = TypeVar("T")
R = TypeVar("R")


class ExecutionBackend(abc.ABC):
    """Interface shared by all execution backends."""

    def __init__(self, tracker: WorkDepthTracker | None = None) -> None:
        self.tracker = tracker

    # ------------------------------------------------------------------ plumbing
    def _charge_map(
        self,
        count: int,
        work_per_item: Sequence[float] | float | None,
        label: str,
    ) -> None:
        """Charge a parallel map of ``count`` items to the tracker (if any).

        Work is the sum of the per-item costs; depth is the maximum per-item
        cost (all items are independent, so in the work–depth model they run
        in parallel).
        """
        if self.tracker is None or count == 0:
            return
        if work_per_item is None:
            works = [1.0] * count
        elif isinstance(work_per_item, (int, float)):
            works = [float(work_per_item)] * count
        else:
            works = [float(w) for w in work_per_item]
            if len(works) != count:
                raise BackendError(
                    f"work_per_item has {len(works)} entries for {count} items"
                )
        self.tracker.charge(sum(works), max(works), label=label or "parallel-map")

    @abc.abstractmethod
    def _execute(self, func: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Run ``func`` over ``items`` and return results in order."""

    # ------------------------------------------------------------------ public API
    def map(
        self,
        func: Callable[[T], R],
        items: Iterable[T],
        work_per_item: Sequence[float] | float | None = None,
        label: str = "",
    ) -> list[R]:
        """Apply ``func`` to every item, preserving order, charging the tracker."""
        items = list(items)
        self._charge_map(len(items), work_per_item, label)
        if not items:
            return []
        return self._execute(func, items)

    def charge(
        self,
        work: float,
        depth: float | None = None,
        label: str = "",
    ) -> None:
        """Charge one already-executed computation to the tracker (if any).

        Thin passthrough to :meth:`WorkDepthTracker.charge` so components
        that are handed a backend (rather than a tracker) can record model
        costs — e.g. the rank-adaptive Taylor engine charges its
        active-column state updates under the ``taylor-engine-update``
        label, work proportional to the touched columns.  A backend without
        a tracker ignores the charge.
        """
        if self.tracker is not None:
            self.tracker.charge(work, depth, label=label)

    def charge_batched(
        self,
        count: int,
        work_per_item: Sequence[float] | float | None = None,
        label: str = "",
    ) -> None:
        """Charge ``count`` logically parallel items computed by one batched call.

        Some per-constraint maps collapse into a single BLAS kernel (e.g. the
        packed trace-product pass of
        :meth:`~repro.operators.collection.ConstraintCollection.dots`).  The
        work–depth model must not notice the difference: this charges exactly
        what :meth:`map` would — work = sum of the per-item costs, depth =
        their maximum — while the caller performs the computation itself.
        """
        self._charge_map(count, work_per_item, label)

    def submit(self, func: Callable[..., R], *args: Any) -> "Future[R]":
        """Schedule one call and return its :class:`~concurrent.futures.Future`.

        The asynchronous sibling of :meth:`map`, used by the service
        executor to run whole solve jobs concurrently.  The serial backend
        executes the call *immediately* in the calling thread and returns
        an already-resolved future, so callers can treat all backends
        uniformly.  No model cost is charged here — jobs charge their own
        trackers internally (a solve carries its
        :class:`~repro.parallel.workdepth.WorkDepthTracker` with it).
        """
        future: Future[R] = Future()
        future.set_running_or_notify_cancel()
        try:
            future.set_result(func(*args))
        except BaseException as exc:
            future.set_exception(exc)
        return future

    def close(self) -> None:
        """Release any pooled resources (no-op for stateless backends)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Run everything sequentially in the calling thread (the default)."""

    def _execute(self, func: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [func(item) for item in items]


class ThreadBackend(ExecutionBackend):
    """Run map items on a shared :class:`ThreadPoolExecutor`.

    Suitable when the per-item work is dominated by NumPy/SciPy calls that
    release the GIL (dense matrix products, eigendecompositions).
    """

    def __init__(self, max_workers: int = 4, tracker: WorkDepthTracker | None = None) -> None:
        super().__init__(tracker)
        if max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _execute(self, func: Callable[[T], R], items: Sequence[T]) -> list[R]:
        pool = self._ensure_pool()
        return list(pool.map(func, items))

    def submit(self, func: Callable[..., R], *args: Any) -> "Future[R]":
        return self._ensure_pool().submit(func, *args)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ProcessBackend(ExecutionBackend):
    """Run map items on a :class:`ProcessPoolExecutor`.

    Requires picklable functions and items; intended for coarse-grained
    per-item work (e.g. solving many independent instances in a parameter
    sweep).
    """

    def __init__(self, max_workers: int = 2, tracker: WorkDepthTracker | None = None) -> None:
        super().__init__(tracker)
        if max_workers < 1:
            raise BackendError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def _execute(self, func: Callable[[T], R], items: Sequence[T]) -> list[R]:
        pool = self._ensure_pool()
        try:
            return list(pool.map(func, items))
        except Exception as exc:  # pragma: no cover - depends on pickling environment
            raise BackendError(f"process pool execution failed: {exc}") from exc

    def submit(self, func: Callable[..., R], *args: Any) -> "Future[R]":
        return self._ensure_pool().submit(func, *args)

    def reset_pool(self) -> None:
        """Tear down a (possibly broken) pool; the next use builds a fresh one.

        A worker that hard-exits marks the whole :class:`ProcessPoolExecutor`
        broken; every queued and future submission then fails.  The executor
        calls this after absorbing a :class:`BrokenProcessPool` so surviving
        jobs can be requeued onto a healthy pool.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def get_backend(
    name: str = "serial",
    max_workers: int | None = None,
    tracker: WorkDepthTracker | None = None,
) -> ExecutionBackend:
    """Factory for backends by name: ``"serial"``, ``"thread"``, ``"process"``."""
    name = name.lower()
    if name == "serial":
        return SerialBackend(tracker=tracker)
    if name == "thread":
        return ThreadBackend(max_workers=max_workers or 4, tracker=tracker)
    if name == "process":
        return ProcessBackend(max_workers=max_workers or 2, tracker=tracker)
    raise BackendError(f"unknown backend {name!r}; expected serial, thread, or process")
