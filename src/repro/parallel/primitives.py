"""Cost-annotated bulk parallel primitives.

These are the PRAM-style building blocks (map, reduce, scan, filter) in
terms of which the solver's per-iteration steps decompose.  Each primitive
charges the standard textbook work/depth costs to the backend's tracker:

* map over ``n`` items with per-item work ``w_i``: work ``sum w_i``, depth
  ``max w_i``;
* reduce of ``n`` values: work ``O(n)``, depth ``O(log n)``;
* scan (prefix sums) of ``n`` values: work ``O(n)``, depth ``O(log n)``;
* filter/pack of ``n`` values: work ``O(n)``, depth ``O(log n)`` (it is a
  map plus a scan).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.parallel.backends import ExecutionBackend, SerialBackend

T = TypeVar("T")
R = TypeVar("R")


def _log2_ceil(n: int) -> float:
    return float(max(1, math.ceil(math.log2(max(n, 2)))))


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    backend: ExecutionBackend | None = None,
    work_per_item: Sequence[float] | float | None = None,
    label: str = "map",
) -> list[R]:
    """Apply ``func`` to every item through the backend's parallel map."""
    backend = backend or SerialBackend()
    return backend.map(func, items, work_per_item=work_per_item, label=label)


def parallel_reduce(
    values: Iterable[float],
    backend: ExecutionBackend | None = None,
    label: str = "reduce",
) -> float:
    """Sum ``values`` with logarithmic-depth tree-reduction accounting.

    The numerical result is an ordinary pairwise sum (``numpy`` already uses
    pairwise summation internally, matching the tree reduction's rounding
    behaviour closely); the tracker is charged work ``O(n)`` and depth
    ``O(log n)``.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    backend = backend or SerialBackend()
    if backend.tracker is not None and arr.size:
        backend.tracker.charge(float(arr.size), _log2_ceil(arr.size), label=label)
    return float(arr.sum())


def parallel_scan(
    values: Iterable[float],
    backend: ExecutionBackend | None = None,
    inclusive: bool = True,
    label: str = "scan",
) -> np.ndarray:
    """Prefix sums of ``values`` with Blelloch-scan work/depth accounting."""
    arr = np.asarray(list(values), dtype=np.float64)
    backend = backend or SerialBackend()
    if backend.tracker is not None and arr.size:
        backend.tracker.charge(2.0 * arr.size, 2.0 * _log2_ceil(arr.size), label=label)
    sums = np.cumsum(arr)
    if inclusive:
        return sums
    return np.concatenate(([0.0], sums[:-1]))


def parallel_filter(
    predicate: Callable[[T], bool],
    items: Iterable[T],
    backend: ExecutionBackend | None = None,
    label: str = "filter",
) -> list[T]:
    """Keep the items satisfying ``predicate`` (a map followed by a pack).

    This is the primitive behind Algorithm 3.1 line 5, which selects the
    coordinate set ``B(t) = {i : W . A_i <= (1+eps) Tr W}`` in parallel.
    """
    items = list(items)
    backend = backend or SerialBackend()
    flags = backend.map(predicate, items, work_per_item=1.0, label=label + "-flags")
    if backend.tracker is not None and items:
        # The pack step is a prefix sum over the flags.
        backend.tracker.charge(float(len(items)), _log2_ceil(len(items)), label=label + "-pack")
    return [item for item, flag in zip(items, flags) if flag]
