"""Work–depth (PRAM-style) parallel substrate.

The paper states its results in the classic *work–depth* model of parallel
computation: an algorithm is an NC algorithm when its depth (critical-path
length) is polylogarithmic and its work (total operation count) is
polynomial, and Corollary 1.2 bounds both quantities for the positive-SDP
solver.  Reproducing those claims requires a substrate that (a) executes
the bulk primitives the algorithm is built from, and (b) *accounts* for the
work and depth each of them contributes.

* :mod:`repro.parallel.workdepth` — the cost model: :class:`WorkDepthTracker`
  accumulates work/depth, supports nested parallel regions (work adds,
  depth takes the maximum across parallel branches), and produces
  :class:`WorkDepthReport` summaries.
* :mod:`repro.parallel.primitives` — cost-annotated bulk primitives
  (parallel map, reduce, prefix scan, filter/pack) built on top of a
  backend.
* :mod:`repro.parallel.backends` — execution backends: serial (default),
  thread pool, and process pool.  The backend only changes how the work is
  *executed*; the work–depth accounting is identical across backends, which
  is what lets the cost model act as the machine-independent measurement
  the paper's bounds refer to.
* :mod:`repro.parallel.scheduler` — Brent's-theorem style scheduling
  estimates (simulated running time on ``p`` processors) used by experiment
  E10.
"""

from repro.parallel.workdepth import WorkDepthTracker, WorkDepthReport, parallel_region
from repro.parallel.backends import (
    ExecutionBackend,
    SerialBackend,
    ThreadBackend,
    ProcessBackend,
    get_backend,
)
from repro.parallel.primitives import parallel_map, parallel_reduce, parallel_scan, parallel_filter
from repro.parallel.scheduler import BrentSchedule, simulate_schedule

__all__ = [
    "WorkDepthTracker",
    "WorkDepthReport",
    "parallel_region",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "parallel_map",
    "parallel_reduce",
    "parallel_scan",
    "parallel_filter",
    "BrentSchedule",
    "simulate_schedule",
]
