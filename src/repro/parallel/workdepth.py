"""The work–depth cost model.

Work = total number of primitive operations; depth (span) = length of the
longest chain of sequentially dependent operations.  The paper's Theorem 1.1
and Corollary 1.2 are statements about these two quantities, so the
reproduction measures them directly: every bulk primitive in
:mod:`repro.parallel.primitives` and every solver iteration charges its work
and depth to a :class:`WorkDepthTracker`.

Composition rules implemented here (the standard ones, see e.g. JáJá 1992):

* sequential composition: work adds, depth adds;
* parallel composition (a ``parallel_region``): work adds, depth is the
  *maximum* over the parallel branches.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class WorkDepthReport:
    """Immutable summary of accumulated work and depth.

    Attributes
    ----------
    work:
        Total primitive operations charged.
    depth:
        Critical-path length.
    events:
        Number of charge events (useful to sanity check instrumentation).
    by_label:
        Work broken down by the label passed to ``charge``/primitives.
    """

    work: float
    depth: float
    events: int
    by_label: dict[str, float] = field(default_factory=dict)

    @property
    def parallelism(self) -> float:
        """Average parallelism ``work / depth`` (the speedup ceiling)."""
        return self.work / self.depth if self.depth > 0 else float("inf")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WorkDepthReport(work={self.work:.3g}, depth={self.depth:.3g}, "
            f"parallelism={self.parallelism:.3g}, events={self.events})"
        )


class WorkDepthTracker:
    """Accumulates work and depth with support for nested parallel regions.

    Outside any parallel region, ``charge(work, depth)`` behaves like
    sequential composition.  Inside a :func:`parallel_region` (entered via
    :meth:`parallel` or the module-level context manager), charges from the
    enclosed branches add their work but contribute only the maximum of
    their depths when the region closes.
    """

    def __init__(self) -> None:
        self.work: float = 0.0
        self.depth: float = 0.0
        self.events: int = 0
        self.by_label: dict[str, float] = {}
        # Stack of (accumulated_parallel_work, max_branch_depth) frames.
        self._region_stack: list[list[float]] = []

    # ------------------------------------------------------------------ charging
    def charge(self, work: float, depth: float | None = None, label: str = "") -> None:
        """Charge ``work`` operations with critical path ``depth`` (default: same).

        ``depth`` defaults to ``work`` (a purely sequential fragment).
        """
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work}")
        depth = work if depth is None else depth
        if depth < 0:
            raise ValueError(f"depth must be >= 0, got {depth}")
        self.events += 1
        if label:
            self.by_label[label] = self.by_label.get(label, 0.0) + work
        if self._region_stack:
            frame = self._region_stack[-1]
            frame[0] += work
            frame[1] = max(frame[1], depth)
        else:
            self.work += work
            self.depth += depth

    @contextmanager
    def parallel(self) -> Iterator["WorkDepthTracker"]:
        """Open a parallel region: enclosed charges add work, max their depths."""
        self._region_stack.append([0.0, 0.0])
        try:
            yield self
        finally:
            region_work, region_depth = self._region_stack.pop()
            # The closed region behaves like a single charge to the enclosing scope.
            self.events += 1
            if self._region_stack:
                frame = self._region_stack[-1]
                frame[0] += region_work
                frame[1] = max(frame[1], region_depth)
            else:
                self.work += region_work
                self.depth += region_depth

    # ------------------------------------------------------------------ reporting
    def report(self) -> WorkDepthReport:
        """Snapshot of the accumulated totals."""
        return WorkDepthReport(
            work=self.work,
            depth=self.depth,
            events=self.events,
            by_label=dict(self.by_label),
        )

    def export_state(self) -> dict:
        """Checkpointable snapshot of the accumulated totals.

        Captured only between iterations (never inside an open parallel
        region), so the region stack is not part of the snapshot.
        """
        return {
            "work": float(self.work),
            "depth": float(self.depth),
            "events": int(self.events),
            "by_label": dict(self.by_label),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`."""
        self.work = float(state["work"])
        self.depth = float(state["depth"])
        self.events = int(state["events"])
        self.by_label = dict(state["by_label"])
        self._region_stack.clear()

    def reset(self) -> None:
        """Zero all accumulated work, depth, events, and labels."""
        self.work = 0.0
        self.depth = 0.0
        self.events = 0
        self.by_label.clear()
        self._region_stack.clear()

    def merge(self, other: "WorkDepthTracker | WorkDepthReport") -> None:
        """Sequentially compose another tracker's totals into this one."""
        self.work += other.work
        self.depth += other.depth
        self.events += other.events
        for label, amount in other.by_label.items():
            self.by_label[label] = self.by_label.get(label, 0.0) + amount


@contextmanager
def parallel_region(tracker: WorkDepthTracker | None) -> Iterator[WorkDepthTracker | None]:
    """Module-level convenience: no-op when ``tracker`` is ``None``."""
    if tracker is None:
        yield None
        return
    with tracker.parallel():
        yield tracker
