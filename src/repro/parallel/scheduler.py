"""Brent's-theorem scheduling estimates.

Given the work ``W`` and depth ``D`` measured by a
:class:`~repro.parallel.workdepth.WorkDepthTracker`, Brent's theorem bounds
the running time on ``p`` processors by ``T_p <= W/p + D``.  Experiment E10
uses :func:`simulate_schedule` to turn measured work/depth traces into
simulated speedup curves — the honest way to report "parallel performance"
on a single-core container, and the quantity the paper's NC claims actually
constrain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.workdepth import WorkDepthReport, WorkDepthTracker


@dataclass(frozen=True)
class BrentSchedule:
    """Simulated execution on ``processors`` processors.

    Attributes
    ----------
    processors:
        Number of processors ``p``.
    time_upper:
        Brent bound ``W/p + D``.
    time_lower:
        Trivial lower bound ``max(W/p, D)``.
    speedup_upper / speedup_lower:
        ``W / time`` for the respective bounds (work-normalised speedup,
        i.e. relative to the one-processor time ``W``).
    efficiency:
        ``speedup_lower / p`` — fraction of ideal linear speedup that is
        certainly achievable.
    """

    processors: int
    work: float
    depth: float
    time_upper: float
    time_lower: float

    @property
    def speedup_upper(self) -> float:
        """Best-case speedup ``work / time_lower`` on this processor count."""
        return self.work / self.time_lower if self.time_lower > 0 else float("inf")

    @property
    def speedup_lower(self) -> float:
        """Guaranteed speedup ``work / time_upper`` (Brent's upper bound on time)."""
        return self.work / self.time_upper if self.time_upper > 0 else float("inf")

    @property
    def efficiency(self) -> float:
        """Guaranteed parallel efficiency ``speedup_lower / processors``."""
        return self.speedup_lower / self.processors if self.processors else 0.0


def simulate_schedule(
    report: WorkDepthReport | WorkDepthTracker,
    processors: int,
) -> BrentSchedule:
    """Apply Brent's theorem to a work–depth report for ``processors`` processors."""
    if processors < 1:
        raise ValueError(f"processors must be >= 1, got {processors}")
    if isinstance(report, WorkDepthTracker):
        report = report.report()
    work, depth = float(report.work), float(report.depth)
    upper = work / processors + depth
    lower = max(work / processors, depth)
    return BrentSchedule(
        processors=processors,
        work=work,
        depth=depth,
        time_upper=upper,
        time_lower=lower,
    )


def speedup_curve(
    report: WorkDepthReport | WorkDepthTracker,
    processor_counts: list[int],
) -> list[BrentSchedule]:
    """Simulated schedules for each processor count (for speedup tables)."""
    return [simulate_schedule(report, p) for p in processor_counts]
