"""Deterministic solve service: queue, deadlines, retries, shedding, pool.

The service wraps the decision solvers in the serving discipline a
long-running deployment needs, without giving up the repository's
bit-reproducibility contract:

* **Deterministic streams.**  Every request owns the rng stream
  ``instance_rng(seed, request_id)`` — the same stream
  :func:`~repro.core.batch.solve_many` would give it as instance
  ``request_id`` of one big batch — pinned through the ``rng_indices``
  parameter, so results do not depend on how requests happen to be
  batched, retried, hedged, or resumed.
* **Deadline-aware queue.**  Requests carry an absolute ``deadline`` on
  the service clock plus a ``priority``; expired work is finalized as
  :attr:`RequestOutcome.DEADLINE_EXCEEDED` (with the last verified
  partial result attached when one exists), never silently dropped.
* **Checkpoint/resume.**  A ``BUDGET_EXHAUSTED`` attempt hands its
  :class:`~repro.core.checkpoint.SolverCheckpoint` back to the queue and
  the next attempt continues it — no wasted work, bit-identical to an
  uninterrupted solve.
* **Retry with backoff.**  ``FAILED`` attempts (crash-style faults,
  exhausted demotion ladders) retry up to ``max_attempts`` with capped
  exponential backoff; the jitter is drawn from a per-request,
  per-attempt ``default_rng((seed, request_id, attempt))`` stream, so the
  whole retry schedule replays bit-identically under a virtual clock.
* **Load shedding.**  Past the queue-depth threshold the service answers
  with a cache hit, a warm-start certificate (a cached dual witness
  re-verified on the new instance — mathematically sound, merely
  sub-optimal), or a typed :attr:`RequestOutcome.SHED` rejection.  It
  never raises and never drops.
* **Concurrent execution** (:mod:`repro.service.executor`).  In
  ``mode="thread"``/``"process"`` the service dispatches jobs to a
  :class:`~repro.service.executor.WorkerPool` instead of solving inline:
  heartbeat-watchdogged workers are killed and their requests requeued
  from the latest shipped checkpoint, stragglers are hedged with a
  speculative duplicate (first finisher wins; replicas share rng
  streams, so the race can never change bits), repeatedly-failing
  ``(m, n, ranks)`` instance families are isolated behind a per-family
  :class:`~repro.service.executor.CircuitBreaker` with half-open
  probing (:attr:`RequestOutcome.CIRCUIT_OPEN`), in-flight work is
  bounded, and :meth:`SolveService.shutdown` drains gracefully —
  in-flight and queued requests come back as
  :attr:`RequestOutcome.SUSPENDED` with resumable checkpoints, never
  dropped.  The default ``mode="inline"`` routes through the same job
  path on a serial backend, preserving the exact pre-executor
  semantics.

All time flows through an injectable clock; :class:`VirtualClock` makes
the chaos tests fully deterministic.  The invariant the chaos suite
proves: on a fixed seed, every terminal result's bits are independent of
worker count, hedging, and injected crashes/stalls — scheduling only
moves *when* work happens, checkpointed resume makes *what* it computes
exact.
"""

from __future__ import annotations

import copy
import dataclasses
import hashlib
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

import numpy as np

from repro.core.batch import instance_rng, solve_many
from repro.core.decision import DecisionOptions, decision_psdp, _resolve_constraints
from repro.core.result import DecisionOutcome, DecisionResult, SolveStatus
from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.robustness import faultinject
from repro.service.executor import (
    CircuitBreaker,
    JobSpec,
    WorkerPool,
    WorkerReport,
    _ActiveJob,
    instance_family,
)

__all__ = ["RequestOutcome", "ServiceResponse", "SolveService", "VirtualClock"]


class VirtualClock:
    """A manually-advanced monotonic clock for deterministic tests.

    Callable (returns the current virtual time) so it drops into every
    ``clock=`` slot in the repository — the service, the supervisor's
    wall-clock budgets, and fault-injection ``at_time`` arming.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += float(seconds)
        return self._now


class RequestOutcome(Enum):
    """Terminal disposition of a service request (always typed, never raised)."""

    #: Solved and certified exactly like a direct ``decision_psdp`` call.
    COMPLETED = "completed"
    #: Solved with a verified-but-degraded answer: the solver recovered
    #: through its demotion ladder, or a warm-start certificate was served
    #: under load.  ``result`` is still an exactly-verified certificate.
    DEGRADED = "degraded"
    #: Rejected at admission or under overload; no solve was attempted.
    SHED = "shed"
    #: The deadline passed before the solve finished.  ``result`` carries
    #: the last verified partial dual when one exists.
    DEADLINE_EXCEEDED = "deadline-exceeded"
    #: Every attempt failed and the retry budget is spent.  ``result``
    #: carries the last failed attempt's result.
    RETRY_EXHAUSTED = "retry-exhausted"
    #: The instance family's circuit breaker is open: recent requests of
    #: the same ``(m, n, ranks)`` shape kept exhausting recovery ladders
    #: or crashing workers, so this one was shed without burning the pool.
    CIRCUIT_OPEN = "circuit-open"
    #: The service shut down while the request was queued or in flight.
    #: ``checkpoint`` (when present) resumes the solve bit-identically via
    #: ``submit(..., resume_from=response.checkpoint)``.
    SUSPENDED = "suspended"


@dataclass
class ServiceResponse:
    """What :meth:`SolveService.response` hands back for a finished request."""

    request_id: int
    outcome: RequestOutcome
    result: DecisionResult | None
    attempts: int
    detail: str = ""
    from_cache: bool = False
    warm_started: bool = False
    #: Number of checkpoint-resume continuations the solve went through.
    resumes: int = 0
    #: Resumable :class:`~repro.core.checkpoint.SolverCheckpoint` for
    #: :attr:`RequestOutcome.SUSPENDED` (and, best-effort, for
    #: ``RETRY_EXHAUSTED``) outcomes; ``None`` otherwise.
    checkpoint: Any = None


@dataclass(eq=False)
class _Request:
    """Internal queue entry (requests in flight; identity equality)."""

    request_id: int
    constraints: ConstraintCollection
    options: DecisionOptions
    options_key: str
    fingerprint: str
    family: tuple
    deadline: float | None
    priority: int
    max_attempts: int
    attempts: int = 0
    resumes: int = 0
    #: Watchdog/stall kills absorbed so far (requeues do not consume
    #: attempts — resume is free — but are capped by ``max_requeues``).
    requeues: int = 0
    next_ready: float = 0.0
    checkpoint: Any = None
    last_result: DecisionResult | None = field(default=None, repr=False)
    #: Deep copy of the constraints taken at admission, before any solve
    #: touched them.  Solving builds lazy caches on the collection (the
    #: packed Gram view), which perturbs ``traces()`` rounding for a later
    #: from-scratch solve of the same object — so hedge replicas and
    #: scratch requeues solve a fresh copy of this snapshot and replay the
    #: first attempt's state evolution bit-exactly.
    pristine: ConstraintCollection | None = field(default=None, repr=False)
    #: True once the first attempt was dispatched on the caller's object.
    launched: bool = False


def _options_key(opts: DecisionOptions) -> str:
    """Batching/cache key over every option field that shapes the solve.

    ``rng`` and ``heartbeat`` are excluded (the service owns the streams,
    and the heartbeat is observability plumbing that never changes result
    bits); ``backend`` is keyed by identity — requests only batch when
    they share the exact same backend object (or both leave it ``None``).
    """
    parts = []
    for f in dataclasses.fields(opts):
        value = getattr(opts, f.name)
        if f.name in ("rng", "heartbeat"):
            continue
        if f.name == "backend":
            parts.append(f"backend=id{id(value)}" if value is not None else "backend=None")
            continue
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def _fingerprint(constraints: ConstraintCollection, options_key: str) -> str:
    """Instance identity: SHA-256 over the dense constraint bytes + options.

    Hashes the operators' dense forms directly (never the packed view —
    building it on the caller's collection would reroute ``traces()``
    through the packed rounding and perturb a later sequential solve).
    """
    digest = hashlib.sha256()
    for op in constraints:
        dense = np.ascontiguousarray(op.to_dense(), dtype=np.float64)
        digest.update(repr(dense.shape).encode())
        digest.update(dense.tobytes())
    digest.update(options_key.encode())
    return digest.hexdigest()


class SolveService:
    """Deterministic request queue over the decision solvers.

    Parameters
    ----------
    options:
        Default :class:`~repro.core.decision.DecisionOptions` for requests
        that do not bring their own.  The ``rng`` field is ignored — each
        request solves on ``instance_rng(seed, request_id)``.
    seed:
        Root seed for every per-request stream (solve rng and backoff
        jitter alike).  Two services with the same seed and the same
        request sequence produce bit-identical answers.
    clock:
        Injectable time source (``time.monotonic`` by default; pass a
        :class:`VirtualClock` in tests).  Deadlines and backoff are
        absolute values on this clock.
    max_queue_depth:
        Admission threshold: submissions past this depth are answered
        from the cache, warm-start certified, or shed — never enqueued.
    attempt_iteration_budget:
        Optional per-attempt ``iteration_budget``.  Long solves then
        surface as ``BUDGET_EXHAUSTED`` + checkpoint every so many
        iterations and continue on the next :meth:`step` — the queue
        stays responsive without losing work.
    backoff_base / backoff_cap / backoff_jitter:
        Failed-attempt backoff: ``min(cap, base * 2**(attempt-1))``
        stretched by ``1 + jitter * u`` with ``u`` from the request's
        deterministic jitter stream.
    batch_size:
        Maximum number of compatible requests per fused
        :func:`~repro.core.batch.solve_many` call.
    cache_size:
        Entries kept in the instance-fingerprint result cache (LRU).
    mode / workers:
        Execution strategy — ``"inline"`` (default; solve synchronously
        inside :meth:`step`, the pre-executor semantics), ``"thread"``
        (jobs on a thread pool; NumPy's GEMMs release the GIL), or
        ``"process"`` (crash isolation; needs ``control_dir``).
    heartbeat_every:
        Periodic-checkpoint cadence (iterations) applied to attempts
        whose options do not set ``checkpoint_every`` themselves.  This
        is the worker heartbeat: the watchdog and crash-requeue can only
        be as fresh as the latest shipped capture, so set it whenever
        ``watchdog_timeout`` is on.
    watchdog_timeout:
        Seconds (service clock) a job may go without a heartbeat before
        the supervisor kills it and requeues its requests from their
        latest shipped checkpoints.  ``None`` disables the watchdog.
    hedge_after:
        Seconds in flight after which a straggler job is hedged with a
        speculative duplicate (same rng streams, so replicas are
        bit-identical; first finisher wins, the loser is cancelled).
        ``None`` disables hedging.
    max_requeues:
        Cap on watchdog/stall requeues per request (they never consume
        retry attempts; this cap is the escape valve for a request that
        stalls every single time).
    breaker_threshold / breaker_cooldown:
        Per-instance-family circuit breaker: ``threshold`` consecutive
        failures (ladder exhaustion, worker crashes) open it; after
        ``cooldown`` seconds one probe is admitted (half-open) and its
        verdict closes or re-opens the breaker.
    max_in_flight:
        Bound on concurrently-dispatched jobs (backpressure; defaults to
        ``2 * workers``).  Queued work past the bound simply waits.
    control_dir:
        Directory for process-mode heartbeat/cancel files (required for
        ``mode="process"``).
    hard_crash:
        Process mode only: injected ``WorkerCrash`` faults call
        ``os._exit`` (a genuine worker death breaking the pool) instead
        of unwinding with a simulated crash report.
    """

    def __init__(
        self,
        *,
        options: DecisionOptions | None = None,
        seed: int = 0,
        clock: Callable[[], float] | None = None,
        max_queue_depth: int = 64,
        attempt_iteration_budget: int | None = None,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        backoff_jitter: float = 0.25,
        batch_size: int = 8,
        cache_size: int = 128,
        mode: str = "inline",
        workers: int = 1,
        heartbeat_every: int | None = None,
        watchdog_timeout: float | None = None,
        hedge_after: float | None = None,
        max_requeues: int = 3,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 60.0,
        max_in_flight: int | None = None,
        control_dir: str | None = None,
        hard_crash: bool = False,
    ) -> None:
        if max_queue_depth <= 0:
            raise InvalidProblemError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if attempt_iteration_budget is not None and attempt_iteration_budget <= 0:
            raise InvalidProblemError(
                f"attempt_iteration_budget must be positive, got {attempt_iteration_budget}"
            )
        if heartbeat_every is not None and heartbeat_every <= 0:
            raise InvalidProblemError(
                f"heartbeat_every must be a positive iteration count, got {heartbeat_every}"
            )
        if watchdog_timeout is not None and watchdog_timeout <= 0:
            raise InvalidProblemError(
                f"watchdog_timeout must be positive seconds, got {watchdog_timeout}"
            )
        if hedge_after is not None and hedge_after < 0:
            raise InvalidProblemError(
                f"hedge_after must be >= 0 seconds (0 hedges immediately), got {hedge_after}"
            )
        if max_requeues < 0:
            raise InvalidProblemError(f"max_requeues must be >= 0, got {max_requeues}")
        self.options = options or DecisionOptions()
        self.seed = int(seed)
        self._clock = clock if clock is not None else time.monotonic
        self.max_queue_depth = int(max_queue_depth)
        self.attempt_iteration_budget = attempt_iteration_budget
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.backoff_jitter = float(backoff_jitter)
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)
        self.mode = mode
        self.heartbeat_every = heartbeat_every
        self.watchdog_timeout = watchdog_timeout
        self.hedge_after = hedge_after
        self.max_requeues = int(max_requeues)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.max_in_flight = int(max_in_flight) if max_in_flight is not None else 2 * workers

        self._pool = WorkerPool(
            mode=mode,
            workers=workers,
            clock=self._clock,
            control_dir=control_dir,
            hard_crash=hard_crash,
        )
        self._queue: list[_Request] = []
        self._responses: dict[int, ServiceResponse] = {}
        self._cache: dict[str, DecisionResult] = {}
        self._cache_order: list[str] = []
        self._next_id = 0
        self._accepting = True
        #: job id -> the requests it carries (primary jobs only; hedge
        #: twins resolve through ``_hedges``).
        self._dispatched: dict[int, list[_Request]] = {}
        #: primary job id -> its hedge twin's job id (and back via spec).
        self._hedges: dict[int, int] = {}
        self._breakers: dict[tuple, CircuitBreaker] = {}

    # ------------------------------------------------------------------ admission
    def submit(
        self,
        problem: Any,
        *,
        options: DecisionOptions | None = None,
        deadline: float | None = None,
        priority: int = 0,
        max_attempts: int = 3,
        resume_from: Any = None,
    ) -> int:
        """Admit one solve request; returns its request id.

        Never raises for load reasons: a full queue, a shutting-down
        service, or an already-expired deadline produces an
        immediately-available typed response (:attr:`RequestOutcome.SHED`
        / ``DEADLINE_EXCEEDED``) instead.  Invalid *problems* (not a
        constraint collection the solvers accept, ``max_attempts < 1``)
        still raise — those are caller bugs, not load conditions.

        ``resume_from`` re-admits suspended work: pass the ``checkpoint``
        of a :attr:`RequestOutcome.SUSPENDED` response and the solve
        continues from it bit-identically (the first attempt runs as a
        solo resume instead of a fresh batch).
        """
        if max_attempts < 1:
            raise InvalidProblemError(f"max_attempts must be >= 1, got {max_attempts}")
        opts = options or self.options
        constraints = _resolve_constraints(problem)
        pristine = copy.deepcopy(constraints)
        request_id = self._next_id
        self._next_id += 1
        now = self._clock()
        key = _options_key(opts)
        fingerprint = _fingerprint(constraints, key)

        if not self._accepting:
            self._responses[request_id] = ServiceResponse(
                request_id=request_id,
                outcome=RequestOutcome.SHED,
                result=None,
                attempts=0,
                detail="service is shutting down",
                checkpoint=resume_from,
            )
            return request_id

        cached = self._cache.get(fingerprint)
        if cached is not None:
            self._touch_cache(fingerprint)
            self._responses[request_id] = ServiceResponse(
                request_id=request_id,
                outcome=(
                    RequestOutcome.DEGRADED
                    if cached.status is SolveStatus.DEGRADED
                    else RequestOutcome.COMPLETED
                ),
                result=cached,
                attempts=0,
                detail="instance-fingerprint cache hit",
                from_cache=True,
            )
            return request_id

        if deadline is not None and deadline <= now:
            self._responses[request_id] = ServiceResponse(
                request_id=request_id,
                outcome=RequestOutcome.DEADLINE_EXCEEDED,
                result=None,
                attempts=0,
                detail="deadline expired before admission",
            )
            return request_id

        if len(self._queue) >= self.max_queue_depth:
            response = self._shed(request_id, constraints, opts)
            self._responses[request_id] = response
            return request_id

        self._queue.append(
            _Request(
                request_id=request_id,
                constraints=constraints,
                options=opts,
                options_key=key,
                fingerprint=fingerprint,
                family=instance_family(constraints),
                deadline=deadline,
                priority=int(priority),
                max_attempts=int(max_attempts),
                next_ready=now,
                checkpoint=resume_from,
                pristine=pristine,
            )
        )
        return request_id

    def _shed(
        self, request_id: int, constraints: ConstraintCollection, opts: DecisionOptions
    ) -> ServiceResponse:
        """Overload path: degrade gracefully before rejecting outright."""
        warm = self._warm_start_certificate(constraints, opts)
        if warm is not None:
            return ServiceResponse(
                request_id=request_id,
                outcome=RequestOutcome.DEGRADED,
                result=warm,
                attempts=0,
                detail="queue full: served warm-start certificate",
                warm_started=True,
            )
        return ServiceResponse(
            request_id=request_id,
            outcome=RequestOutcome.SHED,
            result=None,
            attempts=0,
            detail=f"queue depth {len(self._queue)} at threshold {self.max_queue_depth}",
        )

    def _warm_start_certificate(
        self, constraints: ConstraintCollection, opts: DecisionOptions
    ) -> DecisionResult | None:
        """Try to certify the new instance with a cached dual witness.

        Takes any cached dual vector of matching length, measures
        ``lambda_max(sum_i x_i A_i)`` **on the new instance**, and accepts
        only when the rescaled value clears the ``1 - eps`` target — the
        certificate is exactly verified on the instance it is returned
        for, so a stale cache can never produce an unsound answer.
        """
        n = len(constraints)
        eps = float(opts.epsilon)
        for key in reversed(self._cache_order):
            cached = self._cache[key]
            x = cached.dual_x
            if x is None or len(x) != n or not np.all(np.isfinite(x)):
                continue
            summed = constraints.weighted_sum(np.asarray(x, dtype=np.float64))
            lam = float(np.linalg.eigvalsh(summed)[-1])
            if not np.isfinite(lam) or lam <= 0:
                continue
            value = float(np.sum(x)) / lam
            if value >= 1.0 - eps:
                dual_x = np.asarray(x, dtype=np.float64) / lam
                return DecisionResult(
                    outcome=DecisionOutcome.DUAL,
                    dual_x=dual_x,
                    primal_y=None,
                    dual_value=float(dual_x.sum()),
                    primal_min_dot=float("nan"),
                    dual_lambda_max=1.0,
                    iterations=0,
                    max_iterations=0,
                    epsilon=eps,
                    early_exit=True,
                    status=SolveStatus.DEGRADED,
                    history=None,
                    work_depth=None,
                    metadata={
                        "warm_start": True,
                        "solve_status": SolveStatus.DEGRADED.value,
                        "x_l1": float(dual_x.sum()),
                    },
                )
        return None

    # ------------------------------------------------------------------ queries
    def response(self, request_id: int) -> ServiceResponse | None:
        """The finished response for ``request_id`` (``None`` while pending)."""
        return self._responses.get(request_id)

    def pending(self) -> int:
        """Number of requests not yet finalized (queued plus in flight)."""
        return len(self._queue) + sum(len(reqs) for reqs in self._dispatched.values())

    def next_ready_time(self) -> float | None:
        """Earliest ``next_ready`` among queued requests (``None`` if idle)."""
        if not self._queue:
            return None
        return min(r.next_ready for r in self._queue)

    def _breaker(self, family: tuple) -> CircuitBreaker:
        breaker = self._breakers.get(family)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.breaker_threshold, cooldown=self.breaker_cooldown
            )
            self._breakers[family] = breaker
        return breaker

    # ------------------------------------------------------------------ serving
    def step(self) -> int:
        """Serve one scheduling round; returns the number of requests finalized.

        Expires overdue deadlines, absorbs finished pool jobs, kills
        watchdog-stale workers, hedges stragglers, and dispatches ready
        requests (breaker-gated, backpressure-bounded) to the pool.  In
        inline mode the dispatched job executes synchronously inside this
        call, so the pre-executor one-batch-per-step cadence is
        preserved exactly.
        """
        now = self._clock()
        finalized = 0

        for request in list(self._queue):
            if request.deadline is not None and request.deadline <= now:
                self._queue.remove(request)
                self._finalize(
                    request,
                    RequestOutcome.DEADLINE_EXCEEDED,
                    request.last_result,
                    detail="deadline passed while queued",
                )
                finalized += 1

        finalized += self._collect()
        self._run_watchdog()
        self._run_hedging()
        finalized += self._dispatch()
        finalized += self._collect()
        return finalized

    def _collect(self) -> int:
        """Absorb every completed pool job; returns requests finalized."""
        finalized = 0
        for job, report in self._pool.poll():
            finalized += self._absorb_report(job, report)
        return finalized

    def _run_watchdog(self) -> None:
        """Kill jobs whose heartbeat has gone stale; requeue happens on report."""
        if self.watchdog_timeout is None:
            return
        now = self._clock()
        for job in self._pool.in_flight():
            if job.killed is None and not job.superseded:
                # Inclusive: drain advances a VirtualClock exactly onto
                # the deadline, and landing on it must trigger the kill.
                if now - job.last_progress >= self.watchdog_timeout:
                    self._pool.kill(job.spec.job_id, "watchdog")

    def _run_hedging(self) -> None:
        """Launch speculative duplicates of straggler jobs."""
        if self.hedge_after is None:
            return
        now = self._clock()
        for job in list(self._pool.in_flight()):
            if (
                job.killed is None
                and not job.superseded
                and not job.hedged
                and job.spec.hedge_of is None
                and now - job.submitted_at >= self.hedge_after
            ):
                twin_id = self._pool.next_job_id()
                twin_spec = dataclasses.replace(
                    job.spec,
                    job_id=twin_id,
                    hedge_of=job.spec.job_id,
                    constraints=self._hedge_constraints(job),
                )
                job.hedged = True
                self._hedges[job.spec.job_id] = twin_id
                self._pool.submit(twin_spec)

    def _hedge_constraints(self, job: _ActiveJob) -> list[ConstraintCollection]:
        """Fresh constraint copies for a hedge twin.

        Replicas must never share a mutable collection with a concurrently
        running primary.  Scratch twins copy the pristine admission
        snapshots (same starting state as the primary ⇒ same bits);
        resume twins copy the used object whose cache state the resumed
        iterations already saw.
        """
        requests = {r.request_id: r for r in self._dispatched.get(job.spec.job_id, [])}
        copies = []
        for rid, constraints in zip(job.spec.request_ids, job.spec.constraints):
            request = requests.get(rid)
            if job.spec.checkpoint is None and request is not None:
                copies.append(copy.deepcopy(request.pristine))
            else:
                copies.append(copy.deepcopy(constraints))
        return copies

    def _dispatch(self) -> int:
        """Form jobs from the ready queue and launch them; returns finalized.

        Jobs are formed exactly as the pre-executor service batched:
        highest-priority ready request leads; checkpointed requests (and
        circuit-breaker probes) run solo; everything else ready with the
        same options key joins the lead's ``solve_many`` batch up to
        ``batch_size``.  Open-breaker families are shed with
        :attr:`RequestOutcome.CIRCUIT_OPEN` before job formation.
        """
        finalized = 0
        while len(self._pool.in_flight()) < self.max_in_flight:
            now = self._clock()
            ready = [r for r in self._queue if r.next_ready <= now]
            if not ready:
                break
            ready.sort(key=lambda r: (-r.priority, r.request_id))

            for request in list(ready):
                if self._breaker(request.family).peek(now) == "shed":
                    ready.remove(request)
                    self._queue.remove(request)
                    self._finalize(
                        request,
                        RequestOutcome.CIRCUIT_OPEN,
                        request.last_result,
                        detail=(
                            f"circuit breaker open for instance family "
                            f"(m={request.family[0]}, n={request.family[1]})"
                        ),
                        checkpoint=request.checkpoint,
                    )
                    finalized += 1
            if not ready:
                continue

            lead = None
            verdict = None
            for request in ready:
                v = self._breaker(request.family).peek(now)
                if v == "wait":  # a probe for this family is already out
                    continue
                lead, verdict = request, v
                break
            if lead is None:
                break

            if verdict == "probe":
                self._breaker(lead.family).begin_probe()
                batch = [lead]
            elif lead.checkpoint is not None:
                batch = [lead]
            else:
                batch = [
                    r
                    for r in ready
                    if r.options_key == lead.options_key
                    and r.checkpoint is None
                    and self._breaker(r.family).peek(now) == "run"
                ][: self.batch_size]
            self._launch(batch)
            if self.mode == "inline":
                break
        return finalized

    def _job_constraints(self, request: _Request) -> ConstraintCollection:
        """The collection this dispatch should solve.

        First attempts and checkpoint resumes use the live object (resume
        replays iterations from checkpoint state, which the chaos suite
        proves is insensitive to the collection's lazy caches).  Scratch
        re-dispatches solve a fresh copy of the admission-time snapshot —
        a reused object would replay with its packed Gram view already
        built and perturb ``traces()`` rounding by ulps.
        """
        if request.checkpoint is not None or not request.launched:
            request.launched = True
            return request.constraints
        return copy.deepcopy(request.pristine)

    def _launch(self, batch: list[_Request]) -> None:
        """Move a formed batch out of the queue and submit it as one job."""
        for request in batch:
            self._queue.remove(request)
        lead = batch[0]
        job_id = self._pool.next_job_id()
        plan = faultinject.export_plan() or None
        spec = JobSpec(
            job_id=job_id,
            request_ids=[r.request_id for r in batch],
            constraints=[self._job_constraints(r) for r in batch],
            options=dataclasses.replace(
                self._attempt_options(lead), rng=None, heartbeat=None
            ),
            seed=self.seed,
            checkpoint=lead.checkpoint,
            fault_plan=plan,
            plan_pid=os.getpid(),
        )
        self._dispatched[job_id] = list(batch)
        self._pool.submit(spec)

    # ------------------------------------------------------------------ absorption
    def _absorb_report(self, job: _ActiveJob, report: WorkerReport) -> int:
        """Fold one finished job back into service state; returns finalized."""
        job_id = job.spec.job_id
        primary_id = job.spec.hedge_of if job.spec.hedge_of is not None else job_id
        if report.usage:
            faultinject.consume_plan_usage(report.usage)

        requests = [
            r
            for r in self._dispatched.get(primary_id, [])
            if r.request_id not in self._responses
        ]
        if not requests:
            # Hedge twin of an already-delivered job (or a fully-expired
            # batch): nothing left to absorb.
            self._dispatched.pop(primary_id, None)
            self._hedges.pop(primary_id, None)
            return 0

        twin_id = self._hedges.get(primary_id)
        sibling_id = None
        if twin_id is not None:
            sibling_id = twin_id if job_id == primary_id else primary_id
        sibling = next(
            (j for j in self._pool.in_flight() if j.spec.job_id == sibling_id), None
        )

        if report.status != "done" and sibling is not None and job.killed != "shutdown":
            # This replica died but its hedge twin is still computing the
            # same requests on the same streams — let the survivor deliver.
            if report.status in ("crashed", "error"):
                now = self._clock()
                for request in requests:
                    self._breaker(request.family).record_failure(now)
            return 0

        # This report delivers: claim the requests and retire the sibling.
        self._dispatched.pop(primary_id, None)
        self._hedges.pop(primary_id, None)
        if sibling is not None:
            sibling.superseded = True
            self._pool.kill(sibling.spec.job_id, "hedge-loser")

        if report.status == "done":
            finalized = 0
            for request, result in zip(requests, report.results or []):
                finalized += self._absorb_solved(request, result)
            return finalized

        if report.status == "cancelled":
            if job.killed == "hedge-loser":  # pragma: no cover - claimed above
                return 0
            if job.killed == "shutdown":
                return sum(self._suspend(request, job) for request in requests)
            # Watchdog kill, or an injected stall that self-cancelled
            # (inline mode): requeue from the latest shipped checkpoint.
            reason = job.killed or "stall"
            return sum(
                self._requeue_killed(request, job, reason) for request in requests
            )

        # crashed / error: the attempt is gone; breaker notices, retry pays.
        now = self._clock()
        finalized = 0
        for request in requests:
            self._breaker(request.family).record_failure(now)
            finalized += self._requeue_crashed(request, job, report.detail)
        return finalized

    def _absorb_solved(self, request: _Request, result: DecisionResult | None) -> int:
        """Absorb one solved result (breaker bookkeeping + queue re-entry)."""
        status = result.status if result is not None else SolveStatus.FAILED
        if status is SolveStatus.FAILED:
            self._breaker(request.family).record_failure(self._clock())
        elif status in (SolveStatus.CERTIFIED, SolveStatus.DEGRADED):
            self._breaker(request.family).record_success()
        done = self._absorb(request, result)
        if not done and request not in self._queue:
            self._queue.append(request)
        return done

    def _adopt_shipped(self, request: _Request, job: _ActiveJob) -> None:
        """Adopt the freshest checkpoint the dead job shipped for ``request``."""
        shipped = job.shipped.get(request.request_id)
        if shipped is not None and shipped is not request.checkpoint:
            request.checkpoint = shipped
            request.resumes += 1

    def _requeue_killed(self, request: _Request, job: _ActiveJob, reason: str) -> int:
        """Watchdog/stall kill: requeue from checkpoint without consuming an attempt."""
        # If this was a circuit-breaker probe, free the probe slot so the
        # requeued request (or a sibling) can probe again.
        self._breaker(request.family).abort_probe()
        self._adopt_shipped(request, job)
        request.requeues += 1
        if request.requeues > self.max_requeues:
            self._finalize(
                request,
                RequestOutcome.RETRY_EXHAUSTED,
                request.last_result,
                detail=f"requeue limit reached after repeated {reason} kills",
                checkpoint=request.checkpoint,
            )
            return 1
        request.next_ready = self._clock()
        self._queue.append(request)
        return 0

    def _requeue_crashed(self, request: _Request, job: _ActiveJob, detail: str) -> int:
        """Worker crash: requeue from checkpoint; the crash consumes an attempt."""
        self._adopt_shipped(request, job)
        request.attempts += 1
        if request.attempts >= request.max_attempts:
            self._finalize(
                request,
                RequestOutcome.RETRY_EXHAUSTED,
                request.last_result,
                detail=f"worker crashed on final attempt: {detail}",
                checkpoint=request.checkpoint,
            )
            return 1
        request.next_ready = self._clock() + self._backoff(request)
        self._queue.append(request)
        return 0

    def _suspend(self, request: _Request, job: _ActiveJob | None) -> int:
        """Shutdown path: finalize as SUSPENDED with the freshest checkpoint."""
        if job is not None:
            self._adopt_shipped(request, job)
        self._finalize(
            request,
            RequestOutcome.SUSPENDED,
            request.last_result,
            detail=(
                "service shut down; resumable checkpoint attached"
                if request.checkpoint is not None
                else "service shut down before the solve made checkpointed progress"
            ),
            checkpoint=request.checkpoint,
        )
        return 1

    # ------------------------------------------------------------------ lifecycle
    def drain(self, max_steps: int = 100_000) -> dict[int, ServiceResponse]:
        """Run :meth:`step` until queue and pool empty; returns all responses.

        Between rounds the loop waits (real time) for in-flight futures
        and heartbeats; only when nothing is genuinely progressing does it
        advance a :class:`VirtualClock` to the next timer — a backoff
        ``next_ready``, a watchdog or hedge deadline, or a breaker
        cooldown expiry.  A stalled worker therefore *cannot* freeze the
        drain: its missing heartbeats are exactly what lets the clock
        jump to the watchdog deadline that kills it.
        """
        for _ in range(max_steps):
            if not self._queue and not self._pool.in_flight():
                break
            before = len(self._responses)
            self.step()
            if not self._queue and not self._pool.in_flight():
                break
            if len(self._responses) != before:
                continue
            if self._pool.in_flight():
                self._pool.wait(timeout=0.05)
                if self._pool.observe() or any(
                    job.future.done() for job in self._pool.in_flight()
                ):
                    continue
            if any(r.next_ready <= self._clock() for r in self._queue):
                continue  # ready work exists (e.g. a fresh resume): keep stepping
            target = self._next_event_time()
            now = self._clock()
            if target is not None and target > now:
                if hasattr(self._clock, "advance"):
                    self._clock.advance(target - now)
                else:  # pragma: no cover - real-clock deployments only
                    time.sleep(min(target - now, 0.05))
            elif not self._pool.in_flight():
                break  # nothing queued can ever become ready
        return dict(self._responses)

    def _next_event_time(self) -> float | None:
        """The earliest future timer that can unblock progress."""
        times: list[float] = []
        now = self._clock()
        for request in self._queue:
            times.append(request.next_ready)
            if request.deadline is not None:
                times.append(request.deadline)
        for job in self._pool.in_flight():
            if job.killed is not None or job.superseded:
                continue
            if self.watchdog_timeout is not None:
                times.append(job.last_progress + self.watchdog_timeout)
            if self.hedge_after is not None and not job.hedged and job.spec.hedge_of is None:
                times.append(job.submitted_at + self.hedge_after)
        for breaker in self._breakers.values():
            transition = breaker.next_transition()
            if transition is not None:
                times.append(transition)
        future = [t for t in times if t > now]
        return min(future) if future else None

    def shutdown(self, wait_timeout: float = 5.0) -> dict[int, ServiceResponse]:
        """Graceful drain-to-suspend: stop admission, checkpoint, never drop.

        Cancels every in-flight job (cooperative, at the next heartbeat),
        waits up to ``wait_timeout`` *real* seconds for the workers to
        unwind, and finalizes everything still unfinished — in flight or
        queued — as :attr:`RequestOutcome.SUSPENDED` with the freshest
        resumable checkpoint attached.  Returns all responses; a later
        service resumes any suspended request via
        ``submit(..., resume_from=response.checkpoint)``.
        """
        self._accepting = False
        for job in self._pool.in_flight():
            if not job.superseded:
                self._pool.kill(job.spec.job_id, "shutdown")
        deadline = time.monotonic() + wait_timeout
        while self._pool.in_flight() and time.monotonic() < deadline:
            self._pool.wait(timeout=0.05)
            self._collect()
        # Workers that never unwound (hard stalls): suspend from the
        # parent-side shipped state; their threads die with the pool.
        self._pool.observe()
        for job in self._pool.in_flight():
            primary_id = (
                job.spec.hedge_of if job.spec.hedge_of is not None else job.spec.job_id
            )
            requests = [
                r
                for r in self._dispatched.pop(primary_id, [])
                if r.request_id not in self._responses
            ]
            for request in requests:
                self._suspend(request, job)
        for request in list(self._queue):
            self._suspend(request, None)
        self._queue.clear()
        self._pool.shutdown()
        return dict(self._responses)

    # ------------------------------------------------------------------ internals
    def _attempt_options(self, request: _Request) -> DecisionOptions:
        """The request's options with per-attempt budgets and heartbeat cadence."""
        opts = request.options
        updates: dict[str, Any] = {}
        if self.heartbeat_every is not None and opts.checkpoint_every is None:
            updates["checkpoint_every"] = self.heartbeat_every
        if self.attempt_iteration_budget is not None:
            budget = self.attempt_iteration_budget * (request.resumes + 1)
            if opts.iteration_budget is None or budget < opts.iteration_budget:
                updates["iteration_budget"] = budget
        if (
            request.deadline is not None
            and self._clock is time.monotonic
            and opts.wall_clock_budget is None
        ):  # pragma: no cover - real-clock deployments only
            remaining = request.deadline - self._clock()
            if remaining > 0:
                updates["wall_clock_budget"] = remaining
        return dataclasses.replace(opts, **updates) if updates else opts

    def _absorb(self, request: _Request, result: DecisionResult | None) -> int:
        """Fold one attempt's result back into the queue; returns 1 if finalized."""
        now = self._clock()
        if result is None:  # pragma: no cover - solve_many never returns None
            result = request.last_result
            status = SolveStatus.FAILED
        else:
            status = result.status
        request.last_result = result

        if status is SolveStatus.BUDGET_EXHAUSTED:
            checkpoint = result.metadata.get("checkpoint") if result is not None else None
            if request.deadline is not None and request.deadline <= now:
                self._remove(request)
                self._finalize(
                    request,
                    RequestOutcome.DEADLINE_EXCEEDED,
                    result,
                    detail="deadline passed mid-solve; partial dual attached",
                )
                return 1
            if checkpoint is not None:
                request.checkpoint = checkpoint
                request.resumes += 1
                request.next_ready = now
                return 0
            status = SolveStatus.FAILED  # no continuation point: treat as failure

        if status in (SolveStatus.CERTIFIED, SolveStatus.DEGRADED):
            self._remove(request)
            self._store_cache(request.fingerprint, result)
            self._finalize(
                request,
                (
                    RequestOutcome.COMPLETED
                    if status is SolveStatus.CERTIFIED
                    else RequestOutcome.DEGRADED
                ),
                result,
                detail="",
            )
            return 1

        # FAILED: retry with capped exponential backoff.
        request.attempts += 1
        checkpoint = result.metadata.get("checkpoint") if result is not None else None
        if checkpoint is not None:
            request.checkpoint = checkpoint
        if request.attempts >= request.max_attempts:
            self._remove(request)
            self._finalize(
                request,
                RequestOutcome.RETRY_EXHAUSTED,
                result,
                detail=f"failed {request.attempts} attempts",
            )
            return 1
        request.next_ready = now + self._backoff(request)
        return 0

    def _backoff(self, request: _Request) -> float:
        """Deterministic capped exponential backoff for the next retry."""
        base = min(self.backoff_cap, self.backoff_base * 2.0 ** (request.attempts - 1))
        jitter_rng = np.random.default_rng(
            (self.seed, request.request_id, request.attempts)
        )
        return base * (1.0 + self.backoff_jitter * float(jitter_rng.random()))

    def _remove(self, request: _Request) -> None:
        if request in self._queue:
            self._queue.remove(request)

    def _finalize(
        self,
        request: _Request,
        outcome: RequestOutcome,
        result: DecisionResult | None,
        detail: str,
        checkpoint: Any = None,
    ) -> None:
        self._responses[request.request_id] = ServiceResponse(
            request_id=request.request_id,
            outcome=outcome,
            result=result,
            attempts=request.attempts,
            detail=detail,
            resumes=request.resumes,
            checkpoint=checkpoint,
        )

    def _store_cache(self, fingerprint: str, result: DecisionResult) -> None:
        if fingerprint not in self._cache:
            self._cache_order.append(fingerprint)
        self._cache[fingerprint] = result
        while len(self._cache_order) > self.cache_size:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)

    def _touch_cache(self, fingerprint: str) -> None:
        if fingerprint in self._cache:
            self._cache_order.remove(fingerprint)
            self._cache_order.append(fingerprint)
