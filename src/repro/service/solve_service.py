"""Deterministic solve service: queue, deadlines, retries, shedding.

The service wraps the decision solvers in the serving discipline a
long-running deployment needs, without giving up the repository's
bit-reproducibility contract:

* **Deterministic streams.**  Every request owns the rng stream
  ``instance_rng(seed, request_id)`` — the same stream
  :func:`~repro.core.batch.solve_many` would give it as instance
  ``request_id`` of one big batch — pinned through the ``rng_indices``
  parameter, so results do not depend on how requests happen to be
  batched, retried, or resumed.
* **Deadline-aware queue.**  Requests carry an absolute ``deadline`` on
  the service clock plus a ``priority``; expired work is finalized as
  :attr:`RequestOutcome.DEADLINE_EXCEEDED` (with the last verified
  partial result attached when one exists), never silently dropped.
* **Checkpoint/resume.**  A ``BUDGET_EXHAUSTED`` attempt hands its
  :class:`~repro.core.checkpoint.SolverCheckpoint` back to the queue and
  the next attempt continues it — no wasted work, bit-identical to an
  uninterrupted solve.
* **Retry with backoff.**  ``FAILED`` attempts (crash-style faults,
  exhausted demotion ladders) retry up to ``max_attempts`` with capped
  exponential backoff; the jitter is drawn from a per-request,
  per-attempt ``default_rng((seed, request_id, attempt))`` stream, so the
  whole retry schedule replays bit-identically under a virtual clock.
* **Load shedding.**  Past the queue-depth threshold the service answers
  with a cache hit, a warm-start certificate (a cached dual witness
  re-verified on the new instance — mathematically sound, merely
  sub-optimal), or a typed :attr:`RequestOutcome.SHED` rejection.  It
  never raises and never drops.

All time flows through an injectable clock; :class:`VirtualClock` makes
the chaos tests fully deterministic.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

import numpy as np

from repro.core.batch import instance_rng, solve_many
from repro.core.decision import DecisionOptions, decision_psdp, _resolve_constraints
from repro.core.result import DecisionOutcome, DecisionResult, SolveStatus
from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection

__all__ = ["RequestOutcome", "ServiceResponse", "SolveService", "VirtualClock"]


class VirtualClock:
    """A manually-advanced monotonic clock for deterministic tests.

    Callable (returns the current virtual time) so it drops into every
    ``clock=`` slot in the repository — the service, the supervisor's
    wall-clock budgets, and fault-injection ``at_time`` arming.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance a monotonic clock by {seconds}")
        self._now += float(seconds)
        return self._now


class RequestOutcome(Enum):
    """Terminal disposition of a service request (always typed, never raised)."""

    #: Solved and certified exactly like a direct ``decision_psdp`` call.
    COMPLETED = "completed"
    #: Solved with a verified-but-degraded answer: the solver recovered
    #: through its demotion ladder, or a warm-start certificate was served
    #: under load.  ``result`` is still an exactly-verified certificate.
    DEGRADED = "degraded"
    #: Rejected at admission or under overload; no solve was attempted.
    SHED = "shed"
    #: The deadline passed before the solve finished.  ``result`` carries
    #: the last verified partial dual when one exists.
    DEADLINE_EXCEEDED = "deadline-exceeded"
    #: Every attempt failed and the retry budget is spent.  ``result``
    #: carries the last failed attempt's result.
    RETRY_EXHAUSTED = "retry-exhausted"


@dataclass
class ServiceResponse:
    """What :meth:`SolveService.response` hands back for a finished request."""

    request_id: int
    outcome: RequestOutcome
    result: DecisionResult | None
    attempts: int
    detail: str = ""
    from_cache: bool = False
    warm_started: bool = False
    #: Number of checkpoint-resume continuations the solve went through.
    resumes: int = 0


@dataclass(eq=False)
class _Request:
    """Internal queue entry (requests in flight; identity equality)."""

    request_id: int
    constraints: ConstraintCollection
    options: DecisionOptions
    options_key: str
    fingerprint: str
    deadline: float | None
    priority: int
    max_attempts: int
    attempts: int = 0
    resumes: int = 0
    next_ready: float = 0.0
    checkpoint: Any = None
    last_result: DecisionResult | None = field(default=None, repr=False)


def _options_key(opts: DecisionOptions) -> str:
    """Batching/cache key over every option field that shapes the solve.

    ``rng`` is excluded (the service owns the streams) and ``backend`` is
    keyed by identity — requests only batch when they share the exact
    same backend object (or both leave it ``None``).
    """
    parts = []
    for f in dataclasses.fields(opts):
        value = getattr(opts, f.name)
        if f.name == "rng":
            continue
        if f.name == "backend":
            parts.append(f"backend=id{id(value)}" if value is not None else "backend=None")
            continue
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def _fingerprint(constraints: ConstraintCollection, options_key: str) -> str:
    """Instance identity: SHA-256 over the dense constraint bytes + options.

    Hashes the operators' dense forms directly (never the packed view —
    building it on the caller's collection would reroute ``traces()``
    through the packed rounding and perturb a later sequential solve).
    """
    digest = hashlib.sha256()
    for op in constraints:
        dense = np.ascontiguousarray(op.to_dense(), dtype=np.float64)
        digest.update(repr(dense.shape).encode())
        digest.update(dense.tobytes())
    digest.update(options_key.encode())
    return digest.hexdigest()


class SolveService:
    """Deterministic request queue over the decision solvers.

    Parameters
    ----------
    options:
        Default :class:`~repro.core.decision.DecisionOptions` for requests
        that do not bring their own.  The ``rng`` field is ignored — each
        request solves on ``instance_rng(seed, request_id)``.
    seed:
        Root seed for every per-request stream (solve rng and backoff
        jitter alike).  Two services with the same seed and the same
        request sequence produce bit-identical answers.
    clock:
        Injectable time source (``time.monotonic`` by default; pass a
        :class:`VirtualClock` in tests).  Deadlines and backoff are
        absolute values on this clock.
    max_queue_depth:
        Admission threshold: submissions past this depth are answered
        from the cache, warm-start certified, or shed — never enqueued.
    attempt_iteration_budget:
        Optional per-attempt ``iteration_budget``.  Long solves then
        surface as ``BUDGET_EXHAUSTED`` + checkpoint every so many
        iterations and continue on the next :meth:`step` — the queue
        stays responsive without losing work.
    backoff_base / backoff_cap / backoff_jitter:
        Failed-attempt backoff: ``min(cap, base * 2**(attempt-1))``
        stretched by ``1 + jitter * u`` with ``u`` from the request's
        deterministic jitter stream.
    batch_size:
        Maximum number of compatible requests per fused
        :func:`~repro.core.batch.solve_many` call.
    cache_size:
        Entries kept in the instance-fingerprint result cache (LRU).
    """

    def __init__(
        self,
        *,
        options: DecisionOptions | None = None,
        seed: int = 0,
        clock: Callable[[], float] | None = None,
        max_queue_depth: int = 64,
        attempt_iteration_budget: int | None = None,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        backoff_jitter: float = 0.25,
        batch_size: int = 8,
        cache_size: int = 128,
    ) -> None:
        if max_queue_depth <= 0:
            raise InvalidProblemError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if attempt_iteration_budget is not None and attempt_iteration_budget <= 0:
            raise InvalidProblemError(
                f"attempt_iteration_budget must be positive, got {attempt_iteration_budget}"
            )
        self.options = options or DecisionOptions()
        self.seed = int(seed)
        self._clock = clock if clock is not None else time.monotonic
        self.max_queue_depth = int(max_queue_depth)
        self.attempt_iteration_budget = attempt_iteration_budget
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.backoff_jitter = float(backoff_jitter)
        self.batch_size = int(batch_size)
        self.cache_size = int(cache_size)

        self._queue: list[_Request] = []
        self._responses: dict[int, ServiceResponse] = {}
        self._cache: dict[str, DecisionResult] = {}
        self._cache_order: list[str] = []
        self._next_id = 0

    # ------------------------------------------------------------------ admission
    def submit(
        self,
        problem: Any,
        *,
        options: DecisionOptions | None = None,
        deadline: float | None = None,
        priority: int = 0,
        max_attempts: int = 3,
    ) -> int:
        """Admit one solve request; returns its request id.

        Never raises for load reasons: a full queue or an already-expired
        deadline produces an immediately-available typed response
        (:attr:`RequestOutcome.SHED` / ``DEADLINE_EXCEEDED``) instead.
        Invalid *problems* (not a constraint collection the solvers
        accept, ``max_attempts < 1``) still raise — those are caller
        bugs, not load conditions.
        """
        if max_attempts < 1:
            raise InvalidProblemError(f"max_attempts must be >= 1, got {max_attempts}")
        opts = options or self.options
        constraints = _resolve_constraints(problem)
        request_id = self._next_id
        self._next_id += 1
        now = self._clock()
        key = _options_key(opts)
        fingerprint = _fingerprint(constraints, key)

        cached = self._cache.get(fingerprint)
        if cached is not None:
            self._touch_cache(fingerprint)
            self._responses[request_id] = ServiceResponse(
                request_id=request_id,
                outcome=(
                    RequestOutcome.DEGRADED
                    if cached.status is SolveStatus.DEGRADED
                    else RequestOutcome.COMPLETED
                ),
                result=cached,
                attempts=0,
                detail="instance-fingerprint cache hit",
                from_cache=True,
            )
            return request_id

        if deadline is not None and deadline <= now:
            self._responses[request_id] = ServiceResponse(
                request_id=request_id,
                outcome=RequestOutcome.DEADLINE_EXCEEDED,
                result=None,
                attempts=0,
                detail="deadline expired before admission",
            )
            return request_id

        if len(self._queue) >= self.max_queue_depth:
            response = self._shed(request_id, constraints, opts)
            self._responses[request_id] = response
            return request_id

        self._queue.append(
            _Request(
                request_id=request_id,
                constraints=constraints,
                options=opts,
                options_key=key,
                fingerprint=fingerprint,
                deadline=deadline,
                priority=int(priority),
                max_attempts=int(max_attempts),
                next_ready=now,
            )
        )
        return request_id

    def _shed(
        self, request_id: int, constraints: ConstraintCollection, opts: DecisionOptions
    ) -> ServiceResponse:
        """Overload path: degrade gracefully before rejecting outright."""
        warm = self._warm_start_certificate(constraints, opts)
        if warm is not None:
            return ServiceResponse(
                request_id=request_id,
                outcome=RequestOutcome.DEGRADED,
                result=warm,
                attempts=0,
                detail="queue full: served warm-start certificate",
                warm_started=True,
            )
        return ServiceResponse(
            request_id=request_id,
            outcome=RequestOutcome.SHED,
            result=None,
            attempts=0,
            detail=f"queue depth {len(self._queue)} at threshold {self.max_queue_depth}",
        )

    def _warm_start_certificate(
        self, constraints: ConstraintCollection, opts: DecisionOptions
    ) -> DecisionResult | None:
        """Try to certify the new instance with a cached dual witness.

        Takes any cached dual vector of matching length, measures
        ``lambda_max(sum_i x_i A_i)`` **on the new instance**, and accepts
        only when the rescaled value clears the ``1 - eps`` target — the
        certificate is exactly verified on the instance it is returned
        for, so a stale cache can never produce an unsound answer.
        """
        n = len(constraints)
        eps = float(opts.epsilon)
        for key in reversed(self._cache_order):
            cached = self._cache[key]
            x = cached.dual_x
            if x is None or len(x) != n or not np.all(np.isfinite(x)):
                continue
            summed = constraints.weighted_sum(np.asarray(x, dtype=np.float64))
            lam = float(np.linalg.eigvalsh(summed)[-1])
            if not np.isfinite(lam) or lam <= 0:
                continue
            value = float(np.sum(x)) / lam
            if value >= 1.0 - eps:
                dual_x = np.asarray(x, dtype=np.float64) / lam
                return DecisionResult(
                    outcome=DecisionOutcome.DUAL,
                    dual_x=dual_x,
                    primal_y=None,
                    dual_value=float(dual_x.sum()),
                    primal_min_dot=float("nan"),
                    dual_lambda_max=1.0,
                    iterations=0,
                    max_iterations=0,
                    epsilon=eps,
                    early_exit=True,
                    status=SolveStatus.DEGRADED,
                    history=None,
                    work_depth=None,
                    metadata={
                        "warm_start": True,
                        "solve_status": SolveStatus.DEGRADED.value,
                        "x_l1": float(dual_x.sum()),
                    },
                )
        return None

    # ------------------------------------------------------------------ queries
    def response(self, request_id: int) -> ServiceResponse | None:
        """The finished response for ``request_id`` (``None`` while pending)."""
        return self._responses.get(request_id)

    def pending(self) -> int:
        """Number of requests still in the queue."""
        return len(self._queue)

    def next_ready_time(self) -> float | None:
        """Earliest ``next_ready`` among queued requests (``None`` if idle)."""
        if not self._queue:
            return None
        return min(r.next_ready for r in self._queue)

    # ------------------------------------------------------------------ serving
    def step(self) -> int:
        """Serve one scheduling round; returns the number of requests finalized.

        Expires overdue deadlines, picks the highest-priority ready
        request, batches every compatible ready request with it through
        ``solve_many`` (checkpointed requests resume solo instead), and
        folds each result back into the queue state.
        """
        now = self._clock()
        finalized = 0

        for request in list(self._queue):
            if request.deadline is not None and request.deadline <= now:
                self._queue.remove(request)
                self._finalize(
                    request,
                    RequestOutcome.DEADLINE_EXCEEDED,
                    request.last_result,
                    detail="deadline passed while queued",
                )
                finalized += 1

        ready = [r for r in self._queue if r.next_ready <= now]
        if not ready:
            return finalized
        ready.sort(key=lambda r: (-r.priority, r.request_id))
        lead = ready[0]

        if lead.checkpoint is not None:
            results = [self._resume_attempt(lead)]
            batch = [lead]
        else:
            batch = [
                r
                for r in ready
                if r.options_key == lead.options_key and r.checkpoint is None
            ][: self.batch_size]
            results = solve_many(
                [r.constraints for r in batch],
                options=dataclasses.replace(
                    self._attempt_options(batch[0]), rng=self.seed
                ),
                rng_indices=[r.request_id for r in batch],
            )

        for request, result in zip(batch, results):
            finalized += self._absorb(request, result)
        return finalized

    def drain(self, max_steps: int = 100_000) -> dict[int, ServiceResponse]:
        """Run :meth:`step` until the queue empties; returns all responses.

        Between rounds, idle time (backoff waits) is skipped by advancing
        a :class:`VirtualClock` or sleeping a real one.
        """
        for _ in range(max_steps):
            if not self._queue:
                break
            self.step()
            if not self._queue:
                break
            next_ready = self.next_ready_time()
            now = self._clock()
            if next_ready is not None and next_ready > now:
                wait = next_ready - now
                if hasattr(self._clock, "advance"):
                    self._clock.advance(wait)
                else:  # pragma: no cover - real-clock deployments only
                    time.sleep(min(wait, 0.05))
        return dict(self._responses)

    # ------------------------------------------------------------------ internals
    def _attempt_options(self, request: _Request) -> DecisionOptions:
        """The request's options with the per-attempt budgets applied."""
        opts = request.options
        updates: dict[str, Any] = {}
        if self.attempt_iteration_budget is not None:
            budget = self.attempt_iteration_budget * (request.resumes + 1)
            if opts.iteration_budget is None or budget < opts.iteration_budget:
                updates["iteration_budget"] = budget
        if (
            request.deadline is not None
            and self._clock is time.monotonic
            and opts.wall_clock_budget is None
        ):  # pragma: no cover - real-clock deployments only
            remaining = request.deadline - self._clock()
            if remaining > 0:
                updates["wall_clock_budget"] = remaining
        return dataclasses.replace(opts, **updates) if updates else opts

    def _resume_attempt(self, request: _Request) -> DecisionResult:
        """Continue a checkpointed solve on the request's pinned stream."""
        return decision_psdp(
            request.constraints,
            options=dataclasses.replace(
                self._attempt_options(request),
                rng=instance_rng(self.seed, request.request_id),
            ),
            resume_from=request.checkpoint,
        )

    def _absorb(self, request: _Request, result: DecisionResult | None, ) -> int:
        """Fold one attempt's result back into the queue; returns 1 if finalized."""
        now = self._clock()
        if result is None:  # pragma: no cover - solve_many never returns None
            result = request.last_result
            status = SolveStatus.FAILED
        else:
            status = result.status
        request.last_result = result

        if status is SolveStatus.BUDGET_EXHAUSTED:
            checkpoint = result.metadata.get("checkpoint") if result is not None else None
            if request.deadline is not None and request.deadline <= now:
                self._remove(request)
                self._finalize(
                    request,
                    RequestOutcome.DEADLINE_EXCEEDED,
                    result,
                    detail="deadline passed mid-solve; partial dual attached",
                )
                return 1
            if checkpoint is not None:
                request.checkpoint = checkpoint
                request.resumes += 1
                request.next_ready = now
                return 0
            status = SolveStatus.FAILED  # no continuation point: treat as failure

        if status in (SolveStatus.CERTIFIED, SolveStatus.DEGRADED):
            self._remove(request)
            self._store_cache(request.fingerprint, result)
            self._finalize(
                request,
                (
                    RequestOutcome.COMPLETED
                    if status is SolveStatus.CERTIFIED
                    else RequestOutcome.DEGRADED
                ),
                result,
                detail="",
            )
            return 1

        # FAILED: retry with capped exponential backoff.
        request.attempts += 1
        checkpoint = result.metadata.get("checkpoint") if result is not None else None
        if checkpoint is not None:
            request.checkpoint = checkpoint
        if request.attempts >= request.max_attempts:
            self._remove(request)
            self._finalize(
                request,
                RequestOutcome.RETRY_EXHAUSTED,
                result,
                detail=f"failed {request.attempts} attempts",
            )
            return 1
        request.next_ready = now + self._backoff(request)
        return 0

    def _backoff(self, request: _Request) -> float:
        """Deterministic capped exponential backoff for the next retry."""
        base = min(self.backoff_cap, self.backoff_base * 2.0 ** (request.attempts - 1))
        jitter_rng = np.random.default_rng(
            (self.seed, request.request_id, request.attempts)
        )
        return base * (1.0 + self.backoff_jitter * float(jitter_rng.random()))

    def _remove(self, request: _Request) -> None:
        if request in self._queue:
            self._queue.remove(request)

    def _finalize(
        self,
        request: _Request,
        outcome: RequestOutcome,
        result: DecisionResult | None,
        detail: str,
    ) -> None:
        self._responses[request.request_id] = ServiceResponse(
            request_id=request.request_id,
            outcome=outcome,
            result=result,
            attempts=request.attempts,
            detail=detail,
            resumes=request.resumes,
        )

    def _store_cache(self, fingerprint: str, result: DecisionResult) -> None:
        if fingerprint not in self._cache:
            self._cache_order.append(fingerprint)
        self._cache[fingerprint] = result
        while len(self._cache_order) > self.cache_size:
            evicted = self._cache_order.pop(0)
            self._cache.pop(evicted, None)

    def _touch_cache(self, fingerprint: str) -> None:
        if fingerprint in self._cache:
            self._cache_order.remove(fingerprint)
            self._cache_order.append(fingerprint)
