"""Resilient serving layer for decision solves.

:class:`SolveService` turns the one-shot solvers into a deterministic
request queue: deadline-aware admission, priority scheduling, batching of
compatible requests through :func:`~repro.core.batch.solve_many`,
checkpoint/resume of budget-exhausted work, retry with capped exponential
backoff for failed solves, an instance-fingerprint result cache, and
graceful load shedding — every terminal condition is a typed
:class:`RequestOutcome`, never an exception and never a silent drop.

:mod:`repro.service.executor` adds the concurrent execution layer: a
:class:`WorkerPool` over the :mod:`repro.parallel` backends (inline /
thread / process), heartbeat watchdogs with checkpointed kill-and-requeue,
straggler hedging, per-instance-family :class:`CircuitBreaker` isolation,
and graceful drain-to-:attr:`RequestOutcome.SUSPENDED` shutdown — all
without perturbing a single result bit.
"""

from repro.service.executor import (
    CircuitBreaker,
    JobSpec,
    WorkerPool,
    WorkerReport,
    instance_family,
)
from repro.service.solve_service import (
    RequestOutcome,
    ServiceResponse,
    SolveService,
    VirtualClock,
)

__all__ = [
    "CircuitBreaker",
    "JobSpec",
    "RequestOutcome",
    "ServiceResponse",
    "SolveService",
    "VirtualClock",
    "WorkerPool",
    "WorkerReport",
    "instance_family",
]
