"""Resilient serving layer for decision solves.

:class:`SolveService` turns the one-shot solvers into a deterministic
request queue: deadline-aware admission, priority scheduling, batching of
compatible requests through :func:`~repro.core.batch.solve_many`,
checkpoint/resume of budget-exhausted work, retry with capped exponential
backoff for failed solves, an instance-fingerprint result cache, and
graceful load shedding — every terminal condition is a typed
:class:`RequestOutcome`, never an exception and never a silent drop.
"""

from repro.service.solve_service import (
    RequestOutcome,
    ServiceResponse,
    SolveService,
    VirtualClock,
)

__all__ = [
    "RequestOutcome",
    "ServiceResponse",
    "SolveService",
    "VirtualClock",
]
