"""Concurrent fault-isolated execution for the solve service.

This module is the layer between :class:`~repro.service.SolveService` and
the decision solvers: instead of solving inline on the caller's thread,
the service hands :class:`JobSpec` bundles to a :class:`WorkerPool` that
runs them on one of the :mod:`repro.parallel.backends` — serially
(``inline``, the default and the exact pre-executor semantics), on a
thread pool (NumPy releases the GIL in the GEMM-dominated kernels), or on
a process pool (crash isolation: a worker that dies takes no service
state with it).

The robustness contract, built on PR 6-8 machinery:

* **Heartbeats.**  Workers wire a ``DecisionOptions.heartbeat`` callback
  into every solve; each periodic checkpoint capture ships the freshest
  :class:`~repro.core.checkpoint.SolverCheckpoint` through the job's
  :class:`_MemoryChannel`/:class:`_FileChannel` and bumps a beat counter.
  The parent's watchdog measures staleness on *its own* clock from the
  moment it observes a new beat, so virtual-clock tests and cross-process
  deployments need no clock agreement.
* **Kill and requeue.**  A stalled or crashed job is cancelled (thread
  mode: cooperative, at the next heartbeat; process mode: cancel flag or
  genuine process death) and every request it carried is requeued from
  its latest shipped checkpoint.  Resume is bit-identical (the PR 8
  chaos contract), so *when* the kill lands can never change result bits.
* **Fault transport.**  The armed :mod:`~repro.robustness.faultinject`
  plan rides inside each job payload (:func:`~repro.robustness.faultinject.export_plan`)
  and is installed in pool workers whose process differs from the
  arming process; consumed-fire counters sync back on job completion so
  one-shot faults stay one-shot across the pool.
* **Injected process death.**  The ``worker.heartbeat`` fault site turns
  :class:`~repro.robustness.faultinject.Stall` into a park-until-killed
  hang and :class:`~repro.robustness.faultinject.WorkerCrash` into a
  worker death — a genuine ``os._exit`` in hard-crash process mode, a
  simulated unwind elsewhere.

Process-mode note: results cross the pool boundary by pickling, so the
worker drops the unpicklable deferred ``primal_builder`` closure
(``metadata["primal_deferred_dropped"] = True``).  Every *compared* field
of the result — certified outcome, dual witness bits, counters — is
unaffected; callers that need the primal matrix of a matrix-free solve
should use thread mode.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.batch import instance_rng, solve_many
from repro.core.checkpoint import SolverCheckpoint
from repro.core.decision import DecisionOptions, decision_psdp
from repro.core.result import DecisionResult
from repro.exceptions import BackendError, FaultInjected
from repro.operators.collection import ConstraintCollection
from repro.parallel.backends import ExecutionBackend, get_backend
from repro.robustness import faultinject

__all__ = [
    "CircuitBreaker",
    "JobCancelled",
    "JobSpec",
    "WorkerCrashed",
    "WorkerPool",
    "WorkerReport",
    "instance_family",
]


class JobCancelled(Exception):
    """Raised inside a worker (from the heartbeat hook) to unwind a killed job."""


class WorkerCrashed(Exception):
    """Simulated worker death (thread / soft-process mode of ``WorkerCrash``)."""


def instance_family(constraints: ConstraintCollection) -> tuple:
    """The circuit-breaker grouping key: ``(m, n, ranks)`` of an instance.

    Matches the fusion-gate grouping of :func:`~repro.core.batch.solve_many`:
    instances that batch together share failure modes (same shapes, same
    kernels), so the breaker isolates exactly the blast radius of one bad
    instance family.
    """
    ops = list(constraints.operators)
    m = int(ops[0].to_dense().shape[0]) if ops else 0
    ranks = tuple(getattr(op, "rank", None) for op in ops)
    return (m, len(ops), ranks)


# --------------------------------------------------------------------------
# job payloads
# --------------------------------------------------------------------------

@dataclass
class JobSpec:
    """One unit of pool work: a batch of compatible requests or a solo resume.

    Everything a worker needs is in here (constraints, attempt-resolved
    options, the root seed, the serialized fault plan) so the payload is
    self-contained and — in process mode — picklable.  ``options`` must
    carry ``heartbeat=None``; the worker installs its own channel-wired
    callback.
    """

    job_id: int
    request_ids: list[int]
    constraints: list[ConstraintCollection]
    options: DecisionOptions
    seed: int
    checkpoint: SolverCheckpoint | None = None
    fault_plan: list[dict] | None = None
    plan_pid: int = 0
    hard_crash: bool = False
    #: Set on speculative duplicates: the job id this spec hedges.
    hedge_of: int | None = None
    #: True when the job crosses a process boundary (strip unpicklables).
    cross_process: bool = False


@dataclass
class WorkerReport:
    """What a finished (or dead) job hands back to the pool."""

    #: ``"done"`` | ``"cancelled"`` | ``"crashed"`` | ``"error"``
    status: str
    #: Per-request results, aligned with ``spec.request_ids`` (``done`` only).
    results: list[DecisionResult] | None = None
    detail: str = ""
    #: Fault-plan counter snapshot to sync back (cross-process jobs only).
    usage: list[dict] | None = None


# --------------------------------------------------------------------------
# heartbeat channels
# --------------------------------------------------------------------------

class _MemoryChannel:
    """In-memory heartbeat/cancel channel (inline and thread modes).

    The worker side records checkpoints and bumps the beat counter; the
    parent side reads the counter (progress detection), harvests shipped
    checkpoints, and sets the cancel flag.  ``parkable=False`` (inline
    mode) makes an injected stall unwind immediately instead of parking —
    the caller's thread *is* the worker, so nobody could ever cancel it.
    """

    def __init__(self, parkable: bool = True) -> None:
        self._lock = threading.Lock()
        self._beats = 0
        self._checkpoints: dict[int, SolverCheckpoint] = {}
        self._cancel = threading.Event()
        self.parkable = parkable

    # ---- worker side
    def record(self, request_id: int, checkpoint: SolverCheckpoint) -> None:
        with self._lock:
            self._checkpoints[int(request_id)] = checkpoint
            self._beats += 1

    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def park(self) -> None:
        """Injected-stall behaviour: hang, beat-free, until killed."""
        if not self.parkable:
            raise JobCancelled("injected stall (inline worker self-cancels)")
        self._cancel.wait()
        raise JobCancelled("stalled worker killed")

    # ---- parent side
    def beat_count(self) -> int:
        with self._lock:
            return self._beats

    def checkpoints(self) -> dict[int, SolverCheckpoint]:
        with self._lock:
            return dict(self._checkpoints)

    def cancel(self) -> None:
        self._cancel.set()


class _FileChannel:
    """File-backed heartbeat/cancel channel (process mode).

    Lives in its own directory under the pool's control dir.  Checkpoints
    are written with the atomic :func:`~repro.io.serialization.save_checkpoint`
    writer, so a worker killed mid-beat (the hard-crash chaos case) leaves
    either the previous checkpoint or the complete new one — never a
    truncated archive that would fail its SHA-256 check on requeue.  The
    beat counter is a tiny atomically-replaced text file.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.parkable = True

    # ---- worker side
    def record(self, request_id: int, checkpoint: SolverCheckpoint) -> None:
        from repro.io.serialization import save_checkpoint

        save_checkpoint(
            os.path.join(self.root, f"ckpt_{int(request_id)}.npz"), checkpoint
        )
        beats = self.beat_count() + 1
        tmp = os.path.join(self.root, f".beats.{os.getpid()}.tmp")
        with open(tmp, "w", encoding="ascii") as handle:
            handle.write(str(beats))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, os.path.join(self.root, "beats"))

    def cancelled(self) -> bool:
        return os.path.exists(os.path.join(self.root, "cancel"))

    def park(self) -> None:
        while not self.cancelled():  # pragma: no cover - timing loop
            time.sleep(0.005)
        raise JobCancelled("stalled worker killed")

    # ---- parent side
    def beat_count(self) -> int:
        try:
            with open(os.path.join(self.root, "beats"), encoding="ascii") as handle:
                return int(handle.read().strip() or 0)
        except (OSError, ValueError):
            return 0

    def checkpoints(self) -> dict[int, SolverCheckpoint]:
        from repro.exceptions import CheckpointError
        from repro.io.serialization import load_checkpoint

        shipped: dict[int, SolverCheckpoint] = {}
        try:
            names = os.listdir(self.root)
        except OSError:  # pragma: no cover - control dir vanished
            return shipped
        for name in names:
            if not (name.startswith("ckpt_") and name.endswith(".npz")):
                continue
            try:
                rid = int(name[len("ckpt_"):-len(".npz")])
                shipped[rid] = load_checkpoint(os.path.join(self.root, name))
            except (ValueError, CheckpointError):  # pragma: no cover - partial write
                continue
        return shipped

    def cancel(self) -> None:
        with open(os.path.join(self.root, "cancel"), "w", encoding="ascii") as handle:
            handle.write("1")


# --------------------------------------------------------------------------
# the worker harness (module-level: process pools must pickle it)
# --------------------------------------------------------------------------

def _strip_deferred_primal(result: DecisionResult) -> DecisionResult:
    """Drop the unpicklable deferred primal builder before a pickle boundary."""
    if result.primal_builder is not None:
        result.primal_builder = None
        result.metadata["primal_deferred_dropped"] = True
    return result


def _run_job(spec: JobSpec, channel) -> WorkerReport:
    """Execute one job inside a pool worker; always returns a typed report.

    The heartbeat wired into the solve does four things per beat, in
    order: ship the freshest checkpoint through the channel, pass through
    the ``worker.heartbeat`` fault site (where injected stalls park and
    injected worker-crashes kill), honour cooperative cancellation, and
    return to the solver.  Faults armed in another process are installed
    from the payload plan first (replacing any fork-inherited copy — see
    :func:`~repro.robustness.faultinject.install_plan`).
    """
    installed = None
    if spec.fault_plan is not None and spec.plan_pid != os.getpid():
        installed = faultinject.install_plan(spec.fault_plan)

    def usage() -> list[dict] | None:
        return None if installed is None else faultinject.plan_usage(installed)

    def heartbeat(checkpoint: SolverCheckpoint, instance: int | None) -> None:
        rid = spec.request_ids[0] if instance is None else int(instance)
        channel.record(rid, checkpoint)
        try:
            faultinject.fault_hook("worker.heartbeat")
        except FaultInjected as exc:
            kind = getattr(exc.kind, "name", "")
            if kind == "stall":
                channel.park()  # raises JobCancelled when killed
            if kind == "worker-crash":
                if spec.hard_crash:  # pragma: no cover - child process death
                    os._exit(17)
                raise WorkerCrashed(str(exc)) from exc
            raise
        if channel.cancelled():
            raise JobCancelled("job cancelled by the service")

    try:
        if channel.cancelled():
            return WorkerReport(
                status="cancelled", detail="cancelled before start", usage=usage()
            )
        if spec.checkpoint is not None:
            rid = spec.request_ids[0]
            opts = dataclasses.replace(
                spec.options,
                rng=instance_rng(spec.seed, rid),
                heartbeat=heartbeat,
            )
            results = [
                decision_psdp(
                    spec.constraints[0], options=opts, resume_from=spec.checkpoint
                )
            ]
        else:
            opts = dataclasses.replace(
                spec.options, rng=spec.seed, heartbeat=heartbeat
            )
            results = solve_many(
                spec.constraints,
                options=opts,
                rng_indices=list(spec.request_ids),
            )
        if spec.cross_process:
            results = [_strip_deferred_primal(r) for r in results]
        return WorkerReport(status="done", results=results, usage=usage())
    except JobCancelled as exc:
        return WorkerReport(status="cancelled", detail=str(exc), usage=usage())
    except WorkerCrashed as exc:
        return WorkerReport(status="crashed", detail=str(exc), usage=usage())
    except Exception as exc:  # noqa: BLE001 - typed transport, never raises
        return WorkerReport(
            status="error", detail=f"{type(exc).__name__}: {exc}", usage=usage()
        )


# --------------------------------------------------------------------------
# the pool
# --------------------------------------------------------------------------

@dataclass(eq=False)
class _ActiveJob:
    """Parent-side tracking record for one in-flight job."""

    spec: JobSpec
    future: Any
    channel: Any
    submitted_at: float
    seen_beats: int = 0
    last_progress: float = 0.0
    #: Latest shipped checkpoint per request id (harvested at each poll).
    shipped: dict[int, SolverCheckpoint] = field(default_factory=dict)
    #: Why the parent killed it (``None`` while alive): ``"watchdog"`` /
    #: ``"hedge-loser"`` / ``"shutdown"``.
    killed: str | None = None
    #: Set when a hedge twin already finalized this job's requests.
    superseded: bool = False
    #: True when it was ever hedged (so it is not hedged twice).
    hedged: bool = False


class WorkerPool:
    """Job-level concurrency over the :mod:`repro.parallel` backends.

    ``mode="inline"`` executes each job synchronously at submit time on a
    :class:`~repro.parallel.backends.SerialBackend` — byte-for-byte the
    pre-executor service behaviour.  ``"thread"`` and ``"process"`` run
    jobs on the corresponding pooled backend; the pool tracks heartbeats,
    harvests shipped checkpoints, and converts a broken process pool into
    typed crash reports plus a fresh pool (surviving work is requeued by
    the service, not lost).
    """

    def __init__(
        self,
        mode: str = "inline",
        workers: int = 1,
        *,
        clock: Callable[[], float] = time.monotonic,
        control_dir: str | None = None,
        hard_crash: bool = False,
    ) -> None:
        if mode not in ("inline", "thread", "process"):
            raise BackendError(
                f"unknown worker pool mode {mode!r}; expected inline, thread, or process"
            )
        if workers < 1:
            raise BackendError(f"workers must be >= 1, got {workers}")
        self.mode = mode
        self.workers = int(workers)
        self.clock = clock
        self.hard_crash = bool(hard_crash)
        self._control_dir = control_dir
        backend_name = {"inline": "serial", "thread": "thread", "process": "process"}[mode]
        self._backend: ExecutionBackend = get_backend(backend_name, max_workers=workers)
        self._jobs: dict[int, _ActiveJob] = {}
        self._next_job_id = 0

    # ------------------------------------------------------------------ submit
    def next_job_id(self) -> int:
        """Reserve the next monotonically increasing job id."""
        job_id = self._next_job_id
        self._next_job_id += 1
        return job_id

    def _make_channel(self, job_id: int):
        if self.mode == "process":
            root = self._control_dir
            if root is None:
                raise BackendError(
                    "process mode needs a control_dir for heartbeat files"
                )
            job_dir = os.path.join(root, f"job_{job_id}")
            os.makedirs(job_dir, exist_ok=True)
            return _FileChannel(job_dir)
        return _MemoryChannel(parkable=self.mode != "inline")

    def submit(self, spec: JobSpec) -> _ActiveJob:
        """Launch one job; the caller later harvests it through :meth:`poll`."""
        channel = self._make_channel(spec.job_id)
        if self.mode == "process":
            spec = dataclasses.replace(spec, cross_process=True, hard_crash=self.hard_crash)
        now = self.clock()
        future = self._backend.submit(_run_job, spec, channel)
        job = _ActiveJob(
            spec=spec,
            future=future,
            channel=channel,
            submitted_at=now,
            last_progress=now,
        )
        self._jobs[spec.job_id] = job
        return job

    # ------------------------------------------------------------------ harvest
    def observe(self) -> bool:
        """Harvest heartbeats: re-date progress and collect shipped checkpoints.

        Progress is dated on the *parent's* clock at the poll that first
        observes a new beat, so staleness needs no clock agreement with
        the worker (virtual parent clocks and cross-process monotonic
        clocks both just work).  Returns True when any job beat since the
        last observation — the drain loop's "real progress is happening,
        do not advance the virtual clock" signal.
        """
        now = self.clock()
        progressed = False
        for job in self._jobs.values():
            beats = job.channel.beat_count()
            if beats > job.seen_beats:
                job.seen_beats = beats
                job.last_progress = now
                job.shipped.update(job.channel.checkpoints())
                progressed = True
        return progressed

    def poll(self) -> list[tuple[_ActiveJob, WorkerReport]]:
        """Completed jobs since the last poll, in job-id order.

        A future that raises (a worker process died hard enough to break
        the :class:`~concurrent.futures.ProcessPoolExecutor`) is converted
        into a ``"crashed"`` report; the broken pool is torn down so the
        next submission gets a healthy one, and the dead worker's final
        checkpoints are recovered from its file channel.
        """
        self.observe()
        completed: list[tuple[_ActiveJob, WorkerReport]] = []
        broken_pool = False
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if not job.future.done():
                continue
            try:
                report = job.future.result()
            except Exception as exc:  # noqa: BLE001 - typed transport
                broken_pool = True
                report = WorkerReport(
                    status="crashed", detail=f"{type(exc).__name__}: {exc}"
                )
            job.shipped.update(job.channel.checkpoints())
            del self._jobs[job_id]
            completed.append((job, report))
        if broken_pool and hasattr(self._backend, "reset_pool"):
            self._backend.reset_pool()  # pragma: no cover - hard-crash process mode
        return completed

    def wait(self, timeout: float = 0.05) -> None:
        """Block (real time) until some in-flight future completes or ``timeout``."""
        pending = [job.future for job in self._jobs.values() if not job.future.done()]
        if pending:
            futures_wait(pending, timeout=timeout, return_when="FIRST_COMPLETED")

    # ------------------------------------------------------------------ control
    def in_flight(self) -> list[_ActiveJob]:
        """Jobs submitted but not yet harvested, in job-id order."""
        return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def kill(self, job_id: int, reason: str) -> None:
        """Cancel one job (cooperative: lands at its next heartbeat)."""
        job = self._jobs.get(job_id)
        if job is None or job.killed is not None:
            return
        job.killed = reason
        job.channel.cancel()

    def shutdown(self) -> None:
        """Close the underlying execution backend (idempotent)."""
        self._backend.close()


# --------------------------------------------------------------------------
# circuit breaker
# --------------------------------------------------------------------------

class CircuitBreaker:
    """Per-instance-family failure isolation with half-open probing.

    Closed → (``threshold`` consecutive failures) → open: the family is
    shed with a typed outcome instead of burning pool capacity on work
    that keeps exhausting recovery ladders or killing workers.  After
    ``cooldown`` seconds one probe request is admitted (half-open); its
    success closes the breaker, its failure re-opens and re-dates the
    cooldown.  All time flows through the service's injectable clock.
    """

    def __init__(self, threshold: int = 3, cooldown: float = 60.0) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False

    def peek(self, now: float) -> str:
        """Gate one dispatch: ``"run"`` | ``"probe"`` | ``"wait"`` | ``"shed"``.

        Side-effect free, so the service can scan a whole ready queue
        without consuming probe slots; a caller that actually dispatches
        a ``"probe"`` verdict must follow up with :meth:`begin_probe`.
        """
        if self.state == "closed":
            return "run"
        if self.state == "open":
            return "probe" if now - self.opened_at >= self.cooldown else "shed"
        # half-open: one probe at a time; the rest hold (not shed — the
        # probe's verdict arrives within one job turnaround).
        return "wait" if self.probing else "probe"

    def begin_probe(self) -> None:
        """Commit the half-open probe slot to a dispatched job."""
        self.state = "half-open"
        self.probing = True

    def abort_probe(self) -> None:
        """Release the probe slot without a verdict (the probe was killed)."""
        if self.state == "half-open":
            self.probing = False

    def record_success(self) -> None:
        """A family job certified: close the breaker and reset the count."""
        self.state = "closed"
        self.failures = 0
        self.probing = False

    def record_failure(self, now: float) -> None:
        """A family job failed/crashed: trip the breaker at ``threshold``."""
        self.failures += 1
        if self.state == "half-open" or self.failures >= self.threshold:
            self.state = "open"
            self.opened_at = now
            self.probing = False

    def next_transition(self) -> float | None:
        """When the open state can next change (drain's timer source)."""
        if self.state == "open":
            return self.opened_at + self.cooldown
        return None
