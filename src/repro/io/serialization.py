"""Save/load positive SDP instances and solver checkpoints (``.npz``).

The on-disk format is a single ``numpy`` ``.npz`` archive containing the
dense constraint matrices (stacked into one 3-D array), the objective and
right-hand sides for general instances, and a small JSON metadata blob
(name, format version).  Dense storage keeps the format trivial to inspect
and reload; factorized/sparse structure is an in-memory optimization and is
re-derivable (``gram_factor``) after loading, so losing it on a round-trip
only affects constants, not correctness.

Every loader validates what it reads — array presence, shape, dtype and
finiteness — and raises a typed
:class:`~repro.exceptions.SerializationError` on a truncated, corrupted or
NaN-poisoned payload instead of handing garbage to the solver.

Solver checkpoints (:class:`~repro.core.checkpoint.SolverCheckpoint`)
round-trip through :func:`save_checkpoint` / :func:`load_checkpoint`: the
nested payload tree is split into a JSON skeleton (with ``__ndarray__``
placeholders) plus the raw arrays, stamped with a versioned header and a
SHA-256 checksum over the canonical skeleton bytes and every array's
dtype/shape/contents.  A failed checksum, unknown version, or unreadable
archive raises :class:`~repro.exceptions.CheckpointError` — resume never
starts from silently-corrupted state.

All writers are atomic (temp file in the destination directory, fsync,
``os.replace``): a process killed mid-save leaves either the previous file
or the complete new one on disk, never a truncated archive.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from typing import Any

import numpy as np

from repro.exceptions import CheckpointError, InvalidProblemError, SerializationError
from repro.operators.collection import ConstraintCollection
from repro.operators.dense import DensePSDOperator
from repro.core.problem import NormalizedPackingSDP, PositiveSDP

_FORMAT_VERSION = 1

#: Skeleton-dict key marking an extracted array leaf.  Checkpoint payloads
#: never contain this key themselves, so the marker is unambiguous.
_ARRAY_MARKER = "__ndarray__"


def _stack_constraints(constraints: ConstraintCollection) -> np.ndarray:
    return np.stack([op.to_dense() for op in constraints], axis=0)


def _atomic_savez(path: str, **entries: np.ndarray) -> str:
    """``np.savez_compressed`` with write-then-rename atomicity.

    The archive is assembled in a temporary file in the destination
    directory, fsynced, and moved into place with :func:`os.replace` — so a
    writer killed at *any* point (the executor's crash-injection does
    exactly this to checkpointing workers) leaves either the complete new
    archive or the previous file, never a truncated ``.npz`` that would
    fail its SHA-256 check on requeue.  Returns the final path written
    (with the ``.npz`` suffix ``np.savez`` appends when absent).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **entries)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


# --------------------------------------------------------------------------
# shared read-side validation
# --------------------------------------------------------------------------

def _open_archive(path: str) -> np.lib.npyio.NpzFile:
    """``np.load`` with truncation/corruption mapped to a typed error."""
    try:
        return np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile, zlib.error, EOFError) as exc:
        raise SerializationError(f"cannot read {path}: {exc}") from exc


def _read_metadata(data: np.lib.npyio.NpzFile, path: str) -> dict:
    try:
        meta = json.loads(str(data["metadata"]))
    except KeyError as exc:
        raise SerializationError(f"{path} has no metadata entry (truncated archive?)") from exc
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(f"{path} has a corrupted metadata blob: {exc}") from exc
    if not isinstance(meta, dict):
        raise SerializationError(f"{path} metadata is not a JSON object")
    return meta


def _validated_array(
    data: np.lib.npyio.NpzFile,
    key: str,
    path: str,
    *,
    ndim: int,
    require_finite: bool = True,
) -> np.ndarray:
    """Fetch ``data[key]`` as float64, validating rank and finiteness."""
    try:
        raw = data[key]
    except KeyError as exc:
        raise SerializationError(
            f"{path} is missing the {key!r} array (truncated archive?)"
        ) from exc
    except (ValueError, zipfile.BadZipFile, zlib.error, OSError) as exc:
        raise SerializationError(f"{path}: cannot decode {key!r}: {exc}") from exc
    if raw.dtype.kind not in "fiu":
        raise SerializationError(
            f"{path}: {key!r} has non-numeric dtype {raw.dtype}"
        )
    array = np.asarray(raw, dtype=np.float64)
    if array.ndim != ndim:
        raise SerializationError(
            f"{path}: {key!r} must be {ndim}-dimensional, got shape {array.shape}"
        )
    if require_finite and not np.isfinite(array).all():
        raise SerializationError(
            f"{path}: {key!r} contains non-finite entries (NaN/inf-poisoned payload)"
        )
    return array


def _validated_constraint_stack(data: np.lib.npyio.NpzFile, path: str) -> np.ndarray:
    stacked = _validated_array(data, "constraints", path, ndim=3)
    if stacked.shape[0] == 0:
        raise SerializationError(f"{path}: constraint stack is empty")
    if stacked.shape[1] != stacked.shape[2]:
        raise SerializationError(
            f"{path}: constraint matrices must be square, got shape {stacked.shape}"
        )
    return stacked


# --------------------------------------------------------------------------
# problem instances
# --------------------------------------------------------------------------

def save_normalized_sdp(path: str | os.PathLike[str], problem: NormalizedPackingSDP) -> str:
    """Write a normalized packing SDP to ``path`` (``.npz``); returns the path."""
    path = os.fspath(path)
    meta = json.dumps({"version": _FORMAT_VERSION, "kind": "normalized", "name": problem.name})
    return _atomic_savez(
        path,
        constraints=_stack_constraints(problem.constraints),
        metadata=np.array(meta),
    )


def load_normalized_sdp(path: str | os.PathLike[str]) -> NormalizedPackingSDP:
    """Load a normalized packing SDP previously written by :func:`save_normalized_sdp`.

    Raises :class:`~repro.exceptions.SerializationError` when the archive is
    truncated, the constraint stack has the wrong rank/shape/dtype, or any
    entry is non-finite.
    """
    path = os.fspath(path)
    with _open_archive(path) as data:
        meta = _read_metadata(data, path)
        if meta.get("kind") != "normalized":
            raise InvalidProblemError(f"{path} does not contain a normalized packing SDP")
        stacked = _validated_constraint_stack(data, path)
    operators = [DensePSDOperator(stacked[i], validate=False) for i in range(stacked.shape[0])]
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False), name=meta.get("name", "loaded")
    )


def save_positive_sdp(path: str | os.PathLike[str], problem: PositiveSDP) -> str:
    """Write a general positive SDP (objective, constraints, rhs) to ``path``."""
    path = os.fspath(path)
    meta = json.dumps({"version": _FORMAT_VERSION, "kind": "positive", "name": problem.name})
    return _atomic_savez(
        path,
        constraints=_stack_constraints(problem.constraints),
        objective=problem.objective.to_dense(),
        rhs=problem.rhs,
        metadata=np.array(meta),
    )


def load_positive_sdp(path: str | os.PathLike[str]) -> PositiveSDP:
    """Load a general positive SDP previously written by :func:`save_positive_sdp`.

    Applies the same typed validation as :func:`load_normalized_sdp`, plus
    cross-array consistency: the objective must match the constraint
    dimension and the rhs must have one entry per constraint.
    """
    path = os.fspath(path)
    with _open_archive(path) as data:
        meta = _read_metadata(data, path)
        if meta.get("kind") != "positive":
            raise InvalidProblemError(f"{path} does not contain a general positive SDP")
        stacked = _validated_constraint_stack(data, path)
        objective = _validated_array(data, "objective", path, ndim=2)
        rhs = _validated_array(data, "rhs", path, ndim=1)
    if objective.shape != stacked.shape[1:]:
        raise SerializationError(
            f"{path}: objective shape {objective.shape} does not match "
            f"constraint dimension {stacked.shape[1:]}"
        )
    if rhs.shape[0] != stacked.shape[0]:
        raise SerializationError(
            f"{path}: rhs has {rhs.shape[0]} entries for {stacked.shape[0]} constraints"
        )
    operators = [DensePSDOperator(stacked[i], validate=False) for i in range(stacked.shape[0])]
    return PositiveSDP(
        DensePSDOperator(objective, validate=False),
        ConstraintCollection(operators, validate=False),
        rhs,
        name=meta.get("name", "loaded"),
        validate=False,
    )


# --------------------------------------------------------------------------
# solver checkpoints
# --------------------------------------------------------------------------

def _sanitize_scalar(value: Any) -> Any:
    """JSON ``default`` hook: numpy scalars become native Python scalars."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"checkpoint payload contains unserializable {type(value).__name__}")


def _flatten_tree(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    """Replace ndarray leaves with ``{"__ndarray__": key}`` placeholders."""
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_MARKER: key}
    if isinstance(node, dict):
        return {str(k): _flatten_tree(v, arrays) for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_flatten_tree(v, arrays) for v in node]
    return node


def _unflatten_tree(node: Any, arrays: dict[str, np.ndarray]) -> Any:
    if isinstance(node, dict):
        if set(node) == {_ARRAY_MARKER}:
            key = node[_ARRAY_MARKER]
            if key not in arrays:
                raise CheckpointError(f"checkpoint references missing array {key!r}")
            return arrays[key]
        return {k: _unflatten_tree(v, arrays) for k, v in node.items()}
    if isinstance(node, list):
        return [_unflatten_tree(v, arrays) for v in node]
    return node


def _checkpoint_digest(skeleton_bytes: bytes, arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over the skeleton and every array's key, dtype, shape, bytes."""
    digest = hashlib.sha256()
    digest.update(skeleton_bytes)
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_checkpoint(path: str | os.PathLike[str], checkpoint) -> str:
    """Write a :class:`~repro.core.checkpoint.SolverCheckpoint` to ``path``.

    The archive holds a versioned JSON skeleton (``header`` entry), the
    extracted arrays, and a SHA-256 ``checksum`` entry computed over the
    canonical skeleton bytes plus every array's dtype/shape/contents.
    Returns the path written.
    """
    from repro.core.checkpoint import SolverCheckpoint

    if not isinstance(checkpoint, SolverCheckpoint):
        raise CheckpointError(
            f"save_checkpoint expects a SolverCheckpoint, got {type(checkpoint).__name__}"
        )
    path = os.fspath(path)
    arrays: dict[str, np.ndarray] = {}
    skeleton = _flatten_tree(checkpoint.to_payload(), arrays)
    header = {
        "kind": "checkpoint",
        "version": int(checkpoint.version),
        "payload": skeleton,
    }
    try:
        header_bytes = json.dumps(
            header, sort_keys=True, default=_sanitize_scalar
        ).encode()
    except TypeError as exc:
        raise CheckpointError(str(exc)) from exc
    checksum = _checkpoint_digest(header_bytes, arrays)
    return _atomic_savez(
        path,
        header=np.frombuffer(header_bytes, dtype=np.uint8),
        checksum=np.array(checksum),
        **arrays,
    )


def load_checkpoint(path: str | os.PathLike[str]):
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`~repro.exceptions.CheckpointError` on a truncated or
    unreadable archive, a checksum mismatch (bit rot, partial write), an
    unknown format version, or a malformed payload tree.
    """
    from repro.core.checkpoint import CHECKPOINT_VERSION, SolverCheckpoint

    path = os.fspath(path)
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile, zlib.error, EOFError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    with data:
        try:
            header_bytes = bytes(np.asarray(data["header"], dtype=np.uint8))
            stored_checksum = str(data["checksum"])
            arrays = {
                key: np.asarray(data[key])
                for key in data.files
                if key not in ("header", "checksum")
            }
        except (KeyError, ValueError, zipfile.BadZipFile, zlib.error, OSError) as exc:
            raise CheckpointError(
                f"checkpoint {path} is truncated or corrupted: {exc}"
            ) from exc
    if _checkpoint_digest(header_bytes, arrays) != stored_checksum:
        raise CheckpointError(
            f"checkpoint {path} failed checksum validation (corrupted or "
            f"partially-written archive)"
        )
    try:
        header = json.loads(header_bytes.decode())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"checkpoint {path} has a corrupted header: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != "checkpoint":
        raise CheckpointError(f"{path} is not a solver checkpoint archive")
    version = header.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} in {path} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    payload = _unflatten_tree(header.get("payload"), arrays)
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} has a malformed payload tree")
    return SolverCheckpoint.from_payload(payload)
