"""Save/load positive SDP instances to compressed ``.npz`` archives.

The on-disk format is a single ``numpy`` ``.npz`` archive containing the
dense constraint matrices (stacked into one 3-D array), the objective and
right-hand sides for general instances, and a small JSON metadata blob
(name, format version).  Dense storage keeps the format trivial to inspect
and reload; factorized/sparse structure is an in-memory optimization and is
re-derivable (``gram_factor``) after loading, so losing it on a round-trip
only affects constants, not correctness.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.operators.dense import DensePSDOperator
from repro.core.problem import NormalizedPackingSDP, PositiveSDP

_FORMAT_VERSION = 1


def _stack_constraints(constraints: ConstraintCollection) -> np.ndarray:
    return np.stack([op.to_dense() for op in constraints], axis=0)


def save_normalized_sdp(path: str | os.PathLike[str], problem: NormalizedPackingSDP) -> str:
    """Write a normalized packing SDP to ``path`` (``.npz``); returns the path."""
    path = os.fspath(path)
    meta = json.dumps({"version": _FORMAT_VERSION, "kind": "normalized", "name": problem.name})
    np.savez_compressed(
        path,
        constraints=_stack_constraints(problem.constraints),
        metadata=np.array(meta),
    )
    return path if path.endswith(".npz") else path + ".npz"


def load_normalized_sdp(path: str | os.PathLike[str]) -> NormalizedPackingSDP:
    """Load a normalized packing SDP previously written by :func:`save_normalized_sdp`."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        meta = json.loads(str(data["metadata"]))
        if meta.get("kind") != "normalized":
            raise InvalidProblemError(f"{path} does not contain a normalized packing SDP")
        stacked = np.asarray(data["constraints"], dtype=np.float64)
    operators = [DensePSDOperator(stacked[i], validate=False) for i in range(stacked.shape[0])]
    return NormalizedPackingSDP(
        ConstraintCollection(operators, validate=False), name=meta.get("name", "loaded")
    )


def save_positive_sdp(path: str | os.PathLike[str], problem: PositiveSDP) -> str:
    """Write a general positive SDP (objective, constraints, rhs) to ``path``."""
    path = os.fspath(path)
    meta = json.dumps({"version": _FORMAT_VERSION, "kind": "positive", "name": problem.name})
    np.savez_compressed(
        path,
        constraints=_stack_constraints(problem.constraints),
        objective=problem.objective.to_dense(),
        rhs=problem.rhs,
        metadata=np.array(meta),
    )
    return path if path.endswith(".npz") else path + ".npz"


def load_positive_sdp(path: str | os.PathLike[str]) -> PositiveSDP:
    """Load a general positive SDP previously written by :func:`save_positive_sdp`."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        meta = json.loads(str(data["metadata"]))
        if meta.get("kind") != "positive":
            raise InvalidProblemError(f"{path} does not contain a general positive SDP")
        stacked = np.asarray(data["constraints"], dtype=np.float64)
        objective = np.asarray(data["objective"], dtype=np.float64)
        rhs = np.asarray(data["rhs"], dtype=np.float64)
    operators = [DensePSDOperator(stacked[i], validate=False) for i in range(stacked.shape[0])]
    return PositiveSDP(
        DensePSDOperator(objective, validate=False),
        ConstraintCollection(operators, validate=False),
        rhs,
        name=meta.get("name", "loaded"),
        validate=False,
    )
