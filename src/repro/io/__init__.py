"""Instance and result serialization."""

from repro.io.serialization import (
    save_normalized_sdp,
    load_normalized_sdp,
    save_positive_sdp,
    load_positive_sdp,
)

__all__ = [
    "save_normalized_sdp",
    "load_normalized_sdp",
    "save_positive_sdp",
    "load_positive_sdp",
]
