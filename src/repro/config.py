"""Global configuration knobs for the :mod:`repro` package.

The configuration object collects numerical tolerances and default solver
settings in one place so that tests, benchmarks, and applications can tighten
or relax them consistently.  A module-level singleton :data:`CONFIG` holds
the active configuration; :func:`get_config` / :func:`set_config` and the
:func:`config_override` context manager manipulate it.

The defaults are chosen for double-precision dense linear algebra on
matrices up to a few hundred rows, which is the regime exercised by the
benchmarks in this repository.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class ReproConfig:
    """Container of package-wide numerical and behavioural defaults.

    Attributes
    ----------
    psd_tol:
        Absolute tolerance on the minimum eigenvalue when deciding whether a
        symmetric matrix is positive semidefinite.  Matrices with
        ``lambda_min >= -psd_tol * scale`` are accepted.
    symmetry_tol:
        Relative tolerance used when checking/forcing matrix symmetry.
    feasibility_tol:
        Slack allowed when verifying primal/dual feasibility certificates.
    power_iteration_tol:
        Relative convergence tolerance of the spectral-norm power iteration.
    power_iteration_maxiter:
        Iteration cap for the power iteration.
    default_epsilon:
        Accuracy parameter used by solvers when the caller does not specify
        one.
    default_seed:
        Seed used by stochastic components (JL sketching, generators) when
        no RNG is supplied; fixed for reproducibility.
    max_dense_dimension:
        Guard on the matrix dimension above which exact ``eigh``-based matrix
        exponentials emit a warning (they cost :math:`O(m^3)`).
    certificate_check_every:
        Default cadence (in iterations) at which the decision solver checks
        for an early primal/dual certificate; ``0`` disables early exit.
    max_recoveries:
        Default cap on fault-recovery (kernel demotion) events per solve
        before the supervisor gives up and the solver returns a
        ``SolveStatus.FAILED`` best-effort result.  Per-solve override via
        ``DecisionOptions.max_recoveries``.
    """

    psd_tol: float = 1e-9
    symmetry_tol: float = 1e-10
    feasibility_tol: float = 1e-7
    power_iteration_tol: float = 1e-8
    power_iteration_maxiter: int = 500
    default_epsilon: float = 0.2
    default_seed: int = 20120101
    max_dense_dimension: int = 2000
    certificate_check_every: int = 25
    max_recoveries: int = 8
    extra: dict[str, Any] = field(default_factory=dict)

    def replace(self, **kwargs: Any) -> "ReproConfig":
        """Return a copy of this configuration with ``kwargs`` overridden."""
        return dataclasses.replace(self, **kwargs)


CONFIG = ReproConfig()


def get_config() -> ReproConfig:
    """Return the active package configuration."""
    return CONFIG


def set_config(config: ReproConfig) -> None:
    """Install ``config`` as the active package configuration."""
    global CONFIG
    if not isinstance(config, ReproConfig):
        raise TypeError(f"expected ReproConfig, got {type(config)!r}")
    CONFIG = config


@contextlib.contextmanager
def config_override(**kwargs: Any) -> Iterator[ReproConfig]:
    """Temporarily override configuration fields within a ``with`` block.

    Example
    -------
    >>> from repro.config import config_override, get_config
    >>> with config_override(psd_tol=1e-6):
    ...     assert get_config().psd_tol == 1e-6
    >>> get_config().psd_tol
    1e-09
    """
    global CONFIG
    old = CONFIG
    try:
        CONFIG = old.replace(**kwargs)
        yield CONFIG
    finally:
        CONFIG = old
