"""Width-dependent matrix multiplicative weights packing solver.

This baseline follows the classic Arora–Hazan–Kale recipe for packing
programs: maintain a matrix exponential penalty over the packing constraint
``sum_i x_i A_i <= I``, and in each round add a small amount of the
*single* currently cheapest constraint direction, with a step size scaled by
``1 / rho`` where ``rho = max_i ||A_i||_2`` is the width.  The iteration
count to reach a ``(1 - eps)``-approximation then scales like
``O(rho * OPT * log m / eps^2)`` — linear in the width — which is exactly
the dependence the paper's algorithm removes.  Experiment E5 sweeps the
width of synthetic instances to exhibit the contrast.

The solver stops as soon as its (always feasible, by construction) iterate
reaches a caller-supplied target value, or when its iteration budget is
exhausted; it reports how far it got, which is what the width experiment
plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.linalg.expm import expm_normalized
from repro.operators.collection import ConstraintCollection
from repro.core.problem import NormalizedPackingSDP


@dataclass
class AroraKaleResult:
    """Result of :func:`arora_kale_packing`."""

    x: np.ndarray
    value: float
    iterations: int
    width: float
    reached_target: bool
    lambda_max: float
    history: list[float] = field(default_factory=list)


def arora_kale_packing(
    problem: NormalizedPackingSDP | ConstraintCollection,
    epsilon: float = 0.1,
    target_value: float | None = None,
    max_iterations: int | None = None,
    collect_history: bool = False,
) -> AroraKaleResult:
    """Width-dependent MMW baseline for the packing SDP ``max 1^T x``, ``sum x_i A_i <= I``.

    Parameters
    ----------
    problem:
        The packing instance.
    epsilon:
        Accuracy parameter; also sets the MMW learning rate.
    target_value:
        Stop once ``1^T x`` reaches this value (defaults to a greedy lower
        bound estimate, so the routine terminates on feasible instances).
    max_iterations:
        Iteration cap; defaults to the width-dependent bound
        ``ceil(4 * width * target * ln(m) / eps^2) + 1``.
    """
    if not (0 < epsilon < 1):
        raise InvalidProblemError(f"epsilon must be in (0, 1), got {epsilon}")
    constraints = problem.constraints if isinstance(problem, NormalizedPackingSDP) else problem
    if not isinstance(constraints, ConstraintCollection):
        constraints = ConstraintCollection(constraints)
    n, m = len(constraints), constraints.dim

    norms = constraints.spectral_norms()
    if np.any(norms <= 0):
        raise InvalidProblemError("constraint matrices must be nonzero")
    width = float(norms.max())

    if target_value is None:
        # Greedy single-coordinate bound: always achievable.
        target_value = float((1.0 / norms).max())
    if max_iterations is None:
        max_iterations = int(math.ceil(4.0 * width * max(target_value, 1.0) * math.log(max(m, 2)) / epsilon**2)) + 1

    # Width-dependent step: each round adds eps / width units of dual mass to
    # the cheapest coordinate, so the penalty matrix grows by at most eps * I
    # per round.  Reaching objective value V therefore needs ~ V * width / eps
    # rounds — the linear width dependence this baseline is meant to exhibit.
    step = epsilon / width

    x = np.zeros(n, dtype=np.float64)
    psi = np.zeros((m, m), dtype=np.float64)
    history: list[float] = []
    iterations = 0
    reached = False

    while iterations < max_iterations:
        iterations += 1
        density = expm_normalized(psi / epsilon) if iterations > 1 else np.eye(m) / m
        costs = constraints.dots(density)
        best = int(np.argmin(costs))
        amount = step
        trial = x.copy()
        trial[best] += amount
        trial_psi = psi + amount * constraints[best].to_dense()
        lam = float(np.linalg.eigvalsh(trial_psi)[-1])
        if lam > 1.0:
            # The iterate is saturated; further growth would violate
            # feasibility, so stop here.
            break
        x, psi = trial, trial_psi
        if collect_history:
            history.append(float(x.sum()))
        if float(x.sum()) >= target_value * (1.0 - epsilon):
            reached = True
            break

    lam = float(np.linalg.eigvalsh(psi)[-1]) if m else 0.0
    return AroraKaleResult(
        x=x,
        value=float(x.sum()),
        iterations=iterations,
        width=width,
        reached_target=reached,
        lambda_max=lam,
        history=history,
    )
