"""A Jain–Yao style primal-update baseline.

Jain and Yao [JY11] gave the first width-independent parallel algorithm for
positive SDPs.  Where the paper's algorithm (and Young's LP algorithm it
generalizes) updates the *dual* vector ``x`` multiplicatively, Jain–Yao
update the *primal* matrix: the candidate ``Y`` is repeatedly pushed toward
the eigenspaces where the constraints are under-covered, with careful
spectral truncations.  The full JY11 procedure (iterated spectral
decompositions with ``Theta(1/eps^{13})``-grade bookkeeping) is far heavier
than anything needed for an iteration-count comparison, so this module
implements a faithful *primal-update MMW* in the same family:

* maintain a weight matrix ``W = exp(-eta * sum_t G_t)`` over the primal
  space, where the per-round gain ``G_t`` rewards directions in which the
  constraints are already well covered;
* the primal candidate after ``T`` rounds is the average of the density
  matrices, exactly as in the paper's primal return value;
* the dual candidate is read off the per-round constraint scores.

The baseline's purpose in this repository is to provide a second
width-independent iteration count to compare against in experiments E1/E5;
its per-iteration cost is one eigendecomposition, like the exact oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidProblemError
from repro.linalg.expm import expm_normalized
from repro.operators.collection import ConstraintCollection
from repro.core.problem import NormalizedPackingSDP


@dataclass
class JainYaoResult:
    """Result of :func:`jain_yao_packing`."""

    primal_y: np.ndarray
    dual_x: np.ndarray
    primal_min_dot: float
    dual_value: float
    iterations: int
    history: list[float] = field(default_factory=list)


def jain_yao_packing(
    problem: NormalizedPackingSDP | ConstraintCollection,
    epsilon: float = 0.1,
    max_iterations: int | None = None,
    collect_history: bool = False,
) -> JainYaoResult:
    """Primal-update MMW baseline for the normalized packing/covering pair.

    Returns both a primal (covering-style) candidate — the average density
    matrix, scaled so its minimum constraint dot is meaningful — and a dual
    candidate obtained from the accumulated per-constraint scores, rescaled
    to feasibility.  Neither candidate carries the paper's guarantee; they
    are measured and certified by the caller (the benchmark harness), which
    is the honest way to use a heuristic comparator.
    """
    if not (0 < epsilon < 1):
        raise InvalidProblemError(f"epsilon must be in (0, 1), got {epsilon}")
    constraints = problem.constraints if isinstance(problem, NormalizedPackingSDP) else problem
    if not isinstance(constraints, ConstraintCollection):
        constraints = ConstraintCollection(constraints)
    n, m = len(constraints), constraints.dim

    if max_iterations is None:
        max_iterations = int(math.ceil(16.0 * math.log(max(n * m, 2)) ** 2 / epsilon**2))

    eta = epsilon / 2.0
    traces = constraints.traces()
    if np.any(traces <= 0):
        raise InvalidProblemError("constraint matrices must have positive trace")

    gain_sum = np.zeros((m, m), dtype=np.float64)
    primal_sum = np.zeros((m, m), dtype=np.float64)
    scores = np.zeros(n, dtype=np.float64)
    history: list[float] = []

    for t in range(1, max_iterations + 1):
        density = expm_normalized(-gain_sum * eta)
        primal_sum += density
        dots = constraints.dots(density)
        # Constraints that are under-covered (small A_i . P) get more score;
        # the gain matrix pushes the density away from directions already
        # heavily covered.
        under = dots < 1.0
        if not under.any():
            # Every constraint is covered by the current density; we are done.
            break
        weights = np.where(under, 1.0 - dots, 0.0)
        weights_sum = float(weights.sum())
        scores += weights / max(weights_sum, 1e-300)
        gain = constraints.weighted_sum(weights / max(weights_sum, 1e-300))
        norm = float(np.linalg.eigvalsh(gain)[-1]) if m else 0.0
        if norm > 0:
            gain = gain / norm
        gain_sum += gain
        if collect_history:
            history.append(float(dots.min(initial=np.nan)))

    iterations = t
    primal_y = primal_sum / max(iterations, 1)
    primal_dots = constraints.dots(primal_y)
    primal_min = float(primal_dots.min(initial=np.nan))

    # Dual candidate: the accumulated scores, rescaled to feasibility.
    if scores.sum() > 0:
        psi = constraints.weighted_sum(scores)
        lam = float(np.linalg.eigvalsh(psi)[-1]) if m else 0.0
        dual_x = scores / lam if lam > 0 else scores
    else:
        norms = constraints.spectral_norms()
        dual_x = np.zeros(n)
        dual_x[int(np.argmin(norms))] = 1.0 / float(norms.min())
    return JainYaoResult(
        primal_y=primal_y,
        dual_x=dual_x,
        primal_min_dot=primal_min,
        dual_value=float(dual_x.sum()),
        iterations=iterations,
        history=history,
    )
