"""Near-exact reference solvers for small packing SDPs.

The packing program ``max 1^T x`` s.t. ``lambda_max(sum_i x_i A_i) <= 1``,
``x >= 0`` is a convex optimization problem (``lambda_max`` of an affine
matrix function is convex), so for small instances it can be solved to high
accuracy by general-purpose methods.  Two independent references are
provided so they can cross-check each other in tests:

* :func:`exact_packing_value` — scipy SLSQP on the smooth surrogate
  ``log-sum-exp`` spectral constraint with a final exact feasibility
  rescaling; deterministic and accurate to ~1e-6 on the instance sizes used
  in tests and benchmarks.
* :func:`exact_packing_frank_wolfe` — a projection-free conditional-gradient
  method on the feasible region, useful as a sanity check because it only
  needs eigenvector computations.

Both return feasible vectors (certificates), never just numbers, so the
benchmark harness can verify them with the same certificate code used for
the paper's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.optimize as opt

from repro.exceptions import InvalidProblemError
from repro.operators.collection import ConstraintCollection
from repro.core.problem import NormalizedPackingSDP


@dataclass
class ExactResult:
    """Result of a reference solver."""

    x: np.ndarray
    value: float
    lambda_max: float
    converged: bool
    iterations: int


def _as_collection(problem) -> ConstraintCollection:
    constraints = problem.constraints if isinstance(problem, NormalizedPackingSDP) else problem
    if not isinstance(constraints, ConstraintCollection):
        constraints = ConstraintCollection(constraints)
    return constraints


def exact_packing_value(
    problem: NormalizedPackingSDP | ConstraintCollection,
    tol: float = 1e-9,
    max_iterations: int = 500,
) -> ExactResult:
    """Solve the packing SDP to near-optimality with SLSQP.

    Maximizes ``1^T x`` subject to ``lambda_max(sum x_i A_i) <= 1`` using the
    exact (sub)gradient of ``lambda_max`` (the outer product of its leading
    eigenvector); the final iterate is rescaled by the measured
    ``lambda_max`` so the returned ``x`` is always exactly feasible.
    """
    constraints = _as_collection(problem)
    n = len(constraints)
    dense = constraints.to_dense_list()
    norms = constraints.spectral_norms()
    if np.any(norms <= 0):
        raise InvalidProblemError("constraint matrices must be nonzero")

    def lam_max_and_grad(x: np.ndarray) -> tuple[float, np.ndarray]:
        psi = np.zeros_like(dense[0])
        for xi, mat in zip(x, dense):
            if xi != 0.0:
                psi += xi * mat
        vals, vecs = np.linalg.eigh(psi)
        lead = vecs[:, -1]
        grad = np.array([float(lead @ mat @ lead) for mat in dense])
        return float(vals[-1]), grad

    def objective(x: np.ndarray) -> tuple[float, np.ndarray]:
        return -float(np.sum(x)), -np.ones(n)

    def constraint_fun(x: np.ndarray) -> float:
        lam, _ = lam_max_and_grad(x)
        return 1.0 - lam

    def constraint_grad(x: np.ndarray) -> np.ndarray:
        _, grad = lam_max_and_grad(x)
        return -grad

    x0 = np.full(n, 1.0 / (n * norms.max()))
    result = opt.minimize(
        lambda x: objective(x)[0],
        x0,
        jac=lambda x: objective(x)[1],
        bounds=[(0.0, None)] * n,
        constraints=[{"type": "ineq", "fun": constraint_fun, "jac": constraint_grad}],
        method="SLSQP",
        options={"maxiter": max_iterations, "ftol": tol},
    )
    x = np.clip(result.x, 0.0, None)
    psi = constraints.weighted_sum(x)
    lam = float(np.linalg.eigvalsh(psi)[-1]) if constraints.dim else 0.0
    if lam > 1.0:
        x = x / lam
        lam = float(np.linalg.eigvalsh(constraints.weighted_sum(x))[-1])
    return ExactResult(
        x=x,
        value=float(x.sum()),
        lambda_max=lam,
        converged=bool(result.success),
        iterations=int(result.nit),
    )


def exact_packing_frank_wolfe(
    problem: NormalizedPackingSDP | ConstraintCollection,
    iterations: int = 2000,
    tol: float = 1e-8,
) -> ExactResult:
    """Conditional-gradient reference for the packing SDP.

    Works on the reformulation ``max 1^T x`` over the convex set
    ``{x >= 0 : lambda_max(sum x_i A_i) <= 1}`` by moving along coordinate
    directions whose addition least increases ``lambda_max``, with an exact
    line search implemented by bisection on the spectral norm.  Slower than
    SLSQP but entirely independent of scipy.optimize, which makes it a good
    cross-check in tests.
    """
    constraints = _as_collection(problem)
    n, m = len(constraints), constraints.dim
    dense = constraints.to_dense_list()
    norms = constraints.spectral_norms()

    x = np.zeros(n, dtype=np.float64)
    psi = np.zeros((m, m), dtype=np.float64)
    it = 0
    for it in range(1, iterations + 1):
        vals, vecs = np.linalg.eigh(psi)
        lam = float(vals[-1])
        slack = 1.0 - lam
        if slack <= tol:
            break
        lead = vecs[:, -1]
        # Cost of growing coordinate i: how much it pushes the top eigenvalue.
        pressures = np.array([max(float(lead @ mat @ lead), 1e-12) for mat in dense])
        best = int(np.argmin(pressures / 1.0))
        # Step: grow coordinate `best` until lambda_max would reach 1 - use a
        # conservative bound lambda_max(psi + s A) <= lam + s ||A||_2 and then
        # a short bisection refinement.
        step_hi = slack / norms[best]
        step = step_hi
        for _ in range(30):
            trial = psi + step * dense[best]
            if float(np.linalg.eigvalsh(trial)[-1]) <= 1.0:
                break
            step *= 0.5
        if step * 1.0 <= tol * max(1.0, float(x.sum())):
            break
        x[best] += step
        psi += step * dense[best]

    lam = float(np.linalg.eigvalsh(psi)[-1]) if m else 0.0
    if lam > 1.0:
        x = x / lam
        lam = float(np.linalg.eigvalsh(constraints.weighted_sum(x))[-1])
    return ExactResult(x=x, value=float(x.sum()), lambda_max=lam, converged=True, iterations=it)
