"""Baseline solvers the paper compares against (or improves upon).

* :mod:`repro.baselines.arora_kale` — a *width-dependent* matrix
  multiplicative weights packing solver in the style of Arora–Hazan–Kale /
  Arora–Kale: its step size is inversely proportional to the width
  ``rho = max_i ||A_i||_2``, so its iteration count grows with the width.
  Experiment E5 contrasts this against the width-independent Algorithm 3.1.
* :mod:`repro.baselines.jain_yao` — a primal-update MMW variant in the
  spirit of Jain–Yao [JY11] (the first width-independent positive SDP
  algorithm), used as an iteration-count comparator.
* :mod:`repro.baselines.exact` — near-exact reference solvers for small
  instances (projected convex optimization on ``lambda_max(sum x_i A_i) <= 1``
  and a Frank–Wolfe style method) used to measure the (1+ε) guarantee in E4.
"""

from repro.baselines.arora_kale import AroraKaleResult, arora_kale_packing
from repro.baselines.jain_yao import JainYaoResult, jain_yao_packing
from repro.baselines.exact import ExactResult, exact_packing_value, exact_packing_frank_wolfe

__all__ = [
    "AroraKaleResult",
    "arora_kale_packing",
    "JainYaoResult",
    "jain_yao_packing",
    "ExactResult",
    "exact_packing_value",
    "exact_packing_frank_wolfe",
]
