"""Numerical fault supervision: demotion ladders, budgets, fault injection.

The subsystem has two halves:

* :mod:`repro.robustness.supervisor` — the production half.
  :class:`FastPathSupervisor` wraps the decision solvers' fast-path stages
  (Taylor kernel, trace estimator, warm-started Lanczos, implicit
  ``PsiState``) and demotes a failing stage one rung down its ladder
  instead of letting the solve die, recording every event; solve budgets
  (wall-clock / iteration / recovery caps) turn exhaustion into
  best-effort results with an explicit
  :class:`~repro.core.result.SolveStatus`.
* :mod:`repro.robustness.faultinject` — the test half.  A deterministic,
  seeded, site-addressable fault injector (:func:`inject`) that drives the
  chaos suite proving each ladder rung recovers to the identical
  fixed-seed certified decision.

See ``docs/ROBUSTNESS.md`` for the ladder diagram and the
``SolveStatus`` contract.
"""

from repro.robustness.faultinject import (
    BoundViolation,
    Crash,
    FaultKind,
    FaultSpec,
    NaN,
    NonConvergent,
    Overflow,
    Stall,
    WorkerCrash,
    clear_faults,
    export_plan,
    fault_hook,
    fault_hook_array,
    inject,
    install_plan,
)
from repro.robustness.supervisor import FastPathSupervisor, RecoveryEvent

__all__ = [
    "BoundViolation",
    "Crash",
    "FaultKind",
    "FaultSpec",
    "FastPathSupervisor",
    "NaN",
    "NonConvergent",
    "Overflow",
    "RecoveryEvent",
    "Stall",
    "WorkerCrash",
    "clear_faults",
    "export_plan",
    "fault_hook",
    "fault_hook_array",
    "inject",
    "install_plan",
]
