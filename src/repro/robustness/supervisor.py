"""Fault supervision for the decision solvers' fast paths.

:class:`FastPathSupervisor` sits between the solver loop and the numerical
kernels and implements the kernel-demotion ladder: when a fast-path
computation breaks — non-finite GEMM output, Taylor-degree overflow, an
injected or organic Lanczos non-convergence, a Hutchinson certified-bound
violation — the failing computation is retried one rung down a ladder of
strictly-more-conservative implementations, and the event is recorded in a
structured :attr:`~FastPathSupervisor.recovery_events` log that the solvers
surface as ``DecisionResult.metadata["recovery_events"]``.

The ladders (see ``docs/ROBUSTNESS.md`` for the full diagram):

* **Taylor kernel**: ``gram`` → ``sparse-psi`` (sparse stacks) →
  ``dense-psi`` → reference per-term matvec apply.  Every rung evaluates
  the *same* Lemma 4.2 polynomial, so demotion changes rounding at worst —
  never the certified decision.
* **Trace estimator**: ``gram`` / ``deflated`` / ``hutchinson`` → the
  exact legacy identity push.
* **Lanczos** (``lambda_max``): warm-started → cold-started → exact dense
  ``eigvalsh``.
* **PsiState**: implicit (matrix-free) → dense maintenance.

Budgets ride along: ``wall_clock_budget`` / ``iteration_budget`` are
checked once per solver iteration, and ``max_recoveries`` caps the total
demotion count.  Exhaustion surfaces as
:class:`~repro.exceptions.BudgetExhaustedError`, which the solvers convert
into a best-effort ``DecisionResult`` (``SolveStatus.BUDGET_EXHAUSTED`` /
``FAILED``) instead of raising.

The supervisor's happy-path overhead is one ``try`` frame plus an
``O(n)`` finiteness scan per oracle call — measured under 2% end to end by
``benchmarks/bench_e16_robustness.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.config import get_config
from repro.exceptions import BudgetExhaustedError, NumericalError

__all__ = ["RecoveryEvent", "FastPathSupervisor"]

#: Sites attributed to the fused Taylor kernels (demote the kernel ladder).
_TAYLOR_SITES = frozenset({"taylor_gram.apply", "taylor_blocked.apply", "taylor.reference"})
#: Sites attributed to the structured trace estimator (demote to identity).
_TRACE_SITES = frozenset({"hutchinson", "trace_estimation"})
#: The lambda_max ladder rung names, in demotion order.
_LANCZOS_RUNGS = ("warm", "cold", "exact")
#: Exceptions the supervisor treats as recoverable numerical breakdowns.
#: InvalidProblemError (bad input) deliberately stays outside the net.
_RECOVERABLE = (NumericalError, FloatingPointError, np.linalg.LinAlgError)


@dataclass
class RecoveryEvent:
    """One demotion performed by the supervisor.

    Attributes
    ----------
    site:
        The failing site (``"taylor_gram.apply"``, ``"lanczos"``, ...;
        ``"unknown"`` when the exception carried no attribution).
    kind:
        Failure class — the injected fault's name for chaos runs, the
        exception class name for organic failures.
    from_mode / to_mode:
        The ladder rung that failed and the rung retried.
    iteration:
        Solver iteration the failure occurred at (0 for pre/post-loop).
    detail:
        The stringified exception message.
    """

    site: str
    kind: str
    from_mode: str
    to_mode: str
    iteration: int
    detail: str

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form for ``DecisionResult.metadata`` (JSON-friendly)."""
        return {
            "site": self.site,
            "kind": self.kind,
            "from_mode": self.from_mode,
            "to_mode": self.to_mode,
            "iteration": self.iteration,
            "detail": self.detail,
        }


class FastPathSupervisor:
    """Demotion-ladder supervisor wrapped around one decision-solver run.

    Parameters
    ----------
    oracle:
        The solver's oracle.  Fast oracles are demoted through their
        ``engine`` / ``blocked`` knobs and trace estimator; oracles without
        those attributes (the exact oracle, user oracles) simply have no
        kernel rungs, so their failures fall through to ``FAILED``.
    state:
        The solver's :class:`~repro.core.psi_state.PsiState`.  The
        supervisor *owns* this reference — an implicit→dense demotion
        rebinds :attr:`state`, and the solver re-reads it after every
        supervised call.
    constraints:
        The constraint collection (needed to rebuild a dense state).
    tracker:
        The run's :class:`~repro.parallel.workdepth.WorkDepthTracker`;
        recovery work (discarded attempts, state rebuilds) is charged under
        the ``"recovery"`` label.
    log_depth:
        The run's model depth per charged step.
    eig_rng:
        Generator handed to a rebuilt dense state's eigenvalue estimator.
    wall_clock_budget:
        Optional seconds cap for the whole solve (checked per iteration).
    iteration_budget:
        Optional iteration cap, tighter than the paper's ``R``.
    max_recoveries:
        Cap on total demotions (``None`` uses ``ReproConfig.max_recoveries``).
    clock:
        Injectable monotonic clock (tests pin it for determinism).
    """

    def __init__(
        self,
        oracle: Any,
        state: Any,
        constraints: Any,
        tracker: Any,
        log_depth: float,
        eig_rng: Any = None,
        wall_clock_budget: float | None = None,
        iteration_budget: int | None = None,
        max_recoveries: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.oracle = oracle
        self.state = state
        self.constraints = constraints
        self.tracker = tracker
        self.log_depth = float(log_depth)
        self._eig_rng = eig_rng
        self.wall_clock_budget = wall_clock_budget
        self.iteration_budget = iteration_budget
        self.max_recoveries = (
            get_config().max_recoveries if max_recoveries is None else int(max_recoveries)
        )
        self._clock = clock
        self._start = clock()
        self.recovery_events: list[RecoveryEvent] = []

    # ------------------------------------------------------------------ budgets
    def elapsed(self) -> float:
        """Seconds since the supervisor (solve) started."""
        return self._clock() - self._start

    def budget_exhausted(self, iteration: int) -> str | None:
        """Which budget (if any) is spent before running ``iteration + 1``.

        Returns ``"iterations"`` / ``"wall_clock"`` or ``None``.  The
        solvers call this at the top of every loop pass and convert a
        non-``None`` answer into a ``SolveStatus.BUDGET_EXHAUSTED`` result.
        """
        if self.iteration_budget is not None and iteration >= self.iteration_budget:
            return "iterations"
        if self.wall_clock_budget is not None and self.elapsed() >= self.wall_clock_budget:
            return "wall_clock"
        return None

    # ------------------------------------------------------------------ events
    def event_dicts(self) -> list[dict[str, Any]]:
        """The recovery log as plain dicts (for result metadata)."""
        return [event.as_dict() for event in self.recovery_events]

    def stats(self) -> dict[str, Any]:
        """Summary surfaced in result metadata next to the event list."""
        return {
            "recoveries": len(self.recovery_events),
            "max_recoveries": self.max_recoveries,
            "wall_clock_budget": self.wall_clock_budget,
            "iteration_budget": self.iteration_budget,
            "elapsed": self.elapsed(),
        }

    # ------------------------------------------------------------------ checkpointing
    def export_state(self) -> dict:
        """Checkpointable snapshot: the recovery log plus elapsed wall clock.

        The ladder *position* (which kernel/trace/psi rung is active) lives
        on the oracle and state objects and is captured by their own
        ``export_state`` methods; this snapshot carries the supervisor's
        bookkeeping so a resumed run reports the full recovery-event trail
        and keeps charging wall-clock budgets against the total time the
        solve has consumed across interruptions.
        """
        return {
            "events": self.event_dicts(),
            "elapsed": float(self.elapsed()),
        }

    def import_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`export_state`.

        Re-dates ``_start`` so :meth:`elapsed` continues from the
        checkpointed value — a resumed solve with a ``wall_clock_budget``
        gets only the *remaining* budget, not a fresh one.
        """
        self.recovery_events = [RecoveryEvent(**event) for event in state["events"]]
        self._start = self._clock() - float(state["elapsed"])

    def _record(
        self,
        exc: BaseException,
        iteration: int,
        site: str,
        from_mode: str,
        to_mode: str,
    ) -> None:
        """Count one demotion, enforcing ``max_recoveries``; log the event."""
        if len(self.recovery_events) >= self.max_recoveries:
            raise BudgetExhaustedError(
                f"recovery budget exhausted ({self.max_recoveries} demotions) "
                f"while handling {site!r}: {exc}",
                budget="recoveries",
            ) from exc
        kind = getattr(getattr(exc, "kind", None), "name", None) or type(exc).__name__
        self.recovery_events.append(
            RecoveryEvent(
                site=site,
                kind=kind,
                from_mode=from_mode,
                to_mode=to_mode,
                iteration=int(iteration),
                detail=str(exc),
            )
        )
        # Charge the discarded attempt at one pass over the factor nonzeros
        # (the dominant cost of the failed kernel call).
        self.tracker.charge(
            float(getattr(self.constraints, "total_nnz", 0) or 1),
            self.log_depth,
            label="recovery",
        )

    # ------------------------------------------------------------------ ladders
    def _demote_taylor(self) -> tuple[str, str] | None:
        """Move the oracle's Taylor kernel one rung down; ``None`` if at floor."""
        oracle = self.oracle
        packed = getattr(oracle, "packed", None)
        if packed is None or not getattr(oracle, "blocked", False):
            return None  # already on the reference path (or not a fast oracle)
        engine = getattr(oracle, "_engine", None)
        if getattr(oracle, "engine", False):
            current = engine.mode if engine is not None else packed.auto_taylor_mode()
        else:
            current = "legacy"
        ladder = ["gram"]
        if getattr(packed, "is_sparse", False):
            ladder.append("sparse-psi")
        ladder.append("dense-psi")
        try:
            start = ladder.index(current) + 1
        except ValueError:
            # legacy / factor-recurrence modes have no intermediate rung.
            start = len(ladder)
        for mode in ladder[start:]:
            from repro.linalg.taylor_gram import TaylorEngine

            oracle._engine = TaylorEngine(
                packed,
                chunk_columns=getattr(oracle, "taylor_chunk_columns", None),
                mode=mode,
            )
            oracle.engine = True
            return (current, mode)
        # Floor: the legacy per-term reference apply through the factored
        # matvec (blocked=False also disengages the structured tracer).
        oracle.engine = False
        oracle.blocked = False
        oracle._engine = None
        return (current, "reference")

    def _demote_trace(self) -> tuple[str, str] | None:
        """Drop the structured trace estimator to the exact identity push."""
        tracer = getattr(self.oracle, "_trace_estimator", None)
        if tracer is None or not getattr(tracer, "structured", False):
            return None
        from_mode = tracer.mode
        tracer.demote_to_identity()
        return (from_mode, "identity")

    def demote_psi_state(self) -> tuple[str, str] | None:
        """Rebuild the solver's ``Psi`` state densely (implicit → dense)."""
        if getattr(self.state, "mode", "dense") != "implicit":
            return None
        from repro.core.psi_state import DensePsiState

        old = self.state
        self.state = DensePsiState(self.constraints, old.x, eig_rng=self._eig_rng)
        # Carry the counters so the run's metadata reflects total activity.
        self.state.matvec_count = old.matvec_count
        self.state.densify_count = old.densify_count
        self.state.lambda_max_calls = old.lambda_max_calls
        self.state.lambda_max_matvecs = old.lambda_max_matvecs
        self.tracker.charge(self.state.init_work, self.log_depth, label="recovery")
        return ("implicit", "dense")

    def _dispatch(self, exc: BaseException) -> tuple[str, str, str] | None:
        """Pick and perform the demotion for ``exc``; ``None`` when out of rungs.

        Returns ``(site, from_mode, to_mode)`` on success.
        """
        if getattr(getattr(exc, "kind", None), "fatal", False):
            # Crash-style injected faults model a died worker, not a
            # numerical breakdown: no rung can absorb them, so the solve
            # fails (and the serving layer's retry/backoff takes over).
            return None
        site = getattr(exc, "site", None)
        if site in _TRACE_SITES:
            action = self._demote_trace()
            return (site, *action) if action else None
        if site == "psi_state.matvec":
            action = self.demote_psi_state()
            return (site, *action) if action else None
        # Taylor sites — and unattributed failures, which most likely came
        # out of the kernel GEMM chain — walk the kernel ladder first.
        action = self._demote_taylor()
        if action is not None:
            return (site or "unknown", *action)
        if site is None:
            action = self._demote_trace()
            if action is not None:
                return ("unknown", *action)
            action = self.demote_psi_state()
            if action is not None:
                return ("unknown", *action)
        return None

    # ------------------------------------------------------------------ wrappers
    def oracle_call(self, iteration: int = 0) -> Any:
        """One supervised oracle evaluation at the current state.

        Retries down the ladders until the call returns finite estimates;
        raises :class:`~repro.exceptions.BudgetExhaustedError`
        (``budget="recoveries"``) when demotions run out or no rung is left.
        The solver must re-read :attr:`state` afterwards (a
        ``psi_state.matvec`` recovery may have rebound it).
        """
        while True:
            try:
                output = self.oracle(self.state.oracle_psi(), self.state.x)
                values = np.asarray(output.values, dtype=np.float64)
                if not (np.all(np.isfinite(values)) and np.isfinite(output.trace)):
                    raise NumericalError(
                        "oracle produced non-finite estimates",
                        site=None,
                    )
                return output
            except _RECOVERABLE as exc:
                handled = self._dispatch(exc)
                if handled is None:
                    raise BudgetExhaustedError(
                        f"no demotion rung left for {getattr(exc, 'site', None)!r}: {exc}",
                        budget="recoveries",
                    ) from exc
                self._record(exc, iteration, *handled)

    def lambda_max(self, final: bool = False, iteration: int = 0) -> tuple[float, float]:
        """Supervised ``lambda_max``: warm → cold → exact ``eigvalsh``.

        A ``psi_state.matvec`` failure demotes the state to dense and
        retries the *same* rung (the dense state's matvec no longer routes
        through the corrupted path); Lanczos failures walk the rung ladder.
        Returns ``(value, model_work_of_the_successful_attempt)``; failed
        attempts are charged under ``"recovery"`` as they happen.
        """
        rung = 0
        while True:
            try:
                if rung >= 2:
                    return self.state.lambda_max_exact(final=final)
                if rung == 1:
                    self.state.reset_warm_start()
                return self.state.lambda_max(final=final)
            except _RECOVERABLE as exc:
                if getattr(getattr(exc, "kind", None), "fatal", False):
                    # Crash-style faults are not absorbed by the rung
                    # ladder (same policy as _dispatch).
                    raise BudgetExhaustedError(
                        f"fatal fault during lambda_max: {exc}",
                        budget="recoveries",
                    ) from exc
                site = getattr(exc, "site", None)
                if site == "psi_state.matvec":
                    action = self.demote_psi_state()
                    if action is not None:
                        self._record(exc, iteration, site, *action)
                        continue
                if rung >= 2:
                    raise BudgetExhaustedError(
                        f"exact lambda_max rung failed: {exc}", budget="recoveries"
                    ) from exc
                self._record(
                    exc,
                    iteration,
                    site or "lanczos",
                    _LANCZOS_RUNGS[rung],
                    _LANCZOS_RUNGS[rung + 1],
                )
                rung += 1
