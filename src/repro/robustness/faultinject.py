"""Deterministic, site-addressable fault injection for the fast paths.

The chaos suite (``tests/test_robustness_faultinject.py``) needs to prove
that every rung of the kernel-demotion ladder actually recovers — which
requires *causing* each failure class on demand, reproducibly.  This module
provides that: a seeded plan of :class:`FaultSpec` entries, armed through
the :func:`inject` context manager, and two cheap hooks compiled into the
production kernels:

* :func:`fault_hook_array` — corrupts a freshly computed array in place
  (NaN / infinity at a seed-deterministic position) so the kernel's *own*
  organic finiteness check fires.  The chaos tests therefore exercise the
  real detection code, not a parallel test-only branch.
* :func:`fault_hook` — raises :class:`~repro.exceptions.FaultInjected`
  (a :class:`~repro.exceptions.NumericalError`) for failure classes that
  manifest as exceptions rather than bad data: Lanczos non-convergence and
  Hutchinson certified-bound violations.

Happy-path cost is one module-global truthiness check per instrumented
site (the plan list is empty outside ``inject`` blocks), measured at well
under the 2% supervision-overhead ceiling in ``docs/PERFORMANCE.md``.

Example
-------
>>> from repro.robustness import inject, NaN
>>> with inject("taylor_gram.apply", NaN):
...     result = decision_psdp(problem, epsilon=0.25)   # doctest: +SKIP
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import FaultInjected


class FaultKind:
    """Base marker for injectable failure classes.

    Subclasses declare ``name`` (human-readable tag recorded on the raised
    :class:`~repro.exceptions.FaultInjected` and in recovery events) and
    ``corrupts``: corrupting kinds poison an output array so the kernel's
    organic finiteness check detects them; non-corrupting kinds raise
    directly at the hook.
    """

    name = "fault"
    corrupts = False
    fill = float("nan")
    #: Fatal kinds model a died worker rather than a numerical breakdown:
    #: no demotion rung can absorb them, so the supervisor fails the solve
    #: immediately and the serving layer's retry/backoff takes over.
    fatal = False


class NaN(FaultKind):
    """Poison one entry of a kernel's output with ``nan`` (silent data fault)."""

    name = "nan"
    corrupts = True
    fill = float("nan")


class Overflow(FaultKind):
    """Poison one entry of a kernel's output with ``inf`` (overflow fault)."""

    name = "overflow"
    corrupts = True
    fill = float("inf")


class NonConvergent(FaultKind):
    """An iterative eigensolver (Lanczos / power iteration) fails to converge."""

    name = "non-convergent"
    corrupts = False


class BoundViolation(FaultKind):
    """A Hutchinson trace estimate violates its certified error bound."""

    name = "bound-violation"
    corrupts = False


class Crash(FaultKind):
    """The worker executing the kernel dies mid-call (crash-style fault).

    Unlike the numerical kinds, a crash is *fatal*: the demotion ladder
    cannot absorb it, the supervised solve fails (``SolveStatus.FAILED``,
    carrying its latest periodic checkpoint), and recovery belongs to the
    serving layer (:class:`~repro.service.SolveService` retry/backoff).
    """

    name = "crash"
    corrupts = False
    fatal = True


class Stall(FaultKind):
    """The worker stops making progress but never dies (hang-style fault).

    Fired at the executor's ``worker.heartbeat`` site: the worker parks
    without emitting further heartbeats, so the pool's watchdog is the
    *only* thing that can recover the job — it detects the stale
    heartbeat, kills the worker, and requeues the request from its latest
    shipped :class:`~repro.core.checkpoint.SolverCheckpoint`.
    """

    name = "stall"
    corrupts = False
    fatal = True


class WorkerCrash(FaultKind):
    """The whole pool worker dies mid-job (process-death fault).

    Unlike :class:`Crash` (which the supervised solve converts into a
    ``FAILED`` *result*), a worker crash returns no result at all: the
    executor observes a dead worker and requeues every request the job
    carried from its latest shipped checkpoint.  In process pools with
    hard-crash mode the worker genuinely ``os._exit``\\ s; in thread pools
    the death is simulated (the job unwinds and reports itself crashed,
    dropping all in-worker state the heartbeats had not shipped).
    """

    name = "worker-crash"
    corrupts = False
    fatal = True


@dataclass
class FaultSpec:
    """One armed fault: fire ``times`` times starting at call ``at_call``.

    Calls are counted per spec at the matching site, starting from 1, so
    ``at_call=3`` leaves the first two kernel invocations clean.  ``seed``
    determines which entry of the output array a corrupting fault poisons.

    ``at_time`` arms the fault on the wall clock instead: calls at the
    site are not even counted until ``clock()`` reaches ``at_time``, after
    which the ``at_call``/``times`` window applies as usual.  With an
    injectable ``clock`` (the service's virtual clock in tests) this models
    "the worker crashes N seconds into the run" deterministically.
    """

    site: str
    kind: type[FaultKind]
    at_call: int = 1
    times: int = 1
    seed: int = 0
    at_time: float | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    calls_seen: int = 0
    fires: int = 0


#: Active fault plan.  Empty outside :func:`inject` blocks, which is what
#: keeps the production hooks nearly free on the happy path.
_PLAN: list[FaultSpec] = []


@contextlib.contextmanager
def inject(
    site: str,
    kind: type[FaultKind],
    at_call: int = 1,
    times: int = 1,
    seed: int = 0,
    at_time: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[FaultSpec]:
    """Arm one deterministic fault for the duration of the ``with`` block.

    Parameters
    ----------
    site:
        Instrumented site identifier — see :data:`SITES` for the list.
    kind:
        One of :class:`NaN`, :class:`Overflow`, :class:`NonConvergent`,
        :class:`BoundViolation`, :class:`Crash`.
    at_call / times:
        Fire on calls ``at_call .. at_call + times - 1`` (1-based) of the
        site, counted within this block.
    seed:
        Seeds the corrupted-entry position for array faults.
    at_time / clock:
        Clock-based arming: site calls are ignored (not counted) until
        ``clock()`` reaches ``at_time``; the ``at_call``/``times`` window
        then applies to the calls that follow.  Pass a virtual clock for
        deterministic crash-at-time chaos tests.

    Yields the live :class:`FaultSpec`; its ``fires`` counter lets tests
    assert the fault actually triggered.
    """
    spec = FaultSpec(
        site=site, kind=kind, at_call=at_call, times=times, seed=seed,
        at_time=at_time, clock=clock,
    )
    _PLAN.append(spec)
    try:
        yield spec
    finally:
        # clear_faults() may already have disarmed the spec.
        if spec in _PLAN:
            _PLAN.remove(spec)


def clear_faults() -> None:
    """Disarm every active fault (safety net for test teardown)."""
    _PLAN.clear()


#: Registry used by :func:`install_plan` to rebuild kinds from their names.
_KINDS_BY_NAME: dict[str, type[FaultKind]] = {
    cls.name: cls
    for cls in (NaN, Overflow, NonConvergent, BoundViolation, Crash, Stall, WorkerCrash)
}


def export_plan() -> list[dict]:
    """Serialize the armed plan into a list of plain-dict specs.

    The executor ships this snapshot inside every job payload so faults
    armed in the *parent* fire inside *pool worker processes* too — module
    globals (the live ``_PLAN`` list) do not cross a process boundary, and
    a pool forked before :func:`inject` ran would otherwise silently solve
    fault-free.  Custom ``clock`` callables are not exported (a parent's
    virtual clock is meaningless in a child); clock-armed specs fall back
    to ``time.monotonic`` on install, which on Linux is comparable across
    processes.
    """
    return [
        {
            "site": spec.site,
            "kind": spec.kind.name,
            "at_call": spec.at_call,
            "times": spec.times,
            "seed": spec.seed,
            "at_time": spec.at_time,
            "calls_seen": spec.calls_seen,
            "fires": spec.fires,
        }
        for spec in _PLAN
    ]


def install_plan(plan: list[dict], *, replace: bool = True) -> list[FaultSpec]:
    """Arm an :func:`export_plan` snapshot in this process; returns the specs.

    ``replace=True`` (the default) clears whatever is currently armed
    first: a forked pool worker may have *inherited* the parent's plan at
    fork time, and re-arming the payload copy on top would double-fire
    every spec.  Counters (``calls_seen``/``fires``) carry over from the
    snapshot so a fault consumed by an earlier job does not re-fire when a
    later job installs the refreshed plan.
    """
    if replace:
        _PLAN.clear()
    installed = []
    for entry in plan:
        kind = _KINDS_BY_NAME.get(entry["kind"])
        if kind is None:
            raise ValueError(f"unknown fault kind {entry['kind']!r} in plan")
        spec = FaultSpec(
            site=entry["site"],
            kind=kind,
            at_call=int(entry["at_call"]),
            times=int(entry["times"]),
            seed=int(entry["seed"]),
            at_time=entry.get("at_time"),
            calls_seen=int(entry.get("calls_seen", 0)),
            fires=int(entry.get("fires", 0)),
        )
        _PLAN.append(spec)
        installed.append(spec)
    return installed


def plan_usage(specs: list[FaultSpec]) -> list[dict]:
    """Counter snapshot (``calls_seen``/``fires``) for installed specs."""
    return [
        {"calls_seen": spec.calls_seen, "fires": spec.fires} for spec in specs
    ]


def consume_plan_usage(usage: list[dict]) -> None:
    """Fold a worker's :func:`plan_usage` back into the armed parent plan.

    Matches by position (the payload plan was exported in ``_PLAN`` order)
    and only ever advances counters, so a one-shot fault consumed inside a
    pool worker stays consumed when the next job exports the plan again.
    A length mismatch (specs disarmed while the job ran) is ignored for
    the tail — the surviving prefix still syncs.
    """
    for spec, used in zip(_PLAN, usage):
        spec.calls_seen = max(spec.calls_seen, int(used.get("calls_seen", 0)))
        spec.fires = max(spec.fires, int(used.get("fires", 0)))


#: Instrumented production sites and the failure classes they accept.
SITES = {
    "taylor_gram.apply": "Gram-space fused Taylor kernel output (NaN / Overflow)",
    "taylor_blocked.apply": "blocked fused Taylor kernel output (NaN / Overflow)",
    "taylor.reference": "reference per-term Taylor apply output (NaN / Overflow)",
    "lanczos": "ARPACK top-eigenvalue call (NonConvergent)",
    "hutchinson": "Hutchinson trace estimator (BoundViolation / NonConvergent)",
    "psi_state.matvec": "implicit PsiState packed matvec output (NaN / Overflow)",
    "worker.heartbeat": "executor worker heartbeat (Stall / WorkerCrash)",
}


def _armed(site: str, corrupts: bool) -> FaultSpec | None:
    """Return the first armed spec due to fire at ``site``, advancing counters."""
    for spec in _PLAN:
        if spec.site != site or spec.kind.corrupts is not corrupts:
            continue
        if spec.at_time is not None and spec.clock() < spec.at_time:
            continue
        spec.calls_seen += 1
        if spec.at_call <= spec.calls_seen < spec.at_call + spec.times:
            spec.fires += 1
            return spec
    return None


def fault_hook(site: str, kernel_mode: str | None = None) -> None:
    """Raise :class:`FaultInjected` if a non-corrupting fault is due at ``site``."""
    if not _PLAN:
        return
    spec = _armed(site, corrupts=False)
    if spec is not None:
        raise FaultInjected(
            f"injected {spec.kind.name} fault at site {site!r}",
            site=site,
            kernel_mode=kernel_mode,
            kind=spec.kind,
        )


def fault_hook_array(site: str, array: np.ndarray) -> np.ndarray:
    """Poison ``array`` in place if a corrupting fault is due at ``site``.

    Returns ``array`` (always the same object) so call sites can stay
    expression-shaped.  The poisoned position is drawn from
    ``default_rng((seed, fire_index))`` — fixed seeds give bit-identical
    corruption across runs.
    """
    if not _PLAN:
        return array
    spec = _armed(site, corrupts=True)
    if spec is not None and array.size:
        rng = np.random.default_rng((spec.seed, spec.fires))
        array.flat[int(rng.integers(0, array.size))] = spec.kind.fill
    return array
