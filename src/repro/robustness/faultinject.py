"""Deterministic, site-addressable fault injection for the fast paths.

The chaos suite (``tests/test_robustness_faultinject.py``) needs to prove
that every rung of the kernel-demotion ladder actually recovers — which
requires *causing* each failure class on demand, reproducibly.  This module
provides that: a seeded plan of :class:`FaultSpec` entries, armed through
the :func:`inject` context manager, and two cheap hooks compiled into the
production kernels:

* :func:`fault_hook_array` — corrupts a freshly computed array in place
  (NaN / infinity at a seed-deterministic position) so the kernel's *own*
  organic finiteness check fires.  The chaos tests therefore exercise the
  real detection code, not a parallel test-only branch.
* :func:`fault_hook` — raises :class:`~repro.exceptions.FaultInjected`
  (a :class:`~repro.exceptions.NumericalError`) for failure classes that
  manifest as exceptions rather than bad data: Lanczos non-convergence and
  Hutchinson certified-bound violations.

Happy-path cost is one module-global truthiness check per instrumented
site (the plan list is empty outside ``inject`` blocks), measured at well
under the 2% supervision-overhead ceiling in ``docs/PERFORMANCE.md``.

Example
-------
>>> from repro.robustness import inject, NaN
>>> with inject("taylor_gram.apply", NaN):
...     result = decision_psdp(problem, epsilon=0.25)   # doctest: +SKIP
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from repro.exceptions import FaultInjected


class FaultKind:
    """Base marker for injectable failure classes.

    Subclasses declare ``name`` (human-readable tag recorded on the raised
    :class:`~repro.exceptions.FaultInjected` and in recovery events) and
    ``corrupts``: corrupting kinds poison an output array so the kernel's
    organic finiteness check detects them; non-corrupting kinds raise
    directly at the hook.
    """

    name = "fault"
    corrupts = False
    fill = float("nan")
    #: Fatal kinds model a died worker rather than a numerical breakdown:
    #: no demotion rung can absorb them, so the supervisor fails the solve
    #: immediately and the serving layer's retry/backoff takes over.
    fatal = False


class NaN(FaultKind):
    """Poison one entry of a kernel's output with ``nan`` (silent data fault)."""

    name = "nan"
    corrupts = True
    fill = float("nan")


class Overflow(FaultKind):
    """Poison one entry of a kernel's output with ``inf`` (overflow fault)."""

    name = "overflow"
    corrupts = True
    fill = float("inf")


class NonConvergent(FaultKind):
    """An iterative eigensolver (Lanczos / power iteration) fails to converge."""

    name = "non-convergent"
    corrupts = False


class BoundViolation(FaultKind):
    """A Hutchinson trace estimate violates its certified error bound."""

    name = "bound-violation"
    corrupts = False


class Crash(FaultKind):
    """The worker executing the kernel dies mid-call (crash-style fault).

    Unlike the numerical kinds, a crash is *fatal*: the demotion ladder
    cannot absorb it, the supervised solve fails (``SolveStatus.FAILED``,
    carrying its latest periodic checkpoint), and recovery belongs to the
    serving layer (:class:`~repro.service.SolveService` retry/backoff).
    """

    name = "crash"
    corrupts = False
    fatal = True


@dataclass
class FaultSpec:
    """One armed fault: fire ``times`` times starting at call ``at_call``.

    Calls are counted per spec at the matching site, starting from 1, so
    ``at_call=3`` leaves the first two kernel invocations clean.  ``seed``
    determines which entry of the output array a corrupting fault poisons.

    ``at_time`` arms the fault on the wall clock instead: calls at the
    site are not even counted until ``clock()`` reaches ``at_time``, after
    which the ``at_call``/``times`` window applies as usual.  With an
    injectable ``clock`` (the service's virtual clock in tests) this models
    "the worker crashes N seconds into the run" deterministically.
    """

    site: str
    kind: type[FaultKind]
    at_call: int = 1
    times: int = 1
    seed: int = 0
    at_time: float | None = None
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)
    calls_seen: int = 0
    fires: int = 0


#: Active fault plan.  Empty outside :func:`inject` blocks, which is what
#: keeps the production hooks nearly free on the happy path.
_PLAN: list[FaultSpec] = []


@contextlib.contextmanager
def inject(
    site: str,
    kind: type[FaultKind],
    at_call: int = 1,
    times: int = 1,
    seed: int = 0,
    at_time: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator[FaultSpec]:
    """Arm one deterministic fault for the duration of the ``with`` block.

    Parameters
    ----------
    site:
        Instrumented site identifier — see :data:`SITES` for the list.
    kind:
        One of :class:`NaN`, :class:`Overflow`, :class:`NonConvergent`,
        :class:`BoundViolation`, :class:`Crash`.
    at_call / times:
        Fire on calls ``at_call .. at_call + times - 1`` (1-based) of the
        site, counted within this block.
    seed:
        Seeds the corrupted-entry position for array faults.
    at_time / clock:
        Clock-based arming: site calls are ignored (not counted) until
        ``clock()`` reaches ``at_time``; the ``at_call``/``times`` window
        then applies to the calls that follow.  Pass a virtual clock for
        deterministic crash-at-time chaos tests.

    Yields the live :class:`FaultSpec`; its ``fires`` counter lets tests
    assert the fault actually triggered.
    """
    spec = FaultSpec(
        site=site, kind=kind, at_call=at_call, times=times, seed=seed,
        at_time=at_time, clock=clock,
    )
    _PLAN.append(spec)
    try:
        yield spec
    finally:
        # clear_faults() may already have disarmed the spec.
        if spec in _PLAN:
            _PLAN.remove(spec)


def clear_faults() -> None:
    """Disarm every active fault (safety net for test teardown)."""
    _PLAN.clear()


#: Instrumented production sites and the failure classes they accept.
SITES = {
    "taylor_gram.apply": "Gram-space fused Taylor kernel output (NaN / Overflow)",
    "taylor_blocked.apply": "blocked fused Taylor kernel output (NaN / Overflow)",
    "taylor.reference": "reference per-term Taylor apply output (NaN / Overflow)",
    "lanczos": "ARPACK top-eigenvalue call (NonConvergent)",
    "hutchinson": "Hutchinson trace estimator (BoundViolation / NonConvergent)",
    "psi_state.matvec": "implicit PsiState packed matvec output (NaN / Overflow)",
}


def _armed(site: str, corrupts: bool) -> FaultSpec | None:
    """Return the first armed spec due to fire at ``site``, advancing counters."""
    for spec in _PLAN:
        if spec.site != site or spec.kind.corrupts is not corrupts:
            continue
        if spec.at_time is not None and spec.clock() < spec.at_time:
            continue
        spec.calls_seen += 1
        if spec.at_call <= spec.calls_seen < spec.at_call + spec.times:
            spec.fires += 1
            return spec
    return None


def fault_hook(site: str, kernel_mode: str | None = None) -> None:
    """Raise :class:`FaultInjected` if a non-corrupting fault is due at ``site``."""
    if not _PLAN:
        return
    spec = _armed(site, corrupts=False)
    if spec is not None:
        raise FaultInjected(
            f"injected {spec.kind.name} fault at site {site!r}",
            site=site,
            kernel_mode=kernel_mode,
            kind=spec.kind,
        )


def fault_hook_array(site: str, array: np.ndarray) -> np.ndarray:
    """Poison ``array`` in place if a corrupting fault is due at ``site``.

    Returns ``array`` (always the same object) so call sites can stay
    expression-shaped.  The poisoned position is drawn from
    ``default_rng((seed, fire_index))`` — fixed seeds give bit-identical
    corruption across runs.
    """
    if not _PLAN:
        return array
    spec = _armed(site, corrupts=True)
    if spec is not None and array.size:
        rng = np.random.default_rng((spec.seed, spec.fires))
        array.flat[int(rng.integers(0, array.size))] = spec.kind.fill
    return array
