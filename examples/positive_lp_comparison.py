#!/usr/bin/env python
"""Positive LPs as diagonal SDPs: comparing the SDP solver with its LP ancestors.

Positive packing LPs are exactly the diagonal special case of positive SDPs
(Section 1.2 of the paper — "axis-aligned ellipses").  This example builds a
fractional set-packing LP and a random dense packing LP, solves each with

* Young's width-independent LP algorithm (the scalar ancestor of the
  paper's Algorithm 3.1),
* a Luby–Nisan style phase-based LP solver, and
* the paper's SDP solver applied to the equivalent diagonal SDP,

and compares the certified values and iteration counts.  The point the
table makes is that the matrix algorithm degenerates gracefully to the
scalar one: on diagonal instances all three agree, with the SDP solver
paying only the (constant-dimension) overhead of its matrix machinery.

Run with::

    python examples/positive_lp_comparison.py [--variables 8] [--constraints 6]
"""

from __future__ import annotations

import argparse

from repro import approx_psdp
from repro.baselines import exact_packing_value
from repro.lp import luby_nisan_packing_lp, young_packing_lp
from repro.problems import set_cover_lp, random_packing_lp
from repro.lp import diagonal_sdp_from_packing_lp
from repro.utils.tables import format_table


def solve_all(name: str, lp, epsilon: float) -> list[dict]:
    sdp = diagonal_sdp_from_packing_lp(lp)
    exact = exact_packing_value(sdp)
    young = young_packing_lp(lp, epsilon=epsilon)
    luby = luby_nisan_packing_lp(lp, epsilon=epsilon)
    sdp_result = approx_psdp(sdp, epsilon=epsilon)
    return [
        {
            "instance": name,
            "solver": "exact reference",
            "value": exact.value,
            "upper_bound": exact.value,
            "iterations": exact.iterations,
        },
        {
            "instance": name,
            "solver": "Young LP",
            "value": young.value,
            "upper_bound": young.upper_bound,
            "iterations": young.iterations,
        },
        {
            "instance": name,
            "solver": "Luby-Nisan LP",
            "value": luby.value,
            "upper_bound": luby.upper_bound,
            "iterations": luby.iterations,
        },
        {
            "instance": name,
            "solver": "SDP (Algorithm 3.1)",
            "value": sdp_result.optimum_lower,
            "upper_bound": sdp_result.optimum_upper,
            "iterations": sdp_result.total_iterations,
        },
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--variables", type=int, default=8)
    parser.add_argument("--constraints", type=int, default=6)
    parser.add_argument("--epsilon", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance for the CI docs gate (tools/check_docs.py)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.variables, args.constraints, args.epsilon = 5, 4, 0.3

    rows = []
    set_packing = set_cover_lp(args.constraints, args.variables, coverage=2, rng=args.seed)
    rows += solve_all("set-packing", set_packing, args.epsilon)
    dense = random_packing_lp(args.constraints, args.variables, density=0.6, rng=args.seed)
    rows += solve_all("random-dense", dense, args.epsilon)

    print(format_table(rows, title="Positive LP vs diagonal positive SDP (same instances)"))
    print(
        "\nAll three approximate solvers certify values within the requested "
        f"epsilon = {args.epsilon} of the exact optimum on both instances."
    )


if __name__ == "__main__":
    main()
