#!/usr/bin/env python
"""Scaling study: width-independence and the work–depth cost model.

This example reproduces, at example scale, the two headline phenomena the
benchmarks measure in full (experiments E1 and E5 in DESIGN.md):

1. **Width-independence** — the decision solver's iteration count stays flat
   as the instance width ``max_i ||A_i||_2`` grows by orders of magnitude,
   while the width-dependent MMW baseline needs proportionally more rounds.
2. **Work–depth accounting** — every run reports its model work and depth;
   Brent's theorem then turns those into simulated speedups on p processors,
   which is how the paper's NC claims are meaningfully measured on a
   single-core machine.

Run with::

    python examples/scaling_and_width_study.py [--epsilon 0.25]
"""

from __future__ import annotations

import argparse

from repro import decision_psdp
from repro.baselines import arora_kale_packing, exact_packing_value
from repro.parallel.scheduler import speedup_curve
from repro.problems import random_width_controlled_sdp
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--n", type=int, default=5, help="constraints per instance")
    parser.add_argument("--m", type=int, default=5, help="matrix dimension")
    parser.add_argument("--seed", type=int, default=2)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance for the CI docs gate (tools/check_docs.py)",
    )
    args = parser.parse_args()
    widths = (1.0, 4.0, 16.0, 64.0)
    if args.smoke:
        args.n, args.m = 4, 4
        widths = (1.0, 16.0)

    print("[1] width-independence: iterations vs instance width")
    rows = []
    last_result = None
    for width in widths:
        problem = random_width_controlled_sdp(args.n, args.m, width=width, rng=args.seed)
        exact = exact_packing_value(problem)
        ours = decision_psdp(problem.scaled(1.0 / exact.value), epsilon=args.epsilon)
        baseline = arora_kale_packing(
            problem, epsilon=args.epsilon, target_value=exact.value * 0.9
        )
        rows.append(
            {
                "width": width,
                "exact_opt": exact.value,
                "ours_iterations": ours.iterations,
                "width_dependent_iterations": baseline.iterations,
            }
        )
        last_result = ours
    print(format_table(rows))
    print(
        "\nOur iteration count stays within a small band while the"
        " width-dependent baseline grows roughly linearly with the width."
    )

    print("\n[2] work-depth accounting and simulated parallel speedup (Brent's theorem)")
    report = last_result.work_depth
    print(f"    total work  : {report.work:.3g} model operations")
    print(f"    total depth : {report.depth:.3g}")
    print(f"    parallelism : {report.parallelism:.3g}")
    speedups = speedup_curve(report, [1, 2, 4, 8, 16, 64])
    print(
        format_table(
            [
                {
                    "processors": s.processors,
                    "time_upper(W/p+D)": s.time_upper,
                    "speedup_guaranteed": s.speedup_lower,
                    "efficiency": s.efficiency,
                }
                for s in speedups
            ]
        )
    )


if __name__ == "__main__":
    main()
