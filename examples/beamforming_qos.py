#!/usr/bin/env python
"""Beamforming application: minimum-power multicast QoS covering SDP.

The paper (Section 5) singles out the beamforming SDP relaxation of
Iyengar–Phillips–Stein as the application that fits the packing/covering
framework verbatim: choose a transmit covariance ``W ⪰ 0`` of minimum total
power such that every user's received signal energy ``h_k h_k^H • W`` meets
its QoS target.  This example:

1. synthesizes Rayleigh-fading channels for a small antenna array;
2. solves the covering SDP with the width-independent solver (including the
   Appendix A normalization, because the objective is a per-antenna power
   shaping matrix rather than the identity);
3. reports the certified power bracket and checks the returned covariance
   really meets every user's QoS constraint;
4. shows how the required power grows as the QoS targets tighten.

Run with::

    python examples/beamforming_qos.py [--antennas 4] [--users 6]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import approx_psdp
from repro.problems import beamforming_sdp
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--antennas", type=int, default=4)
    parser.add_argument("--users", type=int, default=6)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance for the CI docs gate (tools/check_docs.py)",
    )
    args = parser.parse_args()
    snr_grid = (0.5, 1.0, 2.0, 4.0)
    if args.smoke:
        args.antennas, args.users, args.epsilon = 3, 4, 0.3
        snr_grid = (0.5, 1.0)

    print(
        f"Multicast beamforming: {args.antennas} antennas, {args.users} users, "
        f"epsilon = {args.epsilon}"
    )

    rows = []
    for snr_target in snr_grid:
        problem = beamforming_sdp(
            args.antennas,
            args.users,
            snr_targets=snr_target,
            power_shaping=True,
            rng=args.seed,
        )
        result = approx_psdp(problem, epsilon=args.epsilon)

        # The mapped-back covariance must satisfy every user's QoS constraint.
        covariance = result.original_primal
        received = problem.constraint_values(covariance)
        assert problem.primal_feasible(covariance, tol=1e-6), "QoS certificate failed"

        rows.append(
            {
                "snr_target": snr_target,
                "power_lower": result.optimum_lower,
                "power_upper": result.optimum_upper,
                "gap_%": 100.0 * result.relative_gap,
                "worst_user_margin": float(received.min() - snr_target),
                "iterations": result.total_iterations,
            }
        )
        print(
            f"  target {snr_target:4.1f}: transmit power in "
            f"[{result.optimum_lower:.3f}, {result.optimum_upper:.3f}]"
        )

    print()
    print(format_table(rows, title="Minimum transmit power vs. QoS target"))
    powers = [row["power_upper"] for row in rows]
    assert all(b >= a for a, b in zip(powers, powers[1:])), "power must grow with the QoS target"
    print("\nPower grows monotonically with the QoS target, as expected; every "
          "returned covariance was verified against the per-user constraints.")


if __name__ == "__main__":
    main()
