#!/usr/bin/env python
"""Graph application: the MaxCut edge-matrix packing SDP across graph families.

The MaxCut SDP objective decomposes into rank-one PSD edge matrices
``(1/4)(e_u - e_v)(e_u - e_v)^T`` (Klein–Lu).  This example builds the
positive SDP those matrices generate for several graph families, solves it
with the width-independent solver, and reports:

* the certified packing optimum (how much total edge weight can be packed
  before the reweighted Laplacian reaches spectral norm 1);
* the exact value (small graphs) and the classical eigenvalue bound
  ``(n/4) lambda_max(L)`` on the MaxCut value for context;
* solver statistics (iterations, decision calls, work/depth).

Run with::

    python examples/maxcut_graph_packing.py [--nodes 10] [--epsilon 0.25]
"""

from __future__ import annotations

import argparse

from repro import approx_psdp
from repro.baselines import exact_packing_value
from repro.problems import maxcut_sdp, maxcut_value_bound, random_graph
from repro.utils.tables import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10, help="number of graph nodes")
    parser.add_argument("--epsilon", type=float, default=0.25, help="target relative accuracy")
    parser.add_argument("--seed", type=int, default=3, help="random seed for graph generation")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance for the CI docs gate (tools/check_docs.py)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.nodes, args.epsilon = 6, 0.3

    families = [
        ("cycle", {}),
        ("complete", {}),
        ("regular", {"degree": 3}),
        ("erdos_renyi", {"p": 0.4}),
    ]
    if args.smoke:
        families = families[:2]

    rows = []
    for kind, kwargs in families:
        graph = random_graph(kind, args.nodes, rng=args.seed, **kwargs)
        problem = maxcut_sdp(graph)
        result = approx_psdp(problem, epsilon=args.epsilon)
        exact = exact_packing_value(problem)
        rows.append(
            {
                "graph": kind,
                "nodes": graph.number_of_nodes(),
                "edges": graph.number_of_edges(),
                "packing_lower": result.optimum_lower,
                "packing_upper": result.optimum_upper,
                "exact": exact.value,
                "maxcut_eig_bound": maxcut_value_bound(graph),
                "iterations": result.total_iterations,
                "decision_calls": result.decision_calls,
            }
        )
        print(f"solved {kind:12s}: {result.summary()}")

    print()
    print(format_table(rows, title="MaxCut edge-matrix packing SDP across graph families"))
    print(
        "\nThe certified bracket always contains the exact value, and the"
        " bracket width respects the requested epsilon."
    )


if __name__ == "__main__":
    main()
