#!/usr/bin/env python
"""Quickstart: solve a small positive SDP with the width-independent solver.

This example walks through the library's core workflow:

1. generate a random packing SDP in the normalized (Figure 2) form;
2. run the ε-decision solver (Algorithm 3.1) directly and inspect its
   certificate;
3. run the full (1+ε)-approximate optimizer (Theorem 1.1) and compare its
   certified bounds against an exact reference solver;
4. verify both returned certificates explicitly.

Run it with::

    python examples/quickstart.py [--epsilon 0.2] [--n 6] [--m 8]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import approx_psdp, decision_psdp, verify_dual, verify_primal
from repro.baselines import exact_packing_value
from repro.problems import random_packing_sdp
from repro.utils.tables import format_table
from repro.utils.timer import Timer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epsilon", type=float, default=0.2, help="target relative accuracy")
    parser.add_argument("--n", type=int, default=6, help="number of constraint matrices")
    parser.add_argument("--m", type=int, default=8, help="matrix dimension")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instance for the CI docs gate (tools/check_docs.py)",
    )
    args = parser.parse_args()
    if args.smoke:
        args.n, args.m, args.epsilon = 4, 6, 0.3

    print(f"Generating a random packing SDP with n={args.n} constraints of dimension m={args.m}")
    problem = random_packing_sdp(args.n, args.m, rng=args.seed)

    # --- Step 1: the decision problem --------------------------------------
    print("\n[1] epsilon-decision solver (Algorithm 3.1) on the raw instance")
    decision = decision_psdp(problem, epsilon=args.epsilon, collect_history=True)
    print(f"    outcome          : {decision.outcome.value}")
    print(f"    iterations       : {decision.iterations} (cap R = {decision.max_iterations})")
    print(f"    dual value       : {decision.dual_value:.4f}")
    print(f"    dual lambda_max  : {decision.dual_lambda_max:.4f} (must be <= 1)")
    if decision.primal_y is not None:
        print(f"    primal min A.Y   : {decision.primal_min_dot:.4f} (trace {np.trace(decision.primal_y):.3f})")

    # --- Step 2: the full optimizer -----------------------------------------
    print(f"\n[2] full optimizer approx_psdp with epsilon = {args.epsilon}")
    timer = Timer()
    with timer:
        result = approx_psdp(problem, epsilon=args.epsilon)
    print(f"    {result.summary()}")
    print(f"    wall clock       : {timer.elapsed:.2f}s")

    # --- Step 3: compare against an exact reference -------------------------
    print("\n[3] exact reference (SLSQP on the convex packing program)")
    exact = exact_packing_value(problem)
    print(f"    exact optimum    : {exact.value:.6f}")
    ratio = exact.value / result.optimum_lower
    print(f"    OPT / certified lower bound = {ratio:.4f} (guarantee: <= {1 + args.epsilon})")

    # --- Step 4: verify the certificates ------------------------------------
    print("\n[4] certificate verification")
    dual_cert = verify_dual(problem.constraints, result.dual_x)
    primal_cert = verify_primal(problem.constraints, result.primal_y)
    rows = [
        {
            "certificate": "dual (packing)",
            "feasible": dual_cert.feasible,
            "value": dual_cert.value,
            "margin": 1.0 - dual_cert.lambda_max,
        },
        {
            "certificate": "primal (covering)",
            "feasible": primal_cert.feasible,
            "value": primal_cert.value,
            "margin": primal_cert.min_dot - 1.0,
        },
    ]
    print(format_table(rows))
    assert dual_cert.feasible and primal_cert.feasible
    print("\nBoth certificates verified; the optimum lies in "
          f"[{result.optimum_lower:.4f}, {result.optimum_upper:.4f}].")


if __name__ == "__main__":
    main()
