#!/usr/bin/env python
"""Backend-purity lint: contract modules must not call hot NumPy kernels.

The pluggable array backend (:mod:`repro.backend`) only works if the hot
kernels in the *contract modules* route their heavy arithmetic through the
backend object — a direct ``np.matmul`` in a kernel silently pins that
path to NumPy and the conformance suite cannot catch it (the NumPy backend
is a pass-through, so results stay correct; only the routing is broken).

This AST lint fails CI when a contract module calls a *denied* NumPy
primitive directly instead of going through a backend object:

* denied (device-scale kernels): ``np.matmul``, ``np.einsum``, ``np.dot``,
  ``np.vdot``, ``np.inner``, ``np.outer``, ``np.tensordot``, ``np.kron``,
  ``np.eye``, ``np.exp``, anything under ``np.linalg.*``, and
  ``np.add.reduceat``;
* allowed (host-side bookkeeping): ``np.asarray``/``np.array`` boundary
  conversions, buffer allocation (``np.zeros``/``np.empty``), validation
  (``np.isfinite``, ``np.any``), cheap elementwise/index helpers
  (``np.sqrt``, ``np.clip``, ``np.repeat``, fancy indexing), and the
  ``@`` operator — on a contract module's *host* state the operator is
  NumPy by construction, and on device state it dispatches to the device.

Genuinely NumPy-only code inside a contract module (scipy-sparse branches
that already route through the shared ``NUMPY`` backend object need no
exemption) can carry an explicit ``# backend-purity: allow`` comment on
the offending line; every use of the escape hatch is printed so review
sees it.

Run from the repository root::

    python tools/check_backend_purity.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Modules bound by the backend contract: their hot kernels must route
#: through an ArrayBackend object.
CONTRACT_MODULES = (
    "src/repro/operators/packed.py",
    "src/repro/linalg/taylor_blocked.py",
    "src/repro/linalg/taylor_gram.py",
    "src/repro/linalg/trace_estimation.py",
    "src/repro/core/batch.py",
)

#: Direct children of ``np`` whose *call* is denied in contract modules.
DENIED_ATTRS = {
    "matmul",
    "einsum",
    "dot",
    "vdot",
    "inner",
    "outer",
    "tensordot",
    "kron",
    "eye",
    "exp",
}

#: Explicit escape hatch, placed as a comment on the offending line.
ALLOW_PRAGMA = "# backend-purity: allow"


def _dotted_name(node: ast.expr) -> str | None:
    """Resolve an attribute chain like ``np.linalg.eigvalsh`` to a string."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_denied(name: str) -> bool:
    parts = name.split(".")
    if parts[0] not in ("np", "numpy"):
        return False
    if len(parts) >= 2 and parts[1] == "linalg":
        return True
    if len(parts) == 2 and parts[1] in DENIED_ATTRS:
        return True
    if parts[1:] == ["add", "reduceat"]:
        return True
    return False


def check_module(path: Path) -> tuple[list[str], list[str]]:
    """(violations, allowed-pragma uses) for one contract module."""
    source = path.read_text()
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    violations: list[str] = []
    allowed: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _dotted_name(node.func)
        if name is None or not _is_denied(name):
            continue
        line = lines[node.lineno - 1]
        rel = path.relative_to(ROOT)
        where = f"{rel}:{node.lineno}: {name}(...)"
        if ALLOW_PRAGMA in line:
            allowed.append(where)
        else:
            violations.append(where)
    return violations, allowed


def main() -> int:
    """Lint every contract module; non-zero exit on any violation."""
    all_violations: list[str] = []
    for rel in CONTRACT_MODULES:
        path = ROOT / rel
        if not path.exists():
            all_violations.append(f"{rel}: contract module missing")
            continue
        violations, allowed = check_module(path)
        all_violations.extend(violations)
        for where in allowed:
            print(f"[allow] {where}")
    if all_violations:
        print("backend-purity violations (route these through the backend object):")
        for where in all_violations:
            print(f"  {where}")
        return 1
    print(f"[ok] {len(CONTRACT_MODULES)} contract modules are backend-pure")
    return 0


if __name__ == "__main__":
    sys.exit(main())
