#!/usr/bin/env python
"""Guard the committed benchmark headlines against silent regressions.

Every perf PR commits a ``BENCH_*.json`` payload whose speedup columns are
the PR's acceptance evidence (E11 packed kernels, E12 blocked Taylor, E13
Gram engine, E14 matrix-free core, E15 structured trace estimation).
Nothing previously stopped a later PR
from re-running a benchmark, measuring a slower result, and committing the
worse numbers without anyone noticing — this gate does.  For each committed
payload it checks:

* the payload is a **full** run (``quick: false``) — CI smoke runs must not
  overwrite the committed evidence;
* aggregate speedup floors: a ``min`` floor says *every* row of a section
  must stay above it (broad wins like E11's), a ``max`` floor says the
  section's headline row must (regime-specific wins like E13/E14's, whose
  grids deliberately include near-break-even adversary rows).

Floors are set well below the committed measurements (roughly half) so the
gate trips on genuine regressions — a lost fast path, a disabled kernel —
rather than on machine-to-machine noise.

Run from the repository root (CI runs it in the docs job)::

    python tools/check_bench_regression.py
"""

from __future__ import annotations

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: (file, section, row filter or None, aggregate, floor).  The filter maps a
#: row dict to bool; ``min`` floors apply to every (filtered) row, ``max``
#: floors to the best one.
CHECKS = [
    ("BENCH_packed.json", "oracle", None, "min", 4.0),
    ("BENCH_packed.json", "decision", None, "min", 4.0),
    ("BENCH_taylor.json", "taylor_block", None, "min", 1.5),
    ("BENCH_taylor.json", "decision", None, "min", 1.1),
    ("BENCH_gram.json", "taylor_block", None, "max", 3.0),
    ("BENCH_gram.json", "decision", None, "max", 1.5),
    (
        "BENCH_matrixfree.json",
        "decision",
        lambda row: row["factor_kind"] == "lowrank" and row["m"] >= 512,
        "max",
        3.0,
    ),
    ("BENCH_matrixfree.json", "phased", None, "max", 1.5),
    (
        "BENCH_trace.json",
        "oracle",
        lambda row: row["factor_kind"] == "lowrank" and row["m"] >= 1024,
        "min",
        2.0,
    ),
    (
        "BENCH_trace.json",
        "decision",
        lambda row: row["factor_kind"] == "lowrank" and row["m"] >= 1024,
        "max",
        2.0,
    ),
    (
        "BENCH_batched.json",
        "batched",
        lambda row: row["batch"] >= 32,
        "max",
        3.0,
    ),
    ("BENCH_service.json", "resume", None, "max", 1.15),
    ("BENCH_service.json", "cache", None, "max", 10.0),
]

#: (file, section, row filter or None, metric, ceiling).  Ceiling checks are
#: the inverse gate: *every* (filtered) row's ``metric`` must stay at or
#: below the ceiling.  PR 6 uses this for the robustness contract — the
#: happy-path cost of fault supervision must stay within 2% of the
#: unsupervised solver on the committed payload.
CEILING_CHECKS = [
    ("BENCH_robustness.json", "overhead", None, "overhead", 1.02),
    # PR 8: periodic checkpoint captures must stay near-free on the
    # committed E18 payload.
    ("BENCH_service.json", "checkpoint", None, "overhead", 1.05),
]


def check_payload(path: str, section: str, row_filter, aggregate: str, floor: float) -> list[str]:
    """Return failure messages for one (file, section) floor check."""
    name = os.path.basename(path)
    if not os.path.exists(path):
        return [f"{name}: committed payload is missing"]
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("quick"):
        return [f"{name}: committed payload is a --quick smoke run, not a full grid"]
    rows = payload.get(section)
    if not rows:
        return [f"{name}: section {section!r} is missing or empty"]
    speedups = [float(row["speedup"]) for row in rows if row_filter is None or row_filter(row)]
    if not speedups:
        return [f"{name}: no {section!r} rows match the gate's filter"]
    value = min(speedups) if aggregate == "min" else max(speedups)
    if value < floor:
        return [
            f"{name}: {aggregate}({section}.speedup) = {value:.2f}x "
            f"regressed below the {floor:.1f}x floor"
        ]
    return []


def check_ceiling(path: str, section: str, row_filter, metric: str, ceiling: float) -> list[str]:
    """Return failure messages for one (file, section) ceiling check."""
    name = os.path.basename(path)
    if not os.path.exists(path):
        return [f"{name}: committed payload is missing"]
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("quick"):
        return [f"{name}: committed payload is a --quick smoke run, not a full grid"]
    rows = payload.get(section)
    if not rows:
        return [f"{name}: section {section!r} is missing or empty"]
    values = [float(row[metric]) for row in rows if row_filter is None or row_filter(row)]
    if not values:
        return [f"{name}: no {section!r} rows match the gate's filter"]
    worst = max(values)
    if worst > ceiling:
        return [
            f"{name}: max({section}.{metric}) = {worst:.3f}x "
            f"exceeded the {ceiling:.2f}x ceiling"
        ]
    return []


def check_executor_payload(path: str) -> list[str]:
    """PR 9's core-aware gates on the committed E19 executor payload.

    The throughput floor depends on the machine that *produced* the
    evidence (recorded as ``config.cpu_count``), not the machine running
    this check: with >= 4 cores the 8-worker drain must reach a 2x
    speedup; on fewer cores the gate degrades to a bounded-overhead check
    (>= 0.55x — the pool must not tax the GIL-serialized case).  The
    crash-recovery drain must stay within 6x of the clean drain, and
    every row must report bit-identical results.
    """
    name = os.path.basename(path)
    if not os.path.exists(path):
        return [f"{name}: committed payload is missing"]
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("quick"):
        return [f"{name}: committed payload is a --quick smoke run, not a full grid"]
    problems = []
    rows = payload.get("throughput") or []
    top = max(rows, key=lambda row: row["workers"], default=None)
    if top is None:
        problems.append(f"{name}: throughput section is missing or empty")
    else:
        cpu_count = int(payload.get("config", {}).get("cpu_count", 1))
        floor = 2.0 if cpu_count >= 4 else 0.55
        if float(top["speedup"]) < floor:
            problems.append(
                f"{name}: {top['workers']}-worker speedup {top['speedup']:.2f}x "
                f"below the {floor}x floor (payload cpu_count={cpu_count})"
            )
        if not all(row.get("identical") for row in rows):
            problems.append(f"{name}: results differ across worker counts")
    recovery = payload.get("recovery")
    if not recovery:
        problems.append(f"{name}: recovery section is missing")
    else:
        if float(recovery["recovery_ratio"]) > 6.0:
            problems.append(
                f"{name}: crash recovery ratio {recovery['recovery_ratio']:.2f}x "
                f"exceeded the 6.0x ceiling"
            )
        if not recovery.get("identical"):
            problems.append(f"{name}: crash-recovered results differ from clean bits")
    return problems


def check_backend_payload(path: str) -> list[str]:
    """PR 10's array-backend gates on the committed E20 payload.

    The NumPy rows are unconditional: the NumPy backend is a literal
    pass-through, so every kernel row must report *zero* error against the
    reference path, and the end-to-end decision rows must exist.  The torch
    gates — float64 kernel agreement within the payload's ``err_ceiling``
    and per-shape throughput at or above the ``parity_floor`` (0.8x NumPy
    on CPU) — only apply when the payload was produced on a machine with
    torch installed (``torch_available``), mirroring
    :func:`check_executor_payload`'s machine-conditional floors.
    """
    name = os.path.basename(path)
    if not os.path.exists(path):
        return [f"{name}: committed payload is missing"]
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("quick"):
        return [f"{name}: committed payload is a --quick smoke run, not a full grid"]
    problems = []
    kernels = payload.get("kernels") or []
    numpy_rows = [row for row in kernels if row["backend"] == "numpy"]
    if not numpy_rows:
        problems.append(f"{name}: no NumPy kernel rows")
    for row in numpy_rows:
        if float(row["max_abs_err"]) != 0.0:
            problems.append(
                f"{name}: NumPy backend is not a pass-through "
                f"(err={row['max_abs_err']:.2e} at n={row['n']}, m={row['m']})"
            )
    if not payload.get("decision"):
        problems.append(f"{name}: decision section is missing or empty")
    if payload.get("torch_available"):
        config = payload.get("config", {})
        floor = float(config.get("parity_floor", 0.8))
        ceiling = float(config.get("err_ceiling", 1e-9))
        torch_rows = [row for row in kernels if row["backend"] == "torch"]
        if not torch_rows:
            problems.append(f"{name}: torch_available but no torch kernel rows")
        for row in torch_rows:
            if float(row["max_abs_err"]) > ceiling:
                problems.append(
                    f"{name}: torch kernel error {row['max_abs_err']:.2e} "
                    f"above {ceiling:.0e} at n={row['n']}, m={row['m']}"
                )
            if float(row["throughput_vs_numpy"]) < floor:
                problems.append(
                    f"{name}: torch parity {row['throughput_vs_numpy']:.2f}x "
                    f"below the {floor}x floor at n={row['n']}, m={row['m']}"
                )
    return problems


def main() -> int:
    """Run every floor and ceiling check; print results and return the exit code."""
    failures: list[str] = []
    for filename, section, row_filter, aggregate, floor in CHECKS:
        path = os.path.join(REPO_ROOT, filename)
        problems = check_payload(path, section, row_filter, aggregate, floor)
        if problems:
            failures.extend(problems)
        else:
            print(f"[ok] {filename}:{section} ({aggregate} >= {floor:.1f}x)")
    for filename, section, row_filter, metric, ceiling in CEILING_CHECKS:
        path = os.path.join(REPO_ROOT, filename)
        problems = check_ceiling(path, section, row_filter, metric, ceiling)
        if problems:
            failures.extend(problems)
        else:
            print(f"[ok] {filename}:{section} (max {metric} <= {ceiling:.2f}x)")
    executor_problems = check_executor_payload(
        os.path.join(REPO_ROOT, "BENCH_executor.json")
    )
    if executor_problems:
        failures.extend(executor_problems)
    else:
        print("[ok] BENCH_executor.json (core-aware throughput + recovery gates)")
    backend_problems = check_backend_payload(
        os.path.join(REPO_ROOT, "BENCH_backend.json")
    )
    if backend_problems:
        failures.extend(backend_problems)
    else:
        print("[ok] BENCH_backend.json (pass-through + conditional torch parity gates)")
    for line in failures:
        print(f"[FAIL] {line}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
