#!/usr/bin/env python
"""Lightweight documentation gate for CI.

Four checks, any failure exits non-zero:

1. **README snippets run.**  Every fenced ``python`` code block in
   ``README.md`` is executed (in order, each in a fresh namespace), so the
   quickstart can never rot.
2. **Doctests pass.**  ``doctest`` runs over every module in the ``repro``
   package (docstring examples like the package-root quickstart).
3. **Public API is documented.**  Every importable ``repro`` module must
   have a module docstring, and every public function/class/method defined
   in it must have a non-empty docstring (a pydocstyle-style D1xx subset,
   without the external dependency).
4. **Scripts are documented.**  Every ``benchmarks/*.py`` and
   ``tools/*.py`` script must carry a module docstring and docstrings on
   its public top-level functions and classes — checked via ``ast`` so the
   gate never executes (or even imports) the scripts.
5. **Examples run.**  Every ``examples/*.py`` script is executed in its
   ``--smoke`` mode (a tiny-instance variant each example must provide),
   so the worked examples can never drift away from the library API.

Run from the repository root::

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import ast
import doctest
import importlib
import inspect
import io
import os
import pkgutil
import re
import subprocess
import sys
import traceback

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def iter_repro_modules():
    """Yield (name, module) for the repro package and every submodule."""
    import repro

    yield "repro", repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name, importlib.import_module(info.name)


def check_readme_snippets() -> list[str]:
    """Execute every fenced python block in README.md, collecting failures."""
    failures = []
    readme = os.path.join(REPO_ROOT, "README.md")
    with open(readme, encoding="utf-8") as handle:
        text = handle.read()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    if not blocks:
        return ["README.md contains no ```python blocks to check"]
    for idx, block in enumerate(blocks, 1):
        namespace: dict = {"__name__": f"readme_block_{idx}"}
        stdout, sys.stdout = sys.stdout, io.StringIO()
        try:
            exec(compile(block, f"README.md[block {idx}]", "exec"), namespace)
        except Exception:
            failures.append(
                f"README.md python block {idx} failed:\n{traceback.format_exc()}"
            )
        finally:
            sys.stdout = stdout
    return failures


def check_doctests() -> list[str]:
    """Run doctest over every repro module, collecting failures."""
    failures = []
    for name, module in iter_repro_modules():
        try:
            result = doctest.testmod(module, verbose=False)
        except Exception:
            failures.append(f"doctest collection failed in {name}:\n{traceback.format_exc()}")
            continue
        if result.failed:
            failures.append(f"{result.failed} doctest failure(s) in {name}")
    return failures


def _missing_docstrings(name: str, module) -> list[str]:
    missing = []
    if not (module.__doc__ or "").strip():
        missing.append(f"{name}: missing module docstring")
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if not (inspect.isfunction(attr) or inspect.isclass(attr)):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-export; checked where it is defined
        if not (inspect.getdoc(attr) or "").strip():
            missing.append(f"{name}.{attr_name}: missing docstring")
        if inspect.isclass(attr):
            for meth_name, meth in vars(attr).items():
                if meth_name.startswith("_"):
                    continue
                func = meth.fget if isinstance(meth, property) else meth
                if not inspect.isfunction(func) and not isinstance(
                    meth, (classmethod, staticmethod)
                ):
                    continue
                if isinstance(meth, (classmethod, staticmethod)):
                    func = meth.__func__
                if not (inspect.getdoc(func) or "").strip():
                    missing.append(
                        f"{name}.{attr_name}.{meth_name}: missing docstring"
                    )
    return missing


def check_docstrings() -> list[str]:
    """Docstring lint over the repro package's public API."""
    failures = []
    for name, module in iter_repro_modules():
        failures.extend(_missing_docstrings(name, module))
    return failures


SCRIPT_DIRS = ("benchmarks", "tools")


def _script_missing_docstrings(path: str) -> list[str]:
    rel = os.path.relpath(path, REPO_ROOT)
    with open(path, encoding="utf-8") as handle:
        try:
            tree = ast.parse(handle.read(), filename=rel)
        except SyntaxError as exc:
            return [f"{rel}: failed to parse ({exc})"]
    missing = []
    if not (ast.get_docstring(tree) or "").strip():
        missing.append(f"{rel}: missing module docstring")
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if node.name.startswith("_"):
            continue
        if not (ast.get_docstring(node) or "").strip():
            missing.append(f"{rel}:{node.lineno}: {node.name}: missing docstring")
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if member.name.startswith("_"):
                    continue
                if not (ast.get_docstring(member) or "").strip():
                    missing.append(
                        f"{rel}:{member.lineno}: {node.name}.{member.name}: "
                        "missing docstring"
                    )
    return missing


def check_script_docstrings() -> list[str]:
    """Docstring lint over the benchmark/tool scripts (AST-only, no import)."""
    failures = []
    for dirname in SCRIPT_DIRS:
        root = os.path.join(REPO_ROOT, dirname)
        if not os.path.isdir(root):
            continue
        for entry in sorted(os.listdir(root)):
            if entry.endswith(".py"):
                failures.extend(
                    _script_missing_docstrings(os.path.join(root, entry))
                )
    return failures


#: Per-example wall-clock budget for the --smoke runs (generous: the smoke
#: instances finish in ~1-2s; the timeout only catches hangs).
EXAMPLE_SMOKE_TIMEOUT = 120


def check_example_smoke_runs() -> list[str]:
    """Execute every ``examples/*.py`` in ``--smoke`` mode, collecting failures.

    Each example must accept a ``--smoke`` flag that shrinks its instances
    to CI scale; a missing flag, a non-zero exit, or a hang past
    :data:`EXAMPLE_SMOKE_TIMEOUT` seconds is a failure.
    """
    failures = []
    root = os.path.join(REPO_ROOT, "examples")
    if not os.path.isdir(root):
        return ["examples/ directory is missing"]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    scripts = [e for e in sorted(os.listdir(root)) if e.endswith(".py")]
    if not scripts:
        return ["examples/ contains no scripts to smoke-run"]
    for entry in scripts:
        path = os.path.join(root, entry)
        try:
            proc = subprocess.run(
                [sys.executable, path, "--smoke"],
                capture_output=True,
                text=True,
                env=env,
                timeout=EXAMPLE_SMOKE_TIMEOUT,
                cwd=REPO_ROOT,
            )
        except subprocess.TimeoutExpired:
            failures.append(
                f"examples/{entry} --smoke exceeded {EXAMPLE_SMOKE_TIMEOUT}s"
            )
            continue
        if proc.returncode != 0:
            tail = (proc.stderr or proc.stdout or "").strip().splitlines()[-8:]
            failures.append(
                f"examples/{entry} --smoke exited {proc.returncode}:\n    "
                + "\n    ".join(tail)
            )
    return failures


def main() -> int:
    """Run every documentation check and return the process exit code."""
    sections = (
        ("README snippets", check_readme_snippets),
        ("doctests", check_doctests),
        ("docstring coverage", check_docstrings),
        ("script docstring coverage", check_script_docstrings),
        ("example --smoke runs", check_example_smoke_runs),
    )
    any_failed = False
    for title, check in sections:
        failures = check()
        status = "FAIL" if failures else "ok"
        print(f"[{status}] {title}")
        for line in failures:
            print(f"    {line}")
        any_failed = any_failed or bool(failures)
    return 1 if any_failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
