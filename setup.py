"""Legacy setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so the package can be installed in environments without the ``wheel``
package (offline containers), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
