"""Tests for the decision solver (Algorithm 3.1) and its phased variant."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.core.certificates import verify_dual, verify_primal
from repro.core.decision import DecisionOptions, DecisionParameters, decision_psdp
from repro.core.decision_phased import decision_psdp_phased
from repro.core.problem import NormalizedPackingSDP
from repro.core.result import DecisionOutcome


class TestDecisionParameters:
    def test_formulas(self):
        params = DecisionParameters.from_instance(10, 0.2)
        log_n = math.log(10)
        assert params.K == pytest.approx((1 + log_n) / 0.2)
        assert params.alpha == pytest.approx(0.2 / (params.K * 3.0))
        assert params.R == math.ceil(32 * log_n / (0.2 * params.alpha))

    def test_iteration_bound_scaling(self):
        """R = O(eps^-3 log^2 n): quadrupling accuracy multiplies R by ~64."""
        r_loose = DecisionParameters.from_instance(50, 0.4).R
        r_tight = DecisionParameters.from_instance(50, 0.1).R
        ratio = r_tight / r_loose
        # R ~ (1 + 10 eps) (1 + ln n) ln n / eps^3: the eps^-3 factor gives 64,
        # damped by the (1 + 10 eps) factor (2/5), so ~25.6 here.
        assert 15 < ratio < 130

    def test_log_squared_scaling_in_n(self):
        r_small = DecisionParameters.from_instance(4, 0.2).R
        r_large = DecisionParameters.from_instance(4**4, 0.2).R
        # log^2 growth: (4 log 4)^2 / (log 4)^2 = 16, within rounding slack.
        assert 8 < r_large / r_small < 32

    def test_invalid_inputs(self):
        with pytest.raises(InvalidProblemError):
            DecisionParameters.from_instance(0, 0.1)
        with pytest.raises(InvalidProblemError):
            DecisionParameters.from_instance(3, 1.5)


class TestDecisionSolver:
    def test_dual_outcome_on_feasible_instance(self, rng):
        """An instance whose optimum is far above 1 must produce a dual certificate."""
        # Tiny matrices: sum_i x_i A_i stays far below I even for large x.
        mats = [random_psd(4, rng=rng, scale=0.05) for _ in range(4)]
        problem = NormalizedPackingSDP(mats)
        result = decision_psdp(problem, epsilon=0.2)
        assert result.outcome is DecisionOutcome.DUAL
        cert = verify_dual(problem.constraints, result.dual_x)
        assert cert.feasible
        assert cert.value >= 1.0 - 1e-9

    def test_primal_outcome_on_infeasible_instance(self, rng):
        """An instance whose optimum is far below 1 must produce a primal certificate."""
        mats = [random_psd(4, rng=rng, scale=50.0) for _ in range(4)]
        problem = NormalizedPackingSDP(mats)
        result = decision_psdp(problem, epsilon=0.2)
        assert result.outcome is DecisionOutcome.PRIMAL
        assert result.primal_y is not None
        assert np.trace(result.primal_y) == pytest.approx(1.0, abs=1e-8)
        assert result.primal_min_dot >= 1.0

    def test_dual_candidate_always_feasible(self, small_problem):
        result = decision_psdp(small_problem, epsilon=0.25)
        cert = verify_dual(small_problem.constraints, result.dual_x)
        assert cert.feasible

    def test_primal_candidate_is_density(self, small_problem):
        result = decision_psdp(small_problem, epsilon=0.25)
        if result.primal_y is not None:
            assert np.trace(result.primal_y) == pytest.approx(1.0, abs=1e-6)
            assert np.linalg.eigvalsh(result.primal_y)[0] >= -1e-9

    def test_strict_mode_runs_without_early_exit(self, rng):
        mats = [random_psd(3, rng=rng, scale=0.1) for _ in range(3)]
        problem = NormalizedPackingSDP(mats)
        result = decision_psdp(problem, epsilon=0.3, strict=True)
        # Strict mode only stops on the paper's loop conditions (or the
        # certified empty-update-set shortcut).
        assert result.metadata["strict"] is True
        cert = verify_dual(problem.constraints, result.dual_x)
        assert cert.feasible

    def test_early_exit_is_faster_than_strict(self, rng):
        mats = [random_psd(3, rng=rng, scale=0.1) for _ in range(3)]
        problem = NormalizedPackingSDP(mats)
        fast = decision_psdp(problem, epsilon=0.3, certificate_check_every=10)
        strict = decision_psdp(problem, epsilon=0.3, strict=True)
        assert fast.iterations <= strict.iterations

    def test_history_collection(self, small_problem):
        result = decision_psdp(small_problem, epsilon=0.3, collect_history=True)
        assert result.history is not None
        assert len(result.history) == result.iterations
        norms = result.history.x_norms()
        assert all(b >= a - 1e-12 for a, b in zip(norms, norms[1:]))

    def test_no_history_by_default(self, small_problem):
        result = decision_psdp(small_problem, epsilon=0.3)
        assert result.history is None

    def test_iteration_cap_respected(self, small_problem):
        result = decision_psdp(small_problem, epsilon=0.3, max_iterations=5, certificate_check_every=0)
        assert result.iterations <= 5

    def test_work_depth_report_present(self, small_problem):
        result = decision_psdp(small_problem, epsilon=0.3)
        assert result.work_depth is not None
        assert result.work_depth.work > 0
        assert result.work_depth.depth > 0
        assert result.work_depth.depth <= result.work_depth.work

    def test_epsilon_validation(self, small_problem):
        with pytest.raises(InvalidProblemError):
            decision_psdp(small_problem, epsilon=0.0)

    def test_unknown_option_rejected(self, small_problem):
        with pytest.raises(TypeError):
            decision_psdp(small_problem, epsilon=0.3, bogus_option=1)

    def test_zero_trace_constraint_rejected(self):
        problem = NormalizedPackingSDP([np.zeros((3, 3)), np.eye(3)], validate=False)
        with pytest.raises(InvalidProblemError):
            decision_psdp(problem, epsilon=0.2)

    def test_accepts_plain_matrix_list(self, rng):
        mats = [random_psd(3, rng=rng, scale=0.2) for _ in range(3)]
        result = decision_psdp(mats, epsilon=0.3)
        assert result.iterations > 0

    def test_fast_oracle_agrees_on_outcome(self, rng):
        mats = [random_psd(4, rng=rng, scale=0.05) for _ in range(3)]
        problem = NormalizedPackingSDP(mats)
        exact = decision_psdp(problem, epsilon=0.25, oracle="exact")
        fast = decision_psdp(problem, epsilon=0.25, oracle="fast", rng=7)
        assert exact.outcome == fast.outcome == DecisionOutcome.DUAL
        cert = verify_dual(problem.constraints, fast.dual_x)
        assert cert.feasible

    def test_spectrum_bound_lemma32(self, rng):
        """Lemma 3.2: Psi(t) <= (1 + 10 eps) K I throughout the run."""
        eps = 0.25
        mats = [random_psd(4, rng=rng, scale=float(rng.uniform(0.5, 1.5))) for _ in range(4)]
        problem = NormalizedPackingSDP(mats)
        result = decision_psdp(problem, epsilon=eps, collect_history=True, strict=True)
        K = result.metadata["K"]
        bound = (1 + 10 * eps) * K
        lam_max_seen = max(r.psi_lambda_max for r in result.history)
        assert lam_max_seen <= bound + 1e-6


class TestPhasedVariant:
    def test_same_outcome_as_phaseless(self, rng):
        mats = [random_psd(4, rng=rng, scale=0.1) for _ in range(3)]
        problem = NormalizedPackingSDP(mats)
        plain = decision_psdp(problem, epsilon=0.25)
        phased = decision_psdp_phased(problem, epsilon=0.25)
        assert plain.outcome == phased.outcome
        cert = verify_dual(problem.constraints, phased.dual_x)
        assert cert.feasible

    def test_fewer_oracle_calls_than_iterations(self, rng):
        mats = [random_psd(4, rng=rng, scale=0.1) for _ in range(4)]
        problem = NormalizedPackingSDP(mats)
        result = decision_psdp_phased(problem, epsilon=0.25, strict=True)
        assert result.counters.calls <= result.iterations
        assert result.metadata["phases"] >= 1

    def test_invalid_phase_growth(self, small_problem):
        with pytest.raises(InvalidProblemError):
            decision_psdp_phased(small_problem, epsilon=0.2, phase_growth=0.9)

    def test_primal_outcome_infeasible_instance(self, rng):
        mats = [random_psd(3, rng=rng, scale=40.0) for _ in range(3)]
        problem = NormalizedPackingSDP(mats)
        result = decision_psdp_phased(problem, epsilon=0.25)
        assert result.outcome is DecisionOutcome.PRIMAL
        cert = verify_primal(problem.constraints, result.primal_y / max(result.primal_min_dot, 1e-12))
        assert cert.feasible or result.primal_min_dot > 0
