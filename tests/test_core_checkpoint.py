"""Checkpoint/resume contract: interrupt-anywhere, resume bit-identically.

The :class:`~repro.core.checkpoint.SolverCheckpoint` contract under test:

* a budget-exhausted solve attaches ``metadata["checkpoint"]`` capturing
  *everything* (weight vector, iteration index, phase state, eigensolver
  rng generator state, supervisor ladder position, oracle/psi/trace
  counters, history prefix) needed to continue;
* ``decision_psdp(..., resume_from=ckpt)`` — and the phased variant,
  including resume *inside* a phase — continues so that
  interrupt-at-``k``-then-resume equals the uninterrupted run
  field-for-field, bitwise on arrays;
* checkpoints round-trip to disk through
  :mod:`repro.io.serialization` (versioned header, SHA-256 checksum) and
  a truncated/corrupted file raises a typed
  :class:`~repro.exceptions.CheckpointError`;
* ``solve_many`` emits the *same* per-instance checkpoints as the
  sequential solver at the same iteration, and ``rng_indices`` pins an
  instance's random stream independently of batch composition.
"""

import numpy as np
import pytest

from repro.core.batch import instance_rng, solve_many
from repro.core.checkpoint import CHECKPOINT_VERSION, SolverCheckpoint
from repro.core.decision import DecisionOptions, decision_psdp
from repro.core.decision_phased import decision_psdp_phased
from repro.core.result import SolveStatus
from repro.exceptions import CheckpointError, InvalidProblemError, SerializationError
from repro.io.serialization import load_checkpoint, save_checkpoint, save_normalized_sdp

from helpers import assert_results_identical, factorized_family


def small_collection(seed=11, n=8, m=24):
    # NOTE: every solve gets a *fresh* collection.  The first solve on a
    # collection lazily builds its packed view, which reroutes ``traces()``
    # rounding — re-solving the same object is not bit-identical.
    return factorized_family(seed, n=n, m=m, rank=2, scale=0.35)


def solve_opts(**overrides):
    base = dict(epsilon=0.25, oracle="fast", rng=3, collect_history=True)
    base.update(overrides)
    return base


class TestOptionsValidation:
    """Bad budgets/cadences are caught at construction, not mid-solve."""

    def test_negative_wall_clock_budget_rejected(self):
        with pytest.raises(InvalidProblemError, match="wall_clock_budget"):
            DecisionOptions(wall_clock_budget=-1.0)

    def test_negative_iteration_budget_rejected(self):
        with pytest.raises(InvalidProblemError, match="iteration_budget"):
            DecisionOptions(iteration_budget=-3)

    def test_negative_max_recoveries_rejected(self):
        with pytest.raises(InvalidProblemError, match="max_recoveries"):
            DecisionOptions(max_recoveries=-1)

    @pytest.mark.parametrize("cadence", [0, -5])
    def test_non_positive_checkpoint_every_rejected(self, cadence):
        with pytest.raises(InvalidProblemError, match="checkpoint_every"):
            DecisionOptions(checkpoint_every=cadence)


class TestCaptureSemantics:
    """When checkpoints appear and what they carry."""

    def test_budget_exhaustion_attaches_checkpoint(self):
        result = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        )
        assert result.status == SolveStatus.BUDGET_EXHAUSTED
        ckpt = result.metadata["checkpoint"]
        assert isinstance(ckpt, SolverCheckpoint)
        assert ckpt.solver == "psdp"
        assert ckpt.iteration == 3
        assert ckpt.version == CHECKPOINT_VERSION

    def test_phased_budget_exhaustion_attaches_checkpoint(self):
        result = decision_psdp_phased(
            small_collection(), **solve_opts(iteration_budget=2)
        )
        assert result.status == SolveStatus.BUDGET_EXHAUSTED
        ckpt = result.metadata["checkpoint"]
        assert isinstance(ckpt, SolverCheckpoint)
        assert ckpt.solver == "phased"
        # A mid-phase capture carries the live phase mask so resume can
        # re-enter the inner loop without re-calling the oracle.
        assert ckpt.phase is not None
        assert ckpt.phase["mask"] is not None

    def test_certified_run_has_no_checkpoint(self):
        result = decision_psdp(small_collection(), **solve_opts())
        assert result.status == SolveStatus.CERTIFIED
        assert "checkpoint" not in result.metadata

    def test_checkpoint_equality_is_array_aware(self):
        result = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        )
        ckpt = result.metadata["checkpoint"]
        again = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        ).metadata["checkpoint"]
        assert ckpt == again
        other = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=4)
        ).metadata["checkpoint"]
        assert ckpt != other

    def test_resume_rejects_cross_problem_checkpoint(self):
        ckpt = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        ).metadata["checkpoint"]
        with pytest.raises(CheckpointError):
            decision_psdp(
                factorized_family(11, n=5, m=24),
                **solve_opts(),
                resume_from=ckpt,
            )

    def test_resume_rejects_wrong_solver_checkpoint(self):
        ckpt = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        ).metadata["checkpoint"]
        with pytest.raises(CheckpointError):
            decision_psdp_phased(small_collection(), **solve_opts(), resume_from=ckpt)


class TestResumeBitIdentical:
    """Interrupt at iteration ``k`` then resume == uninterrupted run."""

    def test_every_interrupt_point_resumes_identically(self):
        baseline = decision_psdp(small_collection(), **solve_opts())
        assert baseline.status == SolveStatus.CERTIFIED
        for k in range(1, baseline.iterations):
            partial = decision_psdp(
                small_collection(), **solve_opts(iteration_budget=k)
            )
            assert partial.status == SolveStatus.BUDGET_EXHAUSTED, f"k={k}"
            resumed = decision_psdp(
                small_collection(),
                **solve_opts(),
                resume_from=partial.metadata["checkpoint"],
            )
            assert_results_identical(resumed, baseline, label=f"resume@{k}")

    def test_phased_every_interrupt_point_resumes_identically(self):
        baseline = decision_psdp_phased(small_collection(), **solve_opts())
        assert baseline.status == SolveStatus.CERTIFIED
        for k in range(1, baseline.iterations):
            partial = decision_psdp_phased(
                small_collection(), **solve_opts(iteration_budget=k)
            )
            assert partial.status == SolveStatus.BUDGET_EXHAUSTED, f"k={k}"
            resumed = decision_psdp_phased(
                small_collection(),
                **solve_opts(),
                resume_from=partial.metadata["checkpoint"],
            )
            assert_results_identical(resumed, baseline, label=f"phased-resume@{k}")

    def test_exact_oracle_resume_identical(self):
        def coll():
            return factorized_family(5, n=6, m=10)

        baseline = decision_psdp(coll(), **solve_opts(oracle="exact"))
        partial = decision_psdp(
            coll(), **solve_opts(oracle="exact", iteration_budget=2)
        )
        resumed = decision_psdp(
            coll(),
            **solve_opts(oracle="exact"),
            resume_from=partial.metadata["checkpoint"],
        )
        assert_results_identical(resumed, baseline, label="exact-resume")

    def test_chained_resumes_identical(self):
        # Interrupt, resume with another budget, interrupt again, finish:
        # multi-hop continuation still lands on the baseline bits.
        baseline = decision_psdp(small_collection(), **solve_opts())
        partial = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=2)
        )
        mid = decision_psdp(
            small_collection(),
            **solve_opts(iteration_budget=4),
            resume_from=partial.metadata["checkpoint"],
        )
        assert mid.status == SolveStatus.BUDGET_EXHAUSTED
        assert mid.iterations == 4
        resumed = decision_psdp(
            small_collection(), **solve_opts(), resume_from=mid.metadata["checkpoint"]
        )
        assert_results_identical(resumed, baseline, label="chained-resume")

    def test_resume_with_exhausted_budget_recheckpoints(self):
        partial = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        )
        again = decision_psdp(
            small_collection(),
            **solve_opts(iteration_budget=3),
            resume_from=partial.metadata["checkpoint"],
        )
        assert again.status == SolveStatus.BUDGET_EXHAUSTED
        assert again.iterations == 3
        assert again.metadata["checkpoint"] == partial.metadata["checkpoint"]


class TestDiskRoundTrip:
    """Versioned, checksummed persistence through ``repro.io.serialization``."""

    def _checkpoint(self):
        return decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        ).metadata["checkpoint"]

    def test_round_trip_preserves_equality(self, tmp_path):
        ckpt = self._checkpoint()
        path = tmp_path / "state.npz"
        save_checkpoint(path, ckpt)
        assert load_checkpoint(path) == ckpt

    def test_resume_from_disk_identical(self, tmp_path):
        baseline = decision_psdp(small_collection(), **solve_opts())
        partial = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        )
        path = tmp_path / "state.npz"
        partial.metadata["checkpoint"].save(path)
        resumed = decision_psdp(
            small_collection(), **solve_opts(), resume_from=SolverCheckpoint.load(path)
        )
        assert_results_identical(resumed, baseline, label="disk-resume")

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "state.npz"
        save_checkpoint(path, self._checkpoint())
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bit_flip_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "state.npz"
        save_checkpoint(path, self._checkpoint())
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_problem_archive_is_not_a_checkpoint(self, tmp_path):
        from repro.problems.random_instances import random_packing_sdp

        problem = random_packing_sdp(4, 6, rng=0)
        path = tmp_path / "problem.npz"
        save_normalized_sdp(path, problem)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_save_rejects_non_checkpoint(self, tmp_path):
        with pytest.raises(SerializationError):
            save_checkpoint(tmp_path / "state.npz", {"not": "a checkpoint"})


class TestBatchCheckpoints:
    """``solve_many`` budget exhaustion checkpoints match sequential."""

    def _batch(self, size=3):
        return [small_collection(seed=7 + 11 * i) for i in range(size)]

    def test_per_instance_checkpoints_match_sequential(self):
        budget = 5
        batched = solve_many(
            self._batch(), epsilon=0.25, oracle="fast", rng=3,
            iteration_budget=budget,
        )
        for i, (coll, result) in enumerate(zip(self._batch(), batched)):
            assert result.status == SolveStatus.BUDGET_EXHAUSTED
            sequential = decision_psdp(
                coll, epsilon=0.25, oracle="fast",
                rng=instance_rng(3, i), iteration_budget=budget,
            )
            assert result.metadata["checkpoint"] == sequential.metadata["checkpoint"], (
                f"instance {i}: batched checkpoint differs from sequential"
            )

    def test_batched_checkpoint_resumes_to_sequential_result(self):
        batched = solve_many(
            self._batch(), epsilon=0.25, oracle="fast", rng=3, iteration_budget=5
        )
        for i, (coll, partial) in enumerate(zip(self._batch(), batched)):
            baseline = decision_psdp(
                coll, epsilon=0.25, oracle="fast", rng=instance_rng(3, i)
            )
            resumed = decision_psdp(
                coll, epsilon=0.25, oracle="fast",
                resume_from=partial.metadata["checkpoint"],
            )
            assert_results_identical(resumed, baseline, label=f"batch-resume[{i}]")

    def test_rng_indices_pin_instance_streams(self):
        # Solving instance #2 alone with rng_indices=[2] must reproduce its
        # result from the full batch — the stream follows the index, not
        # the batch position.
        full = solve_many(self._batch(), epsilon=0.25, oracle="fast", rng=3)
        alone = solve_many(
            [self._batch()[2]], epsilon=0.25, oracle="fast", rng=3,
            rng_indices=[2],
        )
        assert_results_identical(alone[0], full[2], label="rng_indices")

    def test_rng_indices_length_mismatch_rejected(self):
        with pytest.raises(InvalidProblemError):
            solve_many(
                self._batch(), epsilon=0.25, oracle="fast", rng=3,
                rng_indices=[0, 1],
            )


class TestHardenedProblemLoaders:
    """The problem loaders reject corrupted archives with typed errors."""

    def _saved_problem(self, tmp_path):
        from repro.problems.random_instances import random_packing_sdp

        problem = random_packing_sdp(4, 6, rng=0)
        path = tmp_path / "problem.npz"
        save_normalized_sdp(path, problem)
        return path

    def test_truncated_problem_archive(self, tmp_path):
        path = self._saved_problem(tmp_path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        from repro.io.serialization import load_normalized_sdp

        with pytest.raises(SerializationError):
            load_normalized_sdp(path)

    def test_nan_poisoned_constraints(self, tmp_path):
        from repro.io.serialization import load_normalized_sdp

        path = self._saved_problem(tmp_path)
        with np.load(path, allow_pickle=False) as data:
            payload = {key: data[key] for key in data.files}
        stacked = np.array(payload["constraints"])
        stacked[0, 0, 0] = np.nan
        payload["constraints"] = stacked
        np.savez_compressed(path, **payload)
        with pytest.raises(SerializationError, match="non-finite"):
            load_normalized_sdp(path)


class TestAtomicSaves:
    """Write-then-rename persistence: a killed save never corrupts state.

    The executor's process-mode heartbeat writes checkpoints while the
    watchdog may kill the worker at any instant, so every saver in
    ``repro.io.serialization`` goes through ``_atomic_savez``: the archive
    is written to a same-directory temp file, fsynced, and ``os.replace``d
    onto the destination — readers see the previous complete file or the
    new complete file, never a truncated archive.
    """

    def _checkpoint(self):
        return decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        ).metadata["checkpoint"]

    def test_successful_save_leaves_no_temp_files(self, tmp_path):
        save_checkpoint(tmp_path / "state.npz", self._checkpoint())
        assert sorted(p.name for p in tmp_path.iterdir()) == ["state.npz"]

    def test_interrupted_save_preserves_previous_file(self, tmp_path, monkeypatch):
        path = tmp_path / "state.npz"
        first = self._checkpoint()
        save_checkpoint(path, first)
        blob = path.read_bytes()

        import numpy as _np

        from repro.io import serialization as ser

        def die_mid_write(fileobj, **entries):
            fileobj.write(b"partial garbage")
            raise KeyboardInterrupt("worker killed mid-save")

        monkeypatch.setattr(ser.np, "savez_compressed", die_mid_write)
        second = decision_psdp(
            small_collection(), **solve_opts(iteration_budget=5)
        ).metadata["checkpoint"]
        with pytest.raises(KeyboardInterrupt):
            save_checkpoint(path, second)
        monkeypatch.setattr(ser.np, "savez_compressed", _np.savez_compressed)

        # The destination still holds the first checkpoint, bit for bit,
        # and the aborted temp file was cleaned up.
        assert path.read_bytes() == blob
        assert load_checkpoint(path) == first
        assert sorted(p.name for p in tmp_path.iterdir()) == ["state.npz"]


class TestHeartbeatOption:
    """``DecisionOptions.heartbeat`` fires at the periodic-capture cadence."""

    def test_heartbeat_receives_periodic_checkpoints(self):
        beats = []
        result = decision_psdp(
            small_collection(),
            **solve_opts(
                checkpoint_every=3,
                heartbeat=lambda ckpt, instance: beats.append((ckpt, instance)),
            ),
        )
        assert beats, "no heartbeat fired"
        iterations = [ckpt.iteration for ckpt, _ in beats]
        assert iterations == sorted(set(iterations))
        assert all(it % 3 == 0 for it in iterations)
        # Solo solves tag the beat with instance=None; the final beat's
        # checkpoint resumes to the identical converged result.
        assert all(instance is None for _, instance in beats)
        resumed = decision_psdp(
            small_collection(), **solve_opts(), resume_from=beats[-1][0]
        )
        assert_results_identical(resumed, result, label="heartbeat-resume")

    def test_batched_heartbeat_tags_instance_indices(self):
        beats = []
        collections = [small_collection(seed=7 + 11 * i) for i in range(3)]
        solve_many(
            collections,
            epsilon=0.25,
            oracle="fast",
            rng=3,
            checkpoint_every=3,
            heartbeat=lambda ckpt, instance: beats.append((ckpt, instance)),
            rng_indices=[5, 6, 7],
        )
        tagged = {instance for _, instance in beats}
        assert tagged <= {5, 6, 7} and tagged, f"unexpected instance tags: {tagged}"

    def test_heartbeat_exception_propagates(self):
        # Cooperative cancellation: the executor's kill lands by raising
        # out of the heartbeat, which must abort the solve.
        class Abort(RuntimeError):
            pass

        def bomb(ckpt, instance):
            raise Abort("cancelled")

        with pytest.raises(Abort):
            decision_psdp(
                small_collection(), **solve_opts(checkpoint_every=3, heartbeat=bomb)
            )

    def test_captured_at_stamp_excluded_from_equality(self):
        a = self._capture()
        b = self._capture()
        assert a.captured_at is not None and b.captured_at is not None
        object.__setattr__(b, "captured_at", a.captured_at + 123.0)
        assert a == b, "captured_at must not participate in checkpoint equality"

    def _capture(self):
        return decision_psdp(
            small_collection(), **solve_opts(iteration_budget=3)
        ).metadata["checkpoint"]
